/**
 * @file
 * Trace-driven architecture study — the use case the paper's
 * "BigDataBench simulator version" exists for. A WordCount run on
 * each stack is recorded once (engine + simulator in the loop), then
 * the traces are replayed against L3 capacities from 3 to 48 MB to
 * produce miss-rate/IPC curves without re-running the software
 * stacks.
 */

#include <iostream>
#include <memory>

#include "common/table.h"
#include "stack/hadoop.h"
#include "stack/spark.h"
#include "trace/recorder.h"
#include "metrics/schema.h"
#include "uarch/system.h"
#include "workloads/datagen.h"
#include "workloads/offline.h"
#include "bench_common.h"

namespace {

using namespace bds;

/** Record one WordCount run on the chosen stack. */
TraceRecorder
recordWordCount(const NodeConfig &machine, bool hadoop)
{
    SystemModel sys(machine);
    TraceRecorder rec;
    sys.attachRecorder(&rec);

    AddressSpace space;
    std::unique_ptr<StackEngine> engine;
    if (hadoop)
        engine = std::make_unique<MapReduceEngine>(sys, space);
    else
        engine = std::make_unique<RddEngine>(sys, space);
    Dataset corpus = makeTextCorpus(space, 40000, 2500, 4, 4, 11);
    OfflineWorkloads wl(*engine);
    wl.runWordCount(corpus);
    sys.attachRecorder(nullptr);
    return rec;
}

/** Replay a trace against one L3 capacity; return the metrics. */
MetricVector
replayWithL3(const NodeConfig &machine, const TraceRecorder &trace,
             std::uint64_t l3_bytes)
{
    NodeConfig cfg = machine;
    cfg.l3.sizeBytes = l3_bytes;
    SystemModel sys(cfg);
    trace.replay(sys, [&](std::uint64_t addr, std::uint64_t bytes) {
        sys.dmaFill(addr, bytes);
    });
    return extractMetrics(sys.aggregateCounters());
}

} // namespace

int
main(int argc, char **argv)
{
    bds::Session session(
        bdsbench::benchConfig("ablation_cache_sweep", argc, argv));
    const bds::NodeConfig machine =
        bdsbench::benchMachine(session.config());
    std::cout << "Trace-driven L3 capacity sweep — WordCount on both "
                 "stacks\n(record once, replay per configuration)\n\n";

    for (bool hadoop : {true, false}) {
        const char *name = hadoop ? "H-WordCount" : "S-WordCount";
        std::cerr << "[sweep] recording " << name << "...\n";
        TraceRecorder trace = recordWordCount(machine, hadoop);
        std::cout << name << " (" << trace.size()
                  << " trace events):\n";

        TextTable t({"L3", "L3 MPKI", "LLC load MPKI", "IPC",
                     "resource-stall share"});
        for (std::uint64_t mb : {3ULL, 6ULL, 12ULL, 24ULL, 48ULL}) {
            MetricVector m = replayWithL3(machine, trace, mb << 20);
            auto get = [&](Metric x) {
                return m[static_cast<std::size_t>(x)];
            };
            t.addRow({std::to_string(mb) + " MB",
                      fmtDouble(get(Metric::L3Miss), 2),
                      fmtDouble(get(Metric::LoadLlcMiss), 2),
                      fmtDouble(get(Metric::Ilp), 3),
                      fmtDouble(get(Metric::ResourceStall), 3)});
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Expected shape: the Spark trace's working set "
                 "responds to L3 capacity\n(misses fall, IPC rises); "
                 "the Hadoop trace is stream/DMA-bound and barely\n"
                 "moves — capacity scaling does not help an I/O-shaped "
                 "stack.\n";
    return 0;
}
