/**
 * @file
 * Engine-mechanism ablation (DESIGN.md §5.1): demonstrate that the
 * pipeline measures *mechanisms*, not engine names. We run the same
 * WordCount job on:
 *
 *   1. the stock engines (baseline),
 *   2. a MapReduce engine carrying Spark's lean code footprint,
 *   3. an RDD engine carrying Hadoop's bloated code footprint,
 *
 * and show the frontend metrics (L1I MPKI, ITLB, fetch stalls)
 * follow the code-footprint mechanism wherever it goes, while the
 * data-path metrics (L3 misses, snoops) stay with the execution
 * model. If the engines hard-coded per-metric constants, this swap
 * would change nothing.
 */

#include <iostream>
#include <memory>

#include "common/table.h"
#include "obs/session.h"
#include "stack/hadoop.h"
#include "stack/spark.h"
#include "metrics/schema.h"
#include "uarch/system.h"
#include "workloads/datagen.h"
#include "workloads/offline.h"
#include "bench_common.h"

namespace {

using namespace bds;

MetricVector
measure(const NodeConfig &machine, bool mapreduce_engine,
        bool hadoop_code_footprint)
{
    SystemModel sys(machine);
    AddressSpace space;

    // Start from the engine's own profile, then transplant the other
    // stack's instruction-footprint mechanisms.
    StackProfile profile =
        mapreduce_engine ? hadoopProfile() : sparkProfile();
    StackProfile donor =
        hadoop_code_footprint ? hadoopProfile() : sparkProfile();
    profile.fwFunctions = donor.fwFunctions;
    profile.fwFnBodyBytes = donor.fwFnBodyBytes;
    profile.fwFnStrideBytes = donor.fwFnStrideBytes;
    profile.fwCallZipf = donor.fwCallZipf;
    profile.fwCallsPerRecord = donor.fwCallsPerRecord;

    std::unique_ptr<StackEngine> engine;
    if (mapreduce_engine)
        engine = std::make_unique<MapReduceEngine>(sys, space, profile,
                                                   0x4adaaULL);
    else
        engine = std::make_unique<RddEngine>(sys, space, profile,
                                             0x5aa4cULL);

    Dataset corpus = makeTextCorpus(space, 60000, 4000, 4, 4, 99);
    OfflineWorkloads wl(*engine);
    wl.runWordCount(corpus);
    return extractMetrics(sys.aggregateCounters());
}

void
addRow(TextTable &t, const char *label, const MetricVector &m)
{
    auto get = [&](Metric x) {
        return m[static_cast<std::size_t>(x)];
    };
    t.addRow({label, fmtDouble(get(Metric::L1iMiss), 2),
              fmtDouble(get(Metric::ItlbMiss), 2),
              fmtDouble(get(Metric::FetchStall), 3),
              fmtDouble(get(Metric::L3Miss), 2),
              fmtDouble(get(Metric::SnoopHitM), 3),
              fmtDouble(get(Metric::KernelMode), 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    bds::Session session(
        bdsbench::benchConfig("ablation_engines", argc, argv));
    const bds::NodeConfig machine =
        bdsbench::benchMachine(session.config());
    std::cout << "Engine-mechanism ablation — WordCount, 60k records\n"
              << "(frontend metrics must follow the code-footprint "
                 "mechanism;\n data-path metrics must stay with the "
                 "execution model)\n\n";

    TextTable t({"configuration", "L1I MPKI", "ITLB MPKI",
                 "FETCH STALL", "L3 MPKI", "SNOOP HITM/KI",
                 "KERNEL"});
    addRow(t, "MapReduce + Hadoop code (stock H)",
           measure(machine, true, true));
    addRow(t, "MapReduce + Spark code  (swapped)",
           measure(machine, true, false));
    addRow(t, "RDD + Spark code        (stock S)",
           measure(machine, false, false));
    addRow(t, "RDD + Hadoop code       (swapped)",
           measure(machine, false, true));
    t.print(std::cout);

    std::cout << "\nExpected pattern: the two rows with Hadoop code "
                 "show high L1I/ITLB/fetch\nnumbers regardless of "
                 "engine; the two RDD rows show high L3/snoop numbers\n"
                 "regardless of code footprint. The differences are "
                 "emergent from mechanisms,\nnot baked into the "
                 "engines.\n";
    return 0;
}
