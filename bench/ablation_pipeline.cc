/**
 * @file
 * Ablation bench for the pipeline's design choices (DESIGN.md §5):
 *
 *  1. linkage criterion (single — the paper's choice — vs complete
 *     vs average): dendrogram shape and observation stability;
 *  2. PC retention (Kaiser vs fixed counts): retained variance and
 *     clustering outcome;
 *  3. K selection (BIC — the paper's choice — vs silhouette);
 *  4. representative strategy (nearest vs farthest, Table V).
 */

#include <iostream>

#include "common/table.h"
#include "stats/silhouette.h"
#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace bds;
    Session session(
        bdsbench::benchConfig("ablation_pipeline", argc, argv));
    auto base = bdsbench::characterizedPipeline(session);
    const Matrix &metrics = base.rawMetrics;
    const auto &names = base.names;

    // ---------------- 1: linkage ----------------
    std::cout << "Ablation 1 — linkage criterion\n";
    TextTable t1({"linkage", "same-stack 1st-iter share",
                  "final merge distance"});
    for (Linkage l :
         {Linkage::Single, Linkage::Complete, Linkage::Average}) {
        PipelineOptions opts;
        opts.linkage = l;
        auto res = runPipeline(metrics, names, opts);
        auto obs = analyzeSimilarity(res);
        t1.addRow({linkageName(l),
                   fmtDouble(100.0 * obs.sameStackShare, 1) + "%",
                   fmtDouble(res.dendrogram.merges().back().distance,
                             2)});
    }
    t1.print(std::cout);

    // ---------------- 2: PC retention ----------------
    std::cout << "\nAblation 2 — PC retention policy\n";
    TextTable t2({"policy", "PCs", "variance retained",
                  "BIC-selected K"});
    {
        auto res = runPipeline(metrics, names);
        t2.addRow({"Kaiser (paper)",
                   std::to_string(res.pca.numComponents),
                   fmtDouble(100.0 * res.pca.totalVarianceRetained, 1)
                       + "%",
                   std::to_string(res.bic.bestK())});
    }
    for (std::size_t forced : {2u, 4u, 8u, 16u}) {
        PipelineOptions opts;
        opts.pca.forcedComponents = forced;
        auto res = runPipeline(metrics, names, opts);
        t2.addRow({"fixed " + std::to_string(forced),
                   std::to_string(res.pca.numComponents),
                   fmtDouble(100.0 * res.pca.totalVarianceRetained, 1)
                       + "%",
                   std::to_string(res.bic.bestK())});
    }
    t2.print(std::cout);

    // ---------------- 3: K selection ----------------
    std::cout << "\nAblation 3 — K selection (BIC vs silhouette)\n";
    TextTable t3({"K", "BIC", "silhouette"});
    std::size_t sil_best = 0;
    double sil_best_score = -2.0;
    for (const auto &pt : base.bic.points) {
        double sil = silhouetteScore(base.pca.scores, pt.result.labels);
        if (sil > sil_best_score) {
            sil_best_score = sil;
            sil_best = pt.k;
        }
        t3.addRow({std::to_string(pt.k), fmtDouble(pt.bic, 1),
                   fmtDouble(sil, 3)});
    }
    t3.print(std::cout);
    std::cout << "BIC selects K = " << base.bic.bestK()
              << "; silhouette selects K = " << sil_best << '\n';

    // ---------------- 4: representative strategy ----------------
    std::cout << "\nAblation 4 — representative strategy (Table V)\n";
    TextTable t4({"strategy", "max linkage distance",
                  "representatives"});
    for (auto strat : {RepresentativeStrategy::NearestToCentroid,
                       RepresentativeStrategy::FarthestFromCentroid}) {
        auto subset = selectRepresentatives(base, strat);
        std::string reps;
        for (std::size_t r : subset.representatives) {
            if (!reps.empty())
                reps += ", ";
            reps += base.names[r];
        }
        t4.addRow({strategyName(strat),
                   fmtDouble(subset.maxPairwiseLinkage, 2), reps});
    }
    t4.print(std::cout);
    return 0;
}
