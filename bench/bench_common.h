/**
 * @file
 * Shared plumbing for the figure/table bench binaries.
 *
 * Every paper-reproduction bench needs the same 32 x 45 metric
 * matrix. Simulating the whole suite takes minutes, so the first
 * bench to run caches the matrix as a CSV next to the working
 * directory and the rest load it. Delete the cache (or change
 * BDS_SCALE / BDS_SEED) to force re-simulation.
 *
 * Environment:
 *   BDS_SCALE   = quick | standard | full (default: standard)
 *   BDS_SEED    = <integer>               (default: 42)
 *   BDS_THREADS = <integer>               (default: 0 = all cores;
 *                                          1 = serial)
 *
 * Sampled-simulation knobs (docs/SAMPLING.md):
 *   BDS_SAMPLE          = 0 | 1  (default 0: full detailed runs)
 *   BDS_SAMPLE_INTERVAL = <uops per interval>
 *   BDS_SAMPLE_BBV      = <BBV hash buckets>
 *   BDS_SAMPLE_KMAX     = <max interval clusters>
 *   BDS_SAMPLE_WARMUP   = <warm intervals before each rep; 0 = all>
 *   BDS_SAMPLE_SEED     = <interval-clustering seed>
 *
 * Every numeric knob is parsed strictly: a value that is not a plain
 * non-negative decimal integer is a fatal error, not a silent
 * default. The matrix is bitwise identical for every BDS_THREADS
 * value (see docs/THREADING.md), so the cache stays valid across
 * thread counts.
 */

#ifndef BDS_BENCH_COMMON_H
#define BDS_BENCH_COMMON_H

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/csvio.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "sample/characterizer.h"
#include "workloads/registry.h"

namespace bdsbench {

/**
 * Strict environment integer: the whole value must be a plain
 * non-negative decimal. Signs, whitespace, trailing junk, or an empty
 * string fail fast — a typo in a knob should never silently become 0.
 */
inline std::uint64_t
envUint(const char *name, const char *value)
{
    std::string s(value);
    if (s.empty()
        || s.find_first_not_of("0123456789") != std::string::npos)
        BDS_FATAL(name << " must be a non-negative integer, got '"
                       << s << "'");
    errno = 0;
    std::uint64_t v = std::strtoull(s.c_str(), nullptr, 10);
    if (errno == ERANGE)
        BDS_FATAL(name << " is out of range: '" << s << "'");
    return v;
}

/** Scale selected by BDS_SCALE (default standard). */
inline bds::ScaleProfile
scaleFromEnv(std::string *name_out = nullptr)
{
    const char *env = std::getenv("BDS_SCALE");
    std::string name = env ? env : "standard";
    if (name != "quick" && name != "standard" && name != "full")
        BDS_FATAL("BDS_SCALE must be quick, standard or full, got '"
                  << name << "'");
    if (name_out)
        *name_out = name;
    if (name == "quick")
        return bds::ScaleProfile::quick();
    if (name == "full")
        return bds::ScaleProfile::full();
    return bds::ScaleProfile::standard();
}

/** Seed selected by BDS_SEED (default 42). */
inline std::uint64_t
seedFromEnv()
{
    const char *env = std::getenv("BDS_SEED");
    return env ? envUint("BDS_SEED", env) : 42ULL;
}

/** Worker threads selected by BDS_THREADS (default 0 = all cores). */
inline bds::ParallelOptions
parallelFromEnv()
{
    const char *env = std::getenv("BDS_THREADS");
    bds::ParallelOptions par;
    if (env)
        par.threads =
            static_cast<unsigned>(envUint("BDS_THREADS", env));
    return par;
}

/** Sampling knobs from BDS_SAMPLE / BDS_SAMPLE_* (defaults apply). */
inline bds::SamplingOptions
samplingFromEnv()
{
    bds::SamplingOptions s;
    if (const char *v = std::getenv("BDS_SAMPLE"))
        s.enabled = envUint("BDS_SAMPLE", v) != 0;
    if (const char *v = std::getenv("BDS_SAMPLE_INTERVAL")) {
        s.intervalUops = envUint("BDS_SAMPLE_INTERVAL", v);
        if (s.intervalUops == 0)
            BDS_FATAL("BDS_SAMPLE_INTERVAL must be positive");
    }
    if (const char *v = std::getenv("BDS_SAMPLE_BBV")) {
        s.bbvDims = envUint("BDS_SAMPLE_BBV", v);
        if (s.bbvDims == 0)
            BDS_FATAL("BDS_SAMPLE_BBV must be positive");
    }
    if (const char *v = std::getenv("BDS_SAMPLE_KMAX")) {
        s.kMax = envUint("BDS_SAMPLE_KMAX", v);
        if (s.kMax == 0)
            BDS_FATAL("BDS_SAMPLE_KMAX must be positive");
    }
    if (const char *v = std::getenv("BDS_SAMPLE_WARMUP"))
        s.warmupIntervals =
            static_cast<unsigned>(envUint("BDS_SAMPLE_WARMUP", v));
    if (const char *v = std::getenv("BDS_SAMPLE_SEED"))
        s.seed = envUint("BDS_SAMPLE_SEED", v);
    return s;
}

/**
 * Load a cached metric matrix, matching columns against `set` by
 * canonical name (any column order works; extra columns are
 * ignored). Returns false — after printing why — when the file is
 * absent, lacks a required metric column, or has the wrong row
 * count, so the caller re-simulates instead of misreading positions.
 */
inline bool
loadMetricsCsv(const std::string &path, std::vector<std::string> &names,
               bds::Matrix &metrics,
               const bds::MetricSet &set = bds::MetricSet::tableII())
{
    std::ifstream in(path);
    if (!in)
        return false;
    try {
        bds::MetricTable table = bds::readMetricsCsv(in);
        if (table.names.size() != bds::allWorkloads().size()) {
            std::cerr << "[bench] ignoring cache " << path << ": "
                      << table.names.size() << " rows, expected "
                      << bds::allWorkloads().size() << "\n";
            return false;
        }
        metrics = bds::alignMetricTable(table, set);
        names = std::move(table.names);
        return true;
    } catch (const bds::FatalError &e) {
        // Stale or foreign file: say why, then re-simulate.
        std::cerr << "[bench] ignoring cache " << path << ": "
                  << e.what() << "\n";
        return false;
    }
}

/**
 * Characterize the 32 workloads (or load the cached matrix) and run
 * the paper's pipeline over it. With BDS_SAMPLE=1 the matrix comes
 * from the sampled-simulation path (src/sample) and is cached under a
 * distinct name, so any figure/table bench can run off sampled
 * metrics side by side with its full-run cache.
 */
inline bds::PipelineResult
characterizedPipeline()
{
    std::string scale_name;
    bds::ScaleProfile scale = scaleFromEnv(&scale_name);
    std::uint64_t seed = seedFromEnv();
    bds::ParallelOptions par = parallelFromEnv();
    bds::SamplingOptions sampling = samplingFromEnv();
    std::string cache = "bds_metrics_" + scale_name + "_"
        + std::to_string(seed)
        + (sampling.enabled ? "_sampled" : "") + ".csv";

    std::vector<std::string> names;
    bds::Matrix metrics;
    if (loadMetricsCsv(cache, names, metrics)) {
        std::cerr << "[bench] loaded cached metrics from " << cache
                  << '\n';
    } else {
        std::cerr << "[bench] characterizing 32 workloads at scale '"
                  << scale_name << "' on " << par.resolved()
                  << " thread(s)"
                  << (sampling.enabled ? ", sampled" : "")
                  << " (cache: " << cache << ")\n";
        bds::WorkloadRunner runner(bds::NodeConfig::defaultSim(), scale,
                                   seed);
        runner.setParallel(par);
        if (sampling.enabled) {
            bds::SampledCharacterizer sampler(runner, sampling);
            metrics = sampler.runAll();
        } else {
            bds::SweepTiming timing;
            metrics = runner.runAll(nullptr, &timing);
            std::cerr << "[bench] characterized 32 workloads in "
                      << timing.totalSeconds << " s on "
                      << timing.threads << " thread(s)\n";
        }
        for (const auto &id : bds::allWorkloads())
            names.push_back(id.name());

        bds::PipelineResult tmp;
        tmp.names = names;
        tmp.rawMetrics = metrics;
        std::ofstream out(cache);
        bds::writeMetricsCsv(out, tmp);
    }
    bds::PipelineOptions opts;
    opts.parallel = par;
    opts.sampling = sampling;
    return bds::runPipeline(metrics, names, opts);
}

} // namespace bdsbench

#endif // BDS_BENCH_COMMON_H
