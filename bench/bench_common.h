/**
 * @file
 * Shared plumbing for the figure/table bench binaries.
 *
 * Every paper-reproduction bench needs the same 32 x 45 metric
 * matrix. Simulating the whole suite takes minutes, so the first
 * bench to run caches the matrix as a CSV next to the working
 * directory and the rest load it. Delete the cache (or change
 * BDS_SCALE / BDS_SEED) to force re-simulation.
 *
 * All configuration — scale, seed, threads, sampling, metric subset,
 * tracing and manifests — comes from bds::RunConfig (src/obs), the
 * single entry point that resolves BDS_* environment variables and
 * --flags. See src/obs/runconfig.h for the full knob list. The
 * matrix is bitwise identical for every BDS_THREADS value (see
 * docs/THREADING.md), so the cache stays valid across thread counts.
 *
 * A bench main is three lines of plumbing:
 *
 *   int main(int argc, char **argv) {
 *       bds::Session session(bdsbench::benchConfig("fig1", argc, argv));
 *       auto res = bdsbench::characterizedPipeline(session);
 *       ... print the table/figure to stdout ...
 *   }
 *
 * The Session destructor writes the run manifest (fig1.manifest.json)
 * and, when BDS_TRACE=1, the trace summary.
 */

#ifndef BDS_BENCH_COMMON_H
#define BDS_BENCH_COMMON_H

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "ckpt/context.h"
#include "common/log.h"
#include "core/csvio.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "obs/session.h"
#include "sample/characterizer.h"
#include "uarch/machine.h"
#include "workloads/registry.h"

namespace bdsbench {

/**
 * Resolve the bench's RunConfig from the environment and command
 * line. Benches take no positional arguments, so any unconsumed
 * argument is fatal (RunConfig::resolve enforces this).
 */
inline bds::RunConfig
benchConfig(const std::string &tool, int argc = 0, char **argv = nullptr)
{
    return bds::RunConfig::resolve(tool, argc, argv);
}

/**
 * Resolve the session's machine geometry (--machine / BDS_MACHINE)
 * through the preset registry. Benches never construct NodeConfig
 * inline: the machine is an axis of the run configuration, and this
 * is the one funnel it flows through.
 */
inline bds::NodeConfig
benchMachine(const bds::RunConfig &cfg)
{
    return bds::resolveMachineSpec(cfg.machineSpec);
}

/**
 * Machine for the benches that manage their own tiny flag sets
 * instead of RunConfig (uarch_speed, micro_uarch): BDS_MACHINE still
 * wins, absent means the Table III sim default. Funneled through
 * RunConfig::applyEnv() — the one env reader — so these benches get
 * the same strict validation as everything else.
 */
inline bds::NodeConfig
benchMachineFromEnv()
{
    bds::RunConfig cfg;
    cfg.applyEnv();
    return benchMachine(cfg);
}

/**
 * Write the run-environment JSON object — "environment": {...} with
 * no trailing comma or newline — into a bench artifact. Performance
 * numbers are only comparable within one environment, so every
 * BENCH_*.json records where it was captured: core count, compiler,
 * build type and flags, and the kernel/arch.
 */
inline void
writeEnvironmentJson(std::ostream &os, const char *indent = "  ")
{
    os << indent << "\"environment\": {\n"
       << indent << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << indent << "  \"compiler\": \""
#if defined(__clang__)
       << "clang " << __VERSION__
#elif defined(__GNUC__)
       << "gcc " << __VERSION__
#else
       << "unknown"
#endif
       << "\",\n"
#ifdef BDS_BUILD_TYPE
       << indent << "  \"build_type\": \"" << BDS_BUILD_TYPE << "\",\n"
#endif
#ifdef BDS_BUILD_FLAGS
       << indent << "  \"flags\": \"" << BDS_BUILD_FLAGS << "\",\n"
#endif
       << indent << "  \"os\": \"";
#if defined(__unix__) || defined(__APPLE__)
    utsname u{};
    if (::uname(&u) == 0)
        os << u.sysname << ' ' << u.release << ' ' << u.machine;
    else
        os << "unknown";
#else
    os << "unknown";
#endif
    os << "\"\n" << indent << "}";
}

/**
 * Load a cached metric matrix, matching columns against `set` by
 * canonical name (any column order works; extra columns are
 * ignored). Returns false — after printing why — when the file is
 * absent, lacks a required metric column, or has the wrong row
 * count, so the caller re-simulates instead of misreading positions.
 */
inline bool
loadMetricsCsv(const std::string &path, std::vector<std::string> &names,
               bds::Matrix &metrics,
               const bds::MetricSet &set = bds::MetricSet::tableII())
{
    std::ifstream in(path);
    if (!in)
        return false;
    try {
        bds::MetricTable table = bds::readMetricsCsv(in);
        if (table.names.size() != bds::allWorkloads().size()) {
            std::cerr << "[bench] ignoring cache " << path << ": "
                      << table.names.size() << " rows, expected "
                      << bds::allWorkloads().size() << "\n";
            return false;
        }
        metrics = bds::alignMetricTable(table, set);
        names = std::move(table.names);
        return true;
    } catch (const bds::FatalError &e) {
        // Stale or foreign file: say why, then re-simulate.
        std::cerr << "[bench] ignoring cache " << path << ": "
                  << e.what() << "\n";
        return false;
    }
}

/**
 * The cache file a configuration characterizes into. The default
 * machine keeps the legacy name (so seed-era caches stay warm and
 * the CI byte-identity gate compares like against like); any other
 * geometry gets its slug in the name, because a matrix simulated on
 * a different machine is a different matrix.
 */
inline std::string
metricsCachePath(const bds::RunConfig &cfg)
{
    std::string machine;
    if (!bds::isDefaultMachineSpec(cfg.machineSpec))
        machine = "_" + bds::machineSlug(cfg.machineSpec);
    return "bds_metrics_" + cfg.scaleName + "_"
        + std::to_string(cfg.seed) + machine
        + (cfg.sampling.enabled ? "_sampled" : "") + ".csv";
}

/**
 * Characterize the 32 workloads (or load the cached matrix) and run
 * the paper's pipeline over it, under the session's configuration.
 * With sampling enabled the matrix comes from the sampled-simulation
 * path (src/sample) and is cached under a distinct name, so any
 * figure/table bench can run off sampled metrics side by side with
 * its full-run cache. The cache file and per-stage wall-clocks are
 * recorded on the session's manifest.
 */
inline bds::PipelineResult
characterizedPipeline(bds::Session &session)
{
    const bds::RunConfig &cfg = session.config();
    std::string cache = metricsCachePath(cfg);

    std::vector<std::string> names;
    bds::Matrix metrics;
    auto acquire_start = std::chrono::steady_clock::now();
    auto acquireSeconds = [acquire_start] {
        return std::chrono::duration<double>(
            std::chrono::steady_clock::now() - acquire_start).count();
    };
    if (loadMetricsCsv(cache, names, metrics)) {
        std::cerr << "[bench] loaded cached metrics from " << cache
                  << '\n';
        session.recordStage("load-cache", acquireSeconds());
    } else {
        std::cerr << "[bench] characterizing 32 workloads at scale '"
                  << cfg.scaleName << "' on "
                  << cfg.parallel.resolved() << " thread(s)"
                  << (cfg.sampling.enabled ? ", sampled" : "")
                  << " (cache: " << cache << ")\n";
        bds::WorkloadRunner runner =
            bds::WorkloadRunner::fromRunConfig(cfg);
        bds::SweepReport report;
        if (cfg.sampling.enabled) {
            bds::SampledCharacterizer sampler(runner, cfg.sampling);
            // ckpt.enabled: replays restore representative-entry
            // snapshots from the shared cache and write the missing
            // ones, so a re-characterization of an unchanged config
            // skips the functional warming (docs/CHECKPOINT.md).
            sampler.setCheckpoints(bds::checkpointContextFor(cfg));
            metrics = sampler.runAll(nullptr, &report);
        } else {
            bds::SweepTiming timing;
            metrics = runner.runAll(nullptr, &timing, &report);
            std::cerr << "[bench] characterized "
                      << report.survivors.size() << " workloads in "
                      << timing.totalSeconds << " s on "
                      << timing.threads << " thread(s)\n";
        }
        session.recordSweep(report);
        names = report.survivorNames();

        if (report.allOk()) {
            bds::PipelineResult tmp;
            tmp.names = names;
            tmp.rawMetrics = metrics;
            std::ofstream out(cache);
            bds::writeMetricsCsv(out, tmp);
        } else {
            // A quarantined sweep is incomplete by design — never let
            // its shrunken matrix masquerade as the 32-row cache.
            std::cerr << "[bench] not caching: "
                      << (bds::allWorkloads().size() - names.size())
                      << " workload(s) quarantined\n";
            cache.clear();
        }
        session.recordStage("characterize", acquireSeconds());
    }
    if (!cache.empty())
        session.noteArtifact(cache);

    bds::StageTimer stage(session, "analyze");
    return bds::runPipeline(metrics, names,
                            bds::pipelineOptionsFor(cfg));
}

} // namespace bdsbench

#endif // BDS_BENCH_COMMON_H
