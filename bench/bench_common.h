/**
 * @file
 * Shared plumbing for the figure/table bench binaries.
 *
 * Every paper-reproduction bench needs the same 32 x 45 metric
 * matrix. Simulating the whole suite takes minutes, so the first
 * bench to run caches the matrix as a CSV next to the working
 * directory and the rest load it. Delete the cache (or change
 * BDS_SCALE / BDS_SEED) to force re-simulation.
 *
 * Environment:
 *   BDS_SCALE   = quick | standard | full (default: standard)
 *   BDS_SEED    = <integer>               (default: 42)
 *   BDS_THREADS = <integer>               (default: 0 = all cores;
 *                                          1 = serial)
 *
 * The matrix is bitwise identical for every BDS_THREADS value (see
 * docs/THREADING.md), so the cache stays valid across thread counts.
 */

#ifndef BDS_BENCH_COMMON_H
#define BDS_BENCH_COMMON_H

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/csvio.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "workloads/registry.h"

namespace bdsbench {

/** Scale selected by BDS_SCALE (default standard). */
inline bds::ScaleProfile
scaleFromEnv(std::string *name_out = nullptr)
{
    const char *env = std::getenv("BDS_SCALE");
    std::string name = env ? env : "standard";
    if (name_out)
        *name_out = name;
    if (name == "quick")
        return bds::ScaleProfile::quick();
    if (name == "full")
        return bds::ScaleProfile::full();
    return bds::ScaleProfile::standard();
}

/** Seed selected by BDS_SEED (default 42). */
inline std::uint64_t
seedFromEnv()
{
    const char *env = std::getenv("BDS_SEED");
    return env ? std::strtoull(env, nullptr, 10) : 42ULL;
}

/** Worker threads selected by BDS_THREADS (default 0 = all cores). */
inline bds::ParallelOptions
parallelFromEnv()
{
    const char *env = std::getenv("BDS_THREADS");
    bds::ParallelOptions par;
    if (env)
        par.threads =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return par;
}

/**
 * Load a cached metric matrix; returns false when absent/mismatched.
 */
inline bool
loadMetricsCsv(const std::string &path, std::vector<std::string> &names,
               bds::Matrix &metrics)
{
    std::ifstream in(path);
    if (!in)
        return false;
    try {
        bds::MetricTable table = bds::readMetricsCsv(in);
        if (table.columns.size() != bds::kNumMetrics ||
            table.names.size() != bds::allWorkloads().size())
            return false;
        names = std::move(table.names);
        metrics = std::move(table.values);
        return true;
    } catch (const bds::FatalError &) {
        return false; // stale or foreign file: re-simulate
    }
}

/**
 * Characterize the 32 workloads (or load the cached matrix) and run
 * the paper's pipeline over it.
 */
inline bds::PipelineResult
characterizedPipeline()
{
    std::string scale_name;
    bds::ScaleProfile scale = scaleFromEnv(&scale_name);
    std::uint64_t seed = seedFromEnv();
    bds::ParallelOptions par = parallelFromEnv();
    std::string cache = "bds_metrics_" + scale_name + "_"
        + std::to_string(seed) + ".csv";

    std::vector<std::string> names;
    bds::Matrix metrics;
    if (loadMetricsCsv(cache, names, metrics)) {
        std::cerr << "[bench] loaded cached metrics from " << cache
                  << '\n';
    } else {
        std::cerr << "[bench] characterizing 32 workloads at scale '"
                  << scale_name << "' on " << par.resolved()
                  << " thread(s) (cache: " << cache << ")\n";
        bds::WorkloadRunner runner(bds::NodeConfig::defaultSim(), scale,
                                   seed);
        runner.setParallel(par);
        bds::SweepTiming timing;
        metrics = runner.runAll(nullptr, &timing);
        std::cerr << "[bench] characterized 32 workloads in "
                  << timing.totalSeconds << " s on " << timing.threads
                  << " thread(s)\n";
        for (const auto &id : bds::allWorkloads())
            names.push_back(id.name());

        bds::PipelineResult tmp;
        tmp.names = names;
        tmp.rawMetrics = metrics;
        std::ofstream out(cache);
        bds::writeMetricsCsv(out, tmp);
    }
    bds::PipelineOptions opts;
    opts.parallel = par;
    return bds::runPipeline(metrics, names, opts);
}

} // namespace bdsbench

#endif // BDS_BENCH_COMMON_H
