/**
 * @file
 * The checkpoint-replay benchmark: measures what the interval
 * checkpoint cache (src/ckpt, docs/CHECKPOINT.md) saves on an
 * incremental re-characterization, and pins the identity contract
 * while doing so.
 *
 * Three sampled passes over the selected workloads, same config:
 *
 *   baseline   checkpointing off — every replay warms from zero
 *   cold       checkpointing on, cache typically empty — replays
 *              warm from zero and write representative snapshots
 *   warm       checkpointing on, cache populated — replays restore
 *              the snapshots and jump the warming entirely
 *
 * The three passes must produce byte-identical metric CSVs (the
 * restore-identity contract; the bench exits 1 if they differ), and
 * the warm pass should replay a small fraction of the baseline's
 * detail + warming ops — `reduction` in BENCH_ckpt.json
 * (schema bds-ckpt-v1) is that ratio, which CI gates at >= 2x.
 *
 * Flags on top of the common set (--scale/--seed/--ckpt-dir/...):
 *   --ckpt-workloads a,b   workload subset (default: all 32)
 *   --ckpt-out PATH        artifact path (default BENCH_ckpt.json)
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/context.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/report.h"
#include "metrics/schema.h"
#include "sample/characterizer.h"
#include "workloads/registry.h"
#include "bench_common.h"

namespace {

using namespace bds;

/** Everything one pass over the suite produced. */
struct PassResult
{
    std::string name;
    double seconds = 0.0;
    SampledReplayStats ops{}; ///< summed over the selected workloads
    CkptStats cache{};        ///< process-wide delta for this pass
    std::string csv;          ///< the pass's metric matrix as CSV
};

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
q(const std::string &s)
{
    return '"' + s + '"';
}

/** Run one sampled pass over `selected`, checkpointing or not. */
PassResult
runPass(const std::string &name, const RunConfig &cfg,
        const std::vector<WorkloadId> &selected, bool checkpointing)
{
    PassResult pass;
    pass.name = name;

    // The delta accounting needs a clean slate: ckptStats() is
    // process-wide, and three passes share the process.
    resetCkptStats();

    WorkloadRunner runner = WorkloadRunner::fromRunConfig(cfg);
    SampledCharacterizer sampler(runner, cfg.sampling);
    if (checkpointing) {
        RunConfig pcfg = cfg;
        pcfg.ckpt.enabled = true;
        sampler.setCheckpoints(checkpointContextFor(pcfg));
    }

    std::vector<SampledWorkloadResult> results(selected.size());
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(selected.size(), cfg.parallel, [&](std::size_t i) {
        results[i] = sampler.run(selected[i]);
    });
    pass.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    pass.cache = ckptStats();

    Matrix m(selected.size(), kNumMetrics);
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const SampledWorkloadResult &r = results[i];
        m.setRow(i, std::vector<double>(r.metrics.begin(),
                                        r.metrics.end()));
        pass.ops.totalOps += r.stats.totalOps;
        pass.ops.detailOps += r.stats.detailOps;
        pass.ops.warmOps += r.stats.warmOps;
        pass.ops.skippedOps += r.stats.skippedOps;
        pass.ops.ckptRestores += r.stats.ckptRestores;
        pass.ops.ckptWrites += r.stats.ckptWrites;
    }
    PipelineResult res;
    for (const WorkloadId &id : selected)
        res.names.push_back(id.name());
    res.rawMetrics = m;
    std::ostringstream csv;
    writeMetricsCsv(csv, res);
    pass.csv = csv.str();
    return pass;
}

int
runCkptReplay(int argc, char **argv)
{
    RunConfig cfg;
    cfg.tool = "ckpt_replay";
    cfg.scaleName = "quick";
    cfg.argv.assign(argv, argv + argc);
    cfg.applyEnv();
    std::vector<std::string> args(argv + 1, argv + argc);
    std::vector<std::string> leftovers = cfg.applyArgs(args);

    std::vector<std::string> workload_names;
    std::string out_path = "BENCH_ckpt.json";
    for (auto it = leftovers.begin(); it != leftovers.end();) {
        auto value = [&](const char *flag) {
            it = leftovers.erase(it);
            if (it == leftovers.end())
                BDS_FATAL(flag << " needs a value");
            std::string v = *it;
            it = leftovers.erase(it);
            return v;
        };
        if (*it == "--ckpt-workloads")
            workload_names = splitList(value("--ckpt-workloads"));
        else if (*it == "--ckpt-out")
            out_path = value("--ckpt-out");
        else
            BDS_FATAL("unknown argument '" << *it
                      << "' (see docs/CHECKPOINT.md)");
    }
    // This bench measures the sampled path by definition; the
    // checkpoint switch is managed per pass below.
    cfg.sampling.enabled = true;

    Session session(cfg);

    std::vector<WorkloadId> all = allWorkloads();
    std::vector<WorkloadId> selected;
    if (workload_names.empty())
        selected = all;
    else
        for (const std::string &name : workload_names) {
            auto it = std::find_if(all.begin(), all.end(),
                                   [&](const WorkloadId &id) {
                                       return id.name() == name;
                                   });
            if (it == all.end())
                BDS_FATAL("unknown workload '" << name
                          << "' (names are H-Sort, S-Grep, ...)");
            selected.push_back(*it);
        }

    std::cerr << "[ckpt] 3 passes x " << selected.size()
              << " workloads, scale '" << cfg.scaleName
              << "', cache dir " << cfg.ckpt.dir << "\n";

    std::vector<PassResult> passes;
    passes.push_back(runPass("baseline", cfg, selected, false));
    passes.push_back(runPass("cold", cfg, selected, true));
    passes.push_back(runPass("warm", cfg, selected, true));

    // --- the identity contract: three byte-identical matrices ------
    const bool identical = passes[1].csv == passes[0].csv
        && passes[2].csv == passes[0].csv;

    // --- what the warm rerun saved ----------------------------------
    const double base_work = static_cast<double>(
        passes[0].ops.detailOps + passes[0].ops.warmOps);
    const double warm_work = static_cast<double>(
        passes[2].ops.detailOps + passes[2].ops.warmOps);
    const double reduction =
        base_work / std::max(warm_work, 1.0);

    std::cout << "checkpoint replay — " << selected.size()
              << " workloads (scale '" << cfg.scaleName << "')\n\n";
    TextTable t({"pass", "seconds", "detail ops", "warm ops",
                 "restores", "writes", "cache hits", "fallbacks"});
    for (const PassResult &p : passes)
        t.addRow({p.name, fmtDouble(p.seconds, 3),
                  std::to_string(p.ops.detailOps),
                  std::to_string(p.ops.warmOps),
                  std::to_string(p.ops.ckptRestores),
                  std::to_string(p.ops.ckptWrites),
                  std::to_string(p.cache.hits),
                  std::to_string(p.cache.fallbacks)});
    t.print(std::cout);
    std::cout << "\nmatrices byte-identical: "
              << (identical ? "yes" : "NO") << "\n"
              << "detail+warm op reduction (baseline / warm rerun): "
              << fmtDouble(reduction, 2) << "x\n";

    std::ofstream os(out_path);
    os << std::setprecision(6) << std::fixed;
    os << "{\n"
       << "  \"bench\": \"ckpt_replay\",\n"
       << "  \"schema\": \"bds-ckpt-v1\",\n"
       << "  \"scale\": " << q(cfg.scaleName) << ",\n"
       << "  \"seed\": " << cfg.seed << ",\n"
       << "  \"machine\": " << q(cfg.machineSpec) << ",\n"
       << "  \"ckpt_dir\": " << q(cfg.ckpt.dir) << ",\n"
       << "  \"workloads\": " << selected.size() << ",\n";
    bdsbench::writeEnvironmentJson(os, "  ");
    os << ",\n  \"passes\": [";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const PassResult &p = passes[i];
        os << (i ? ",\n    " : "\n    ") << "{\"name\": " << q(p.name)
           << ", \"seconds\": " << p.seconds
           << ", \"total_ops\": " << p.ops.totalOps
           << ", \"detail_ops\": " << p.ops.detailOps
           << ", \"warm_ops\": " << p.ops.warmOps
           << ", \"skipped_ops\": " << p.ops.skippedOps
           << ", \"ckpt_restores\": " << p.ops.ckptRestores
           << ", \"ckpt_writes\": " << p.ops.ckptWrites
           << ", \"cache\": {\"hits\": " << p.cache.hits
           << ", \"misses\": " << p.cache.misses
           << ", \"writes\": " << p.cache.writes
           << ", \"fallbacks\": " << p.cache.fallbacks
           << ", \"bytes_read\": " << p.cache.bytesRead
           << ", \"bytes_written\": " << p.cache.bytesWritten
           << "}}";
    }
    os << "\n  ],\n"
       << "  \"identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"reduction\": " << reduction << "\n"
       << "}\n";
    session.noteArtifact(out_path);
    std::cout << "\n-> " << out_path << "\n";

    if (!identical) {
        std::cerr << "ckpt_replay: restored replay diverged from "
                     "warm-from-zero — the identity contract is "
                     "broken\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runCkptReplay(argc, argv);
    } catch (const Error &e) {
        std::cerr << "ckpt_replay: " << e.what() << "\n";
        return 1;
    } catch (const FatalError &e) {
        std::cerr << "ckpt_replay: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "ckpt_replay: " << e.what() << "\n";
        return 1;
    }
}
