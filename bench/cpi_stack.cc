/**
 * @file
 * Extension bench: per-workload cycle-accounting breakdown (CPI
 * stack) for the 32 workloads — the frontend-vs-backend stall
 * structure the paper's Section V-C reasons about, one row per
 * workload. Runs at quick scale (independent of the shared cache).
 */

#include <iostream>

#include "core/report.h"
#include "obs/session.h"
#include "workloads/registry.h"
#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace bds;
    Session session(bdsbench::benchConfig("cpi_stack", argc, argv));
    // Pinned to quick scale; machine/seed/recovery still follow the
    // session config.
    RunConfig quickCfg = session.config();
    quickCfg.scaleName = "quick";
    WorkloadRunner runner = WorkloadRunner::fromRunConfig(quickCfg);

    std::cout << "CPI stacks (quick scale) — cycle shares per "
                 "workload\n\n";
    std::vector<std::string> names;
    std::vector<PmcCounters> counters;
    for (const auto &id : allWorkloads()) {
        auto res = runner.run(id);
        names.push_back(id.name());
        counters.push_back(res.counters);
    }
    writeCpiStackReport(std::cout, names, counters);
    std::cout << "\nExpected shape: Hadoop rows lean on fetch stalls "
                 "(frontend), Spark rows\non resource stalls "
                 "(backend) — observation 8.\n";
    return 0;
}
