/**
 * @file
 * The design-space-exploration driver: sweep the machine-preset
 * matrix over the 32-workload suite and measure what the geometry
 * changes — the N-configs × 32-workloads experiment of the paper's
 * tech-report sequel (arXiv:1506.07943), ROADMAP item 4.
 *
 * Default mode is the sampled path: each workload is captured once
 * per distinct core count (record + profile + pick, machine-
 * independent) and the one capture is replayed against every preset
 * geometry — the trace-driven methodology that makes a 14-preset
 * sweep cost little more than one characterization. --dse-full runs
 * full detailed simulation per cell instead.
 *
 * Per preset the driver reports the 45 suite-mean metrics, their
 * relative deltas against the `default` geometry (the sensitivity
 * curves), and — when the full suite ran — which of the paper's
 * findings flip their verdict under that geometry. Everything lands
 * in BENCH_dse.json (schema bds-dse-v1) plus one metrics CSV per
 * preset, named like every other bench cache so reruns are warm.
 *
 * Flags on top of the common set (--scale/--seed/--threads/...):
 *   --dse-presets a,b,c    preset subset (default: whole registry;
 *                          `default` is always included as baseline)
 *   --dse-workloads a,b    workload subset (default: all 32)
 *   --dse-full             full detailed simulation per cell
 *   --dse-out PATH         artifact path (default BENCH_dse.json)
 *
 * The sweep runs under the fault layer: each workload's capture +
 * replays execute inside guardedRun with the session's recovery
 * policy, so an injected fault quarantines one workload row across
 * every preset instead of killing the sweep.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "ckpt/context.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/findings.h"
#include "core/report.h"
#include "fault/recover.h"
#include "metrics/schema.h"
#include "sample/capture.h"
#include "serve/confighash.h"
#include "uarch/machine.h"
#include "workloads/registry.h"
#include "bench_common.h"

namespace {

using namespace bds;

/** One (preset, workload) cell of the sweep. */
struct Cell
{
    MetricVector metrics{};
    SampledReplayStats stats{};
    std::size_t intervals = 0;
    std::size_t k = 0;
    std::size_t reps = 0;
    double seconds = 0.0;
};

/** Everything the sweep produced for one preset. */
struct PresetResult
{
    const MachinePreset *preset = nullptr;
    bool cached = false;     ///< metrics came from a warm CSV cache
    double seconds = 0.0;    ///< wall-clock of this preset's column
    Matrix metrics;          ///< survivors x 45
    std::vector<Cell> cells; ///< per selected workload (when computed)
    std::vector<Finding> findings;
    std::vector<std::string> flips; ///< finding ids flipped vs default
};

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
q(const std::string &s)
{
    return '"' + s + '"';
}

/** Suite mean of every metric column over the surviving rows. */
std::vector<double>
suiteMean(const Matrix &m)
{
    std::vector<double> mean(m.cols(), 0.0);
    if (m.rows() == 0)
        return mean;
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            mean[c] += m.at(r, c);
    for (double &v : mean)
        v /= static_cast<double>(m.rows());
    return mean;
}

int
runDse(int argc, char **argv)
{
    // Common knobs via the examples' leftover-args pattern: the DSE
    // flags below are not RunConfig's business.
    RunConfig cfg;
    cfg.tool = "dse_sweep";
    cfg.scaleName = "quick"; // N x 32 cells: quick is the sane default
    cfg.argv.assign(argv, argv + argc);
    cfg.applyEnv();
    std::vector<std::string> args(argv + 1, argv + argc);
    std::vector<std::string> leftovers = cfg.applyArgs(args);

    std::vector<std::string> preset_names;
    std::vector<std::string> workload_names;
    bool full_mode = false;
    std::string out_path = "BENCH_dse.json";
    for (auto it = leftovers.begin(); it != leftovers.end();) {
        auto value = [&](const char *flag) {
            it = leftovers.erase(it);
            if (it == leftovers.end())
                BDS_FATAL(flag << " needs a value");
            std::string v = *it;
            it = leftovers.erase(it);
            return v;
        };
        if (*it == "--dse-presets")
            preset_names = splitList(value("--dse-presets"));
        else if (*it == "--dse-workloads")
            workload_names = splitList(value("--dse-workloads"));
        else if (*it == "--dse-out")
            out_path = value("--dse-out");
        else if (*it == "--dse-full") {
            full_mode = true;
            it = leftovers.erase(it);
        } else {
            BDS_FATAL("unknown argument '" << *it
                      << "' (see docs/DSE.md)");
        }
    }
    // The DSE default is the sampled path; --dse-full overrides even
    // an inherited BDS_SAMPLE=1.
    cfg.sampling.enabled = !full_mode;

    Session session(cfg);

    // --- resolve the preset selection (baseline always first) -------
    std::vector<const MachinePreset *> presets;
    if (preset_names.empty())
        for (const MachinePreset &p : machinePresets())
            presets.push_back(&p);
    else {
        if (std::find(preset_names.begin(), preset_names.end(),
                      "default") == preset_names.end())
            preset_names.insert(preset_names.begin(), "default");
        for (const std::string &name : preset_names) {
            const MachinePreset *p = findMachinePreset(name);
            if (!p)
                BDS_FATAL("unknown machine preset '" << name
                          << "' (see table3_config for the registry)");
            presets.push_back(p);
        }
    }

    // --- resolve the workload selection ------------------------------
    std::vector<WorkloadId> all = allWorkloads();
    std::vector<WorkloadId> selected;
    if (workload_names.empty())
        selected = all;
    else
        for (const std::string &name : workload_names) {
            auto it = std::find_if(all.begin(), all.end(),
                                   [&](const WorkloadId &id) {
                                       return id.name() == name;
                                   });
            if (it == all.end())
                BDS_FATAL("unknown workload '" << name
                          << "' (names are H-Sort, S-Grep, ...)");
            selected.push_back(*it);
        }
    const bool full_suite = selected.size() == all.size();

    std::cerr << "[dse] " << presets.size() << " presets x "
              << selected.size() << " workloads, scale '"
              << cfg.scaleName << "', "
              << (full_mode ? "full detailed" : "sampled replay")
              << " cells\n";

    // --- warm CSV caches (full suite only: the cache format is the
    // 32-row matrix every bench shares) ------------------------------
    std::vector<PresetResult> results(presets.size());
    std::vector<std::string> names;
    for (std::size_t p = 0; p < presets.size(); ++p) {
        results[p].preset = presets[p];
        if (!full_suite)
            continue;
        RunConfig pcfg = cfg;
        pcfg.machineSpec = presets[p]->name;
        std::vector<std::string> cached_names;
        Matrix m;
        if (bdsbench::loadMetricsCsv(bdsbench::metricsCachePath(pcfg),
                                     cached_names, m)) {
            results[p].cached = true;
            results[p].metrics = m;
            names = cached_names;
        }
    }

    // --- per-preset checkpoint contexts (--ckpt/--ckpt-dir). The
    // checkpoint key hashes the canonical geometry text, not the
    // preset name, so geometry-compatible presets (and warm reruns of
    // the same sweep) share one checkpoint stream in the common dir.
    std::vector<CheckpointContext> ckpts(presets.size());
    if (cfg.ckpt.enabled && !full_mode)
        for (std::size_t p = 0; p < presets.size(); ++p) {
            RunConfig pcfg = cfg;
            pcfg.machineSpec = presets[p]->name;
            ckpts[p] = checkpointContextFor(pcfg);
        }

    // --- group the uncached presets by core count: one capture per
    // (workload, core count), replayed across the group --------------
    std::map<unsigned, std::vector<std::size_t>> groups;
    for (std::size_t p = 0; p < presets.size(); ++p)
        if (!results[p].cached)
            groups[presets[p]->config.numCores].push_back(p);

    std::vector<std::vector<Cell>> cells(
        presets.size(), std::vector<Cell>(selected.size()));
    std::vector<RunRecord> records(selected.size());
    if (!groups.empty()) {
        // One runner per core-count group; the capture only reads the
        // geometry's core count, so the group leader's config serves
        // every preset in the group.
        std::map<unsigned, WorkloadRunner> runners;
        for (const auto &[cores, members] : groups) {
            WorkloadRunner r(presets[members.front()]->config,
                             ScaleProfile::byName(cfg.scaleName),
                             cfg.seed);
            runners.emplace(cores, std::move(r));
        }

        auto t0 = std::chrono::steady_clock::now();
        parallelFor(selected.size(), cfg.parallel, [&](std::size_t i) {
            const WorkloadId id = selected[i];
            records[i] = guardedRun(
                id.name(), cfg.fault.recovery,
                [&](const AttemptContext &) {
                    // Same injection sites as the sweep layers this
                    // driver bypasses (SampledCharacterizer::run),
                    // so the CI fault matrix exercises DSE cells too;
                    // corruption injection lives inside replayCapture.
                    FaultInjector::global().maybeThrow(id.name());
                    FaultInjector::global().maybeStall(id.name());
                    for (const auto &[cores, members] : groups) {
                        const WorkloadRunner &runner =
                            runners.at(cores);
                        WorkloadCapture cap;
                        if (!full_mode)
                            cap = captureWorkload(runner,
                                                  cfg.sampling, id, 0);
                        for (std::size_t p : members) {
                            auto c0 =
                                std::chrono::steady_clock::now();
                            Cell &cell = cells[p][i];
                            if (full_mode) {
                                WorkloadRunner detailed(
                                    presets[p]->config,
                                    ScaleProfile::byName(
                                        cfg.scaleName),
                                    cfg.seed);
                                cell.metrics =
                                    detailed.run(id).metrics;
                            } else {
                                SampledWorkloadResult r =
                                    replayCapture(
                                        cap, presets[p]->config,
                                        cfg.sampling,
                                        ckpts[p].enabled()
                                            ? &ckpts[p]
                                            : nullptr);
                                cell.metrics = r.metrics;
                                cell.stats = r.stats;
                                cell.intervals = r.numIntervals;
                                cell.k = r.k;
                                cell.reps = r.numReps;
                            }
                            cell.seconds =
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::now()
                                    - c0).count();
                        }
                    }
                });
        });
        double sweep_seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        std::cerr << "[dse] swept "
                  << groups.size() << " core-count group(s) in "
                  << sweep_seconds << " s\n";
    }

    // --- settle failures in workload order (runAll's contract) ------
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        if (groups.empty() || runStatusOk(records[i].status)) {
            survivors.push_back(i);
            continue;
        }
        if (cfg.fault.recovery.policy == FailPolicy::FailFast)
            BDS_RAISE(records[i].code,
                      "workload " << selected[i].name()
                      << " failed in the DSE sweep: "
                      << records[i].message);
        records[i].status = RunStatus::Quarantined;
        std::cerr << "[dse] quarantined " << selected[i].name()
                  << " (" << records[i].message << ")\n";
    }
    if (names.empty())
        for (std::size_t i : survivors)
            names.push_back(selected[i].name());

    // --- assemble per-preset matrices, write caches -----------------
    for (std::size_t p = 0; p < presets.size(); ++p) {
        PresetResult &res = results[p];
        if (res.cached)
            continue;
        Matrix m(survivors.size(), kNumMetrics);
        double seconds = 0.0;
        for (std::size_t r = 0; r < survivors.size(); ++r) {
            const Cell &cell = cells[p][survivors[r]];
            m.setRow(r, std::vector<double>(cell.metrics.begin(),
                                            cell.metrics.end()));
            seconds += cell.seconds;
        }
        res.metrics = m;
        res.seconds = seconds;
        res.cells = cells[p];
        if (full_suite && survivors.size() == all.size()) {
            RunConfig pcfg = cfg;
            pcfg.machineSpec = presets[p]->name;
            PipelineResult tmp;
            tmp.names = names;
            tmp.rawMetrics = m;
            std::string cache = bdsbench::metricsCachePath(pcfg);
            std::ofstream out(cache);
            writeMetricsCsv(out, tmp);
            session.noteArtifact(cache);
        }
    }

    // --- sensitivity curves vs the default baseline. The delta is
    // symmetric-relative — divided by the larger magnitude of the two
    // means — so it stays in [-1, 1] even for metrics whose baseline
    // is (near) zero, e.g. a miss ratio a bigger cache drives to 0.
    const std::vector<double> base_mean =
        suiteMean(results.front().metrics);
    std::vector<std::vector<double>> means(presets.size());
    std::vector<std::vector<double>> deltas(presets.size());
    for (std::size_t p = 0; p < presets.size(); ++p) {
        means[p] = suiteMean(results[p].metrics);
        deltas[p].resize(means[p].size());
        for (std::size_t j = 0; j < means[p].size(); ++j) {
            double denom = std::max(
                {std::abs(base_mean[j]), std::abs(means[p][j]),
                 1e-9});
            deltas[p][j] = (means[p][j] - base_mean[j]) / denom;
        }
    }

    // --- findings per preset (full suite only: the encoded claims
    // assume the paper's 32 rows) ------------------------------------
    const bool evaluate_findings =
        full_suite && survivors.size() == all.size();
    if (evaluate_findings) {
        PipelineOptions popts = pipelineOptionsFor(cfg);
        for (std::size_t p = 0; p < presets.size(); ++p) {
            popts.machine = presets[p]->config;
            results[p].findings = evaluatePaperFindings(
                runPipeline(results[p].metrics, names, popts));
        }
        const std::vector<Finding> &base = results.front().findings;
        for (std::size_t p = 1; p < presets.size(); ++p)
            for (std::size_t f = 0; f < base.size(); ++f)
                if (results[p].findings[f].pass != base[f].pass)
                    results[p].flips.push_back(base[f].id);
    }

    // --- human-readable report --------------------------------------
    std::cout << "DSE sweep — " << presets.size() << " machine presets"
              << " x " << survivors.size() << " workloads (scale '"
              << cfg.scaleName << "', "
              << (full_mode ? "full detailed" : "sampled replay")
              << ")\n\n";
    TextTable t({"preset", "machine", "source", "mean |rel delta|",
                 "findings flipped"});
    for (std::size_t p = 0; p < presets.size(); ++p) {
        double mad = 0.0;
        for (double d : deltas[p])
            mad += std::abs(d);
        mad /= deltas[p].empty() ? 1.0
                                 : static_cast<double>(deltas[p].size());
        std::string flips = "-";
        if (evaluate_findings) {
            flips = std::to_string(results[p].flips.size());
            if (!results[p].flips.empty()) {
                flips += " (";
                for (std::size_t f = 0; f < results[p].flips.size();
                     ++f)
                    flips += (f ? ", " : "") + results[p].flips[f];
                flips += ")";
            }
        }
        t.addRow({presets[p]->name,
                  describeMachine(presets[p]->config),
                  results[p].cached ? "cache" : "swept",
                  fmtDouble(mad, 4), flips});
    }
    t.print(std::cout);

    if (evaluate_findings) {
        std::cout << "\nfindings-flip table (pass/FAIL per preset; "
                     "baseline = default)\n";
        // Column per non-default preset that flips anything.
        std::vector<std::size_t> flip_cols;
        for (std::size_t p = 1; p < presets.size(); ++p)
            if (!results[p].flips.empty())
                flip_cols.push_back(p);
        std::vector<std::string> header{"finding", "default"};
        for (std::size_t p : flip_cols)
            header.push_back(presets[p]->name);
        TextTable flip_table(header);
        const std::vector<Finding> &base = results.front().findings;
        for (std::size_t f = 0; f < base.size(); ++f) {
            bool any = false;
            for (std::size_t p : flip_cols)
                if (results[p].findings[f].pass != base[f].pass)
                    any = true;
            if (!any)
                continue;
            std::vector<std::string> row{
                base[f].id, base[f].pass ? "pass" : "FAIL"};
            for (std::size_t p : flip_cols)
                row.push_back(results[p].findings[f].pass ? "pass"
                                                          : "FAIL");
            flip_table.addRow(row);
        }
        if (flip_table.rows() == 0)
            std::cout << "  (no finding flips under any swept "
                         "geometry)\n";
        else
            flip_table.print(std::cout);
    }

    // --- machine-readable artifact ----------------------------------
    std::ofstream os(out_path);
    os << std::setprecision(6) << std::fixed;
    os << "{\n"
       << "  \"bench\": \"dse_sweep\",\n"
       << "  \"schema\": \"bds-dse-v1\",\n"
       << "  \"scale\": " << q(cfg.scaleName) << ",\n"
       << "  \"seed\": " << cfg.seed << ",\n"
       << "  \"sampled\": " << (full_mode ? "false" : "true") << ",\n";
    bdsbench::writeEnvironmentJson(os, "  ");
    os << ",\n  \"workloads\": [";
    for (std::size_t i = 0; i < names.size(); ++i)
        os << (i ? ", " : "") << q(names[i]);
    os << "],\n  \"metric_names\": [";
    for (std::size_t j = 0; j < kNumMetrics; ++j)
        os << (j ? ", " : "") << q(metricName(j));
    os << "],\n  \"presets\": [";
    for (std::size_t p = 0; p < presets.size(); ++p) {
        RunConfig pcfg = cfg;
        pcfg.machineSpec = presets[p]->name;
        os << (p ? ",\n    " : "\n    ") << "{\n"
           << "      \"name\": " << q(presets[p]->name) << ",\n"
           << "      \"summary\": " << q(presets[p]->summary) << ",\n"
           << "      \"geometry\": "
           << q(canonicalMachineText(presets[p]->config)) << ",\n"
           << "      \"config_hash\": " << q(runConfigHashHex(pcfg))
           << ",\n"
           << "      \"cores\": " << presets[p]->config.numCores
           << ",\n"
           << "      \"cached\": "
           << (results[p].cached ? "true" : "false") << ",\n"
           << "      \"seconds\": " << results[p].seconds << ",\n"
           << "      \"suite_mean\": [";
        for (std::size_t j = 0; j < means[p].size(); ++j)
            os << (j ? ", " : "") << means[p][j];
        os << "],\n      \"rel_delta_vs_default\": [";
        for (std::size_t j = 0; j < deltas[p].size(); ++j)
            os << (j ? ", " : "") << deltas[p][j];
        os << "],\n      \"findings\": {\"evaluated\": "
           << (evaluate_findings ? "true" : "false") << ", \"total\": "
           << results[p].findings.size() << ", \"passed\": ";
        std::size_t passed = 0;
        for (const Finding &f : results[p].findings)
            passed += f.pass ? 1 : 0;
        os << passed << ", \"flipped_vs_default\": [";
        for (std::size_t f = 0; f < results[p].flips.size(); ++f)
            os << (f ? ", " : "") << q(results[p].flips[f]);
        os << "]},\n      \"cells\": [";
        bool first = true;
        if (!results[p].cached)
            for (std::size_t i : survivors) {
                const Cell &cell = results[p].cells[i];
                os << (first ? "\n        " : ",\n        ")
                   << "{\"name\": " << q(selected[i].name())
                   << ", \"status\": "
                   << q(runStatusName(records[i].status))
                   << ", \"attempts\": " << records[i].attempts
                   << ", \"seconds\": " << cell.seconds
                   << ", \"total_ops\": " << cell.stats.totalOps
                   << ", \"detail_ops\": " << cell.stats.detailOps
                   << ", \"intervals\": " << cell.intervals
                   << ", \"k\": " << cell.k
                   << ", \"reps\": " << cell.reps
                   << ", \"ckpt_restores\": "
                   << cell.stats.ckptRestores
                   << ", \"ckpt_writes\": " << cell.stats.ckptWrites
                   << "}";
                first = false;
            }
        os << (first ? "]" : "\n      ]") << "\n    }";
    }
    os << "\n  ]\n}\n";
    session.noteArtifact(out_path);
    std::cout << "\n-> " << out_path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runDse(argc, argv);
    } catch (const Error &e) {
        // A settled fail-fast failure or a typed config error: exit
        // nonzero with the cause, like every sweep layer.
        std::cerr << "dse_sweep: " << e.what() << "\n";
        return 1;
    } catch (const FatalError &e) {
        std::cerr << "dse_sweep: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "dse_sweep: " << e.what() << "\n";
        return 1;
    }
}
