/**
 * @file
 * Figure 1 reproduction: similarity dendrogram of the 32 workloads
 * (single-linkage over the Kaiser-retained PC scores), plus the
 * Section V-A observations.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("fig1_dendrogram", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    bds::writeDendrogramReport(std::cout, res);
    std::cout << '\n';
    bds::writeSimilarityObservations(std::cout, res);
    std::cout << "\nscipy linkage matrix (plot with "
                 "scipy.cluster.hierarchy.dendrogram):\n";
    bds::writeLinkageCsv(std::cout, res);
    return 0;
}
