/**
 * @file
 * Figure 2 reproduction: the workloads projected onto PC1/PC2, with
 * the per-stack spread summary (Spark spreads wider; PC2 separates
 * the stacks).
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("fig2_pc12_scatter", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    bds::writePcaSummary(std::cout, res);
    std::cout << "\nFigure 2 — PC1/PC2 scatter\n";
    bds::writeScatterReport(std::cout, res, 0, 1);
    return 0;
}
