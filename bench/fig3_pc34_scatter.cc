/**
 * @file
 * Figure 3 reproduction: the workloads projected onto PC3/PC4.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("fig3_pc34_scatter", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    if (res.pca.numComponents < 4) {
        std::cout << "fewer than four PCs retained; nothing to plot\n";
        return 0;
    }
    std::cout << "Figure 3 — PC3/PC4 scatter\n";
    bds::writeScatterReport(std::cout, res, 2, 3);
    return 0;
}
