/**
 * @file
 * Figure 4 reproduction: factor loadings of the first four principal
 * components over the 45 Table II metrics.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("fig4_factor_loadings", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    bds::writePcaSummary(std::cout, res);
    std::cout << "\nFigure 4 — factor loadings (CSV)\n";
    bds::writeLoadingsReport(std::cout, res, 4);
    return 0;
}
