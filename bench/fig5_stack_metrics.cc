/**
 * @file
 * Figure 5 reproduction: the metrics dominating the stack-separating
 * PC and the Hadoop/Spark mean ratios (observations 6-9).
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("fig5_stack_metrics", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    std::cout << "Figure 5 — metrics causing Hadoop and Spark to "
                 "behave differently\n\n";
    bds::writeStackDifferentiationReport(std::cout, res);
    return 0;
}
