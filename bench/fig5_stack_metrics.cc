/**
 * @file
 * Figure 5 reproduction: the metrics dominating the stack-separating
 * PC and the Hadoop/Spark mean ratios (observations 6-9).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    auto res = bdsbench::characterizedPipeline();
    std::cout << "Figure 5 — metrics causing Hadoop and Spark to "
                 "behave differently\n\n";
    bds::writeStackDifferentiationReport(std::cout, res);
    return 0;
}
