/**
 * @file
 * Figure 6 reproduction: Kiviat diagrams (retained PC scores) of the
 * representative workloads selected by the boundary strategy.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("fig6_kiviat", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    // The paper selects seven representatives; use its K for the
    // Kiviat view (the BIC-selected clustering is in table4's bench).
    bds::writeKiviatReport(std::cout, res, 7);
    return 0;
}
