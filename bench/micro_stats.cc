/**
 * @file
 * Google-benchmark microbenchmarks for the statistics substrate:
 * eigendecomposition, PCA, hierarchical clustering, K-means, and the
 * BIC sweep at paper-relevant sizes (32 workloads x 45 metrics).
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "stats/bic.h"
#include "stats/eigen.h"
#include "stats/hcluster.h"
#include "stats/normalize.h"
#include "stats/pca.h"
#include "stats/silhouette.h"

#include "obs/session.h"

namespace {

bds::Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    bds::Pcg32 rng(seed);
    bds::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.nextGaussian() * (1.0 + (c % 5));
    return m;
}

void
BM_EigenSymmetric(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    bds::Matrix data = randomMatrix(4 * n, n, 1);
    bds::Matrix cov = bds::covariance(bds::zscore(data).normalized);
    for (auto _ : state) {
        auto res = bds::eigenSymmetric(cov);
        benchmark::DoNotOptimize(res.values.data());
    }
}
BENCHMARK(BM_EigenSymmetric)->Arg(8)->Arg(16)->Arg(45)->Arg(64);

void
BM_PcaFull(benchmark::State &state)
{
    std::size_t metrics = static_cast<std::size_t>(state.range(0));
    bds::Matrix data = randomMatrix(32, metrics, 2);
    for (auto _ : state) {
        auto z = bds::zscore(data);
        auto res = bds::pca(z.normalized);
        benchmark::DoNotOptimize(res.scores.data().data());
    }
}
BENCHMARK(BM_PcaFull)->Arg(8)->Arg(45);

void
BM_HierarchicalCluster(benchmark::State &state)
{
    std::size_t rows = static_cast<std::size_t>(state.range(0));
    bds::Matrix data = randomMatrix(rows, 8, 3);
    for (auto _ : state) {
        auto dg = bds::hierarchicalCluster(data, bds::Linkage::Single);
        benchmark::DoNotOptimize(dg.merges().data());
    }
}
BENCHMARK(BM_HierarchicalCluster)->Arg(32)->Arg(64)->Arg(128);

void
BM_KMeans(benchmark::State &state)
{
    std::size_t k = static_cast<std::size_t>(state.range(0));
    bds::Matrix data = randomMatrix(32, 8, 4);
    for (auto _ : state) {
        bds::Pcg32 rng(5);
        auto res = bds::kMeans(data, k, rng);
        benchmark::DoNotOptimize(res.labels.data());
    }
}
BENCHMARK(BM_KMeans)->Arg(2)->Arg(7)->Arg(15);

void
BM_BicSweep(benchmark::State &state)
{
    bds::Matrix data = randomMatrix(32, 8, 6);
    for (auto _ : state) {
        bds::Pcg32 rng(7);
        auto sweep = bds::sweepBic(data, 2, 15, rng);
        benchmark::DoNotOptimize(sweep.bestIndex);
    }
}
BENCHMARK(BM_BicSweep);

void
BM_Silhouette(benchmark::State &state)
{
    bds::Matrix data = randomMatrix(32, 8, 8);
    bds::Pcg32 rng(9);
    auto km = bds::kMeans(data, 7, rng);
    for (auto _ : state) {
        double s = bds::silhouetteScore(data, km.labels);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_Silhouette);

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark owns the command line, so RunConfig reads the
    // BDS_* environment only (tracing, manifest) and --benchmark_*
    // flags pass through untouched.
    bds::Session session(bds::RunConfig::resolve("micro_stats"));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
