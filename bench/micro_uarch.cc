/**
 * @file
 * Google-benchmark microbenchmarks for the microarchitecture
 * substrate: cache/TLB/branch component throughput and end-to-end
 * SystemModel op-consumption rates (the simulator's key cost).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common/rng.h"
#include "trace/runtime.h"
#include "uarch/machine.h"
#include "uarch/system.h"

#include "obs/session.h"

namespace {

/**
 * The machine the end-to-end BM_System* loops simulate. google-
 * benchmark owns argv, so the geometry comes from BDS_MACHINE alone;
 * unset means the Table III sim default, same registry as every bench.
 */
const bds::NodeConfig &
simMachine()
{
    static const bds::NodeConfig machine = [] {
        const char *spec = std::getenv("BDS_MACHINE");
        return bds::resolveMachineSpec(spec ? spec : "default");
    }();
    return machine;
}

void
BM_CacheAccess(benchmark::State &state)
{
    bds::SetAssocCache cache(bds::CacheConfig{
        static_cast<std::uint64_t>(state.range(0)), 8, 64});
    bds::Pcg32 rng(1);
    std::uint64_t footprint = 4ULL * state.range(0);
    for (auto _ : state) {
        std::uint64_t addr = rng.next64() % footprint;
        auto look = cache.access(addr);
        if (!look.hit)
            cache.insert(addr, bds::CoherenceState::Exclusive);
        benchmark::DoNotOptimize(look.hit);
    }
}
BENCHMARK(BM_CacheAccess)->Arg(32 * 1024)->Arg(256 * 1024)
    ->Arg(12 * 1024 * 1024);

void
BM_TlbTranslate(benchmark::State &state)
{
    bds::TwoLevelTlb tlb(bds::TlbConfig{64, 4}, bds::TlbConfig{64, 4},
                         bds::TlbConfig{512, 4}, 4096);
    bds::Pcg32 rng(2);
    std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        auto out = tlb.translateData((rng.next64() % pages) * 4096);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_TlbTranslate)->Arg(32)->Arg(256)->Arg(4096);

void
BM_BranchPredict(benchmark::State &state)
{
    bds::GshareBranchPredictor bp(12);
    bds::Pcg32 rng(3);
    for (auto _ : state) {
        bool ok = bp.predictAndTrain(0x400000 + (rng.next() % 256) * 4,
                                     rng.nextDouble() < 0.7);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_BranchPredict);

/** End-to-end op throughput: sequential scan workload. */
void
BM_SystemScan(benchmark::State &state)
{
    bds::SystemModel sys(simMachine());
    bds::AddressSpace space;
    bds::CodeImage user(space, bds::Region::UserCode);
    auto fn = user.defineFunction(256);
    bds::ExecContext ctx(sys, 0, fn);
    std::uint64_t buf = space.allocate(bds::Region::Heap, 64ULL << 20);
    std::uint64_t off = 0;
    for (auto _ : state) {
        ctx.load(buf + off);
        off = (off + 64) % (64ULL << 20);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemScan);

/** End-to-end op throughput: pointer-chase workload. */
void
BM_SystemChase(benchmark::State &state)
{
    bds::SystemModel sys(simMachine());
    bds::AddressSpace space;
    bds::CodeImage user(space, bds::Region::UserCode);
    auto fn = user.defineFunction(256);
    bds::ExecContext ctx(sys, 0, fn);
    std::uint64_t buf = space.allocate(bds::Region::Heap, 64ULL << 20);
    bds::Pcg32 rng(4);
    for (auto _ : state) {
        ctx.loadDependent(buf + (rng.next64() % (64ULL << 20)) / 64 * 64);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemChase);

/** Mixed instruction stream through the full frontend + backend. */
void
BM_SystemMixedOps(benchmark::State &state)
{
    bds::SystemModel sys(simMachine());
    bds::AddressSpace space;
    bds::CodeImage user(space, bds::Region::UserCode);
    std::vector<bds::FunctionDesc> fns;
    for (int i = 0; i < 64; ++i)
        fns.push_back(user.defineFunction(256));
    bds::ExecContext ctx(sys, 0, fns[0]);
    std::uint64_t buf = space.allocate(bds::Region::Heap, 1ULL << 20);
    bds::Pcg32 rng(5);
    for (auto _ : state) {
        ctx.call(fns[rng.next() % fns.size()]);
        ctx.load(buf + (rng.next() % (1u << 20)) / 8 * 8);
        ctx.intOps(2);
        ctx.branch(rng.nextDouble() < 0.6);
        ctx.store(buf + (rng.next() % (1u << 20)) / 8 * 8);
        ctx.ret();
    }
    state.SetItemsProcessed(state.iterations() * 7);
}
BENCHMARK(BM_SystemMixedOps);

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark owns the command line, so RunConfig reads the
    // BDS_* environment only (tracing, manifest) and --benchmark_*
    // flags pass through untouched.
    bds::Session session(bds::RunConfig::resolve("micro_uarch"));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
