/**
 * @file
 * obs_check — validate run-observability artifacts.
 *
 * CI runs a traced characterize_suite and then this checker over the
 * manifest and trace it produced:
 *
 *   obs_check --manifest characterize_suite.manifest.json \
 *             --trace characterize_suite.trace.jsonl \
 *             --require-span workload.run:32 \
 *             --require-span bic.k:14
 *
 * The CI fault-injection matrix adds the failure-record assertions:
 *
 *   obs_check --manifest quarantine.manifest.json \
 *             --require-failure-record \
 *             --require-counter fault.quarantined:3
 *
 * Names ending in '*' are prefix wildcards summed over every
 * matching span/counter, so a whole family is one assertion:
 *
 *   obs_check --trace serve.trace.jsonl --require-counter 'serve.*:4'
 *
 * Exits 0 when every given artifact is structurally valid and every
 * --require-span NAME:MINCOUNT / --require-counter NAME:MINTOTAL is
 * satisfied by the trace, and (with --require-failure-record) the
 * manifest holds at least one grammar-valid failure record. Prints
 * each violation to stderr and exits 1 otherwise. See
 * docs/OBSERVABILITY.md for the event grammar and docs/ROBUSTNESS.md
 * for the failure-record grammar.
 */

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "obs/check.h"
#include "obs/manifest.h"
#include "obs/runconfig.h"

namespace {

struct SpanRequirement
{
    std::string name;
    std::uint64_t minCount = 1;
};

/** Parse "NAME:MINCOUNT" (the count defaults to 1). */
SpanRequirement
parseRequirement(const char *flag, const std::string &arg)
{
    SpanRequirement req;
    std::string::size_type colon = arg.rfind(':');
    if (colon == std::string::npos) {
        req.name = arg;
        return req;
    }
    req.name = arg.substr(0, colon);
    req.minCount = bds::detail::parseUint(
        std::string(flag) + " count", arg.substr(colon + 1));
    if (req.name.empty())
        BDS_FATAL(flag << " needs a name, got '" << arg << "'");
    return req;
}

/**
 * Total of `name` in a trace tally, where a trailing '*' makes the
 * name a prefix wildcard summed over every match.
 */
template <typename Count>
std::uint64_t
tallyTotal(const std::map<std::string, Count> &tally,
           const std::string &name)
{
    if (name.empty() || name.back() != '*') {
        auto it = tally.find(name);
        return it == tally.end() ? 0 : it->second;
    }
    const std::string prefix = name.substr(0, name.size() - 1);
    std::uint64_t total = 0;
    for (const auto &kv : tally)
        if (kv.first.compare(0, prefix.size(), prefix) == 0)
            total += kv.second;
    return total;
}

void
usage(std::ostream &os)
{
    os << "usage: obs_check [--manifest FILE] [--trace FILE]\n"
          "                 [--require-span NAME[:MINCOUNT]]...\n"
          "                 [--require-counter NAME[:MINTOTAL]]...\n"
          "                 [--require-failure-record]\n"
          "\n"
          "Validates a bds run manifest and/or JSON-lines trace.\n"
          "--require-span asserts the trace holds at least MINCOUNT\n"
          "completed spans of NAME (default 1); --require-counter\n"
          "asserts counter NAME totals at least MINTOTAL (default 1).\n"
          "--require-failure-record asserts the manifest records at\n"
          "least one workload failure (grammar-checked: status enum,\n"
          "attempt counts, quarantine list). A NAME ending in '*' is\n"
          "a prefix wildcard summed over every matching span/counter\n"
          "(e.g. --require-counter 'serve.*:4'). Exit 0 = all valid.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifest_path, trace_path;
    std::vector<SpanRequirement> requirements;
    std::vector<SpanRequirement> counter_requirements;
    bool require_failure_record = false;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size())
                BDS_FATAL(flag << " needs a value");
            return args[++i];
        };
        if (args[i] == "--help" || args[i] == "-h") {
            usage(std::cout);
            return 0;
        } else if (args[i] == "--manifest") {
            manifest_path = value("--manifest");
        } else if (args[i] == "--trace") {
            trace_path = value("--trace");
        } else if (args[i] == "--require-span") {
            requirements.push_back(parseRequirement(
                "--require-span", value("--require-span")));
        } else if (args[i] == "--require-counter") {
            counter_requirements.push_back(parseRequirement(
                "--require-counter", value("--require-counter")));
        } else if (args[i] == "--require-failure-record") {
            require_failure_record = true;
        } else {
            std::cerr << "obs_check: unknown argument '" << args[i]
                      << "'\n";
            usage(std::cerr);
            return 1;
        }
    }
    if (manifest_path.empty() && trace_path.empty()) {
        usage(std::cerr);
        return 1;
    }
    if (!requirements.empty() && trace_path.empty())
        BDS_FATAL("--require-span needs --trace");
    if (!counter_requirements.empty() && trace_path.empty())
        BDS_FATAL("--require-counter needs --trace");
    if (require_failure_record && manifest_path.empty())
        BDS_FATAL("--require-failure-record needs --manifest");

    std::size_t violations = 0;
    auto report = [&](const std::string &what,
                      const std::vector<std::string> &errors) {
        if (errors.empty()) {
            std::cerr << "[obs_check] " << what << ": OK\n";
            return;
        }
        for (const std::string &e : errors)
            std::cerr << "[obs_check] " << what << ": " << e << "\n";
        violations += errors.size();
    };

    if (!manifest_path.empty()) {
        std::vector<std::string> errors =
            bds::checkManifestFile(manifest_path);
        if (require_failure_record && errors.empty()) {
            bds::RunManifest m =
                bds::readRunManifestFile(manifest_path);
            if (m.failures.empty())
                errors.push_back(
                    "expected at least one failure record");
        }
        report("manifest " + manifest_path, errors);
    }

    if (!trace_path.empty()) {
        bds::TraceCheckResult res = bds::checkTraceFile(trace_path);
        std::vector<std::string> errors = res.errors;
        for (const SpanRequirement &req : requirements) {
            std::uint64_t have = tallyTotal(res.spanCounts, req.name);
            if (have < req.minCount)
                errors.push_back("span '" + req.name + "': have "
                                 + std::to_string(have) + ", need >= "
                                 + std::to_string(req.minCount));
        }
        for (const SpanRequirement &req : counter_requirements) {
            std::uint64_t have =
                tallyTotal(res.counterTotals, req.name);
            if (have < req.minCount)
                errors.push_back("counter '" + req.name + "': have "
                                 + std::to_string(have) + ", need >= "
                                 + std::to_string(req.minCount));
        }
        report("trace " + trace_path + " ("
               + std::to_string(res.events) + " events)", errors);
    }

    return violations == 0 ? 0 : 1;
}
