/**
 * @file
 * The reproduction scorecard: every encoded paper claim checked
 * against the characterization run, one PASS/FAIL row each.
 *
 * Also records the parallel-execution baseline: the 32-workload
 * sweep is timed serially (threads = 1) and in parallel (BDS_THREADS
 * or all cores) at quick scale, and the wall-clock report is written
 * to BENCH_parallel_runall.json so the perf trajectory of the
 * execution engine is tracked across PRs.
 */

#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/findings.h"
#include "sample/estimate.h"
#include "bench_common.h"

namespace {

/** One timed runAll() sweep at the given thread count. */
bds::SweepTiming
timedSweep(const bds::NodeConfig &machine,
           const bds::ScaleProfile &scale, std::uint64_t seed,
           unsigned threads)
{
    bds::WorkloadRunner runner(machine, scale, seed);
    runner.setParallel(bds::ParallelOptions{threads});
    bds::SweepTiming timing;
    runner.runAll(nullptr, &timing);
    return timing;
}

/** Emit one {"threads": ..., "total_seconds": ..., ...} object. */
void
writeTimingJson(std::ostream &os, const char *key,
                const bds::SweepTiming &t, const char *indent)
{
    auto ids = bds::allWorkloads();
    os << indent << '"' << key << "\": {\n"
       << indent << "  \"threads\": " << t.threads << ",\n"
       << indent << "  \"total_seconds\": " << t.totalSeconds << ",\n"
       << indent << "  \"per_workload_seconds\": {";
    for (std::size_t i = 0; i < ids.size(); ++i)
        os << (i ? ", " : "") << '"' << ids[i].name() << "\": "
           << t.perWorkloadSeconds[i];
    os << "}\n" << indent << "}";
}

/** Time serial vs parallel runAll() and write the JSON baseline. */
void
recordParallelBaseline(bds::Session &session)
{
    const bds::RunConfig &cfg = session.config();
    const std::uint64_t seed = cfg.seed;
    // Quick scale keeps the doubled sweep cheap; relative speedup is
    // what the baseline tracks, not absolute simulation time.
    const bds::ScaleProfile scale = bds::ScaleProfile::quick();
    unsigned hw = bds::ParallelOptions{}.resolved();
    unsigned par_threads = cfg.parallel.resolved();

    const bds::NodeConfig machine = bdsbench::benchMachine(cfg);
    std::cerr << "[bench] timing 32-workload sweep: serial vs "
              << par_threads << " thread(s)\n";
    bds::SweepTiming serial = timedSweep(machine, scale, seed, 1);
    bds::SweepTiming parallel =
        timedSweep(machine, scale, seed, par_threads);
    double speedup = parallel.totalSeconds > 0.0
        ? serial.totalSeconds / parallel.totalSeconds : 0.0;

    std::ofstream os("BENCH_parallel_runall.json");
    os << std::setprecision(6) << std::fixed;
    os << "{\n"
       << "  \"bench\": \"parallel_runall\",\n"
       << "  \"scale\": \"quick\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"workloads\": " << bds::allWorkloads().size() << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n";
    bdsbench::writeEnvironmentJson(os, "  ");
    os << ",\n";
    writeTimingJson(os, "serial", serial, "  ");
    os << ",\n";
    writeTimingJson(os, "parallel", parallel, "  ");
    os << ",\n  \"speedup\": " << speedup << "\n}\n";
    session.noteArtifact("BENCH_parallel_runall.json");

    std::cout << "\nparallel runAll baseline: serial "
              << serial.totalSeconds << " s, " << parallel.threads
              << "-thread " << parallel.totalSeconds << " s ("
              << speedup << "x) -> BENCH_parallel_runall.json\n";
}

/**
 * Quick-scale sampled-vs-full spot check: the sampled path must cut
 * detail-simulated ops by at least 5x while keeping the mean metric
 * reconstruction error modest. The dedicated sampled_vs_full bench
 * measures the full contract (including findings preservation); this
 * row keeps the headline numbers on the scorecard.
 */
void
checkSampledAccuracy(bds::Session &session)
{
    // Pinned to quick scale; machine/seed/threads still follow the
    // session config.
    bds::RunConfig quickCfg = session.config();
    quickCfg.scaleName = "quick";
    const bds::RunConfig &cfg = session.config();
    bds::WorkloadRunner runner =
        bds::WorkloadRunner::fromRunConfig(quickCfg);

    std::cerr << "[bench] sampled-vs-full spot check at quick scale\n";
    std::vector<bds::WorkloadResult> full;
    runner.runAll(&full);
    bds::SampledCharacterizer sampler(runner, cfg.sampling);
    std::vector<bds::SampledWorkloadResult> sampled;
    sampler.runAll(&sampled);

    std::uint64_t total = 0, detail = 0;
    double mean_err = 0.0;
    for (std::size_t i = 0; i < full.size(); ++i) {
        total += sampled[i].stats.totalOps;
        detail += sampled[i].stats.detailOps;
        mean_err += bds::compareMetrics(full[i].metrics,
                                        sampled[i].metrics).meanError;
    }
    mean_err /= static_cast<double>(full.size());
    double reduction = detail
        ? static_cast<double>(total) / static_cast<double>(detail)
        : 0.0;
    bool pass = reduction >= 5.0 && mean_err <= 0.25;
    std::cout << "\nsampled characterization: " << std::setprecision(2)
              << std::fixed << reduction
              << "x fewer detail ops, mean metric error "
              << mean_err << " -> " << (pass ? "PASS" : "FAIL")
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bds::Session session(
        bdsbench::benchConfig("repro_scorecard", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    std::cout << "Reproduction scorecard — paper claims vs this run\n\n";
    auto findings = bds::evaluatePaperFindings(res);
    std::size_t failed = bds::writeFindingsReport(std::cout, findings);
    // Known deviations (OFFCORE DATA / BRANCH directions) are
    // documented in EXPERIMENTS.md; the binary still exits 0 so the
    // bench sweep runs to completion.
    std::cout << (failed == 0 ? "\nall findings reproduced\n"
                              : "\nsee EXPERIMENTS.md for the "
                                "documented deviations\n");
    recordParallelBaseline(session);
    checkSampledAccuracy(session);
    return 0;
}
