/**
 * @file
 * The reproduction scorecard: every encoded paper claim checked
 * against the characterization run, one PASS/FAIL row each.
 */

#include <iostream>

#include "core/findings.h"
#include "bench_common.h"

int
main()
{
    auto res = bdsbench::characterizedPipeline();
    std::cout << "Reproduction scorecard — paper claims vs this run\n\n";
    auto findings = bds::evaluatePaperFindings(res);
    std::size_t failed = bds::writeFindingsReport(std::cout, findings);
    // Known deviations (OFFCORE DATA / BRANCH directions) are
    // documented in EXPERIMENTS.md; the binary still exits 0 so the
    // bench sweep runs to completion.
    std::cout << (failed == 0 ? "\nall findings reproduced\n"
                              : "\nsee EXPERIMENTS.md for the "
                                "documented deviations\n");
    return 0;
}
