/**
 * @file
 * Sampled vs full characterization: the accuracy/speed contract of
 * the src/sample subsystem, measured end to end.
 *
 * Runs the 32-workload sweep twice — full detailed simulation and the
 * sampled path (interval profiling, representative picking, warmed
 * replay) — then reports:
 *   - the reduction in detail-simulated micro-ops and the wall-clock
 *     speedup of the characterization sweep,
 *   - the per-metric relative reconstruction error across the 45
 *     Table II metrics,
 *   - whether every encoded paper finding (Figure 1 neighbor merges,
 *     the Figure 5 directional contrasts, the observations) gets the
 *     same verdict from the sampled matrix as from the full one.
 *
 * The machine-readable result lands in BENCH_sampled.json so CI can
 * track the sampling contract across PRs. BDS_SAMPLE_* knobs override
 * the calibrated defaults; BDS_SCALE/BDS_SEED/BDS_THREADS work as in
 * every other bench.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/findings.h"
#include "sample/estimate.h"
#include "bench_common.h"

namespace {

/** JSON-escape nothing fancy: metric names only use safe ASCII. */
std::string
q(const std::string &s)
{
    return '"' + s + '"';
}

} // namespace

int
main(int argc, char **argv)
{
    bds::Session session(
        bdsbench::benchConfig("sampled_vs_full", argc, argv));
    const bds::RunConfig &cfg = session.config();
    const std::string &scale_name = cfg.scaleName;
    bds::SamplingOptions sampling = cfg.sampling;
    sampling.enabled = true; // this bench always runs both paths

    bds::WorkloadRunner runner =
        bds::WorkloadRunner::fromRunConfig(cfg);
    auto ids = bds::allWorkloads();
    std::vector<std::string> names;
    for (const auto &id : ids)
        names.push_back(id.name());

    std::cerr << "[bench] full detailed sweep at scale '" << scale_name
              << "'\n";
    std::vector<bds::WorkloadResult> full_details;
    bds::SweepTiming full_timing;
    bds::Matrix full = runner.runAll(&full_details, &full_timing);

    std::cerr << "[bench] sampled sweep (interval "
              << sampling.intervalUops << " uops, kMax "
              << sampling.kMax << ", warmup "
              << sampling.warmupIntervals << ")\n";
    bds::SampledCharacterizer sampler(runner, sampling);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<bds::SampledWorkloadResult> s_details;
    bds::Matrix sampled = sampler.runAll(&s_details);
    double sampled_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - t0).count();

    // --- op accounting and per-metric error aggregation ------------
    std::uint64_t total_ops = 0, detail_ops = 0, warm_ops = 0,
                  skipped_ops = 0;
    std::array<double, bds::kNumMetrics> metric_err{};
    std::vector<bds::MetricErrorReport> reports(ids.size());
    double mean_err = 0.0, max_err = 0.0;
    std::size_t worst_metric = 0, worst_workload = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto &s = s_details[i];
        total_ops += s.stats.totalOps;
        detail_ops += s.stats.detailOps;
        warm_ops += s.stats.warmOps;
        skipped_ops += s.stats.skippedOps;
        reports[i] =
            bds::compareMetrics(full_details[i].metrics, s.metrics);
        mean_err += reports[i].meanError;
        for (std::size_t j = 0; j < bds::kNumMetrics; ++j)
            metric_err[j] += reports[i].relError[j];
        if (reports[i].maxError > max_err) {
            max_err = reports[i].maxError;
            worst_metric = reports[i].worstMetric;
            worst_workload = i;
        }
    }
    mean_err /= static_cast<double>(ids.size());
    for (double &e : metric_err)
        e /= static_cast<double>(ids.size());
    double reduction = detail_ops
        ? static_cast<double>(total_ops)
            / static_cast<double>(detail_ops)
        : 0.0;
    double speedup = sampled_seconds > 0.0
        ? full_timing.totalSeconds / sampled_seconds : 0.0;

    // --- do the paper findings survive sampling? --------------------
    bds::PipelineOptions popts = bds::pipelineOptionsFor(cfg);
    auto full_findings =
        bds::evaluatePaperFindings(bds::runPipeline(full, names, popts));
    auto sampled_findings = bds::evaluatePaperFindings(
        bds::runPipeline(sampled, names, popts));
    std::vector<std::string> flipped;
    for (std::size_t i = 0; i < full_findings.size(); ++i)
        if (full_findings[i].pass != sampled_findings[i].pass)
            flipped.push_back(full_findings[i].id);

    // --- human-readable report --------------------------------------
    std::cout << std::setprecision(4) << std::fixed;
    std::cout << "sampled vs full characterization ("
              << ids.size() << " workloads, scale '" << scale_name
              << "')\n\n"
              << "  micro-ops total      " << total_ops << "\n"
              << "  detail-simulated     " << detail_ops << " ("
              << reduction << "x reduction)\n"
              << "  warmed (frozen)      " << warm_ops << "\n"
              << "  fast-forwarded       " << skipped_ops << "\n"
              << "  full sweep           " << full_timing.totalSeconds
              << " s\n"
              << "  sampled sweep        " << sampled_seconds << " s ("
              << speedup << "x)\n"
              << "  mean metric error    " << mean_err << "\n"
              << "  worst metric error   " << max_err << " ("
              << bds::metricName(worst_metric) << " on "
              << names[worst_workload] << ")\n"
              << "  findings preserved   "
              << (full_findings.size() - flipped.size()) << "/"
              << full_findings.size() << "\n";
    for (const std::string &id : flipped)
        std::cout << "    FLIPPED: " << id << "\n";

    std::cout << "\n  per-metric mean relative error\n";
    for (std::size_t j = 0; j < bds::kNumMetrics; ++j)
        std::cout << "    " << std::left << std::setw(22)
                  << bds::metricName(j) << std::right << " "
                  << metric_err[j] << "\n";

    // --- machine-readable artifact ----------------------------------
    std::ofstream os("BENCH_sampled.json");
    os << std::setprecision(6) << std::fixed;
    os << "{\n"
       << "  \"bench\": \"sampled_vs_full\",\n"
       << "  \"scale\": " << q(scale_name) << ",\n"
       << "  \"seed\": " << cfg.seed << ",\n";
    bdsbench::writeEnvironmentJson(os, "  ");
    os << ",\n"
       << "  \"sampling\": {\n"
       << "    \"interval_uops\": " << sampling.intervalUops << ",\n"
       << "    \"bbv_dims\": " << sampling.bbvDims << ",\n"
       << "    \"k_max\": " << sampling.kMax << ",\n"
       << "    \"warmup_intervals\": " << sampling.warmupIntervals
       << ",\n"
       << "    \"seed\": " << sampling.seed << "\n  },\n"
       << "  \"ops\": {\"total\": " << total_ops << ", \"detail\": "
       << detail_ops << ", \"warm\": " << warm_ops
       << ", \"skipped\": " << skipped_ops << ", \"reduction\": "
       << reduction << "},\n"
       << "  \"wall_seconds\": {\"full\": " << full_timing.totalSeconds
       << ", \"sampled\": " << sampled_seconds << ", \"speedup\": "
       << speedup << "},\n"
       << "  \"error\": {\"mean\": " << mean_err << ", \"max\": "
       << max_err << ", \"worst_metric\": "
       << q(bds::metricName(worst_metric)) << ", \"worst_workload\": "
       << q(names[worst_workload]) << "},\n";
    os << "  \"per_metric_mean_rel_error\": {";
    for (std::size_t j = 0; j < bds::kNumMetrics; ++j)
        os << (j ? ", " : "") << q(bds::metricName(j)) << ": "
           << metric_err[j];
    os << "},\n";
    os << "  \"per_workload\": [";
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto &s = s_details[i];
        os << (i ? ",\n    " : "\n    ") << "{\"name\": "
           << q(names[i]) << ", \"intervals\": " << s.numIntervals
           << ", \"k\": " << s.k << ", \"reps\": " << s.numReps
           << ", \"detail_ops\": " << s.stats.detailOps
           << ", \"total_ops\": " << s.stats.totalOps
           << ", \"mean_err\": " << reports[i].meanError
           << ", \"max_err\": " << reports[i].maxError << "}";
    }
    os << "\n  ],\n";
    os << "  \"findings\": {\"total\": " << full_findings.size()
       << ", \"preserved\": "
       << (full_findings.size() - flipped.size()) << ", \"flipped\": [";
    for (std::size_t i = 0; i < flipped.size(); ++i)
        os << (i ? ", " : "") << q(flipped[i]);
    os << "]}\n}\n";
    session.noteArtifact("BENCH_sampled.json");
    std::cout << "\n-> BENCH_sampled.json\n";

    // The sampling contract: at least 5x fewer detail-simulated ops
    // and no paper finding flipping its verdict. Violations fail the
    // bench so CI catches a drifting calibration.
    bool pass = reduction >= 5.0 && flipped.empty();
    std::cout << (pass ? "\nsampling contract: PASS\n"
                       : "\nsampling contract: FAIL\n");
    return pass ? 0 : 1;
}
