/**
 * @file
 * serve_replay — the serving benchmark: replay a binary request log
 * through an in-process ServeEngine at configurable client
 * concurrency and report throughput, latency percentiles and the
 * cache hit rate, cold vs warm.
 *
 * Two modes:
 *
 *   serve_replay --emit LOG [--requests N] [--distinct D]
 *                [--scale S] [--seed B] [--sampled]
 *     Write a synthetic request log: N requests cycling over D
 *     distinct (seed) cells starting at base seed B, so a warm pass
 *     has an N/D reuse factor.
 *
 *   serve_replay --log LOG [--clients C] [--passes P] [--json OUT]
 *     Replay LOG P times (pass 1 is the cold pass) with C concurrent
 *     clients striding the log, and emit BENCH_serve.json: per-pass
 *     requests/s, p50/p90/p99 latency, hit rate, and the usual
 *     environment block. The engine answers every client from one
 *     content-addressed store, so concurrent same-cell requests
 *     exercise the single-flight path.
 *
 * The daemon knobs come from the common BDS_SERVE_* environment /
 * --serve-* flags (src/obs/runconfig.h): --serve-cache picks the
 * store directory, --serve-bypass turns the benchmark into a pure
 * compute-throughput measurement.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/engine.h"
#include "serve/request.h"

namespace {

/** Latency percentile over a sorted sample, nearest-rank. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/** One replay pass's aggregate. */
struct PassResult
{
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t errors = 0;
    double seconds = 0.0;
    std::vector<double> latencies;
};

/** Replay the log once with `clients` threads striding the records. */
PassResult
runPass(bds::ServeEngine &engine,
        const std::vector<bds::RequestRecord> &log, unsigned clients)
{
    PassResult pass;
    pass.latencies.assign(log.size(), 0.0);
    std::mutex mutex;
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> pool;
    for (unsigned c = 0; c < clients; ++c)
        pool.emplace_back([&, c] {
            std::uint64_t hits = 0, errors = 0, requests = 0;
            for (std::size_t i = c; i < log.size(); i += clients) {
                const bds::ServeResponse resp = engine.handle(log[i]);
                pass.latencies[i] = resp.seconds;
                ++requests;
                if (!resp.ok)
                    ++errors;
                else if (resp.hit)
                    ++hits;
            }
            std::lock_guard<std::mutex> lock(mutex);
            pass.requests += requests;
            pass.hits += hits;
            pass.errors += errors;
        });
    for (std::thread &t : pool)
        t.join();

    pass.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    std::sort(pass.latencies.begin(), pass.latencies.end());
    return pass;
}

void
writePassJson(std::ostream &os, const char *name,
              const PassResult &pass)
{
    const double reqs = static_cast<double>(pass.requests);
    os << "  \"" << name << "\": {\n"
       << "    \"requests\": " << pass.requests << ",\n"
       << "    \"hits\": " << pass.hits << ",\n"
       << "    \"errors\": " << pass.errors << ",\n"
       << "    \"hit_rate\": "
       << (pass.requests ? static_cast<double>(pass.hits) / reqs : 0.0)
       << ",\n"
       << "    \"seconds\": " << pass.seconds << ",\n"
       << "    \"requests_per_second\": "
       << (pass.seconds > 0.0 ? reqs / pass.seconds : 0.0) << ",\n"
       << "    \"latency_p50_ms\": "
       << percentile(pass.latencies, 50) * 1e3 << ",\n"
       << "    \"latency_p90_ms\": "
       << percentile(pass.latencies, 90) * 1e3 << ",\n"
       << "    \"latency_p99_ms\": "
       << percentile(pass.latencies, 99) * 1e3 << "\n"
       << "  }";
}

void
usage(std::ostream &os)
{
    os << "usage: serve_replay --emit LOG [--requests N] "
          "[--distinct D]\n"
          "                    [--scale S] [--seed B] [--sampled]\n"
          "       serve_replay --log LOG [--clients C] [--passes P]\n"
          "                    [--json OUT]\n\n"
          "--emit writes a synthetic binary request log (N requests\n"
          "cycling over D distinct seeds); --log replays one through\n"
          "an in-process ServeEngine, pass 1 cold, and reports\n"
          "throughput/latency/hit-rate per pass. The BDS_SERVE_*\n"
          "environment and --serve-* flags configure the store.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--help"
            || std::string(argv[i]) == "-h") {
            usage(std::cout);
            return 0;
        }

    try {
        bds::RunConfig cfg;
        cfg.tool = "serve_replay";
        cfg.scaleName = "quick";
        cfg.serve.storeDir = "bds_serve_cache";
        cfg.argv.assign(argv, argv + argc);
        cfg.applyEnv();
        std::vector<std::string> leftovers = cfg.applyArgs(
            std::vector<std::string>(argv + 1, argv + argc));
        cfg.serve.enabled = true;

        std::string emit_path, log_path, json_path;
        std::uint64_t requests = 32, distinct = 4;
        unsigned clients = 4, passes = 2;
        for (auto it = leftovers.begin(); it != leftovers.end();) {
            auto take = [&]() -> std::string {
                const std::string flag = *it;
                if (it + 1 == leftovers.end())
                    BDS_FATAL(flag << " needs a value");
                it = leftovers.erase(it);
                const std::string v = *it;
                it = leftovers.erase(it);
                return v;
            };
            const std::string flag = *it;
            if (flag == "--emit")
                emit_path = take();
            else if (flag == "--log")
                log_path = take();
            else if (flag == "--json")
                json_path = take();
            else if (flag == "--requests")
                requests = bds::detail::parseUint("--requests", take());
            else if (flag == "--distinct")
                distinct = bds::detail::parseUint("--distinct", take());
            else if (flag == "--clients")
                clients = static_cast<unsigned>(
                    bds::detail::parseUint("--clients", take()));
            else if (flag == "--passes")
                passes = static_cast<unsigned>(
                    bds::detail::parseUint("--passes", take()));
            else
                BDS_FATAL("unknown serve_replay argument '" << flag
                          << "' (--help lists the options)");
        }

        if (!emit_path.empty()) {
            if (distinct == 0 || requests == 0)
                BDS_FATAL("--requests and --distinct must be "
                          "positive");
            std::vector<bds::RequestRecord> log;
            for (std::uint64_t i = 0; i < requests; ++i) {
                bds::RequestRecord req;
                req.scale = bds::serveScaleIndex(cfg.scaleName);
                req.seed = cfg.seed + i % distinct;
                if (cfg.sampling.enabled)
                    req.flags |= bds::kServeFlagSampled;
                log.push_back(req);
            }
            bds::storeRequestLog(emit_path, log);
            std::cerr << "[serve_replay] wrote " << log.size()
                      << " request(s) (" << distinct
                      << " distinct cell(s)) to " << emit_path
                      << "\n";
            return 0;
        }

        if (log_path.empty())
            BDS_FATAL("serve_replay needs --emit LOG or --log LOG "
                      "(--help)");
        if (clients == 0 || passes == 0)
            BDS_FATAL("--clients and --passes must be positive");

        const std::vector<bds::RequestRecord> log =
            bds::loadRequestLog(log_path);
        std::cerr << "[serve_replay] replaying " << log.size()
                  << " request(s) x " << passes << " pass(es), "
                  << clients << " client(s), cache "
                  << cfg.serve.storeDir
                  << (cfg.serve.bypassStore ? " (bypassed)" : "")
                  << "\n";

        bds::ServeEngine engine(cfg);
        std::vector<PassResult> results;
        for (unsigned p = 0; p < passes; ++p) {
            results.push_back(runPass(engine, log, clients));
            const PassResult &pass = results.back();
            std::cerr << "[serve_replay] pass " << (p + 1) << ": "
                      << pass.requests << " request(s) in "
                      << pass.seconds << " s, " << pass.hits
                      << " hit(s), " << pass.errors << " error(s)\n";
        }

        std::ostream *os = &std::cout;
        std::ofstream file;
        if (!json_path.empty()) {
            file.open(json_path, std::ios::trunc);
            if (!file)
                BDS_FATAL("cannot write --json file '" << json_path
                          << "'");
            os = &file;
        }
        *os << "{\n"
            << "  \"bench\": \"serve_replay\",\n"
            << "  \"log\": \"" << log_path << "\",\n"
            << "  \"records\": " << log.size() << ",\n"
            << "  \"clients\": " << clients << ",\n"
            << "  \"passes\": " << passes << ",\n"
            << "  \"scale\": \"" << cfg.scaleName << "\",\n"
            << "  \"bypass\": "
            << (cfg.serve.bypassStore ? "true" : "false") << ",\n";
        writePassJson(*os, "cold", results.front());
        *os << ",\n";
        writePassJson(*os, "warm", results.back());
        *os << ",\n";
        bdsbench::writeEnvironmentJson(*os);
        *os << "\n}\n";
        return 0;
    } catch (const bds::FatalError &e) {
        std::cerr << "serve_replay: " << e.what() << "\n";
        return 1;
    } catch (const bds::PanicError &e) {
        std::cerr << "serve_replay: internal error: " << e.what()
                  << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "serve_replay: " << e.what() << "\n";
        return 1;
    }
}
