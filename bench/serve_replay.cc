/**
 * @file
 * serve_replay — the serving benchmark: replay a binary request log
 * through an in-process ServeEngine at configurable client
 * concurrency and report throughput, latency percentiles and the
 * cache hit rate, cold vs warm.
 *
 * Two modes:
 *
 *   serve_replay --emit LOG [--requests N] [--distinct D]
 *                [--scale S] [--seed B] [--sampled]
 *     Write a synthetic request log: N requests cycling over D
 *     distinct (seed) cells starting at base seed B, so a warm pass
 *     has an N/D reuse factor.
 *
 *   serve_replay --log LOG [--clients C] [--passes P] [--daemons N]
 *                [--json OUT]
 *     Replay LOG P times (pass 1 is the cold pass) with C concurrent
 *     clients striding the log, and emit BENCH_serve.json: per-pass
 *     requests/s, p50/p90/p99 latency, hit rate, and the usual
 *     environment block. The engine answers every client from one
 *     content-addressed store, so concurrent same-cell requests
 *     exercise the single-flight path.
 *
 *     With --daemons N > 1 every pass forks N real daemon processes,
 *     each replaying the whole log through its own ServeEngine on the
 *     SAME cache directory — the fleet configuration. Cross-process
 *     single-flight (docs/STORAGE.md) is what keeps the cold pass's
 *     total computes at the number of distinct cells instead of
 *     N x distinct; the per_daemon block in the JSON shows how the
 *     misses distributed.
 *
 * The daemon knobs come from the common BDS_SERVE_* environment /
 * --serve-* flags (src/obs/runconfig.h): --serve-cache picks the
 * store directory, --serve-bypass turns the benchmark into a pure
 * compute-throughput measurement.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.h"
#include "serve/engine.h"
#include "serve/request.h"

namespace {

/** Latency percentile over a sorted sample, nearest-rank. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/** One replay pass's aggregate. */
struct PassResult
{
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t errors = 0;
    double seconds = 0.0;
    std::vector<double> latencies;
};

/** Replay the log once with `clients` threads striding the records. */
PassResult
runPass(bds::ServeEngine &engine,
        const std::vector<bds::RequestRecord> &log, unsigned clients)
{
    PassResult pass;
    pass.latencies.assign(log.size(), 0.0);
    std::mutex mutex;
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> pool;
    for (unsigned c = 0; c < clients; ++c)
        pool.emplace_back([&, c] {
            std::uint64_t hits = 0, errors = 0, requests = 0;
            for (std::size_t i = c; i < log.size(); i += clients) {
                const bds::ServeResponse resp = engine.handle(log[i]);
                pass.latencies[i] = resp.seconds;
                ++requests;
                if (!resp.ok)
                    ++errors;
                else if (resp.hit)
                    ++hits;
            }
            std::lock_guard<std::mutex> lock(mutex);
            pass.requests += requests;
            pass.hits += hits;
            pass.errors += errors;
        });
    for (std::thread &t : pool)
        t.join();

    pass.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    std::sort(pass.latencies.begin(), pass.latencies.end());
    return pass;
}

/** One daemon process's share of a forked multi-daemon pass. */
struct DaemonResult
{
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t errors = 0;
    double seconds = 0.0;
};

/**
 * Run one pass as `daemons` forked processes, each with its own
 * ServeEngine on the shared cfg.serve.storeDir. Every child replays
 * the whole log; cross-process single-flight is what keeps the
 * fleet's total computes at one per distinct cell. Children report
 * their counters and latencies up a pipe; the aggregate pass carries
 * every daemon's latency sample and the slowest daemon's wall clock.
 */
PassResult
runForkedPass(const bds::RunConfig &cfg,
              const std::vector<bds::RequestRecord> &log,
              unsigned clients, unsigned daemons,
              std::vector<DaemonResult> *per)
{
    std::vector<pid_t> pids;
    std::vector<int> pipes;
    for (unsigned d = 0; d < daemons; ++d) {
        int fds[2];
        if (::pipe(fds) != 0)
            BDS_FATAL("pipe() failed for daemon " << d);
        const pid_t pid = ::fork();
        if (pid < 0)
            BDS_FATAL("fork() failed for daemon " << d);
        if (pid == 0) {
            ::close(fds[0]);
            int rc = 0;
            {
                // Scoped: the engine (and its lease machinery) is
                // torn down before _exit skips static destructors.
                bds::ServeEngine engine(cfg);
                const PassResult pass = runPass(engine, log, clients);
                FILE *out = ::fdopen(fds[1], "w");
                if (!out) {
                    rc = 1;
                } else {
                    std::fprintf(out, "%llu %llu %llu %.9f %zu\n",
                                 static_cast<unsigned long long>(
                                     pass.requests),
                                 static_cast<unsigned long long>(
                                     pass.hits),
                                 static_cast<unsigned long long>(
                                     pass.errors),
                                 pass.seconds,
                                 pass.latencies.size());
                    for (const double lat : pass.latencies)
                        std::fprintf(out, "%.9e\n", lat);
                    std::fflush(out);
                }
            }
            ::_exit(rc);
        }
        ::close(fds[1]);
        pids.push_back(pid);
        pipes.push_back(fds[0]);
    }

    PassResult pass;
    for (unsigned d = 0; d < daemons; ++d) {
        FILE *in = ::fdopen(pipes[d], "r");
        DaemonResult dr;
        unsigned long long reqs = 0, hits = 0, errs = 0;
        std::size_t lats = 0;
        bool parsed = in
            && std::fscanf(in, "%llu %llu %llu %lf %zu", &reqs, &hits,
                           &errs, &dr.seconds, &lats)
                == 5;
        dr.requests = reqs;
        dr.hits = hits;
        dr.errors = errs;
        for (std::size_t i = 0; parsed && i < lats; ++i) {
            double lat = 0.0;
            parsed = std::fscanf(in, "%lf", &lat) == 1;
            if (parsed)
                pass.latencies.push_back(lat);
        }
        if (in)
            std::fclose(in);
        else
            ::close(pipes[d]);

        int status = 0;
        ::waitpid(pids[d], &status, 0);
        if (!parsed || !WIFEXITED(status)
            || WEXITSTATUS(status) != 0)
            BDS_FATAL("daemon " << d << " failed (pid " << pids[d]
                      << ")");

        pass.requests += dr.requests;
        pass.hits += dr.hits;
        pass.errors += dr.errors;
        pass.seconds = std::max(pass.seconds, dr.seconds);
        if (per)
            per->push_back(dr);
    }
    std::sort(pass.latencies.begin(), pass.latencies.end());
    return pass;
}

/** Distinct cells in a request log (scale, seed, machine, sampled). */
std::size_t
distinctCells(const std::vector<bds::RequestRecord> &log)
{
    std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t,
                        std::uint32_t>>
        cells;
    for (const bds::RequestRecord &req : log)
        cells.insert({req.scale, req.seed, req.machine,
                      req.flags & bds::kServeFlagSampled});
    return cells.size();
}

void
writePassJson(std::ostream &os, const char *name,
              const PassResult &pass)
{
    const double reqs = static_cast<double>(pass.requests);
    os << "  \"" << name << "\": {\n"
       << "    \"requests\": " << pass.requests << ",\n"
       << "    \"hits\": " << pass.hits << ",\n"
       << "    \"errors\": " << pass.errors << ",\n"
       << "    \"hit_rate\": "
       << (pass.requests ? static_cast<double>(pass.hits) / reqs : 0.0)
       << ",\n"
       << "    \"seconds\": " << pass.seconds << ",\n"
       << "    \"requests_per_second\": "
       << (pass.seconds > 0.0 ? reqs / pass.seconds : 0.0) << ",\n"
       << "    \"latency_p50_ms\": "
       << percentile(pass.latencies, 50) * 1e3 << ",\n"
       << "    \"latency_p90_ms\": "
       << percentile(pass.latencies, 90) * 1e3 << ",\n"
       << "    \"latency_p99_ms\": "
       << percentile(pass.latencies, 99) * 1e3 << "\n"
       << "  }";
}

void
usage(std::ostream &os)
{
    os << "usage: serve_replay --emit LOG [--requests N] "
          "[--distinct D]\n"
          "                    [--scale S] [--seed B] [--sampled]\n"
          "       serve_replay --log LOG [--clients C] [--passes P]\n"
          "                    [--daemons N] [--json OUT]\n\n"
          "--emit writes a synthetic binary request log (N requests\n"
          "cycling over D distinct seeds); --log replays one through\n"
          "an in-process ServeEngine, pass 1 cold, and reports\n"
          "throughput/latency/hit-rate per pass. --daemons N > 1\n"
          "forks N daemon processes per pass, all replaying the full\n"
          "log on one shared cache: the fleet single-flight\n"
          "benchmark. The BDS_SERVE_* environment and --serve-*\n"
          "flags configure the store.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--help"
            || std::string(argv[i]) == "-h") {
            usage(std::cout);
            return 0;
        }

    try {
        bds::RunConfig cfg;
        cfg.tool = "serve_replay";
        cfg.scaleName = "quick";
        cfg.serve.storeDir = "bds_serve_cache";
        cfg.argv.assign(argv, argv + argc);
        cfg.applyEnv();
        std::vector<std::string> leftovers = cfg.applyArgs(
            std::vector<std::string>(argv + 1, argv + argc));
        cfg.serve.enabled = true;

        std::string emit_path, log_path, json_path;
        std::uint64_t requests = 32, distinct = 4;
        unsigned clients = 4, passes = 2, daemons = 1;
        for (auto it = leftovers.begin(); it != leftovers.end();) {
            auto take = [&]() -> std::string {
                const std::string flag = *it;
                if (it + 1 == leftovers.end())
                    BDS_FATAL(flag << " needs a value");
                it = leftovers.erase(it);
                const std::string v = *it;
                it = leftovers.erase(it);
                return v;
            };
            const std::string flag = *it;
            if (flag == "--emit")
                emit_path = take();
            else if (flag == "--log")
                log_path = take();
            else if (flag == "--json")
                json_path = take();
            else if (flag == "--requests")
                requests = bds::detail::parseUint("--requests", take());
            else if (flag == "--distinct")
                distinct = bds::detail::parseUint("--distinct", take());
            else if (flag == "--clients")
                clients = static_cast<unsigned>(
                    bds::detail::parseUint("--clients", take()));
            else if (flag == "--passes")
                passes = static_cast<unsigned>(
                    bds::detail::parseUint("--passes", take()));
            else if (flag == "--daemons")
                daemons = static_cast<unsigned>(
                    bds::detail::parseUint("--daemons", take()));
            else
                BDS_FATAL("unknown serve_replay argument '" << flag
                          << "' (--help lists the options)");
        }

        if (!emit_path.empty()) {
            if (distinct == 0 || requests == 0)
                BDS_FATAL("--requests and --distinct must be "
                          "positive");
            std::vector<bds::RequestRecord> log;
            for (std::uint64_t i = 0; i < requests; ++i) {
                bds::RequestRecord req;
                req.scale = bds::serveScaleIndex(cfg.scaleName);
                req.seed = cfg.seed + i % distinct;
                if (cfg.sampling.enabled)
                    req.flags |= bds::kServeFlagSampled;
                log.push_back(req);
            }
            bds::storeRequestLog(emit_path, log);
            std::cerr << "[serve_replay] wrote " << log.size()
                      << " request(s) (" << distinct
                      << " distinct cell(s)) to " << emit_path
                      << "\n";
            return 0;
        }

        if (log_path.empty())
            BDS_FATAL("serve_replay needs --emit LOG or --log LOG "
                      "(--help)");
        if (clients == 0 || passes == 0 || daemons == 0)
            BDS_FATAL("--clients, --passes and --daemons must be "
                      "positive");

        const std::vector<bds::RequestRecord> log =
            bds::loadRequestLog(log_path);
        std::cerr << "[serve_replay] replaying " << log.size()
                  << " request(s) x " << passes << " pass(es), "
                  << clients << " client(s), " << daemons
                  << " daemon(s), cache " << cfg.serve.storeDir
                  << (cfg.serve.bypassStore ? " (bypassed)" : "")
                  << "\n";

        std::vector<PassResult> results;
        std::vector<DaemonResult> coldPerDaemon;
        if (daemons == 1) {
            bds::ServeEngine engine(cfg);
            for (unsigned p = 0; p < passes; ++p)
                results.push_back(runPass(engine, log, clients));
        } else {
            for (unsigned p = 0; p < passes; ++p)
                results.push_back(runForkedPass(
                    cfg, log, clients, daemons,
                    p == 0 ? &coldPerDaemon : nullptr));
        }
        for (unsigned p = 0; p < passes; ++p) {
            const PassResult &pass = results[p];
            std::cerr << "[serve_replay] pass " << (p + 1) << ": "
                      << pass.requests << " request(s) in "
                      << pass.seconds << " s, " << pass.hits
                      << " hit(s), " << pass.errors << " error(s)\n";
        }
        if (daemons > 1) {
            // The fleet invariant: the cold pass's total computes
            // (misses) collapse to one per distinct cell when
            // cross-process single-flight holds.
            const PassResult &cold = results.front();
            std::cerr << "[serve_replay] cold computes across "
                      << daemons << " daemon(s): "
                      << (cold.requests - cold.hits - cold.errors)
                      << " (distinct cells: " << distinctCells(log)
                      << ")\n";
        }

        std::ostream *os = &std::cout;
        std::ofstream file;
        if (!json_path.empty()) {
            file.open(json_path, std::ios::trunc);
            if (!file)
                BDS_FATAL("cannot write --json file '" << json_path
                          << "'");
            os = &file;
        }
        *os << "{\n"
            << "  \"bench\": \"serve_replay\",\n"
            << "  \"log\": \"" << log_path << "\",\n"
            << "  \"records\": " << log.size() << ",\n"
            << "  \"clients\": " << clients << ",\n"
            << "  \"passes\": " << passes << ",\n"
            << "  \"daemons\": " << daemons << ",\n"
            << "  \"distinct_cells\": " << distinctCells(log) << ",\n"
            << "  \"scale\": \"" << cfg.scaleName << "\",\n"
            << "  \"bypass\": "
            << (cfg.serve.bypassStore ? "true" : "false") << ",\n";
        writePassJson(*os, "cold", results.front());
        *os << ",\n";
        writePassJson(*os, "warm", results.back());
        *os << ",\n";
        if (!coldPerDaemon.empty()) {
            *os << "  \"per_daemon\": [\n";
            for (std::size_t d = 0; d < coldPerDaemon.size(); ++d) {
                const DaemonResult &dr = coldPerDaemon[d];
                *os << "    {\"requests\": " << dr.requests
                    << ", \"hits\": " << dr.hits << ", \"misses\": "
                    << (dr.requests - dr.hits - dr.errors)
                    << ", \"errors\": " << dr.errors
                    << ", \"seconds\": " << dr.seconds << "}"
                    << (d + 1 < coldPerDaemon.size() ? "," : "")
                    << "\n";
            }
            *os << "  ],\n";
        }
        bdsbench::writeEnvironmentJson(*os);
        *os << "\n}\n";
        return 0;
    } catch (const bds::FatalError &e) {
        std::cerr << "serve_replay: " << e.what() << "\n";
        return 1;
    } catch (const bds::PanicError &e) {
        std::cerr << "serve_replay: internal error: " << e.what()
                  << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "serve_replay: " << e.what() << "\n";
        return 1;
    }
}
