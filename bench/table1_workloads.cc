/**
 * @file
 * Table I reproduction: the 16 algorithms x 2 stacks workload matrix
 * with the scaled problem sizes this build uses.
 */

#include <iostream>

#include "common/table.h"
#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(
        bdsbench::benchConfig("table1_workloads", argc, argv));
    const std::string &scale_name = session.config().scaleName;
    bds::ScaleProfile scale = bds::ScaleProfile::byName(scale_name);

    std::cout << "Table I — representative data analysis workloads "
                 "(scale '" << scale_name << "', unit = "
              << scale.unitRecords << " records)\n\n";

    bds::TextTable t({"category", "workload", "relative size",
                      "scaled records", "stacks"});
    for (unsigned a = 0; a < bds::kNumAlgorithms; ++a) {
        auto alg = static_cast<bds::Algorithm>(a);
        double rel = bds::relativeInputSize(alg);
        std::uint64_t recs = static_cast<std::uint64_t>(
            rel * static_cast<double>(scale.unitRecords));
        t.addRow({bds::isInteractive(alg) ? "Interactive Analytics"
                                          : "Offline Analytics",
                  bds::algorithmName(alg), bds::fmtDouble(rel, 2),
                  std::to_string(recs),
                  bds::isInteractive(alg) ? "Hive & Shark"
                                          : "Hadoop & Spark"});
    }
    t.print(std::cout);

    std::cout << "\nworkload instances (" << bds::allWorkloads().size()
              << "):";
    for (const auto &id : bds::allWorkloads())
        std::cout << ' ' << id.name();
    std::cout << '\n';
    return 0;
}
