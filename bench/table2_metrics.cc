/**
 * @file
 * Table II reproduction: the 45 microarchitectural metrics, their
 * descriptions, and live values measured from one workload on each
 * stack (H-WordCount / S-WordCount at quick scale).
 */

#include <iostream>

#include "common/table.h"
#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace bds;

    Session session(
        bdsbench::benchConfig("table2_metrics", argc, argv));
    // Pinned to quick scale; machine/seed/recovery still follow the
    // session config.
    RunConfig quickCfg = session.config();
    quickCfg.scaleName = "quick";
    WorkloadRunner runner = WorkloadRunner::fromRunConfig(quickCfg);
    auto h = runner.run(
        WorkloadId{Algorithm::WordCount, StackKind::Hadoop});
    auto s = runner.run(
        WorkloadId{Algorithm::WordCount, StackKind::Spark});

    std::cout << "Table II — microarchitecture level metrics "
                 "(live values: WordCount at quick scale)\n\n";
    TextTable t({"no.", "metric", "description", "H-WordCount",
                 "S-WordCount"});
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
        auto m = static_cast<Metric>(i);
        t.addRow({std::to_string(i + 1), metricName(i),
                  metricDescription(m), fmtDouble(h.metrics[i], 4),
                  fmtDouble(s.metrics[i], 4)});
    }
    t.print(std::cout);
    return 0;
}
