/**
 * @file
 * Table III reproduction: the simulated node's hardware
 * configuration (Westmere / Xeon E5645 geometry).
 */

#include <iostream>

#include "common/table.h"
#include "uarch/config.h"
#include "uarch/machine.h"
#include "bench_common.h"

namespace {

std::string
cacheDesc(const bds::CacheConfig &c)
{
    std::string size = c.sizeBytes >= (1u << 20)
        ? std::to_string(c.sizeBytes >> 20) + " MB"
        : std::to_string(c.sizeBytes >> 10) + " KB";
    return size + ", " + std::to_string(c.assoc) + "-way, "
        + std::to_string(c.lineBytes) + " B/line";
}

void
print(const char *title, const bds::NodeConfig &cfg)
{
    std::cout << title << "\n";
    bds::TextTable t({"component", "configuration"});
    t.addRow({"# cores", std::to_string(cfg.numCores)});
    t.addRow({"ITLB", std::to_string(cfg.itlb.assoc) + "-way, "
                          + std::to_string(cfg.itlb.entries)
                          + " entries"});
    t.addRow({"DTLB", std::to_string(cfg.dtlb.assoc) + "-way, "
                          + std::to_string(cfg.dtlb.entries)
                          + " entries"});
    t.addRow({"L2 shared TLB", std::to_string(cfg.stlb.assoc)
                                   + "-way, "
                                   + std::to_string(cfg.stlb.entries)
                                   + " entries"});
    t.addRow({"L1 DCache", cacheDesc(cfg.l1d)});
    t.addRow({"L1 ICache", cacheDesc(cfg.l1i)});
    t.addRow({"L2 cache", cacheDesc(cfg.l2)});
    t.addRow({"L3 cache", cacheDesc(cfg.l3)});
    t.addRow({"page size", std::to_string(cfg.pageBytes) + " B"});
    t.addRow({"L2 / L3 / memory latency",
              bds::fmtDouble(cfg.l2Latency, 0) + " / "
                  + bds::fmtDouble(cfg.l3Latency, 0) + " / "
                  + bds::fmtDouble(cfg.memLatency, 0) + " cycles"});
    t.addRow({"issue width", std::to_string(cfg.issueWidth)});
    t.addRow({"branch predictor", "gshare, "
                                      + std::to_string(cfg.historyBits)
                                      + "-bit history"});
    t.addRow({"line fill buffers", std::to_string(cfg.lfbEntries)});
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bds::Session session(
        bdsbench::benchConfig("table3_config", argc, argv));
    const bds::RunConfig &cfg = session.config();
    std::cout << "Table III — hardware configuration of the simulated "
                 "node\n\n";
    print("paper configuration (one E5645 socket):",
          bds::machineByName("westmere"));
    const std::string title = "configured simulation target ("
        + cfg.machineSpec + "):";
    print(title.c_str(), bds::resolveMachineSpec(cfg.machineSpec));

    std::cout << "machine preset registry (--machine / BDS_MACHINE; "
                 "override with key=value,... — see docs/DSE.md)\n";
    bds::TextTable reg({"preset", "geometry", "summary"});
    for (const bds::MachinePreset &p : bds::machinePresets())
        reg.addRow({p.name, bds::describeMachine(p.config),
                    p.summary});
    reg.print(std::cout);
    return 0;
}
