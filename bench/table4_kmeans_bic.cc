/**
 * @file
 * Table IV reproduction: the BIC sweep over K and the selected
 * K-means clustering of the 32 workloads.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("table4_kmeans_bic", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    std::cout << "Table IV — K-means clustering with BIC selection\n\n";
    bds::writeClusterReport(std::cout, res);
    return 0;
}
