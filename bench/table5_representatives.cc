/**
 * @file
 * Table V reproduction: representative workloads chosen by the
 * nearest-to-centroid and farthest-from-centroid strategies, with
 * the maximal linkage distance diversity measure.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    bds::Session session(bdsbench::benchConfig("table5_representatives", argc, argv));
    auto res = bdsbench::characterizedPipeline(session);
    std::cout << "at the BIC-selected K:\n";
    bds::writeRepresentativesReport(std::cout, res);
    std::cout << "at the paper's K = 7:\n";
    bds::writeRepresentativesReport(std::cout, res, 7);
    return 0;
}
