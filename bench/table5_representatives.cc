/**
 * @file
 * Table V reproduction: representative workloads chosen by the
 * nearest-to-centroid and farthest-from-centroid strategies, with
 * the maximal linkage distance diversity measure.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    auto res = bdsbench::characterizedPipeline();
    std::cout << "at the BIC-selected K:\n";
    bds::writeRepresentativesReport(std::cout, res);
    std::cout << "at the paper's K = 7:\n";
    bds::writeRepresentativesReport(std::cout, res, 7);
    return 0;
}
