/**
 * @file
 * Detail-simulation throughput bench for the src/uarch layer, the
 * artifact behind docs/PERFORMANCE.md.
 *
 * Two levels of measurement, written to BENCH_uarch_speed.json:
 *
 *  - per-structure: the flat structure-of-arrays cache/TLB/branch
 *    implementations against the committed reference models
 *    (src/uarch/reference.h) on identical precomputed address
 *    streams — a live before/after on the same machine, so the
 *    speedup column is comparable across hosts;
 *
 *  - end-to-end: micro-ops per second replaying a recorded
 *    real-workload trace (quick-scale Hadoop/Spark picks) through a
 *    full SystemModel, on both the detail path and the counter-frozen
 *    warming fast path. The aggregate cycle count is printed in hex
 *    float so any accuracy drift shows up as a bit change.
 *
 * Modes:
 *   uarch_speed                 full measurement, write the JSON
 *   uarch_speed --quick         reduced streams/trace (CI smoke)
 *   uarch_speed --check FILE    also compare against a committed
 *                               JSON: fail when end-to-end detail
 *                               ops/s or any per-structure speedup
 *                               regresses more than 20%
 *   uarch_speed --warn-only     downgrade --check failures to
 *                               warnings (first-land CI mode; also
 *                               the right mode when FILE was captured
 *                               on different hardware, where absolute
 *                               ops/s are not comparable)
 *
 * This bench manages its own tiny flag set instead of RunConfig: it
 * needs no scale/threads/sampling knobs, and CI drives it with flags
 * RunConfig would reject.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/recorder.h"
#include "uarch/machine.h"
#include "uarch/reference.h"
#include "uarch/system.h"
#include "workloads/registry.h"
#include "bench_common.h"

namespace {

double
now()
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now().time_since_epoch()).count();
}

/** Best-of-N wall time of fn(), in seconds. */
template <typename Fn>
double
bestOf(int rounds, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < rounds; ++r) {
        double t0 = now();
        fn();
        double dt = now() - t0;
        if (dt < best)
            best = dt;
    }
    return best;
}

/**
 * The simulator's cache usage pattern: LRU access, insert on miss.
 * The sink folds hit states and eviction victims so the compiler
 * cannot drop work, and doubles as a cheap ref/flat equality check.
 */
template <typename Cache>
std::uint64_t
driveCache(Cache &c, const std::vector<std::uint64_t> &addrs)
{
    std::uint64_t sink = 0;
    for (std::uint64_t a : addrs) {
        auto look = c.access(a);
        if (look.hit) {
            sink += static_cast<std::uint64_t>(look.state);
        } else {
            auto ev = c.insert(a, bds::CoherenceState::Exclusive);
            if (ev.valid)
                sink += ev.lineAddr & 0xff;
        }
    }
    return sink;
}

template <typename Tlb>
std::uint64_t
driveTlb(Tlb &t, const std::vector<std::uint64_t> &addrs)
{
    std::uint64_t sink = 0;
    for (std::uint64_t a : addrs)
        sink += static_cast<std::uint64_t>(t.translateData(a));
    return sink;
}

template <typename Bp>
std::uint64_t
driveBranch(Bp &b, const std::vector<std::uint64_t> &ips,
            const std::vector<bool> &takens)
{
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < ips.size(); ++i)
        sink += b.predictAndTrain(ips[i], takens[i]) ? 1 : 0;
    return sink;
}

/** One per-structure row: reference vs flat on the same stream. */
struct StructureRow
{
    std::string name;
    double refMops = 0.0;
    double flatMops = 0.0;
    double speedup() const
    {
        return refMops > 0.0 ? flatMops / refMops : 0.0;
    }
};

/**
 * Precomputed address stream. With `hot` set, 3/4 of references land
 * in the hot eighth of the footprint (an L1's view: mostly hits, a
 * steady eviction stream). Without it, references are uniform over
 * the whole footprint — the LLC's view under the paper's workloads,
 * whose working sets sweep far past 12 MB.
 */
std::vector<std::uint64_t>
makeCacheStream(std::size_t n, std::uint64_t footprint, bool hot,
                std::uint32_t seed)
{
    bds::Pcg32 rng(seed);
    std::vector<std::uint64_t> addrs;
    addrs.reserve(n);
    std::uint32_t lines =
        static_cast<std::uint32_t>(footprint / 64);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t line = hot && rng.nextBounded(4) != 0
            ? rng.nextBounded(lines / 8)
            : rng.nextBounded(lines);
        addrs.push_back(line * 64ULL + rng.nextBounded(64));
    }
    return addrs;
}

StructureRow
benchCachePattern(const char *name, const bds::CacheConfig &cfg,
                  std::uint64_t footprint, bool hot, std::size_t n,
                  int rounds, std::uint32_t seed)
{
    std::vector<std::uint64_t> addrs =
        makeCacheStream(n, footprint, hot, seed);

    StructureRow row;
    row.name = name;
    std::uint64_t ref_sink = 0, flat_sink = 0;
    double ref_s = bestOf(rounds, [&] {
        bds::refmodel::SetAssocCache c(cfg);
        ref_sink = driveCache(c, addrs);
    });
    double flat_s = bestOf(rounds, [&] {
        bds::SetAssocCache c(cfg);
        flat_sink = driveCache(c, addrs);
    });
    if (ref_sink != flat_sink)
        BDS_FATAL("flat/reference divergence on " << name
                  << ": sinks " << ref_sink << " vs " << flat_sink);
    row.refMops = static_cast<double>(n) / ref_s / 1e6;
    row.flatMops = static_cast<double>(n) / flat_s / 1e6;
    return row;
}

StructureRow
benchTlbPattern(std::size_t n, int rounds)
{
    bds::Pcg32 rng(71);
    std::vector<std::uint64_t> addrs;
    addrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        addrs.push_back(0x10000000ULL
                        + rng.nextBounded(2048) * 4096ULL
                        + rng.nextBounded(4096));

    bds::TlbConfig l1i{64, 4}, l1d{64, 4}, stlb{512, 4};
    StructureRow row;
    row.name = "tlb_translate";
    std::uint64_t ref_sink = 0, flat_sink = 0;
    double ref_s = bestOf(rounds, [&] {
        bds::refmodel::TwoLevelTlb t(l1i, l1d, stlb, 4096);
        ref_sink = driveTlb(t, addrs);
    });
    double flat_s = bestOf(rounds, [&] {
        bds::TwoLevelTlb t(l1i, l1d, stlb, 4096);
        flat_sink = driveTlb(t, addrs);
    });
    if (ref_sink != flat_sink)
        BDS_FATAL("flat/reference TLB divergence: sinks " << ref_sink
                  << " vs " << flat_sink);
    row.refMops = static_cast<double>(n) / ref_s / 1e6;
    row.flatMops = static_cast<double>(n) / flat_s / 1e6;
    return row;
}

StructureRow
benchBranchPattern(std::size_t n, int rounds)
{
    bds::Pcg32 rng(83);
    std::vector<std::uint64_t> ips;
    std::vector<bool> takens;
    ips.reserve(n);
    takens.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ips.push_back(0x400000ULL + rng.nextBounded(1024) * 4ULL);
        takens.push_back(rng.nextBounded(10) < 7);
    }

    StructureRow row;
    row.name = "branch_predict";
    std::uint64_t ref_sink = 0, flat_sink = 0;
    double ref_s = bestOf(rounds, [&] {
        bds::refmodel::GshareBranchPredictor b(12);
        ref_sink = driveBranch(b, ips, takens);
    });
    double flat_s = bestOf(rounds, [&] {
        bds::GshareBranchPredictor b(12);
        flat_sink = driveBranch(b, ips, takens);
    });
    if (ref_sink != flat_sink)
        BDS_FATAL("flat/reference branch divergence: sinks "
                  << ref_sink << " vs " << flat_sink);
    row.refMops = static_cast<double>(n) / ref_s / 1e6;
    row.flatMops = static_cast<double>(n) / flat_s / 1e6;
    return row;
}

/** End-to-end replay measurement. */
struct EndToEnd
{
    std::size_t traceOps = 0;
    double detailOpsPerSec = 0.0;
    double warmOpsPerSec = 0.0;
    std::string cyclesHex; ///< aggregate cycles, %a format
};

/**
 * Record a quick-scale trace from real workloads, then time pure
 * replay (no generation cost) on the detail and warming paths.
 */
EndToEnd
benchEndToEnd(bool quick)
{
    // BDS_MACHINE is honored even though this bench skips RunConfig:
    // DSE geometries can be speed-checked like the default.
    const bds::NodeConfig machine = bdsbench::benchMachineFromEnv();
    bds::WorkloadRunner runner(machine, bds::ScaleProfile::quick(),
                               42);
    std::vector<bds::WorkloadId> picks = {
        {bds::Algorithm::Sort, bds::StackKind::Hadoop},
        {bds::Algorithm::WordCount, bds::StackKind::Hadoop},
    };
    if (!quick) {
        picks.push_back(
            {bds::Algorithm::PageRank, bds::StackKind::Spark});
        picks.push_back(
            {bds::Algorithm::JoinQuery, bds::StackKind::Hadoop});
    }

    bds::TraceRecorder rec;
    struct RecTarget : bds::ExecTarget {
        bds::TraceRecorder &r;
        unsigned cores;
        RecTarget(bds::TraceRecorder &rr, unsigned c)
            : r(rr), cores(c) {}
        void consume(unsigned c, const bds::MicroOp &op) override
        {
            r.consume(c, op);
        }
        void dmaFill(std::uint64_t a, std::uint64_t n) override
        {
            r.recordDma(a, n);
        }
        unsigned numCores() const override { return cores; }
    } target(rec, machine.numCores);
    for (const auto &id : picks)
        runner.execute(id, target, runner.nodeDataSeed(id, 0));

    EndToEnd e;
    e.traceOps = rec.size();
    int rounds = quick ? 1 : 3;

    double cycles = 0.0;
    double detail_s = bestOf(rounds, [&] {
        bds::SystemModel sys(machine);
        rec.replay(sys, [&](std::uint64_t a, std::uint64_t n) {
            sys.dmaFill(a, n);
        });
        cycles = sys.aggregateCounters().cycles;
    });
    e.detailOpsPerSec = static_cast<double>(e.traceOps) / detail_s;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", cycles);
    e.cyclesHex = buf;

    double warm_s = bestOf(quick ? 1 : 2, [&] {
        bds::SystemModel sys(machine);
        sys.setCounterFreeze(true);
        rec.replay(sys, [&](std::uint64_t a, std::uint64_t n) {
            sys.dmaFill(a, n);
        });
    });
    e.warmOpsPerSec = static_cast<double>(e.traceOps) / warm_s;
    return e;
}

/**
 * Pull one numeric field out of a committed BENCH_uarch_speed.json.
 * The file is our own flat emission, so a substring scan is enough.
 * @return False when the key is missing.
 */
bool
findJsonNumber(const std::string &text, const std::string &key,
               double &out)
{
    std::size_t pos = text.find('"' + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos = text.find(':', pos);
    out = std::strtod(text.c_str() + pos + 1, nullptr);
    return true;
}

/**
 * Compare this run against a committed baseline JSON: flag any
 * per-structure speedup or the end-to-end detail throughput falling
 * more than `tolerance` below the committed value.
 * @return Number of regressions found.
 */
int
checkAgainstBaseline(const std::string &path,
                     const std::vector<StructureRow> &rows,
                     const EndToEnd &e2e, double tolerance)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "uarch_speed: cannot read baseline " << path
                  << "\n";
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    int regressions = 0;
    auto check = [&](const std::string &what, const std::string &key,
                     double measured) {
        double committed = 0.0;
        if (!findJsonNumber(text, key, committed)) {
            std::cerr << "  baseline has no \"" << key
                      << "\" — skipping " << what << "\n";
            return;
        }
        double floor = committed * (1.0 - tolerance);
        if (measured < floor) {
            std::cerr << "  REGRESSION " << what << ": " << measured
                      << " vs committed " << committed << " (floor "
                      << floor << ")\n";
            ++regressions;
        } else {
            std::cerr << "  ok " << what << ": " << measured
                      << " vs committed " << committed << "\n";
        }
    };

    std::cerr << "checking against " << path << " (tolerance "
              << tolerance * 100 << "%)\n";
    // Per-structure speedups are ratios measured within one host, so
    // they transfer across machines; the absolute end-to-end ops/s
    // does not — run --warn-only when the baseline is foreign.
    for (const auto &r : rows)
        check("speedup(" + r.name + ")", r.name + "_speedup",
              r.speedup());
    check("detail_ops_per_sec", "detail_ops_per_sec",
          e2e.detailOpsPerSec);
    return regressions;
}

void
writeJson(const std::string &path, bool quick,
          const std::vector<StructureRow> &rows, const EndToEnd &e2e)
{
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"uarch_speed\",\n"
       << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
    bdsbench::writeEnvironmentJson(os, "  ");
    os << ",\n  \"per_structure\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        char line[256];
        std::snprintf(line, sizeof line,
                      "%s    {\"name\": \"%s\", \"ref_mops\": %.2f, "
                      "\"flat_mops\": %.2f, \"%s_speedup\": %.3f}",
                      i ? ",\n" : "\n", r.name.c_str(), r.refMops,
                      r.flatMops, r.name.c_str(), r.speedup());
        os << line;
    }
    os << "\n  ],\n"
       << "  \"end_to_end\": {\n"
       << "    \"trace_ops\": " << e2e.traceOps << ",\n";
    char line[128];
    std::snprintf(line, sizeof line,
                  "    \"detail_ops_per_sec\": %.0f,\n"
                  "    \"warm_ops_per_sec\": %.0f,\n",
                  e2e.detailOpsPerSec, e2e.warmOpsPerSec);
    os << line
       << "    \"aggregate_cycles_hex\": \"" << e2e.cyclesHex
       << "\"\n  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false, warn_only = false;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick") {
            quick = true;
        } else if (a == "--warn-only") {
            warn_only = true;
        } else if (a == "--check" && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::cerr << "usage: uarch_speed [--quick] "
                         "[--check FILE] [--warn-only]\n";
            return 2;
        }
    }

    std::size_t n = quick ? 400000 : 2000000;
    int rounds = quick ? 1 : 3;

    std::cerr << "[bench] per-structure streams (" << n
              << " ops, best of " << rounds << ")\n";
    std::vector<StructureRow> rows;
    rows.push_back(benchCachePattern(
        "cache_l1_pattern", {32 * 1024, 8, 64}, 64 * 1024,
        /*hot=*/true, n, rounds, 13));
    rows.push_back(benchCachePattern(
        "cache_l3_stream", {12 * 1024 * 1024, 16, 64}, 64ULL << 20,
        /*hot=*/false, n, rounds, 29));
    rows.push_back(benchTlbPattern(n, rounds));
    rows.push_back(benchBranchPattern(n, rounds));

    std::cerr << "[bench] end-to-end replay of a recorded "
              << (quick ? "2" : "4") << "-workload trace\n";
    EndToEnd e2e = benchEndToEnd(quick);

    std::printf("uarch detail-simulation throughput (%s mode)\n\n",
                quick ? "quick" : "full");
    std::printf("  %-18s %12s %12s %9s\n", "structure", "ref Mops/s",
                "flat Mops/s", "speedup");
    for (const auto &r : rows)
        std::printf("  %-18s %12.2f %12.2f %8.2fx\n", r.name.c_str(),
                    r.refMops, r.flatMops, r.speedup());
    std::printf("\n  end-to-end replay: %zu ops\n"
                "    detail path  %10.0f ops/s\n"
                "    warming path %10.0f ops/s\n"
                "    aggregate cycles %s\n",
                e2e.traceOps, e2e.detailOpsPerSec, e2e.warmOpsPerSec,
                e2e.cyclesHex.c_str());

    // Check before writing: the baseline may be this run's own
    // output path, and a fresh write would compare the run to itself.
    int regressions = 0;
    if (!check_path.empty())
        regressions = checkAgainstBaseline(check_path, rows, e2e, 0.20);

    writeJson("BENCH_uarch_speed.json", quick, rows, e2e);
    std::printf("\n-> BENCH_uarch_speed.json\n");

    if (!check_path.empty()) {
        if (regressions > 0) {
            std::printf("\nperf check: %d regression(s)%s\n",
                        regressions,
                        warn_only ? " (warn-only)" : "");
            return warn_only ? 0 : 1;
        }
        std::printf("\nperf check: PASS\n");
    }
    return 0;
}
