file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_sweep.dir/ablation_cache_sweep.cc.o"
  "CMakeFiles/ablation_cache_sweep.dir/ablation_cache_sweep.cc.o.d"
  "ablation_cache_sweep"
  "ablation_cache_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
