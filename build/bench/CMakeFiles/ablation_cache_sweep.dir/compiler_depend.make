# Empty compiler generated dependencies file for ablation_cache_sweep.
# This may be replaced when dependencies are built.
