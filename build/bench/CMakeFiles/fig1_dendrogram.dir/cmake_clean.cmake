file(REMOVE_RECURSE
  "CMakeFiles/fig1_dendrogram.dir/fig1_dendrogram.cc.o"
  "CMakeFiles/fig1_dendrogram.dir/fig1_dendrogram.cc.o.d"
  "fig1_dendrogram"
  "fig1_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
