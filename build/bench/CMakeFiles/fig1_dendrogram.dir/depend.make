# Empty dependencies file for fig1_dendrogram.
# This may be replaced when dependencies are built.
