file(REMOVE_RECURSE
  "CMakeFiles/fig2_pc12_scatter.dir/fig2_pc12_scatter.cc.o"
  "CMakeFiles/fig2_pc12_scatter.dir/fig2_pc12_scatter.cc.o.d"
  "fig2_pc12_scatter"
  "fig2_pc12_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pc12_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
