# Empty compiler generated dependencies file for fig2_pc12_scatter.
# This may be replaced when dependencies are built.
