file(REMOVE_RECURSE
  "CMakeFiles/fig3_pc34_scatter.dir/fig3_pc34_scatter.cc.o"
  "CMakeFiles/fig3_pc34_scatter.dir/fig3_pc34_scatter.cc.o.d"
  "fig3_pc34_scatter"
  "fig3_pc34_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pc34_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
