# Empty compiler generated dependencies file for fig3_pc34_scatter.
# This may be replaced when dependencies are built.
