file(REMOVE_RECURSE
  "CMakeFiles/fig4_factor_loadings.dir/fig4_factor_loadings.cc.o"
  "CMakeFiles/fig4_factor_loadings.dir/fig4_factor_loadings.cc.o.d"
  "fig4_factor_loadings"
  "fig4_factor_loadings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_factor_loadings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
