# Empty compiler generated dependencies file for fig4_factor_loadings.
# This may be replaced when dependencies are built.
