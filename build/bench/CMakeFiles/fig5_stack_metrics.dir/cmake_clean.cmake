file(REMOVE_RECURSE
  "CMakeFiles/fig5_stack_metrics.dir/fig5_stack_metrics.cc.o"
  "CMakeFiles/fig5_stack_metrics.dir/fig5_stack_metrics.cc.o.d"
  "fig5_stack_metrics"
  "fig5_stack_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stack_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
