# Empty compiler generated dependencies file for fig5_stack_metrics.
# This may be replaced when dependencies are built.
