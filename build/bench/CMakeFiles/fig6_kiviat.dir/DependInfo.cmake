
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_kiviat.cc" "bench/CMakeFiles/fig6_kiviat.dir/fig6_kiviat.cc.o" "gcc" "bench/CMakeFiles/fig6_kiviat.dir/fig6_kiviat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/bds_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
