file(REMOVE_RECURSE
  "CMakeFiles/fig6_kiviat.dir/fig6_kiviat.cc.o"
  "CMakeFiles/fig6_kiviat.dir/fig6_kiviat.cc.o.d"
  "fig6_kiviat"
  "fig6_kiviat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_kiviat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
