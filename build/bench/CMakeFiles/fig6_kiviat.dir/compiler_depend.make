# Empty compiler generated dependencies file for fig6_kiviat.
# This may be replaced when dependencies are built.
