
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_uarch.cc" "bench/CMakeFiles/micro_uarch.dir/micro_uarch.cc.o" "gcc" "bench/CMakeFiles/micro_uarch.dir/micro_uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
