# Empty compiler generated dependencies file for micro_uarch.
# This may be replaced when dependencies are built.
