# Empty compiler generated dependencies file for table2_metrics.
# This may be replaced when dependencies are built.
