file(REMOVE_RECURSE
  "CMakeFiles/table4_kmeans_bic.dir/table4_kmeans_bic.cc.o"
  "CMakeFiles/table4_kmeans_bic.dir/table4_kmeans_bic.cc.o.d"
  "table4_kmeans_bic"
  "table4_kmeans_bic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_kmeans_bic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
