# Empty dependencies file for table4_kmeans_bic.
# This may be replaced when dependencies are built.
