file(REMOVE_RECURSE
  "CMakeFiles/table5_representatives.dir/table5_representatives.cc.o"
  "CMakeFiles/table5_representatives.dir/table5_representatives.cc.o.d"
  "table5_representatives"
  "table5_representatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_representatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
