# Empty dependencies file for table5_representatives.
# This may be replaced when dependencies are built.
