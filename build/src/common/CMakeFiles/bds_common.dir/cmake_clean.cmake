file(REMOVE_RECURSE
  "CMakeFiles/bds_common.dir/log.cc.o"
  "CMakeFiles/bds_common.dir/log.cc.o.d"
  "CMakeFiles/bds_common.dir/rng.cc.o"
  "CMakeFiles/bds_common.dir/rng.cc.o.d"
  "CMakeFiles/bds_common.dir/table.cc.o"
  "CMakeFiles/bds_common.dir/table.cc.o.d"
  "libbds_common.a"
  "libbds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
