file(REMOVE_RECURSE
  "libbds_common.a"
)
