
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/bds_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/bds_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/csvio.cc" "src/core/CMakeFiles/bds_core.dir/csvio.cc.o" "gcc" "src/core/CMakeFiles/bds_core.dir/csvio.cc.o.d"
  "/root/repo/src/core/findings.cc" "src/core/CMakeFiles/bds_core.dir/findings.cc.o" "gcc" "src/core/CMakeFiles/bds_core.dir/findings.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/bds_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/bds_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/bds_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/bds_core.dir/report.cc.o.d"
  "/root/repo/src/core/subset.cc" "src/core/CMakeFiles/bds_core.dir/subset.cc.o" "gcc" "src/core/CMakeFiles/bds_core.dir/subset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/bds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
