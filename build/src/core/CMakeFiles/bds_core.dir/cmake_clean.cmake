file(REMOVE_RECURSE
  "CMakeFiles/bds_core.dir/analysis.cc.o"
  "CMakeFiles/bds_core.dir/analysis.cc.o.d"
  "CMakeFiles/bds_core.dir/csvio.cc.o"
  "CMakeFiles/bds_core.dir/csvio.cc.o.d"
  "CMakeFiles/bds_core.dir/findings.cc.o"
  "CMakeFiles/bds_core.dir/findings.cc.o.d"
  "CMakeFiles/bds_core.dir/pipeline.cc.o"
  "CMakeFiles/bds_core.dir/pipeline.cc.o.d"
  "CMakeFiles/bds_core.dir/report.cc.o"
  "CMakeFiles/bds_core.dir/report.cc.o.d"
  "CMakeFiles/bds_core.dir/subset.cc.o"
  "CMakeFiles/bds_core.dir/subset.cc.o.d"
  "libbds_core.a"
  "libbds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
