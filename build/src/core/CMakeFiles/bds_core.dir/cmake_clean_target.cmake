file(REMOVE_RECURSE
  "libbds_core.a"
)
