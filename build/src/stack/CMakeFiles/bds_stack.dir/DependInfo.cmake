
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/dataset.cc" "src/stack/CMakeFiles/bds_stack.dir/dataset.cc.o" "gcc" "src/stack/CMakeFiles/bds_stack.dir/dataset.cc.o.d"
  "/root/repo/src/stack/engine.cc" "src/stack/CMakeFiles/bds_stack.dir/engine.cc.o" "gcc" "src/stack/CMakeFiles/bds_stack.dir/engine.cc.o.d"
  "/root/repo/src/stack/hadoop.cc" "src/stack/CMakeFiles/bds_stack.dir/hadoop.cc.o" "gcc" "src/stack/CMakeFiles/bds_stack.dir/hadoop.cc.o.d"
  "/root/repo/src/stack/partition.cc" "src/stack/CMakeFiles/bds_stack.dir/partition.cc.o" "gcc" "src/stack/CMakeFiles/bds_stack.dir/partition.cc.o.d"
  "/root/repo/src/stack/spark.cc" "src/stack/CMakeFiles/bds_stack.dir/spark.cc.o" "gcc" "src/stack/CMakeFiles/bds_stack.dir/spark.cc.o.d"
  "/root/repo/src/stack/sql.cc" "src/stack/CMakeFiles/bds_stack.dir/sql.cc.o" "gcc" "src/stack/CMakeFiles/bds_stack.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
