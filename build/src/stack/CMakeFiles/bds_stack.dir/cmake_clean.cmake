file(REMOVE_RECURSE
  "CMakeFiles/bds_stack.dir/dataset.cc.o"
  "CMakeFiles/bds_stack.dir/dataset.cc.o.d"
  "CMakeFiles/bds_stack.dir/engine.cc.o"
  "CMakeFiles/bds_stack.dir/engine.cc.o.d"
  "CMakeFiles/bds_stack.dir/hadoop.cc.o"
  "CMakeFiles/bds_stack.dir/hadoop.cc.o.d"
  "CMakeFiles/bds_stack.dir/partition.cc.o"
  "CMakeFiles/bds_stack.dir/partition.cc.o.d"
  "CMakeFiles/bds_stack.dir/spark.cc.o"
  "CMakeFiles/bds_stack.dir/spark.cc.o.d"
  "CMakeFiles/bds_stack.dir/sql.cc.o"
  "CMakeFiles/bds_stack.dir/sql.cc.o.d"
  "libbds_stack.a"
  "libbds_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
