file(REMOVE_RECURSE
  "libbds_stack.a"
)
