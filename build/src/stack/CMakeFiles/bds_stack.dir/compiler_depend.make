# Empty compiler generated dependencies file for bds_stack.
# This may be replaced when dependencies are built.
