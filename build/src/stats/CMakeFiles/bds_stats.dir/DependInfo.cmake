
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bic.cc" "src/stats/CMakeFiles/bds_stats.dir/bic.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/bic.cc.o.d"
  "/root/repo/src/stats/distance.cc" "src/stats/CMakeFiles/bds_stats.dir/distance.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/distance.cc.o.d"
  "/root/repo/src/stats/eigen.cc" "src/stats/CMakeFiles/bds_stats.dir/eigen.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/eigen.cc.o.d"
  "/root/repo/src/stats/hcluster.cc" "src/stats/CMakeFiles/bds_stats.dir/hcluster.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/hcluster.cc.o.d"
  "/root/repo/src/stats/kmeans.cc" "src/stats/CMakeFiles/bds_stats.dir/kmeans.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/kmeans.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/bds_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/normalize.cc" "src/stats/CMakeFiles/bds_stats.dir/normalize.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/normalize.cc.o.d"
  "/root/repo/src/stats/pca.cc" "src/stats/CMakeFiles/bds_stats.dir/pca.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/pca.cc.o.d"
  "/root/repo/src/stats/silhouette.cc" "src/stats/CMakeFiles/bds_stats.dir/silhouette.cc.o" "gcc" "src/stats/CMakeFiles/bds_stats.dir/silhouette.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
