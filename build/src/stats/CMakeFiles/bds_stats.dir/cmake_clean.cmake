file(REMOVE_RECURSE
  "CMakeFiles/bds_stats.dir/bic.cc.o"
  "CMakeFiles/bds_stats.dir/bic.cc.o.d"
  "CMakeFiles/bds_stats.dir/distance.cc.o"
  "CMakeFiles/bds_stats.dir/distance.cc.o.d"
  "CMakeFiles/bds_stats.dir/eigen.cc.o"
  "CMakeFiles/bds_stats.dir/eigen.cc.o.d"
  "CMakeFiles/bds_stats.dir/hcluster.cc.o"
  "CMakeFiles/bds_stats.dir/hcluster.cc.o.d"
  "CMakeFiles/bds_stats.dir/kmeans.cc.o"
  "CMakeFiles/bds_stats.dir/kmeans.cc.o.d"
  "CMakeFiles/bds_stats.dir/matrix.cc.o"
  "CMakeFiles/bds_stats.dir/matrix.cc.o.d"
  "CMakeFiles/bds_stats.dir/normalize.cc.o"
  "CMakeFiles/bds_stats.dir/normalize.cc.o.d"
  "CMakeFiles/bds_stats.dir/pca.cc.o"
  "CMakeFiles/bds_stats.dir/pca.cc.o.d"
  "CMakeFiles/bds_stats.dir/silhouette.cc.o"
  "CMakeFiles/bds_stats.dir/silhouette.cc.o.d"
  "libbds_stats.a"
  "libbds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
