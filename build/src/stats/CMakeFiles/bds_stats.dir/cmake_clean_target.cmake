file(REMOVE_RECURSE
  "libbds_stats.a"
)
