# Empty compiler generated dependencies file for bds_stats.
# This may be replaced when dependencies are built.
