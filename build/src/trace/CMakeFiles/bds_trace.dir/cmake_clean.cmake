file(REMOVE_RECURSE
  "CMakeFiles/bds_trace.dir/memlayout.cc.o"
  "CMakeFiles/bds_trace.dir/memlayout.cc.o.d"
  "CMakeFiles/bds_trace.dir/recorder.cc.o"
  "CMakeFiles/bds_trace.dir/recorder.cc.o.d"
  "CMakeFiles/bds_trace.dir/runtime.cc.o"
  "CMakeFiles/bds_trace.dir/runtime.cc.o.d"
  "libbds_trace.a"
  "libbds_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
