file(REMOVE_RECURSE
  "libbds_trace.a"
)
