# Empty compiler generated dependencies file for bds_trace.
# This may be replaced when dependencies are built.
