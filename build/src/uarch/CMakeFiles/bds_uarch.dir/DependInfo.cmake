
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/bds_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/bds_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/config.cc" "src/uarch/CMakeFiles/bds_uarch.dir/config.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/config.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/bds_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/core.cc.o.d"
  "/root/repo/src/uarch/metrics.cc" "src/uarch/CMakeFiles/bds_uarch.dir/metrics.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/metrics.cc.o.d"
  "/root/repo/src/uarch/pmc.cc" "src/uarch/CMakeFiles/bds_uarch.dir/pmc.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/pmc.cc.o.d"
  "/root/repo/src/uarch/system.cc" "src/uarch/CMakeFiles/bds_uarch.dir/system.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/system.cc.o.d"
  "/root/repo/src/uarch/tlb.cc" "src/uarch/CMakeFiles/bds_uarch.dir/tlb.cc.o" "gcc" "src/uarch/CMakeFiles/bds_uarch.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
