file(REMOVE_RECURSE
  "CMakeFiles/bds_uarch.dir/branch.cc.o"
  "CMakeFiles/bds_uarch.dir/branch.cc.o.d"
  "CMakeFiles/bds_uarch.dir/cache.cc.o"
  "CMakeFiles/bds_uarch.dir/cache.cc.o.d"
  "CMakeFiles/bds_uarch.dir/config.cc.o"
  "CMakeFiles/bds_uarch.dir/config.cc.o.d"
  "CMakeFiles/bds_uarch.dir/core.cc.o"
  "CMakeFiles/bds_uarch.dir/core.cc.o.d"
  "CMakeFiles/bds_uarch.dir/metrics.cc.o"
  "CMakeFiles/bds_uarch.dir/metrics.cc.o.d"
  "CMakeFiles/bds_uarch.dir/pmc.cc.o"
  "CMakeFiles/bds_uarch.dir/pmc.cc.o.d"
  "CMakeFiles/bds_uarch.dir/system.cc.o"
  "CMakeFiles/bds_uarch.dir/system.cc.o.d"
  "CMakeFiles/bds_uarch.dir/tlb.cc.o"
  "CMakeFiles/bds_uarch.dir/tlb.cc.o.d"
  "libbds_uarch.a"
  "libbds_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
