file(REMOVE_RECURSE
  "libbds_uarch.a"
)
