# Empty dependencies file for bds_uarch.
# This may be replaced when dependencies are built.
