file(REMOVE_RECURSE
  "CMakeFiles/bds_workloads.dir/datagen.cc.o"
  "CMakeFiles/bds_workloads.dir/datagen.cc.o.d"
  "CMakeFiles/bds_workloads.dir/offline.cc.o"
  "CMakeFiles/bds_workloads.dir/offline.cc.o.d"
  "CMakeFiles/bds_workloads.dir/registry.cc.o"
  "CMakeFiles/bds_workloads.dir/registry.cc.o.d"
  "libbds_workloads.a"
  "libbds_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
