file(REMOVE_RECURSE
  "libbds_workloads.a"
)
