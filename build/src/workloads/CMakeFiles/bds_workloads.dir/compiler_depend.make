# Empty compiler generated dependencies file for bds_workloads.
# This may be replaced when dependencies are built.
