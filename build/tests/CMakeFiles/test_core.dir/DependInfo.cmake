
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analysis.cc" "tests/CMakeFiles/test_core.dir/core/test_analysis.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_analysis.cc.o.d"
  "/root/repo/tests/core/test_csvio.cc" "tests/CMakeFiles/test_core.dir/core/test_csvio.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_csvio.cc.o.d"
  "/root/repo/tests/core/test_findings.cc" "tests/CMakeFiles/test_core.dir/core/test_findings.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_findings.cc.o.d"
  "/root/repo/tests/core/test_pipeline.cc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cc.o.d"
  "/root/repo/tests/core/test_robustness.cc" "tests/CMakeFiles/test_core.dir/core/test_robustness.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_robustness.cc.o.d"
  "/root/repo/tests/core/test_subset.cc" "tests/CMakeFiles/test_core.dir/core/test_subset.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_subset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
