file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_analysis.cc.o"
  "CMakeFiles/test_core.dir/core/test_analysis.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_csvio.cc.o"
  "CMakeFiles/test_core.dir/core/test_csvio.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_findings.cc.o"
  "CMakeFiles/test_core.dir/core/test_findings.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cc.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_robustness.cc.o"
  "CMakeFiles/test_core.dir/core/test_robustness.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_subset.cc.o"
  "CMakeFiles/test_core.dir/core/test_subset.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
