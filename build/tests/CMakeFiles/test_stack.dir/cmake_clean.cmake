file(REMOVE_RECURSE
  "CMakeFiles/test_stack.dir/stack/test_engine.cc.o"
  "CMakeFiles/test_stack.dir/stack/test_engine.cc.o.d"
  "CMakeFiles/test_stack.dir/stack/test_internals.cc.o"
  "CMakeFiles/test_stack.dir/stack/test_internals.cc.o.d"
  "CMakeFiles/test_stack.dir/stack/test_sql.cc.o"
  "CMakeFiles/test_stack.dir/stack/test_sql.cc.o.d"
  "test_stack"
  "test_stack.pdb"
  "test_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
