
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_bic.cc" "tests/CMakeFiles/test_stats.dir/stats/test_bic.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_bic.cc.o.d"
  "/root/repo/tests/stats/test_distance.cc" "tests/CMakeFiles/test_stats.dir/stats/test_distance.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_distance.cc.o.d"
  "/root/repo/tests/stats/test_eigen.cc" "tests/CMakeFiles/test_stats.dir/stats/test_eigen.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_eigen.cc.o.d"
  "/root/repo/tests/stats/test_hcluster.cc" "tests/CMakeFiles/test_stats.dir/stats/test_hcluster.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_hcluster.cc.o.d"
  "/root/repo/tests/stats/test_kmeans.cc" "tests/CMakeFiles/test_stats.dir/stats/test_kmeans.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_kmeans.cc.o.d"
  "/root/repo/tests/stats/test_matrix.cc" "tests/CMakeFiles/test_stats.dir/stats/test_matrix.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_matrix.cc.o.d"
  "/root/repo/tests/stats/test_normalize.cc" "tests/CMakeFiles/test_stats.dir/stats/test_normalize.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_normalize.cc.o.d"
  "/root/repo/tests/stats/test_pca.cc" "tests/CMakeFiles/test_stats.dir/stats/test_pca.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_pca.cc.o.d"
  "/root/repo/tests/stats/test_silhouette.cc" "tests/CMakeFiles/test_stats.dir/stats/test_silhouette.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_silhouette.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/bds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
