file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_bic.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_bic.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_distance.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_distance.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_eigen.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_eigen.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_hcluster.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_hcluster.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_kmeans.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_kmeans.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_matrix.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_matrix.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_normalize.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_normalize.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_pca.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_pca.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_silhouette.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_silhouette.cc.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
