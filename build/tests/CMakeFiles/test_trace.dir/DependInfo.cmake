
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_memlayout.cc" "tests/CMakeFiles/test_trace.dir/trace/test_memlayout.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_memlayout.cc.o.d"
  "/root/repo/tests/trace/test_recorder.cc" "tests/CMakeFiles/test_trace.dir/trace/test_recorder.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_recorder.cc.o.d"
  "/root/repo/tests/trace/test_runtime.cc" "tests/CMakeFiles/test_trace.dir/trace/test_runtime.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
