file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/test_memlayout.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_memlayout.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_recorder.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_recorder.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_runtime.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_runtime.cc.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
