
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/uarch/test_branch.cc" "tests/CMakeFiles/test_uarch.dir/uarch/test_branch.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/uarch/test_branch.cc.o.d"
  "/root/repo/tests/uarch/test_cache.cc" "tests/CMakeFiles/test_uarch.dir/uarch/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/uarch/test_cache.cc.o.d"
  "/root/repo/tests/uarch/test_metrics.cc" "tests/CMakeFiles/test_uarch.dir/uarch/test_metrics.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/uarch/test_metrics.cc.o.d"
  "/root/repo/tests/uarch/test_system.cc" "tests/CMakeFiles/test_uarch.dir/uarch/test_system.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/uarch/test_system.cc.o.d"
  "/root/repo/tests/uarch/test_tlb.cc" "tests/CMakeFiles/test_uarch.dir/uarch/test_tlb.cc.o" "gcc" "tests/CMakeFiles/test_uarch.dir/uarch/test_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/bds_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bds_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
