file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/uarch/test_branch.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_branch.cc.o.d"
  "CMakeFiles/test_uarch.dir/uarch/test_cache.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_cache.cc.o.d"
  "CMakeFiles/test_uarch.dir/uarch/test_metrics.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_metrics.cc.o.d"
  "CMakeFiles/test_uarch.dir/uarch/test_system.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_system.cc.o.d"
  "CMakeFiles/test_uarch.dir/uarch/test_tlb.cc.o"
  "CMakeFiles/test_uarch.dir/uarch/test_tlb.cc.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
