# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
add_test(integration_suite "/root/repo/build/tests/test_integration")
set_tests_properties(integration_suite PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;77;add_test;/root/repo/tests/CMakeLists.txt;0;")
