/**
 * @file
 * Full characterization walk-through: run the 32-workload suite,
 * normalize + PCA + cluster the metrics, and print the similarity
 * analysis — the paper's Sections III-V as twenty lines of user
 * code.
 *
 * Runs at quick scale by default so it finishes in seconds; pass
 * "standard" or "full" as argv[1] for the larger scales, and a
 * worker-thread count as argv[2] (default: all cores; the result is
 * identical for every thread count — see docs/THREADING.md). Pass
 * "sampled" as a trailing argument to run the sampled-simulation
 * path side by side with the full sweep and see how closely the
 * estimated metrics track the detailed ones (docs/SAMPLING.md).
 *
 * `characterize_suite --list-metrics` prints the Table II metric
 * schema — name, unit kind, derivation, and description — straight
 * from src/metrics (docs/METRICS.md) and exits.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/report.h"
#include "metrics/schema.h"
#include "sample/characterizer.h"
#include "workloads/registry.h"

namespace {

/** Print the metric schema as an aligned table and exit. */
int
listMetrics()
{
    bds::TextTable t({"#", "NAME", "UNIT", "DERIVATION",
                      "DESCRIPTION"});
    for (const bds::MetricSpec &spec : bds::metricSchema())
        t.addRow({std::to_string(
                      static_cast<std::size_t>(spec.id) + 1),
                  spec.name, bds::unitKindName(spec.unit),
                  bds::metricFormula(spec), spec.description});
    t.print(std::cout);
    std::cout << '\n' << t.rows()
              << " metrics (the paper's Table II); pass any subset "
                 "of the NAME column to MetricSet::fromNames().\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bds;

    bool sampled = false;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (auto it = args.begin(); it != args.end();)
        if (*it == "sampled") {
            sampled = true;
            it = args.erase(it);
        } else if (*it == "--list-metrics") {
            return listMetrics();
        } else {
            ++it;
        }

    std::string scale_name = !args.empty() ? args[0] : "quick";
    ScaleProfile scale = scale_name == "full" ? ScaleProfile::full()
        : scale_name == "standard"            ? ScaleProfile::standard()
                                              : ScaleProfile::quick();
    ParallelOptions par;
    if (args.size() > 1)
        par.threads = static_cast<unsigned>(
            std::strtoul(args[1].c_str(), nullptr, 10));

    // 1. Measure: 45 metrics per workload on a simulated node; the
    //    sweep fans out one pool task per workload.
    std::cout << "characterizing 32 workloads at scale '" << scale_name
              << "' on " << par.resolved() << " thread(s)...\n";
    WorkloadRunner runner(NodeConfig::defaultSim(), scale, 42);
    runner.setParallel(par);
    SweepTiming timing;
    Matrix metrics = runner.runAll(nullptr, &timing);
    std::cout << "swept the suite in " << timing.totalSeconds
              << " s\n";
    std::vector<std::string> names;
    for (const auto &id : allWorkloads())
        names.push_back(id.name());

    // 1b. Optional: the sampled path next to the full sweep. The
    //     SampledCharacterizer replays only representative intervals
    //     in detail; the pipeline below then runs on its estimated
    //     matrix instead of the measured one.
    PipelineOptions opts;
    opts.parallel = par;
    opts.sampling.enabled = sampled;
    if (sampled) {
        SampledCharacterizer sampler(runner, opts.sampling);
        std::vector<SampledWorkloadResult> details;
        Matrix estimated = sampler.runAll(&details);
        std::uint64_t total = 0, detail = 0;
        for (const auto &d : details) {
            total += d.stats.totalOps;
            detail += d.stats.detailOps;
        }
        std::cout << "sampled sweep: " << total << " uops recorded, "
                  << detail << " simulated in detail ("
                  << (detail ? static_cast<double>(total) / detail : 0)
                  << "x reduction)\n";
        metrics = estimated;
    }

    // 2. Analyze: z-score -> PCA (Kaiser) -> single-linkage
    //    clustering -> BIC-selected K-means (the K sweep reuses the
    //    same thread budget).
    PipelineResult res = runPipeline(metrics, names, opts);

    // 3. Report.
    writePcaSummary(std::cout, res);
    std::cout << '\n' << res.dendrogram.renderAscii(res.names) << '\n';
    writeSimilarityObservations(std::cout, res);
    std::cout << '\n';
    writeStackDifferentiationReport(std::cout, res);
    return 0;
}
