/**
 * @file
 * Full characterization walk-through: run the 32-workload suite,
 * normalize + PCA + cluster the metrics, and print the similarity
 * analysis — the paper's Sections III-V as twenty lines of user
 * code.
 *
 * Runs at quick scale by default so it finishes in seconds; pass
 * "standard" or "full" as argv[1] for the larger scales, and a
 * worker-thread count as argv[2] (default: all cores; the result is
 * identical for every thread count — see docs/THREADING.md).
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/report.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace bds;

    std::string scale_name = argc > 1 ? argv[1] : "quick";
    ScaleProfile scale = scale_name == "full" ? ScaleProfile::full()
        : scale_name == "standard"            ? ScaleProfile::standard()
                                              : ScaleProfile::quick();
    ParallelOptions par;
    if (argc > 2)
        par.threads = static_cast<unsigned>(
            std::strtoul(argv[2], nullptr, 10));

    // 1. Measure: 45 metrics per workload on a simulated node; the
    //    sweep fans out one pool task per workload.
    std::cout << "characterizing 32 workloads at scale '" << scale_name
              << "' on " << par.resolved() << " thread(s)...\n";
    WorkloadRunner runner(NodeConfig::defaultSim(), scale, 42);
    runner.setParallel(par);
    SweepTiming timing;
    Matrix metrics = runner.runAll(nullptr, &timing);
    std::cout << "swept the suite in " << timing.totalSeconds
              << " s\n";
    std::vector<std::string> names;
    for (const auto &id : allWorkloads())
        names.push_back(id.name());

    // 2. Analyze: z-score -> PCA (Kaiser) -> single-linkage
    //    clustering -> BIC-selected K-means (the K sweep reuses the
    //    same thread budget).
    PipelineOptions opts;
    opts.parallel = par;
    PipelineResult res = runPipeline(metrics, names, opts);

    // 3. Report.
    writePcaSummary(std::cout, res);
    std::cout << '\n' << res.dendrogram.renderAscii(res.names) << '\n';
    writeSimilarityObservations(std::cout, res);
    std::cout << '\n';
    writeStackDifferentiationReport(std::cout, res);
    return 0;
}
