/**
 * @file
 * Full characterization walk-through: run the 32-workload suite,
 * normalize + PCA + cluster the metrics, and print the similarity
 * analysis — the paper's Sections III-V as twenty lines of user
 * code.
 *
 * Runs at quick scale by default so it finishes in seconds; pass
 * "standard" or "full" as argv[1] for the larger scales, and a
 * worker-thread count as argv[2] (default: all cores; the result is
 * identical for every thread count — see docs/THREADING.md). Pass
 * "sampled" as a trailing argument to run the sampled-simulation
 * path side by side with the full sweep and see how closely the
 * estimated metrics track the detailed ones (docs/SAMPLING.md).
 * The common flags and BDS_* environment knobs work too — see
 * --help and examples/common.h.
 *
 * `characterize_suite --list-metrics` prints the Table II metric
 * schema — name, unit kind, derivation, and description — straight
 * from src/metrics (docs/METRICS.md) and exits.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bds/bds.h"
#include "common.h"

namespace {

/** Print the metric schema as an aligned table and exit. */
int
listMetrics(std::ostream &os)
{
    bds::TextTable t({"#", "NAME", "UNIT", "DERIVATION",
                      "DESCRIPTION"});
    for (const bds::MetricSpec &spec : bds::metricSchema())
        t.addRow({std::to_string(
                      static_cast<std::size_t>(spec.id) + 1),
                  spec.name, bds::unitKindName(spec.unit),
                  bds::metricFormula(spec), spec.description});
    t.print(os);
    os << '\n' << t.rows()
       << " metrics (the paper's Table II); pass any subset "
          "of the NAME column to MetricSet::fromNames().\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bds;

    const bdsex::ExampleSpec spec{
        "characterize_suite",
        "Characterize the 32-workload suite and print the paper's "
        "similarity analysis.",
        "[quick|standard|full] [threads] [sampled]",
        "Pass --list-metrics to print the Table II metric schema and "
        "exit."};

    return bdsex::runExample(spec, argc, argv, [](
        RunConfig cfg, std::vector<std::string> args,
        bdsex::ExampleIo &io) -> int {

        // Legacy positional interface: a scale word, a numeric thread
        // count, and the word "sampled", in any order after the scale.
        for (auto it = args.begin(); it != args.end();)
            if (*it == "sampled") {
                cfg.sampling.enabled = true;
                it = args.erase(it);
            } else if (*it == "--list-metrics") {
                return listMetrics(io.out);
            } else {
                ++it;
            }
        if (!args.empty())
            cfg.scaleName = args[0];
        if (args.size() > 1)
            cfg.parallel.threads = static_cast<unsigned>(
                detail::parseUint("threads", args[1]));

        Session session(cfg);

        // 1. Measure: 45 metrics per workload on a simulated node;
        //    the sweep fans out one pool task per workload.
        std::cerr << "characterizing 32 workloads at scale '"
                  << cfg.scaleName << "' on "
                  << cfg.parallel.resolved() << " thread(s)...\n";
        WorkloadRunner runner = WorkloadRunner::fromRunConfig(cfg);
        Matrix metrics;
        SweepReport report;
        {
            StageTimer stage(session, "characterize");
            SweepTiming timing;
            metrics = runner.runAll(nullptr, &timing, &report);
            std::cerr << "swept the suite in " << timing.totalSeconds
                      << " s\n";
        }
        session.recordSweep(report);
        // Under quarantine the analysis continues on the survivors;
        // on a clean run this is all 32 workloads.
        std::vector<std::string> names = report.survivorNames();

        // 1b. Optional: the sampled path next to the full sweep. The
        //     SampledCharacterizer replays only representative
        //     intervals in detail; the pipeline below then runs on
        //     its estimated matrix instead of the measured one.
        if (cfg.sampling.enabled) {
            StageTimer stage(session, "sample");
            SampledCharacterizer sampler(runner, cfg.sampling);
            // --ckpt: restore representative-interval state from the
            // shared cache instead of re-warming (docs/CHECKPOINT.md).
            if (cfg.ckpt.enabled)
                sampler.setCheckpoints(checkpointContextFor(cfg));
            std::vector<SampledWorkloadResult> details;
            SweepReport sampled_report;
            Matrix estimated = sampler.runAll(&details,
                                              &sampled_report);
            session.recordSweep(sampled_report);
            names = sampled_report.survivorNames();
            std::uint64_t total = 0, detail_ops = 0;
            for (const auto &d : details) {
                total += d.stats.totalOps;
                detail_ops += d.stats.detailOps;
            }
            std::cerr << "sampled sweep: " << total
                      << " uops recorded, " << detail_ops
                      << " simulated in detail ("
                      << (detail_ops
                          ? static_cast<double>(total) / detail_ops
                          : 0)
                      << "x reduction)\n";
            metrics = estimated;
        }

        // 2. Analyze: z-score -> PCA (Kaiser) -> single-linkage
        //    clustering -> BIC-selected K-means (the K sweep reuses
        //    the same thread budget).
        PipelineResult res;
        {
            StageTimer stage(session, "analyze");
            res = runPipeline(metrics, names, pipelineOptionsFor(cfg));
        }

        // 3. Report.
        writePcaSummary(io.out, res);
        io.out << '\n' << res.dendrogram.renderAscii(res.names)
               << '\n';
        writeSimilarityObservations(io.out, res);
        io.out << '\n';
        writeStackDifferentiationReport(io.out, res);
        if (!io.outputPath.empty())
            session.noteArtifact(io.outputPath);
        return 0;
    });
}
