/**
 * @file
 * Full characterization walk-through: run the 32-workload suite,
 * normalize + PCA + cluster the metrics, and print the similarity
 * analysis — the paper's Sections III-V as twenty lines of user
 * code.
 *
 * Runs at quick scale by default so it finishes in seconds; pass
 * "standard" or "full" as argv[1] for the larger scales.
 */

#include <iostream>
#include <string>

#include "core/report.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace bds;

    std::string scale_name = argc > 1 ? argv[1] : "quick";
    ScaleProfile scale = scale_name == "full" ? ScaleProfile::full()
        : scale_name == "standard"            ? ScaleProfile::standard()
                                              : ScaleProfile::quick();

    // 1. Measure: 45 metrics per workload on a simulated node.
    std::cout << "characterizing 32 workloads at scale '" << scale_name
              << "'...\n";
    WorkloadRunner runner(NodeConfig::defaultSim(), scale, 42);
    Matrix metrics = runner.runAll();
    std::vector<std::string> names;
    for (const auto &id : allWorkloads())
        names.push_back(id.name());

    // 2. Analyze: z-score -> PCA (Kaiser) -> single-linkage
    //    clustering -> BIC-selected K-means.
    PipelineResult res = runPipeline(metrics, names);

    // 3. Report.
    writePcaSummary(std::cout, res);
    std::cout << '\n' << res.dendrogram.renderAscii(res.names) << '\n';
    writeSimilarityObservations(std::cout, res);
    std::cout << '\n';
    writeStackDifferentiationReport(std::cout, res);
    return 0;
}
