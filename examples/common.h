/**
 * @file
 * Shared example plumbing: usage/help text, RunConfig resolution,
 * output-path handling, and uniform error reporting — so each
 * example's main() is only the parts specific to its lesson.
 *
 * Every example accepts the common flag set (src/obs/runconfig.h):
 * --scale/--seed/--threads/--metrics/--sampled, the observability
 * knobs --trace/--trace-file/--manifest/--no-manifest, plus --help
 * and --output FILE (write the report to FILE instead of stdout).
 * The BDS_* environment configures the same knobs; flags win.
 *
 * Reports and tables go to stdout (or --output); all progress and
 * diagnostic text goes to stderr, so piping an example's output into
 * a file or parser stays clean.
 */

#ifndef BDS_EXAMPLES_COMMON_H
#define BDS_EXAMPLES_COMMON_H

#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "bds/common.h"
#include "bds/obs.h"

namespace bdsex {

/** Static description of one example binary (for --help). */
struct ExampleSpec
{
    /** Binary name, also the RunConfig tool name. */
    const char *tool;

    /** One-line summary shown at the top of --help. */
    const char *oneLiner;

    /** Positional-argument synopsis, e.g. "[scale] [threads]". */
    const char *positionals = "";

    /** Extra help paragraph (may be multi-line); "" for none. */
    const char *notes = "";
};

/** Where the example's report goes. */
struct ExampleIo
{
    /** Report sink: std::cout, or the --output file. */
    std::ostream &out;

    /** The --output path; empty when writing to stdout. */
    std::string outputPath;
};

inline void
printUsage(const ExampleSpec &spec, std::ostream &os)
{
    os << "usage: " << spec.tool << " [options]";
    if (spec.positionals[0] != '\0')
        os << ' ' << spec.positionals;
    os << "\n\n" << spec.oneLiner << "\n";
    if (spec.notes[0] != '\0')
        os << "\n" << spec.notes << "\n";
    os << "\ncommon options (flags win over the BDS_* environment):\n"
          "  --scale quick|standard|full  workload input scale\n"
          "  --seed N                     data-generation seed\n"
          "  --threads N                  worker threads (0 = all "
          "cores)\n"
          "  --machine SPEC               machine preset or "
          "key=value overrides (docs/DSE.md)\n"
          "  --metrics a,b,c              analyze a Table II subset\n"
          "  --sampled                    sampled characterization\n"
          "  --trace [--trace-file F]     JSON-lines tracing "
          "(docs/OBSERVABILITY.md)\n"
          "  --manifest F | --no-manifest run-manifest emission\n"
          "  --output F, -o F             write the report to F\n"
          "  --help, -h                   this text\n";
}

/**
 * Resolve the command line and run the example body with uniform
 * error handling.
 *
 * The RunConfig starts from the example defaults (quick scale — every
 * example is a seconds-long demo), overlays the BDS_* environment,
 * then the flags. --help prints usage and exits 0; --output redirects
 * the report stream handed to the body. Leftover positionals are
 * passed through for the example to interpret; fatal errors (bad
 * knobs, failed runs) print to stderr and exit 1.
 *
 * The body constructs its own bds::Session from the config (after
 * applying any positional overrides), so the manifest reflects what
 * actually ran.
 */
inline int
runExample(const ExampleSpec &spec, int argc, char **argv,
           const std::function<int(bds::RunConfig,
                                   std::vector<std::string>,
                                   ExampleIo &)> &body)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &a : args)
        if (a == "--help" || a == "-h") {
            printUsage(spec, std::cout);
            return 0;
        }

    try {
        bds::RunConfig cfg;
        cfg.tool = spec.tool;
        cfg.scaleName = "quick";
        cfg.argv.assign(argv, argv + argc);
        cfg.applyEnv();
        std::vector<std::string> leftovers = cfg.applyArgs(args);

        std::string output_path;
        for (auto it = leftovers.begin(); it != leftovers.end();) {
            if (*it == "--output" || *it == "-o") {
                if (it + 1 == leftovers.end())
                    BDS_FATAL(*it << " needs a path");
                it = leftovers.erase(it);
                output_path = *it;
                it = leftovers.erase(it);
            } else {
                ++it;
            }
        }

        if (output_path.empty()) {
            ExampleIo io{std::cout, ""};
            return body(std::move(cfg), std::move(leftovers), io);
        }
        std::ofstream file(output_path);
        if (!file)
            BDS_FATAL("cannot open --output file '" << output_path
                      << "'");
        ExampleIo io{file, output_path};
        return body(std::move(cfg), std::move(leftovers), io);
    } catch (const bds::FatalError &e) {
        std::cerr << spec.tool << ": " << e.what() << "\n";
        return 1;
    } catch (const bds::PanicError &e) {
        std::cerr << spec.tool << ": internal error: " << e.what()
                  << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << spec.tool << ": " << e.what() << "\n";
        return 1;
    }
}

} // namespace bdsex

#endif // BDS_EXAMPLES_COMMON_H
