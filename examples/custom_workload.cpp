/**
 * @file
 * Extending the suite with a user-defined workload.
 *
 * The paper notes that BigDataBench evolves: "state-of-the-art
 * workloads and software stacks will be integrated". This example
 * shows the workflow: implement a new algorithm (an inverted-index
 * builder) once against the engine-neutral JobSpec interface, run it
 * on both stacks, and place it in the paper's PC space next to the
 * stock 32 workloads.
 */

#include <iostream>

#include "bds/bds.h"
#include "common.h"

namespace {

using namespace bds;

/** Inverted index: word -> packed posting summary. */
JobSpec
invertedIndexJob(const Dataset &corpus, CodeImage &user)
{
    JobSpec job;
    job.name = "InvertedIndex";
    job.input = &corpus;
    job.mapFn = user.defineFunction(224);
    job.reduceFn = user.defineFunction(160);
    const std::uint32_t rec_bytes =
        corpus.partitions().empty()
            ? 64
            : corpus.partitions()[0].ext.recordBytes;
    job.map = [rec_bytes](ExecContext &ctx, const Record &r,
                          std::uint64_t payload, Emitter &out) {
        for (std::uint64_t off = 0; off < rec_bytes; off += 64)
            ctx.load(payload + off); // parse the document line
        ctx.intOps(5);               // tokenize + position arithmetic
        ctx.branch((r.value & 3) != 0);
        out.emit(ctx, r.key, r.value >> 32); // (term, doc-position)
    };
    job.reduce = [](ExecContext &ctx, std::uint64_t key,
                    const std::vector<std::uint64_t> &values,
                    Emitter &out) {
        // Build the posting list: delta-encode sorted positions.
        std::uint64_t prev = 0, acc = 0;
        for (std::uint64_t v : values) {
            ctx.intOps(2);
            acc += v - prev;
            prev = v;
        }
        out.emit(ctx, key, acc);
    };
    return job;
}

/** Run the custom job on one stack and extract its metric vector. */
MetricVector
measure(const NodeConfig &machine, StackKind stack)
{
    SystemModel sys(machine);
    AddressSpace space;
    std::unique_ptr<StackEngine> engine;
    if (stack == StackKind::Hadoop)
        engine = std::make_unique<MapReduceEngine>(sys, space);
    else
        engine = std::make_unique<RddEngine>(sys, space);

    Dataset corpus = makeTextCorpus(space, 20000, 1500, 4, 4, 2026);
    CodeImage user(space, Region::UserCode);
    engine->runJob(invertedIndexJob(corpus, user));
    return extractMetrics(sys.aggregateCounters());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bds;

    const bdsex::ExampleSpec spec{
        "custom_workload",
        "Extend the suite with a user-defined inverted-index workload "
        "and place it in the paper's PC space."};

    return bdsex::runExample(spec, argc, argv, [](
        RunConfig cfg, std::vector<std::string> args,
        bdsex::ExampleIo &io) -> int {
    if (!args.empty())
        BDS_FATAL("custom_workload takes no positional arguments, "
                  "got '" << args[0] << "'");
    Session session(cfg);

    // Stock suite (quick scale by default). The custom workload must
    // run on the same machine the suite was characterized on, so the
    // resolved geometry is shared with measure().
    std::cerr << "characterizing the stock 32 workloads...\n";
    const NodeConfig machine = resolveMachineSpec(cfg.machineSpec);
    WorkloadRunner runner = WorkloadRunner::fromRunConfig(cfg);
    StageTimer stage(session, "run");
    Matrix stock = runner.runAll();
    std::vector<std::string> names;
    for (const auto &id : allWorkloads())
        names.push_back(id.name());

    // The custom workload on both stacks.
    std::cerr << "running the custom InvertedIndex workload...\n";
    MetricVector h = measure(machine, StackKind::Hadoop);
    MetricVector s = measure(machine, StackKind::Spark);

    Matrix extended(stock.rows() + 2, stock.cols());
    for (std::size_t r = 0; r < stock.rows(); ++r)
        extended.setRow(r, stock.row(r));
    extended.setRow(stock.rows(),
                    std::vector<double>(h.begin(), h.end()));
    extended.setRow(stock.rows() + 1,
                    std::vector<double>(s.begin(), s.end()));
    names.push_back("H-InvIndex");
    names.push_back("S-InvIndex");

    PipelineResult res = runPipeline(extended, names);

    // Who are the new workloads' nearest neighbours in the tree?
    TextTable t({"new workload", "nearest neighbour",
                 "linkage distance"});
    for (std::size_t row : {stock.rows(), stock.rows() + 1}) {
        double best = 1e300;
        std::size_t arg = 0;
        for (std::size_t other = 0; other < extended.rows(); ++other) {
            if (other == row)
                continue;
            double d = res.dendrogram.copheneticDistance(row, other);
            if (d < best) {
                best = d;
                arg = other;
            }
        }
        t.addRow({names[row], names[arg], fmtDouble(best, 3)});
    }
    t.print(io.out);

    io.out << "\nIf the neighbours are same-stack workloads (they "
              "are, at any scale we\ntested), the new algorithm "
              "inherits its stack's behavior — more evidence\nfor "
              "the paper's conclusion that benchmarks must vary the "
              "stack, not just\nthe algorithm.\n";
    if (!io.outputPath.empty())
        session.noteArtifact(io.outputPath);
    return 0;
    });
}
