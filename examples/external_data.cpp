/**
 * @file
 * Running the paper's pipeline on externally measured data.
 *
 * The analysis pipeline is measurement-agnostic: it consumes a
 * workloads x metrics CSV, so real perf/PMC measurements work just
 * as well as the simulator. This example writes a small demo CSV
 * (what a user's own measurement harness would produce), loads it
 * back, and runs PCA + clustering + subsetting on it.
 *
 * Usage:
 *   external_data [metrics.csv]
 * With no argument a demo CSV is generated and analyzed.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "bds/common.h"
#include "bds/core.h"
#include "common.h"

namespace {

using namespace bds;

/** Write a demo CSV: 12 workloads x 6 metrics with a stack effect. */
void
writeDemoCsv(const std::string &path)
{
    std::ofstream out(path);
    out << "workload,IPC,L1I_MPKI,L3_MPKI,KERNEL,DTLB_MPKI,"
           "SNOOP_PKI\n";
    Pcg32 rng(7);
    for (const char *stack : {"H", "S"}) {
        bool spark = stack[0] == 'S';
        for (const char *alg :
             {"Sort", "Grep", "Join", "Agg", "Scan", "Rank"}) {
            out << stack << '-' << alg;
            double vals[6] = {
                spark ? 0.5 : 0.8,   // IPC
                spark ? 3.0 : 25.0,  // L1I MPKI
                spark ? 40.0 : 15.0, // L3 MPKI
                spark ? 0.05 : 0.20, // kernel share
                spark ? 6.0 : 2.0,   // DTLB MPKI
                spark ? 1.2 : 0.2,   // snoops
            };
            for (double v : vals)
                out << ',' << v * (0.85 + 0.3 * rng.nextDouble());
            out << '\n';
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bdsex::ExampleSpec spec{
        "external_data",
        "Run the analysis pipeline on externally measured metrics.",
        "[metrics.csv]",
        "With no argument a demo CSV is generated and analyzed."};

    return bdsex::runExample(spec, argc, argv, [](
        bds::RunConfig cfg, std::vector<std::string> args,
        bdsex::ExampleIo &io) -> int {
    if (args.size() > 1)
        BDS_FATAL("external_data takes at most one CSV path, got '"
                  << args[1] << "'");
    bds::Session session(cfg);

    std::string path = !args.empty() ? args[0] : "demo_metrics.csv";
    if (args.empty()) {
        writeDemoCsv(path);
        std::cerr << "wrote demo measurements to " << path << "\n";
        session.noteArtifact(path);
    }

    bds::MetricTable table = bds::readMetricsCsvFile(path);
    const std::vector<std::string> &names = table.names;
    const bds::Matrix &metrics = table.values;

    std::cerr << "analyzing " << names.size() << " workloads x "
              << metrics.cols() << " metrics from " << path << "\n";
    // External columns are not schema metrics; hand the pipeline the
    // CSV's own header so reports label loadings by real names.
    bds::StageTimer stage(session, "analyze");
    bds::PipelineOptions opts;
    opts.parallel = cfg.parallel;
    opts.columnLabels = table.columns;
    auto res = bds::runPipeline(metrics, names, opts);
    bds::writePcaSummary(io.out, res);
    io.out << '\n' << res.dendrogram.renderAscii(res.names) << '\n';
    bds::writeSimilarityObservations(io.out, res);

    auto subset = bds::selectRepresentatives(
        res, bds::RepresentativeStrategy::FarthestFromCentroid);
    io.out << "\nrepresentative subset:";
    for (std::size_t rep : subset.representatives)
        io.out << ' ' << names[rep];
    io.out << '\n';
    if (!io.outputPath.empty())
        session.noteArtifact(io.outputPath);
    return 0;
    });
}
