/**
 * @file
 * Quickstart: simulate a couple of big data workloads on the two
 * software stacks, read their microarchitectural metrics, and see
 * the paper's central effect — the stack dominates the algorithm.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "bds/bds.h"
#include "common.h"

int
main(int argc, char **argv)
{
    using namespace bds;

    const bdsex::ExampleSpec spec{
        "quickstart",
        "Run WordCount and Sort on both stacks and compare their "
        "microarchitectural metrics."};

    return bdsex::runExample(spec, argc, argv, [](
        RunConfig cfg, std::vector<std::string> args,
        bdsex::ExampleIo &io) -> int {
        if (!args.empty())
            BDS_FATAL("quickstart takes no positional arguments, got '"
                      << args[0] << "'");
        Session session(cfg);

        // A simulated node — Table III geometry by default, or any
        // --machine/BDS_MACHINE preset — at the quick input scale:
        // each run takes well under a second. The runner uses every
        // core by default; results are identical at any thread count
        // (docs/THREADING.md), so pick threads purely for wall clock
        // — --threads 1 pins everything serial.
        WorkloadRunner runner = WorkloadRunner::fromRunConfig(cfg);

        // Same algorithm, different stacks — and vice versa.
        WorkloadId h_wc{Algorithm::WordCount, StackKind::Hadoop};
        WorkloadId s_wc{Algorithm::WordCount, StackKind::Spark};
        WorkloadId h_sort{Algorithm::Sort, StackKind::Hadoop};
        WorkloadId s_sort{Algorithm::Sort, StackKind::Spark};

        StageTimer stage(session, "measure");
        TextTable t({"workload", "IPC", "L1I MPKI", "L3 MPKI",
                     "kernel share", "snoop HITM/KI"});
        for (const WorkloadId &id : {h_wc, s_wc, h_sort, s_sort}) {
            WorkloadResult res = runner.run(id);
            auto metric = [&](Metric m) {
                return res.metrics[static_cast<std::size_t>(m)];
            };
            t.addRow({id.name(), fmtDouble(metric(Metric::Ilp), 3),
                      fmtDouble(metric(Metric::L1iMiss), 2),
                      fmtDouble(metric(Metric::L3Miss), 2),
                      fmtDouble(metric(Metric::KernelMode), 3),
                      fmtDouble(metric(Metric::SnoopHitM), 3)});
        }
        t.print(io.out);

        io.out << "\nNote how H-WordCount resembles H-Sort more than "
                  "it resembles S-WordCount:\nthe software stack, not "
                  "the algorithm, dominates the microarchitectural\n"
                  "behavior — the paper's headline finding.\n";
        if (!io.outputPath.empty())
            session.noteArtifact(io.outputPath);
        return 0;
    });
}
