/**
 * @file
 * Benchmark subsetting for simulation — the paper's Section VI use
 * case. Characterize the suite, select representatives with both
 * strategies, and quantify what the subset saves: the fraction of
 * simulated instructions an architect would no longer have to run.
 */

#include <iostream>

#include "bds/common.h"
#include "bds/core.h"
#include "bds/workloads.h"
#include "common.h"

int
main(int argc, char **argv)
{
    using namespace bds;

    const bdsex::ExampleSpec spec{
        "subset_selection",
        "Select representative workload subsets and quantify the "
        "simulation work they save."};

    return bdsex::runExample(spec, argc, argv, [](
        RunConfig cfg, std::vector<std::string> args,
        bdsex::ExampleIo &io) -> int {
    if (!args.empty())
        BDS_FATAL("subset_selection takes no positional arguments, "
                  "got '" << args[0] << "'");
    Session session(cfg);

    WorkloadRunner runner = WorkloadRunner::fromRunConfig(cfg);

    std::cerr << "characterizing 32 workloads...\n";
    StageTimer stage(session, "run");
    std::vector<WorkloadResult> details;
    Matrix metrics = runner.runAll(&details);
    std::vector<std::string> names;
    for (const auto &id : allWorkloads())
        names.push_back(id.name());

    PipelineResult res =
        runPipeline(metrics, names, pipelineOptionsFor(cfg));

    io.out << "\nBIC-selected K = " << res.bic.bestK() << "\n\n";

    std::uint64_t total_instructions = 0;
    for (const auto &d : details)
        total_instructions += d.counters.instructions;

    for (auto strat : {RepresentativeStrategy::NearestToCentroid,
                       RepresentativeStrategy::FarthestFromCentroid}) {
        SubsetResult subset = selectRepresentatives(res, strat, 7);
        std::uint64_t subset_instructions = 0;
        for (std::size_t rep : subset.representatives)
            subset_instructions += details[rep].counters.instructions;

        io.out << strategyName(strat) << ":\n";
        TextTable t({"representative", "covers", "instructions"});
        for (std::size_t c = 0; c < subset.representatives.size();
             ++c) {
            std::size_t rep = subset.representatives[c];
            t.addRow({names[rep],
                      std::to_string(subset.clusters[c].size())
                          + " workloads",
                      std::to_string(
                          details[rep].counters.instructions)});
        }
        t.print(io.out);
        double saved = 1.0
            - static_cast<double>(subset_instructions)
                / static_cast<double>(total_instructions);
        io.out << "diversity (max linkage distance): "
               << fmtDouble(subset.maxPairwiseLinkage, 2)
               << "; simulation work saved: "
               << fmtDouble(100.0 * saved, 1) << "%\n\n";
    }

    io.out << "Kiviat view of the boundary-strategy subset:\n";
    writeKiviatReport(io.out, res, 7);
    if (!io.outputPath.empty())
        session.noteArtifact(io.outputPath);
    return 0;
    });
}
