/**
 * @file
 * The umbrella header of the public API.
 *
 * Embedding applications include this one header (or the
 * per-subsystem facades below, when compile time matters) instead of
 * reaching into the internal `src/<subsystem>/` headers — internal
 * layouts move between releases, the facade set does not:
 *
 *   bds/common.h     logging, fatal/typed errors, text tables, RNG
 *   bds/metrics.h    the 45-metric Table II schema and metric sets
 *   bds/uarch.h      machine geometry, presets, the simulated node
 *   bds/workloads.h  the 32-workload registry and data generators
 *   bds/stack.h      the Hadoop/Spark/Hive/... software-stack engines
 *   bds/core.h       the characterize→analyze→subset pipeline
 *   bds/sample.h     sampled simulation (record/profile/pick/replay)
 *   bds/ckpt.h       interval checkpoint/restore of simulator state
 *   bds/obs.h        RunConfig, sessions, manifests, tracing
 *   bds/store.h      shared stores: leases, eviction, degradation
 *   bds/serve.h      the characterization service (engine + server)
 *
 * The five examples under examples/ are written against these
 * facades and double as the API's compatibility suite.
 */

#ifndef BDS_BDS_H
#define BDS_BDS_H

#include "bds/common.h"
#include "bds/metrics.h"
#include "bds/uarch.h"
#include "bds/workloads.h"
#include "bds/stack.h"
#include "bds/core.h"
#include "bds/sample.h"
#include "bds/ckpt.h"
#include "bds/obs.h"
#include "bds/store.h"
#include "bds/serve.h"

#endif // BDS_BDS_H
