/**
 * @file
 * Facade: interval checkpoint/restore (docs/CHECKPOINT.md) — the
 * versioned, checksummed state serialization visitor
 * (bds::StateSink/StateSource), the shared checkpoint cache keyed by
 * config hash + machine + workload + interval (bds::CheckpointCache,
 * CkptStats), and the per-run context the sampled pipeline threads
 * through its replays (bds::CheckpointContext).
 */

#ifndef BDS_BDS_CKPT_H
#define BDS_BDS_CKPT_H

#include "ckpt/checkpoint.h"
#include "ckpt/context.h"
#include "ckpt/options.h"
#include "ckpt/state.h"

#endif // BDS_BDS_CKPT_H
