/**
 * @file
 * Facade: foundation utilities — logging and warnings (bds::inform,
 * bds::warn, BDS_FATAL), the typed error hierarchy (bds::Error,
 * ErrorCode, BDS_RAISE), deterministic RNG streams (bds::Rng) and
 * fixed-width text tables (bds::TextTable, fmtDouble).
 */

#ifndef BDS_BDS_COMMON_H
#define BDS_BDS_COMMON_H

#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "fault/error.h"

#endif // BDS_BDS_COMMON_H
