/**
 * @file
 * Facade: the paper's analysis pipeline — characterize→normalize→
 * PCA→cluster→subset (bds::runPipeline, PipelineOptions,
 * PipelineResult), the encoded findings of the paper
 * (core/findings.h), representative-subset selection
 * (core/subset.h), and the metric CSV read/write + report helpers
 * every tool shares.
 */

#ifndef BDS_BDS_CORE_H
#define BDS_BDS_CORE_H

#include "core/analysis.h"
#include "core/csvio.h"
#include "core/findings.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/subset.h"

#endif // BDS_BDS_CORE_H
