/**
 * @file
 * Facade: the metric layer — the paper's 45-metric Table II schema
 * (bds::kNumMetrics, metricName, MetricVector) and named metric
 * subsets (bds::MetricSet) for projecting matrices onto a chosen
 * column set.
 */

#ifndef BDS_BDS_METRICS_H
#define BDS_BDS_METRICS_H

#include "metrics/schema.h"
#include "metrics/set.h"

#endif // BDS_BDS_METRICS_H
