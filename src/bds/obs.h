/**
 * @file
 * Facade: observability and configuration — bds::RunConfig (the one
 * BDS_* environment / --flag funnel every tool resolves through),
 * bds::Session and the run manifest it writes, the Tracer's
 * counters/spans, and the manifest/trace validators CI runs
 * (obs/check.h).
 */

#ifndef BDS_BDS_OBS_H
#define BDS_BDS_OBS_H

#include "obs/check.h"
#include "obs/manifest.h"
#include "obs/runconfig.h"
#include "obs/session.h"
#include "obs/trace.h"

#endif // BDS_BDS_OBS_H
