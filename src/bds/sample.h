/**
 * @file
 * Facade: sampled simulation — the end-to-end characterizer
 * (bds::SampledCharacterizer, SamplingOptions), the capture/replay
 * seam design-space sweeps replay per geometry (sample/capture.h),
 * and the warmup-aware replayer with checkpoint/restore
 * (bds::SampledReplayer).
 */

#ifndef BDS_BDS_SAMPLE_H
#define BDS_BDS_SAMPLE_H

#include "sample/capture.h"
#include "sample/characterizer.h"
#include "sample/options.h"
#include "sample/replay.h"

#endif // BDS_BDS_SAMPLE_H
