/**
 * @file
 * Facade: the characterization service — the transport-independent
 * engine and its content-addressed result store (bds::ServeEngine,
 * ResultStore), the line/socket server (bds::ServeServer), the wire
 * request schema (serve/request.h) and the canonical config hashing
 * (bds::runConfigHashHex) cells and checkpoints are keyed by.
 */

#ifndef BDS_BDS_SERVE_H
#define BDS_BDS_SERVE_H

#include "serve/confighash.h"
#include "serve/engine.h"
#include "serve/options.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/store.h"

#endif // BDS_BDS_SERVE_H
