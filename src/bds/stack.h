/**
 * @file
 * Facade: the software-stack engines that generate each workload's
 * op stream — the shared engine seam (stack/engine.h), the
 * Hadoop-style map/shuffle/reduce and Spark-style RDD pipelines, the
 * SQL operators of the interactive/query tiers, and the dataset +
 * partition plumbing they share.
 */

#ifndef BDS_BDS_STACK_H
#define BDS_BDS_STACK_H

#include "stack/dataset.h"
#include "stack/engine.h"
#include "stack/hadoop.h"
#include "stack/partition.h"
#include "stack/spark.h"
#include "stack/sql.h"

#endif // BDS_BDS_STACK_H
