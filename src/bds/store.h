/**
 * @file
 * Facade: the fleet-safe shared storage layer both caches sit on —
 * bds::SharedStore (fsync-before-rename publish, LRU byte budgets,
 * store-down degradation and self-healing), the cross-process
 * single-flight lease protocol (bds::Lease, acquireLease) and the
 * crash-rebuildable recency index (bds::StoreIndex), plus the
 * process-wide bds::storeStats() counters.
 */

#ifndef BDS_BDS_STORE_H
#define BDS_BDS_STORE_H

#include "store/index.h"
#include "store/lease.h"
#include "store/shared.h"

#endif // BDS_BDS_STORE_H
