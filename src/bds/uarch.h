/**
 * @file
 * Facade: the simulated machine — geometry description and the
 * preset registry (bds::NodeConfig, machinePresets,
 * resolveMachineSpec, canonicalMachineText), the node model itself
 * (bds::SystemModel) and its performance counters (bds::PmcCounters).
 */

#ifndef BDS_BDS_UARCH_H
#define BDS_BDS_UARCH_H

#include "uarch/config.h"
#include "uarch/machine.h"
#include "uarch/pmc.h"
#include "uarch/system.h"

#endif // BDS_BDS_UARCH_H
