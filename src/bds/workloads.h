/**
 * @file
 * Facade: the workload layer — the 32-workload registry
 * (bds::allWorkloads, WorkloadId, WorkloadRunner) and the seeded
 * data generators behind Table I's scaled record counts
 * (workloads/datagen.h).
 */

#ifndef BDS_BDS_WORKLOADS_H
#define BDS_BDS_WORKLOADS_H

#include "workloads/datagen.h"
#include "workloads/registry.h"

#endif // BDS_BDS_WORKLOADS_H
