#include "ckpt/checkpoint.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <sys/types.h>

#include "fault/error.h"
#include "obs/trace.h"
#include "serve/confighash.h"

namespace bds {

namespace {

struct AtomicCkptStats
{
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> bytesRead{0};
    std::atomic<std::uint64_t> bytesWritten{0};
};

AtomicCkptStats &
globalCkptStats()
{
    static AtomicCkptStats stats;
    return stats;
}

/** Read one header line; Error(Io) on EOF. */
std::string
readLine(std::istream &is, const std::string &what)
{
    std::string line;
    if (!std::getline(is, line))
        BDS_RAISE(ErrorCode::Io,
                  what << ": truncated checkpoint (unexpected EOF)");
    return line;
}

/** Parse "<key> <value>" where value is a non-negative integer. */
std::uint64_t
readSizeField(std::istream &is, const std::string &what,
              const std::string &key)
{
    const std::string line = readLine(is, what);
    std::istringstream ss(line);
    std::string k;
    std::uint64_t v = 0;
    if (!(ss >> k >> v) || k != key)
        BDS_RAISE(ErrorCode::Io, what << ": expected '" << key
                                      << " <n>', got '" << line << "'");
    return v;
}

/** Read exactly `n` payload bytes; Error(Io) on short reads. */
std::string
readBytes(std::istream &is, const std::string &what, std::uint64_t n,
          const std::string &label)
{
    std::string out;
    // The size comes from the (possibly corrupt) entry itself: an
    // implausible value must stay a typed Io error, not a bad_alloc
    // that dodges the warm-from-zero fallback.
    try {
        out.resize(static_cast<std::size_t>(n));
    } catch (const std::exception &) {
        BDS_RAISE(ErrorCode::Io,
                  what << ": " << label << " declares implausible size "
                       << n << " (corrupt checkpoint)");
    }
    is.read(out.data(), static_cast<std::streamsize>(n));
    if (is.gcount() != static_cast<std::streamsize>(n))
        BDS_RAISE(ErrorCode::Io,
                  what << ": " << label << " payload truncated ("
                       << is.gcount() << " of " << n << " bytes)");
    return out;
}

/** A length-prefixed text field ("<key>_bytes N\n<bytes>"). */
std::string
readTextField(std::istream &is, const std::string &what,
              const std::string &key)
{
    return readBytes(is, what, readSizeField(is, what, key + "_bytes"),
                     key);
}

/** Filename-safe rendering of a workload name. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c == '-' || c == '_'
            || c == '.';
        out.push_back(ok ? c : '-');
    }
    return out;
}

} // namespace

CkptStats
ckptStats()
{
    const AtomicCkptStats &g = globalCkptStats();
    CkptStats s;
    s.hits = g.hits.load(std::memory_order_relaxed);
    s.misses = g.misses.load(std::memory_order_relaxed);
    s.writes = g.writes.load(std::memory_order_relaxed);
    s.fallbacks = g.fallbacks.load(std::memory_order_relaxed);
    s.bytesRead = g.bytesRead.load(std::memory_order_relaxed);
    s.bytesWritten = g.bytesWritten.load(std::memory_order_relaxed);
    return s;
}

void
resetCkptStats()
{
    AtomicCkptStats &g = globalCkptStats();
    g.hits.store(0, std::memory_order_relaxed);
    g.misses.store(0, std::memory_order_relaxed);
    g.writes.store(0, std::memory_order_relaxed);
    g.fallbacks.store(0, std::memory_order_relaxed);
    g.bytesRead.store(0, std::memory_order_relaxed);
    g.bytesWritten.store(0, std::memory_order_relaxed);
}

void
noteCkptMiss()
{
    globalCkptStats().misses.fetch_add(1, std::memory_order_relaxed);
    Tracer::global().counter("ckpt.misses", 1);
}

void
noteCkptFallback()
{
    globalCkptStats().fallbacks.fetch_add(1, std::memory_order_relaxed);
    Tracer::global().counter("ckpt.fallbacks", 1);
}

void
writeCheckpoint(std::ostream &os, const CheckpointEntry &entry)
{
    os << "BDSCKPT " << kCheckpointVersion << '\n'
       << "hash " << entry.key.configHash << '\n'
       << "slug " << entry.key.machineSlug << '\n'
       << "machine_bytes " << entry.key.machineText.size() << '\n'
       << entry.key.machineText
       << "workload_bytes " << entry.key.workload.size() << '\n'
       << entry.key.workload
       << "node " << entry.key.node << '\n'
       << "interval " << entry.interval << '\n'
       << "state_fnv " << toHex64(fnv1a64(entry.state)) << '\n'
       << "state_bytes " << entry.state.size() << '\n'
       << entry.state
       << "END\n";
}

CheckpointEntry
readCheckpoint(std::istream &is, const std::string &what,
               const CheckpointKey &expected,
               std::uint64_t expectedInterval)
{
    CheckpointEntry entry;

    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string magic;
        unsigned version = 0;
        if (!(ss >> magic >> version) || magic != "BDSCKPT")
            BDS_RAISE(ErrorCode::Io,
                      what << ": not a bds checkpoint (bad magic)");
        if (version != kCheckpointVersion)
            BDS_RAISE(ErrorCode::Io,
                      what << ": unsupported checkpoint version "
                           << version << " (expected "
                           << kCheckpointVersion << ")");
    }
    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string key;
        if (!(ss >> key >> entry.key.configHash) || key != "hash"
            || entry.key.configHash.size() != 16)
            BDS_RAISE(ErrorCode::Io,
                      what << ": malformed hash line '" << line << "'");
    }
    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string key;
        if (!(ss >> key >> entry.key.machineSlug) || key != "slug")
            BDS_RAISE(ErrorCode::Io,
                      what << ": malformed slug line '" << line << "'");
    }
    entry.key.machineText = readTextField(is, what, "machine");
    entry.key.workload = readTextField(is, what, "workload");
    entry.key.node = static_cast<unsigned>(
        readSizeField(is, what, "node"));
    entry.interval = readSizeField(is, what, "interval");

    std::string declared_fnv;
    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string key;
        if (!(ss >> key >> declared_fnv) || key != "state_fnv"
            || declared_fnv.size() != 16)
            BDS_RAISE(ErrorCode::Io,
                      what << ": malformed state_fnv line '" << line
                           << "'");
    }
    entry.state = readBytes(
        is, what, readSizeField(is, what, "state_bytes"), "state");
    if (toHex64(fnv1a64(entry.state)) != declared_fnv)
        BDS_RAISE(ErrorCode::Io,
                  what << ": state payload checksum mismatch "
                       << "(corrupt checkpoint)");
    if (readLine(is, what) != "END")
        BDS_RAISE(ErrorCode::Io,
                  what << ": missing END sentinel (truncated "
                       << "checkpoint)");

    // Key verification: the machine text is the load-bearing guard
    // (equal text implies equal geometry, hence an exactly matching
    // state layout); hash/slug/workload/node/interval mismatches mean
    // the file is not the checkpoint the caller asked for.
    if (entry.key.machineText != expected.machineText
        || entry.key.machineSlug != expected.machineSlug)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  what << ": checkpoint was saved on machine '"
                       << entry.key.machineSlug
                       << "' and cannot restore on '"
                       << expected.machineSlug
                       << "' (geometry mismatch)");
    if (entry.key.configHash != expected.configHash
        || entry.key.workload != expected.workload
        || entry.key.node != expected.node
        || entry.interval != expectedInterval)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  what << ": checkpoint is keyed to config "
                       << entry.key.configHash << "/"
                       << entry.key.workload << "/n" << entry.key.node
                       << "/i" << entry.interval << ", expected "
                       << expected.configHash << "/"
                       << expected.workload << "/n" << expected.node
                       << "/i" << expectedInterval);
    return entry;
}

namespace {

SharedStoreOptions
ckptStoreOptions(std::string dir, std::uint64_t maxBytes)
{
    SharedStoreOptions opts;
    opts.dir = std::move(dir);
    opts.suffix = ".ckpt";
    opts.maxBytes = maxBytes;
    return opts;
}

} // namespace

CheckpointCache::CheckpointCache(std::string dir,
                                 std::uint64_t maxBytes)
    : backend_(ckptStoreOptions(std::move(dir), maxBytes))
{
}

std::string
CheckpointCache::entryName(const CheckpointKey &key,
                           std::uint64_t interval)
{
    std::ostringstream name;
    name << key.configHash << '_' << key.machineSlug << '_'
         << sanitize(key.workload) << "_n" << key.node << "_i"
         << interval << ".ckpt";
    return name.str();
}

std::string
CheckpointCache::path(const CheckpointKey &key,
                      std::uint64_t interval) const
{
    return backend_.entryPath(entryName(key, interval));
}

bool
CheckpointCache::load(const CheckpointKey &key, std::uint64_t interval,
                      std::string *state) const
{
    const std::string p = path(key, interval);
    std::string bytes;
    if (!backend_.read(entryName(key, interval), &bytes))
        return false;
    std::istringstream in(bytes);
    CheckpointEntry entry = readCheckpoint(in, p, key, interval);
    AtomicCkptStats &g = globalCkptStats();
    g.hits.fetch_add(1, std::memory_order_relaxed);
    g.bytesRead.fetch_add(entry.state.size(),
                          std::memory_order_relaxed);
    Tracer::global().counter("ckpt.hits", 1);
    Tracer::global().counter("ckpt.bytes_read", entry.state.size());
    *state = std::move(entry.state);
    return true;
}

void
CheckpointCache::store(const CheckpointKey &key, std::uint64_t interval,
                       const std::string &state) const
{
    CheckpointEntry entry;
    entry.key = key;
    entry.interval = interval;
    entry.state = state;
    std::ostringstream out;
    writeCheckpoint(out, entry);
    // A failed publish flips the backend down (counted + warned);
    // the replay simply stops writing checkpoints until it heals.
    if (!backend_.publish(entryName(key, interval), out.str()))
        return;
    AtomicCkptStats &g = globalCkptStats();
    g.writes.fetch_add(1, std::memory_order_relaxed);
    g.bytesWritten.fetch_add(state.size(), std::memory_order_relaxed);
    Tracer::global().counter("ckpt.writes", 1);
    Tracer::global().counter("ckpt.bytes_written", state.size());
}

} // namespace bds
