/**
 * @file
 * The interval checkpoint container and its disk cache.
 *
 * A checkpoint captures the full SystemModel state at the entry of
 * one sampled representative interval — after the replayer has
 * unfrozen and zeroed the counters — so a later run can jump
 * straight there instead of functionally warming every preceding
 * interval (docs/CHECKPOINT.md; ROADMAP item 3, the SESC
 * `*_chpt.conf` idiom).
 *
 * Keying: a checkpoint is only valid for the exact op stream and
 * machine that produced it, so the key is the v2 runConfigHash (which
 * folds in scale, seed, the resolved machine geometry, every sampling
 * knob and the fault spec), plus the machine slug (human-readable
 * filename component + restore tripwire), the workload name, the
 * cluster-node shard and the interval index. The canonical machine
 * text rides inside the container and must match exactly on load —
 * a checkpoint can never be poured into a different geometry.
 *
 * Discipline (same as the serve result store — both sit on the
 * shared-storage layer, src/store/shared.h): writes are atomic and
 * durable (temp file + fsync + rename) so concurrent processes
 * sharing one directory never observe half a checkpoint; the
 * directory honours the BDS_CKPT_MAX_BYTES budget with LRU eviction;
 * any filesystem failure degrades the cache to store-down mode
 * (replays warm from zero, nothing crashes); every load verifies
 * magic, version, key fields and an FNV checksum, and any violation
 * is a typed Error(Io) / Error(InvalidConfig) the replayer converts
 * into a transparent warm-from-zero fallback.
 */

#ifndef BDS_CKPT_CHECKPOINT_H
#define BDS_CKPT_CHECKPOINT_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "store/shared.h"

namespace bds {

/**
 * Version of the on-disk checkpoint layout *and* of the state-payload
 * schema underneath it (the saveState() field lists). Bump on any
 * change to either; a foreign version on disk is a typed Io error
 * that the replayer treats as "no checkpoint" — stale state is never
 * silently restored.
 */
constexpr unsigned kCheckpointVersion = 1;

/** Identity of one checkpoint stream (all intervals share it). */
struct CheckpointKey
{
    /** runConfigHashHex() of the resolved run configuration. */
    std::string configHash;

    /** machineSlug() of the spec — filename component + tripwire. */
    std::string machineSlug;

    /**
     * canonicalMachineText() of the resolved geometry. Stored in the
     * container and compared exactly on load: equality implies every
     * structure-level geometry guard in the payload matches too.
     */
    std::string machineText;

    /** Workload name ("H-Sort", ...). */
    std::string workload;

    /** Cluster-node shard index. */
    unsigned node = 0;
};

/** One checkpoint: the key, the interval, and the state payload. */
struct CheckpointEntry
{
    CheckpointKey key;
    std::uint64_t interval = 0;

    /** SystemModel::saveState() bytes. */
    std::string state;
};

/** Running process-wide checkpoint traffic counters. */
struct CkptStats
{
    std::uint64_t hits = 0;      ///< checkpoints restored
    std::uint64_t misses = 0;    ///< absent (written on cold passes)
    std::uint64_t writes = 0;    ///< checkpoints persisted
    std::uint64_t fallbacks = 0; ///< present but corrupt/mismatched
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
};

/**
 * Snapshot of the process-wide counters. The serve `stats` verb and
 * `--stats-json` surface these; the same events are emitted as
 * `ckpt.*` trace counters as they happen.
 */
CkptStats ckptStats();

/** Zero the process-wide counters (tests, bench passes). */
void resetCkptStats();

/**
 * Disk-backed checkpoint cache: one directory shared by the sampled
 * pipeline, bds_serve and bench/dse_sweep. Thread-safe by
 * construction — entries are immutable once published and writes are
 * atomic renames.
 */
class CheckpointCache
{
  public:
    /**
     * Open the cache directory, creating it if needed.
     * Error(InvalidConfig) when `dir` is empty; an *uncreatable*
     * directory opens the cache in down mode (replays warm from
     * zero) instead of failing the run. `maxBytes` bounds the
     * checkpoint bytes on disk (LRU eviction); 0 = unbounded.
     */
    explicit CheckpointCache(std::string dir,
                             std::uint64_t maxBytes = 0);

    /** True while the backing store is degraded (not caching). */
    bool storeDown() const { return backend_.down(); }

    /** The entry file of (key, interval). */
    std::string path(const CheckpointKey &key,
                     std::uint64_t interval) const;

    /** The cache directory. */
    const std::string &dir() const { return backend_.dir(); }

    /**
     * Load the state payload for (key, interval) into *state.
     * Returns false when absent. Raises Error(Io) on a corrupt,
     * truncated or foreign-version entry and Error(InvalidConfig)
     * when the entry belongs to a different machine or key — callers
     * catch and fall back to warming from zero. Counts a hit (and
     * bytes read) on success; the caller accounts misses/fallbacks,
     * which are a per-replay policy.
     */
    bool load(const CheckpointKey &key, std::uint64_t interval,
              std::string *state) const;

    /**
     * Durably persist a checkpoint (temp + fsync + rename), then
     * enforce the byte budget. Never throws: a disk failure degrades
     * the cache (counted, warned) instead of failing the replay —
     * the checkpoint is an accelerator, not a correctness input.
     * Counts a write and the payload bytes when the publish lands.
     */
    void store(const CheckpointKey &key, std::uint64_t interval,
               const std::string &state) const;

  private:
    /** Entry filename of (key, interval). */
    static std::string entryName(const CheckpointKey &key,
                                 std::uint64_t interval);

    /** Shared-storage backend (budget, degradation); mutable because
     *  reads bump recency and the down flag. */
    mutable SharedStore backend_;
};

/** Serialize a checkpoint to the on-disk format (tests). */
void writeCheckpoint(std::ostream &os, const CheckpointEntry &entry);

/**
 * Parse and verify a checkpoint against the expected key/interval;
 * `what` names the source in diagnostics. Error(Io) on structural
 * violations, Error(InvalidConfig) on machine/key mismatches.
 */
CheckpointEntry readCheckpoint(std::istream &is, const std::string &what,
                               const CheckpointKey &expected,
                               std::uint64_t expectedInterval);

/** Count one miss / one fallback (replayer accounting helpers). */
void noteCkptMiss();
void noteCkptFallback();

} // namespace bds

#endif // BDS_CKPT_CHECKPOINT_H
