#include "ckpt/context.h"

#include "serve/confighash.h"
#include "uarch/machine.h"

namespace bds {

CheckpointKey
CheckpointContext::keyFor(const std::string &workload,
                          unsigned node) const
{
    CheckpointKey key;
    key.configHash = configHash;
    key.machineSlug = machineSlug;
    key.machineText = machineText;
    key.workload = workload;
    key.node = node;
    return key;
}

CheckpointContext
checkpointContextFor(const RunConfig &cfg)
{
    CheckpointContext ctx;
    if (!cfg.ckpt.enabled)
        return ctx;
    ctx.cache = std::make_shared<CheckpointCache>(cfg.ckpt.dir,
                                                  cfg.ckpt.maxBytes);
    ctx.configHash = runConfigHashHex(cfg);
    ctx.machineSlug = bds::machineSlug(cfg.machineSpec);
    ctx.machineText =
        canonicalMachineText(resolveMachineSpec(cfg.machineSpec));
    return ctx;
}

} // namespace bds
