/**
 * @file
 * CheckpointContext — one resolved handle a run threads through the
 * sampled pipeline so every replay shares the same cache directory
 * and key prefix.
 *
 * The context is resolved once per RunConfig (checkpointContextFor):
 * it opens the cache directory and precomputes the key components
 * that are constant across the run — the v2 runConfigHash, the
 * machine slug and the canonical machine text. Per-replay code only
 * fills in what varies: the workload name, the cluster-node shard and
 * the interval index.
 *
 * A disabled context (default-constructed, or resolved from a config
 * with ckpt.enabled == false) has a null cache and is treated as "no
 * checkpointing" everywhere — callers never branch on a separate
 * flag.
 */

#ifndef BDS_CKPT_CONTEXT_H
#define BDS_CKPT_CONTEXT_H

#include <memory>
#include <string>

#include "ckpt/checkpoint.h"
#include "obs/runconfig.h"

namespace bds {

/** A run's shared checkpoint cache + constant key components. */
struct CheckpointContext
{
    /** Open cache; null means checkpointing is off. */
    std::shared_ptr<CheckpointCache> cache;

    /** runConfigHashHex() of the resolved configuration. */
    std::string configHash;

    /** machineSlug() of the run's machine spec. */
    std::string machineSlug;

    /** canonicalMachineText() of the resolved geometry. */
    std::string machineText;

    /** True when this context actually checkpoints. */
    bool enabled() const { return cache != nullptr; }

    /** The full key of one (workload, node) checkpoint stream. */
    CheckpointKey keyFor(const std::string &workload,
                         unsigned node) const;
};

/**
 * Resolve `cfg` into a context: disabled (null cache) when
 * cfg.ckpt.enabled is off, otherwise an open CheckpointCache on
 * cfg.ckpt.dir plus the precomputed key prefix. Raises Error(Io)
 * when the directory cannot be created and Error(InvalidConfig) /
 * Error(UnknownName) when the machine spec does not resolve.
 */
CheckpointContext checkpointContextFor(const RunConfig &cfg);

} // namespace bds

#endif // BDS_CKPT_CONTEXT_H
