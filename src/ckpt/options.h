/**
 * @file
 * Knobs for the interval checkpoint/restore subsystem.
 *
 * Kept dependency-free (a bool and a string) so RunConfig can embed a
 * CkptOptions without bds_obs linking the checkpoint machinery — the
 * same pattern as SamplingOptions and ServeOptions.
 *
 * Options-struct convention (shared by PipelineOptions,
 * SamplingOptions, ServeOptions and this struct — see
 * docs/CHECKPOINT.md "One options convention"):
 *  - `enabled` is the master switch and defaults to off, so a run
 *    without the knob is bitwise-identical to one predating the
 *    subsystem;
 *  - directory fields end in `Dir`, file fields end in `Path`;
 *  - RunConfig is the only env/flag funnel — no struct reads
 *    getenv() itself.
 *
 * Environment / flags (resolved by RunConfig, strict — garbage is
 * fatal, never a silent default):
 *   BDS_CKPT           = 0 | 1   --ckpt / --no-ckpt
 *   BDS_CKPT_DIR       = <dir>   --ckpt-dir DIR  (implies enabled,
 *                                                 like BDS_TRACE_FILE)
 *   BDS_CKPT_MAX_BYTES = <bytes> --ckpt-max-bytes N
 */

#ifndef BDS_CKPT_OPTIONS_H
#define BDS_CKPT_OPTIONS_H

#include <cstdint>
#include <string>

namespace bds {

/** Configuration of the checkpoint/restore path. */
struct CkptOptions
{
    /**
     * Master switch: off replays with functional warming from zero,
     * bitwise-identical to the pre-checkpoint tree. On, the sampled
     * replayer restores representative-interval entry state from the
     * checkpoint directory when present and writes it when absent.
     */
    bool enabled = false;

    /**
     * Directory of the checkpoint cache. One file per (config hash,
     * machine, workload, node, interval); shared by the sampled
     * pipeline, bds_serve and bench/dse_sweep, with the result
     * store's atomic-rename + typed-Io-on-corruption discipline.
     */
    std::string dir = "bds_ckpt_cache";

    /**
     * Byte budget of the checkpoint cache (BDS_CKPT_MAX_BYTES);
     * entries beyond it are evicted least-recently-used by the
     * shared-store layer. 0 = unbounded, the pre-budget behaviour.
     */
    std::uint64_t maxBytes = 0;
};

} // namespace bds

#endif // BDS_CKPT_OPTIONS_H
