#include "ckpt/state.h"

#include <cstring>

#include "fault/error.h"

namespace bds {

void
StateSink::section(const char (&tag)[5])
{
    buf_.append(tag, 4);
}

void
StateSink::u32(std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    buf_.append(b, 4);
}

void
StateSink::u64(std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    buf_.append(b, 8);
}

void
StateSink::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
StateSink::str(const std::string &s)
{
    u64(s.size());
    buf_.append(s);
}

StateSource::StateSource(const std::string &payload, std::string what)
    : payload_(payload), what_(std::move(what))
{
}

const char *
StateSource::take(std::size_t n, const char *label)
{
    if (n > payload_.size() - pos_)
        BDS_RAISE(ErrorCode::Io,
                  what_ << ": state payload truncated reading " << label
                        << " at offset " << pos_ << " (need " << n
                        << " bytes, have " << payload_.size() - pos_
                        << ")");
    const char *p = payload_.data() + pos_;
    pos_ += n;
    return p;
}

void
StateSource::section(const char (&tag)[5])
{
    const char *p = take(4, "section tag");
    if (std::memcmp(p, tag, 4) != 0)
        BDS_RAISE(ErrorCode::Io,
                  what_ << ": expected state section '" << tag
                        << "', found '" << std::string(p, 4)
                        << "' — payload does not match the schema");
}

std::uint8_t
StateSource::u8()
{
    return static_cast<std::uint8_t>(*take(1, "u8"));
}

std::uint32_t
StateSource::u32()
{
    const char *p = take(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
StateSource::u64()
{
    const char *p = take(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

double
StateSource::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
StateSource::str()
{
    std::uint64_t n = u64();
    if (n > payload_.size() - pos_)
        BDS_RAISE(ErrorCode::Io,
                  what_ << ": string field declares implausible size "
                        << n << " (corrupt payload)");
    const char *p = take(static_cast<std::size_t>(n), "string");
    return std::string(p, static_cast<std::size_t>(n));
}

void
StateSource::check(const char *field, std::uint64_t expected)
{
    std::uint64_t got = u64();
    if (got != expected)
        BDS_RAISE(ErrorCode::Io,
                  what_ << ": state payload was saved with " << field
                        << "=" << got << " but the restoring structure"
                        << " has " << field << "=" << expected);
}

void
StateSource::finish() const
{
    if (pos_ != payload_.size())
        BDS_RAISE(ErrorCode::Io,
                  what_ << ": " << payload_.size() - pos_
                        << " trailing bytes after the last state field"
                        << " (payload does not match the schema)");
}

} // namespace bds
