/**
 * @file
 * The uniform simulation-state serialization interface.
 *
 * Every state-bearing structure — SetAssocCache, TlbArray,
 * TwoLevelTlb, GshareBranchPredictor, PmcCounters, CoreModel,
 * SystemModel — implements the same two-method visitor contract:
 *
 *   void saveState(StateSink &sink) const;
 *   void loadState(StateSource &src);
 *
 * One schema, no per-structure ad-hoc I/O: a structure writes a
 * section tag followed by fixed-width little-endian fields, and reads
 * them back in the same order. The sink/source pair owns all byte
 * encoding, so a structure's save/load methods are a single visibly
 * symmetric field list.
 *
 * Hardening contract: every structural violation on the read side —
 * underflow, a section tag that is not the expected one, a geometry
 * guard mismatch, trailing bytes at finish() — raises a typed
 * Error(Io). Restoring from a corrupt payload can therefore never be
 * UB or silent drift; callers (the checkpoint cache, the sampled
 * replayer) catch the typed error and fall back to warming from zero.
 *
 * Layering: depends only on bds_fault (for the typed errors), so
 * bds_uarch can link it without pulling in the checkpoint container
 * or anything above it.
 */

#ifndef BDS_CKPT_STATE_H
#define BDS_CKPT_STATE_H

#include <cstdint>
#include <string>

namespace bds {

/**
 * Byte-accurate state writer. Integers are fixed-width little-endian;
 * doubles travel as their IEEE-754 bit pattern, so a save/load round
 * trip is bitwise-exact (the checkpoint contract) on any host.
 */
class StateSink
{
  public:
    /** Begin a section; the source must ask for the same tag. */
    void section(const char (&tag)[5]);

    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** IEEE-754 bit pattern, not a decimal rendering. */
    void f64(double v);
    /** Length-prefixed byte string. */
    void str(const std::string &s);

    /** The serialized payload so far. */
    const std::string &bytes() const { return buf_; }

    /** Move the payload out (invalidates the sink). */
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Byte-accurate state reader over a payload produced by StateSink.
 * Every structural violation is a typed Error(Io): reading past the
 * end, a wrong section tag, or — via check() — a geometry guard that
 * does not match the restoring structure.
 */
class StateSource
{
  public:
    /**
     * @param payload The serialized bytes (not owned; must outlive
     *        the source).
     * @param what Names the payload origin in diagnostics.
     */
    StateSource(const std::string &payload, std::string what);

    /** Consume and verify a section tag; Error(Io) on mismatch. */
    void section(const char (&tag)[5]);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /**
     * Guard helper: verify a config-derived value recorded in the
     * payload equals what the restoring structure was built with.
     * Raises Error(Io) naming `field` on mismatch — a payload must
     * never be poured into a structure of a different shape.
     */
    void check(const char *field, std::uint64_t expected);

    /** Verify the payload was fully consumed; Error(Io) otherwise. */
    void finish() const;

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return payload_.size() - pos_; }

  private:
    /** Take `n` raw bytes; Error(Io) on underflow. */
    const char *take(std::size_t n, const char *label);

    const std::string &payload_;
    std::string what_;
    std::size_t pos_ = 0;
};

} // namespace bds

#endif // BDS_CKPT_STATE_H
