#include "common/log.h"

#include <iostream>

namespace bds {

namespace {
LogLevel g_threshold = LogLevel::Warn;
} // namespace

void
Log::setThreshold(LogLevel lvl)
{
    g_threshold = lvl;
}

LogLevel
Log::threshold()
{
    return g_threshold;
}

void
Log::emit(LogLevel lvl, const std::string &msg)
{
    if (static_cast<int>(lvl) < static_cast<int>(g_threshold))
        return;
    const char *tag = lvl == LogLevel::Debug ? "debug"
                    : lvl == LogLevel::Info  ? "info"
                                             : "warn";
    std::cerr << "[bds:" << tag << "] " << msg << '\n';
}

void
inform(const std::string &msg)
{
    Log::emit(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Log::emit(LogLevel::Warn, msg);
}

namespace detail {

void
throwFatal(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " (" << file << ':' << line << ')';
    throw FatalError(oss.str());
}

void
throwPanic(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " (" << file << ':' << line << ')';
    throw PanicError(oss.str());
}

} // namespace detail

} // namespace bds
