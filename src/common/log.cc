#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace bds {

namespace {
// Workload sweeps log from pool workers; the threshold is an atomic
// and emission is serialized so lines never interleave mid-message.
std::atomic<LogLevel> g_threshold{LogLevel::Warn};
std::mutex g_emit_mutex;
} // namespace

void
Log::setThreshold(LogLevel lvl)
{
    g_threshold = lvl;
}

LogLevel
Log::threshold()
{
    return g_threshold.load();
}

void
Log::emit(LogLevel lvl, const std::string &msg)
{
    if (static_cast<int>(lvl) < static_cast<int>(g_threshold.load()))
        return;
    const char *tag = lvl == LogLevel::Debug ? "debug"
                    : lvl == LogLevel::Info  ? "info"
                                             : "warn";
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::cerr << "[bds:" << tag << "] " << msg << '\n';
}

void
inform(const std::string &msg)
{
    Log::emit(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Log::emit(LogLevel::Warn, msg);
}

namespace detail {

void
throwFatal(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " (" << file << ':' << line << ')';
    throw FatalError(oss.str());
}

void
throwPanic(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " (" << file << ':' << line << ')';
    throw PanicError(oss.str());
}

} // namespace detail

} // namespace bds
