/**
 * @file
 * Logging and error-handling primitives.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - BDS_FATAL: the run cannot continue due to a user-level error
 *    (bad configuration, invalid arguments). Throws bds::FatalError.
 *  - BDS_PANIC: an internal invariant was violated — a library bug.
 *    Throws bds::PanicError.
 *  - BDS_ASSERT: cheap invariant check that panics on failure.
 *
 * Errors are exceptions (rather than abort()) so the test suite can
 * exercise failure paths.
 */

#ifndef BDS_COMMON_LOG_H
#define BDS_COMMON_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace bds {

/** Error caused by invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Error caused by a violated internal invariant (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Severity levels for informational logging. */
enum class LogLevel { Debug, Info, Warn };

/**
 * Minimal global logger. Writes to stderr; the threshold is settable
 * so benches can silence Info chatter.
 */
class Log
{
  public:
    /** Set the minimum level that is emitted. */
    static void setThreshold(LogLevel lvl);

    /** Current threshold. */
    static LogLevel threshold();

    /** Emit a message at the given level. */
    static void emit(LogLevel lvl, const std::string &msg);
};

/** Log an informational message. */
void inform(const std::string &msg);

/** Log a warning. */
void warn(const std::string &msg);

namespace detail {

/** Build the message string and throw FatalError. */
[[noreturn]] void throwFatal(const char *file, int line,
                             const std::string &msg);

/** Build the message string and throw PanicError. */
[[noreturn]] void throwPanic(const char *file, int line,
                             const std::string &msg);

} // namespace detail

} // namespace bds

/** Abort the operation due to a user-level error. */
#define BDS_FATAL(msg)                                                      \
    do {                                                                    \
        std::ostringstream bds_oss_;                                        \
        bds_oss_ << msg;                                                    \
        ::bds::detail::throwFatal(__FILE__, __LINE__, bds_oss_.str());      \
    } while (0)

/** Abort the operation due to an internal bug. */
#define BDS_PANIC(msg)                                                      \
    do {                                                                    \
        std::ostringstream bds_oss_;                                        \
        bds_oss_ << msg;                                                    \
        ::bds::detail::throwPanic(__FILE__, __LINE__, bds_oss_.str());      \
    } while (0)

/** Invariant check; panics with the message when cond is false. */
#define BDS_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            BDS_PANIC("assertion failed: " #cond " — " << msg);             \
    } while (0)

#endif // BDS_COMMON_LOG_H
