#include "common/parallel.h"

#include <atomic>
#include <exception>

#include "common/log.h"

namespace bds {

unsigned
ParallelOptions::resolved() const
{
    if (threads != 0)
        return threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
ParallelOptions::resolvedFor(std::size_t tasks) const
{
    unsigned r = resolved();
    if (tasks == 0)
        return 1;
    if (static_cast<std::size_t>(r) > tasks)
        r = static_cast<unsigned>(tasks);
    return r == 0 ? 1 : r;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned n = ParallelOptions{threads}.resolved();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            BDS_PANIC("submit on a stopping ThreadPool");
        queue_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task(); // packaged_task: exceptions land in the future
    }
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers = ParallelOptions{threads}.resolvedFor(n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex err_mutex;
    std::exception_ptr first_error;

    auto body = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n || failed.load())
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(body);
    body(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace bds
