/**
 * @file
 * Fixed-size thread pool and parallel-for for the embarrassingly
 * parallel layers of the toolkit (the 32-workload sweep, the
 * per-node cluster fan-out, the K-means/BIC K sweep).
 *
 * Design rules:
 *  - No work stealing, no dynamic resizing: a pool owns a fixed set
 *    of workers and a single FIFO task queue.
 *  - Exceptions propagate: ThreadPool::submit returns a future that
 *    rethrows on get(); parallelFor rethrows the first task
 *    exception on the calling thread after all workers join.
 *  - `threads == 1` never spawns a thread — the work runs inline on
 *    the caller, byte-for-byte reproducing the serial behavior.
 *  - Determinism stays the caller's contract: tasks must not share
 *    mutable state or RNG streams. Every parallelized layer in this
 *    codebase derives an independent seed per task (see
 *    docs/THREADING.md).
 */

#ifndef BDS_COMMON_PARALLEL_H
#define BDS_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace bds {

/**
 * Parallelism knob threaded through PipelineOptions, WorkloadRunner
 * and the bench/example entry points.
 */
struct ParallelOptions
{
    /**
     * Worker count. 0 means "use the hardware": resolves to
     * std::thread::hardware_concurrency(). 1 reproduces the serial
     * behavior exactly (no threads are spawned).
     */
    unsigned threads = 0;

    /** The effective worker count (resolves 0 to the hardware). */
    unsigned resolved() const;

    /** Effective worker count clamped to `tasks` (never 0). */
    unsigned resolvedFor(std::size_t tasks) const;
};

/**
 * Fixed-size thread pool with a FIFO task queue.
 *
 * Workers are spawned in the constructor and joined in the
 * destructor; pending tasks are drained before destruction returns.
 * submit() hands back a std::future carrying the task's result or
 * exception. Tasks must not block on futures of tasks in the same
 * pool (no nested submission waits) — the parallelized layers here
 * are flat fan-outs, so the restriction never binds.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 resolves to the hardware
     *                concurrency. Must resolve to >= 1.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers after draining the queue. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a callable; returns a future for its result. The
     * future rethrows any exception the task threw.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

  private:
    /** Push a type-erased task and wake one worker. */
    void enqueue(std::function<void()> task);

    /** Worker main loop: pop tasks until stopped and drained. */
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Run fn(0), fn(1), ..., fn(n - 1) across `threads` workers.
 *
 * Iterations are claimed dynamically from an atomic counter, so the
 * assignment of iteration to thread is nondeterministic — callers
 * must make each iteration independent (own output slot, own derived
 * seed). With threads <= 1 the loop runs inline in index order on
 * the calling thread, exactly matching a plain for loop.
 *
 * The first exception thrown by any iteration is rethrown on the
 * calling thread after all workers finish; remaining iterations
 * that have not started are abandoned.
 *
 * @param n Iteration count.
 * @param threads Worker count; 0 resolves to the hardware.
 * @param fn Body, called with the iteration index.
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

/** parallelFor with the thread count taken from ParallelOptions. */
inline void
parallelFor(std::size_t n, const ParallelOptions &par,
            const std::function<void(std::size_t)> &fn)
{
    parallelFor(n, par.resolvedFor(n), fn);
}

} // namespace bds

#endif // BDS_COMMON_PARALLEL_H
