#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace bds {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t
Pcg32::next64()
{
    std::uint64_t hi = next();
    return (hi << 32) | next();
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    BDS_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    std::uint32_t l = static_cast<std::uint32_t>(m);
    if (l < bound) {
        std::uint32_t t = -bound % bound;
        while (l < t) {
            m = static_cast<std::uint64_t>(next()) * bound;
            l = static_cast<std::uint32_t>(m);
        }
    }
    return static_cast<std::uint32_t>(m >> 32);
}

double
Pcg32::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next64() >> 11) * (1.0 / 9007199254740992.0);
}

double
Pcg32::nextRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Pcg32::nextGaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = nextRange(-1.0, 1.0);
        v = nextRange(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    BDS_ASSERT(n > 0, "ZipfSampler requires n > 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (std::size_t i = 0; i < n; ++i)
        cdf_[i] /= acc;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Pcg32 &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace bds
