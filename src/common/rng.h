/**
 * @file
 * Deterministic random number generation for the whole toolkit.
 *
 * Every stochastic component in the library (data generators, K-means
 * initialization, synthetic trace perturbation) draws from a seeded
 * Pcg32 instance so that runs are exactly reproducible. No component
 * may use std::random_device or wall-clock seeding.
 */

#ifndef BDS_COMMON_RNG_H
#define BDS_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace bds {

/**
 * PCG32 pseudo random number generator (O'Neill, pcg-random.org;
 * XSH-RR variant). Small, fast, statistically solid, and — unlike
 * std::mt19937 — guaranteed to produce an identical stream on every
 * platform and standard library.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next();

    /** Next 64-bit value (two draws). */
    std::uint64_t next64();

    /**
     * Uniform integer in [0, bound) using Lemire-style rejection to
     * avoid modulo bias.
     * @param bound Exclusive upper bound; must be > 0.
     */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

    /** Standard normal variate (Marsaglia polar method, cached pair). */
    double nextGaussian();

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(static_cast<std::uint32_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipf-distributed integer sampler over {0, 1, ..., n-1} with skew s.
 *
 * Uses the classic inverse-CDF table method: O(n) setup, O(log n) per
 * sample. Big data text corpora (word frequencies) and graph degree
 * distributions are modelled with this sampler, mirroring the BDGS
 * generators the paper relies on.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of distinct ranks (> 0).
     * @param s Skew exponent; s = 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw one rank in [0, n). Rank 0 is the most frequent. */
    std::size_t sample(Pcg32 &rng) const;

    /** Number of ranks. */
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace bds

#endif // BDS_COMMON_RNG_H
