#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/log.h"

namespace bds {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    BDS_ASSERT(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        BDS_FATAL("row arity " << row.size() << " != header arity "
                               << header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << csvEscape(row[c]);
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

} // namespace bds
