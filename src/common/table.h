/**
 * @file
 * Plain-text table and CSV rendering used by the report writers.
 *
 * Every bench binary regenerates one of the paper's tables or figure
 * data series; this helper keeps their output format consistent
 * (aligned ASCII table for humans plus CSV rows for plotting).
 */

#ifndef BDS_COMMON_TABLE_H
#define BDS_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace bds {

/**
 * Column-aligned text table builder.
 *
 * Usage:
 * @code
 *   TextTable t({"Workload", "L3 MPKI"});
 *   t.addRow({"H-Sort", "1.27"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with header labels. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of fractional digits. */
std::string fmtDouble(double v, int digits = 3);

/** Escape a CSV field (quotes fields containing separators). */
std::string csvEscape(const std::string &field);

} // namespace bds

#endif // BDS_COMMON_TABLE_H
