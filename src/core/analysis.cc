#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace bds {

char
stackOfName(const std::string &name)
{
    if (name.size() < 3 || name[1] != '-' ||
        (name[0] != 'H' && name[0] != 'S'))
        BDS_FATAL("not a paper-style workload label: '" << name << "'");
    return name[0];
}

std::string
algorithmOfName(const std::string &name)
{
    stackOfName(name); // validates
    return name.substr(2);
}

SimilarityObservations
analyzeSimilarity(const PipelineResult &res)
{
    const Dendrogram &dg = res.dendrogram;
    const auto &names = res.names;
    SimilarityObservations obs;

    auto first = dg.firstIterationLeafMerges();
    obs.firstIterMerges = first.size();
    for (const Merge &m : first) {
        char sa = stackOfName(names[m.left]);
        char sb = stackOfName(names[m.right]);
        if (sa == sb) {
            ++obs.sameStackFirstIterMerges;
        } else {
            obs.crossStackFirstIterPairs.push_back(
                names[m.left] + "+" + names[m.right]);
        }
    }
    obs.sameStackShare = obs.firstIterMerges
        ? static_cast<double>(obs.sameStackFirstIterMerges)
            / static_cast<double>(obs.firstIterMerges)
        : 0.0;

    // Obs 2: closest same-algorithm cross-stack pair.
    obs.minCrossStackSameAlgDistance =
        std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j) {
            if (stackOfName(names[i]) == stackOfName(names[j]))
                continue;
            if (algorithmOfName(names[i]) != algorithmOfName(names[j]))
                continue;
            double d = dg.copheneticDistance(i, j);
            if (d < obs.minCrossStackSameAlgDistance) {
                obs.minCrossStackSameAlgDistance = d;
                obs.closestCrossStackPair =
                    names[i] + "+" + names[j];
            }
        }
    }

    // Obs 5: Hadoop tightness vs Spark tightness.
    std::size_t hadoop_count = 0;
    for (const auto &n : names)
        if (stackOfName(n) == 'H')
            ++hadoop_count;
    std::size_t target = std::max<std::size_t>(
        2, hadoop_count * 9 / 16); // the paper's 9-of-16 proportion
    obs.hadoopTightHeight = minHeightForPureCluster(res, 'H', target);
    if (std::isfinite(obs.hadoopTightHeight)) {
        obs.hadoopTightSize = largestPureClusterAtHeight(
            res, 'H', obs.hadoopTightHeight);
        obs.sparkSizeAtThatHeight = largestPureClusterAtHeight(
            res, 'S', obs.hadoopTightHeight);
    }
    return obs;
}

std::size_t
largestPureClusterAtHeight(const PipelineResult &res, char stack,
                           double height)
{
    auto labels = res.dendrogram.cutAtHeight(height);
    std::size_t k = *std::max_element(labels.begin(), labels.end()) + 1;
    std::size_t best = 0;
    for (std::size_t c = 0; c < k; ++c) {
        std::size_t size = 0;
        bool pure = true;
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (labels[i] != c)
                continue;
            ++size;
            if (stackOfName(res.names[i]) != stack)
                pure = false;
        }
        if (pure && size > best)
            best = size;
    }
    return best;
}

double
minHeightForPureCluster(const PipelineResult &res, char stack,
                        std::size_t size)
{
    for (const Merge &m : res.dendrogram.merges()) {
        if (largestPureClusterAtHeight(res, stack, m.distance) >= size)
            return m.distance;
    }
    return std::numeric_limits<double>::infinity();
}

namespace {

/** Variance of the given rows of one score column. */
double
varianceOfRows(const Matrix &scores, const std::vector<std::size_t> &rows,
               std::size_t col)
{
    if (rows.size() < 2)
        return 0.0;
    double mean = 0.0;
    for (std::size_t r : rows)
        mean += scores(r, col);
    mean /= static_cast<double>(rows.size());
    double ss = 0.0;
    for (std::size_t r : rows) {
        double d = scores(r, col) - mean;
        ss += d * d;
    }
    return ss / static_cast<double>(rows.size() - 1);
}

} // namespace

PcSpread
pcSpread(const PipelineResult &res)
{
    std::vector<std::size_t> hadoop, spark;
    for (std::size_t i = 0; i < res.names.size(); ++i)
        (stackOfName(res.names[i]) == 'H' ? hadoop : spark).push_back(i);

    PcSpread out;
    for (std::size_t pc = 0; pc < res.pca.numComponents; ++pc) {
        out.hadoopVariance.push_back(
            varianceOfRows(res.pca.scores, hadoop, pc));
        out.sparkVariance.push_back(
            varianceOfRows(res.pca.scores, spark, pc));
    }
    return out;
}

StackDifferentiation
differentiateStacks(const PipelineResult &res, double loading_threshold)
{
    std::vector<std::size_t> hadoop, spark;
    for (std::size_t i = 0; i < res.names.size(); ++i)
        (stackOfName(res.names[i]) == 'H' ? hadoop : spark).push_back(i);
    if (hadoop.empty() || spark.empty())
        BDS_FATAL("differentiation needs workloads from both stacks");

    StackDifferentiation out;

    // Point-biserial correlation of each PC with stack membership.
    const Matrix &scores = res.pca.scores;
    const double n = static_cast<double>(res.names.size());
    double best = -1.0;
    for (std::size_t pc = 0; pc < res.pca.numComponents; ++pc) {
        double mh = 0.0, ms = 0.0;
        for (std::size_t r : hadoop)
            mh += scores(r, pc);
        for (std::size_t r : spark)
            ms += scores(r, pc);
        mh /= static_cast<double>(hadoop.size());
        ms /= static_cast<double>(spark.size());
        double mean = 0.0, ss = 0.0;
        for (std::size_t r = 0; r < scores.rows(); ++r)
            mean += scores(r, pc);
        mean /= n;
        for (std::size_t r = 0; r < scores.rows(); ++r) {
            double d = scores(r, pc) - mean;
            ss += d * d;
        }
        double sd = std::sqrt(ss / n);
        if (sd == 0.0)
            continue;
        double p = static_cast<double>(hadoop.size()) / n;
        double corr =
            std::fabs((mh - ms) / sd * std::sqrt(p * (1.0 - p)));
        if (corr > best) {
            best = corr;
            out.separatingPc = pc;
        }
    }
    out.correlation = best;

    // Dominating metrics by loading sign/magnitude on that PC.
    for (std::size_t m = 0; m < res.pca.loadings.rows(); ++m) {
        double l = res.pca.loadings(m, out.separatingPc);
        if (l <= -loading_threshold)
            out.negativeMetrics.push_back(m);
        else if (l >= loading_threshold)
            out.positiveMetrics.push_back(m);
    }

    // Raw-metric mean ratios (Figure 5 bars).
    const Matrix &raw = res.rawMetrics;
    out.hadoopOverSpark.assign(raw.cols(), 0.0);
    for (std::size_t m = 0; m < raw.cols(); ++m) {
        double mh = 0.0, ms = 0.0;
        for (std::size_t r : hadoop)
            mh += raw(r, m);
        for (std::size_t r : spark)
            ms += raw(r, m);
        mh /= static_cast<double>(hadoop.size());
        ms /= static_cast<double>(spark.size());
        out.hadoopOverSpark[m] = ms != 0.0 ? mh / ms : 0.0;
    }
    return out;
}

} // namespace bds
