/**
 * @file
 * Quantitative versions of the paper's Section V analyses: the
 * dendrogram observations (1-5), the PC-space spread comparison
 * (Figures 2-3), and the Hadoop/Spark differentiation along the
 * separating principal component (Figure 5, observations 6-9).
 */

#ifndef BDS_CORE_ANALYSIS_H
#define BDS_CORE_ANALYSIS_H

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace bds {

/** Stack of a paper-style workload label ("H-..." / "S-..."). */
char stackOfName(const std::string &name);

/** Algorithm part of a paper-style workload label. */
std::string algorithmOfName(const std::string &name);

/** Section V-A dendrogram observations. */
struct SimilarityObservations
{
    /** Number of first-iteration (leaf-leaf) merges. */
    std::size_t firstIterMerges = 0;

    /** How many of those join two same-stack workloads (Obs 1). */
    std::size_t sameStackFirstIterMerges = 0;

    /** sameStackFirstIterMerges / firstIterMerges (paper: 0.8). */
    double sameStackShare = 0.0;

    /** Labels of cross-stack first-iteration pairs ("a+b"). */
    std::vector<std::string> crossStackFirstIterPairs;

    /**
     * Minimum cophenetic distance between any same-algorithm pair on
     * different stacks (paper: 3.19, H-Sort/S-Sort) — Obs 2.
     */
    double minCrossStackSameAlgDistance = 0.0;

    /** The pair attaining that minimum. */
    std::string closestCrossStackPair;

    /**
     * Obs 5: height at which some pure-Hadoop cluster of >= 9
     * members first exists, and the size of the largest pure-Spark
     * cluster at that same height.
     */
    double hadoopTightHeight = 0.0;
    std::size_t hadoopTightSize = 0;   ///< the pure-Hadoop size reached
    std::size_t sparkSizeAtThatHeight = 0;
};

/** Analyze the pipeline's dendrogram. */
SimilarityObservations analyzeSimilarity(const PipelineResult &res);

/**
 * Smallest cut height at which a cluster of at least `size` leaves,
 * all of the given stack, exists. Returns +inf when impossible.
 */
double minHeightForPureCluster(const PipelineResult &res, char stack,
                               std::size_t size);

/** Largest pure-`stack` cluster size when cutting at `height`. */
std::size_t largestPureClusterAtHeight(const PipelineResult &res,
                                       char stack, double height);

/** Per-PC score variance split by stack (Figures 2-3's spread). */
struct PcSpread
{
    std::vector<double> hadoopVariance; ///< per retained PC
    std::vector<double> sparkVariance;  ///< per retained PC
};

/** Compute the per-stack PC-score variances. */
PcSpread pcSpread(const PipelineResult &res);

/** Section V-C: which PC separates the stacks and how. */
struct StackDifferentiation
{
    /** Index (0-based) of the PC best separating the stacks. */
    std::size_t separatingPc = 0;

    /** |point-biserial correlation| of that PC with the stack. */
    double correlation = 0.0;

    /** Metric indices with strong negative loadings on that PC. */
    std::vector<std::size_t> negativeMetrics;

    /** Metric indices with strong positive loadings on that PC. */
    std::vector<std::size_t> positiveMetrics;

    /**
     * Per-metric mean(Hadoop) / mean(Spark) over the raw metrics
     * (Figure 5's ratio bars; 0 when the Spark mean is 0).
     */
    std::vector<double> hadoopOverSpark;
};

/**
 * Find the separating PC and the metrics that dominate it.
 * @param res Pipeline result.
 * @param loading_threshold |loading| above which a metric counts as
 *        dominating the PC.
 */
StackDifferentiation differentiateStacks(const PipelineResult &res,
                                         double loading_threshold = 0.5);

} // namespace bds

#endif // BDS_CORE_ANALYSIS_H
