#include "core/csvio.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <unordered_map>

#include "common/log.h"

namespace bds {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char ch = line[i];
        if (ch == '"') {
            if (quoted && i + 1 < line.size() && line[i + 1] == '"') {
                field += '"';
                ++i;
            } else {
                quoted = !quoted;
            }
        } else if (ch == ',' && !quoted) {
            out.push_back(field);
            field.clear();
        } else if (ch != '\r') {
            field += ch;
        }
    }
    out.push_back(field);
    return out;
}

MetricTable
readMetricsCsv(std::istream &in)
{
    MetricTable table;
    std::string line;
    if (!std::getline(in, line))
        BDS_FATAL("metric CSV is empty");
    auto header = splitCsvLine(line);
    if (header.size() < 2)
        BDS_FATAL("metric CSV header needs a label plus metrics");
    table.columns.assign(header.begin() + 1, header.end());

    std::vector<std::vector<double>> rows;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        auto fields = splitCsvLine(line);
        if (fields.size() != header.size())
            BDS_FATAL("metric CSV line " << line_no << " has "
                      << fields.size() << " fields, expected "
                      << header.size());
        table.names.push_back(fields[0]);
        std::vector<double> row;
        for (std::size_t i = 1; i < fields.size(); ++i) {
            const char *s = fields[i].c_str();
            char *end = nullptr;
            double v = std::strtod(s, &end);
            if (end == s)
                BDS_FATAL("metric CSV line " << line_no
                          << ": non-numeric cell '" << fields[i]
                          << "'");
            row.push_back(v);
        }
        rows.push_back(std::move(row));
    }
    if (rows.empty())
        BDS_FATAL("metric CSV has no data rows");

    table.values = Matrix(rows.size(), table.columns.size());
    for (std::size_t r = 0; r < rows.size(); ++r)
        table.values.setRow(r, rows[r]);
    return table;
}

MetricTable
readMetricsCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        BDS_FATAL("cannot open metric CSV '" << path << "'");
    return readMetricsCsv(in);
}

Matrix
alignMetricTable(const MetricTable &table, const MetricSet &set)
{
    // Map column name -> position, rejecting duplicates outright: a
    // doubled header cell means the file is not what it claims.
    std::unordered_map<std::string, std::size_t> by_name;
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
        auto [it, fresh] = by_name.emplace(table.columns[c], c);
        if (!fresh)
            BDS_FATAL("metric CSV lists column '" << table.columns[c]
                      << "' twice");
    }

    std::vector<std::size_t> order;
    order.reserve(set.size());
    std::string missing;
    for (std::size_t i = 0; i < set.size(); ++i) {
        auto it = by_name.find(set.specAt(i).name);
        if (it == by_name.end()) {
            if (!missing.empty())
                missing += ", ";
            missing += "'" + std::string(set.specAt(i).name) + "'";
            continue;
        }
        order.push_back(it->second);
    }
    if (!missing.empty())
        BDS_FATAL("metric CSV lacks required metric column(s) "
                  << missing << " (have " << table.columns.size()
                  << " columns); columns are matched by name, "
                  << "never by position");

    Matrix out(table.values.rows(), order.size());
    for (std::size_t r = 0; r < table.values.rows(); ++r)
        for (std::size_t c = 0; c < order.size(); ++c)
            out(r, c) = table.values(r, order[c]);
    return out;
}

} // namespace bds
