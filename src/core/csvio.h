/**
 * @file
 * CSV import/export of metric matrices.
 *
 * The pipeline is measurement-agnostic: a workloads x metrics CSV
 * produced by any harness — this repository's simulator, perf on
 * real hardware, or a spreadsheet — can be loaded and analyzed.
 * writeMetricsCsv (report.h) produces the same format this reads.
 */

#ifndef BDS_CORE_CSVIO_H
#define BDS_CORE_CSVIO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/set.h"
#include "stats/matrix.h"

namespace bds {

/** A named metric matrix loaded from CSV. */
struct MetricTable
{
    std::vector<std::string> names;   ///< row labels (workloads)
    std::vector<std::string> columns; ///< column labels (metrics)
    Matrix values;                    ///< the data
};

/**
 * Split one CSV line honoring double-quoted fields (with "" escapes).
 */
std::vector<std::string> splitCsvLine(const std::string &line);

/**
 * Parse a metric CSV from a stream.
 *
 * Expected layout: a header row `label,<metric>,...` followed by one
 * row per workload. Ragged rows or non-numeric cells are fatal.
 */
MetricTable readMetricsCsv(std::istream &in);

/** Load a metric CSV from a file; fatal when unreadable. */
MetricTable readMetricsCsvFile(const std::string &path);

/**
 * Align a loaded table's columns to `set` order by canonical name.
 *
 * Columns may appear in any order; columns outside the set are
 * ignored (so a full Table II CSV feeds any declared subset). A set
 * metric missing from the table, or a duplicated column name, is
 * fatal with a diagnostic naming the offending columns — positions
 * are never trusted.
 *
 * @return The table's values with columns reordered to set order.
 */
Matrix alignMetricTable(const MetricTable &table, const MetricSet &set);

} // namespace bds

#endif // BDS_CORE_CSVIO_H
