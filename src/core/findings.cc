#include "core/findings.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"
#include "core/analysis.h"
#include "core/subset.h"
#include "metrics/set.h"

namespace bds {

namespace {

void
add(std::vector<Finding> &out, const std::string &id,
    const std::string &claim, const std::string &measured, bool pass)
{
    out.push_back(Finding{id, claim, measured, pass});
}

} // namespace

std::vector<Finding>
evaluatePaperFindings(const PipelineResult &res)
{
    std::vector<Finding> out;
    SimilarityObservations obs = analyzeSimilarity(res);

    // --- Section V-A: dendrogram observations ---
    add(out, "obs1",
        "most first-iteration merges join same-stack workloads (80%)",
        fmtDouble(100.0 * obs.sameStackShare, 1) + "% same-stack",
        obs.sameStackShare >= 0.5);

    std::vector<double> first_dists;
    for (const auto &m : res.dendrogram.firstIterationLeafMerges())
        first_dists.push_back(m.distance);
    std::sort(first_dists.begin(), first_dists.end());
    double median_first = first_dists.empty()
        ? 0.0
        : first_dists[first_dists.size() / 2];
    add(out, "obs2",
        "same-algorithm cross-stack pairs stay distant",
        obs.closestCrossStackPair + " at "
            + fmtDouble(obs.minCrossStackSameAlgDistance, 2)
            + " vs median first merge "
            + fmtDouble(median_first, 2),
        obs.minCrossStackSameAlgDistance > median_first);

    // The paper's 9-of-16 proportion, scaled to this suite's size.
    std::size_t h_count = 0, s_count = 0;
    for (const auto &n : res.names)
        (stackOfName(n) == 'H' ? h_count : s_count)++;
    std::size_t h_target = std::max<std::size_t>(2, h_count * 9 / 16);
    std::size_t s_target = std::max<std::size_t>(2, s_count * 9 / 16);
    double h9 = minHeightForPureCluster(res, 'H', h_target);
    double s9 = minHeightForPureCluster(res, 'S', s_target);
    add(out, "obs5",
        "Hadoop workloads cluster tighter than Spark workloads",
        std::to_string(h_target) + " Hadoop by height "
            + fmtDouble(h9, 2) + ", " + std::to_string(s_target)
            + " Spark by " + fmtDouble(s9, 2),
        h9 < s9);

    // --- Section V-B: PC-space spread ---
    PcSpread spread = pcSpread(res);
    double hv = 0.0, sv = 0.0;
    for (std::size_t pc = 0; pc < spread.hadoopVariance.size(); ++pc) {
        hv += spread.hadoopVariance[pc];
        sv += spread.sparkVariance[pc];
    }
    add(out, "fig2-3",
        "Spark workloads spread wider across PC space",
        "total score variance Spark/Hadoop = "
            + fmtDouble(hv > 0 ? sv / hv : 0.0, 2),
        sv > hv);

    // --- Section V-C: the separating PC and Figure 5 ---
    StackDifferentiation diff = differentiateStacks(res);
    add(out, "fig5.pc",
        "one principal component separates the stacks",
        "PC" + std::to_string(diff.separatingPc + 1)
            + ", |r| = " + fmtDouble(diff.correlation, 2),
        diff.correlation > 0.5);

    // Figure 5 metric checks: looked up by schema metric in the
    // result's resolved metric set (the full Table II for legacy
    // hand-built 45-column matrices), so a declared subset is scored
    // on whichever key metrics it provides.
    MetricSet set = res.metrics;
    if (set.empty() && res.rawMetrics.cols() == kNumMetrics)
        set = MetricSet::tableII();
    if (!set.empty()) {
        struct Direction
        {
            Metric metric;
            bool hadoopHigher;
        };
        const Direction dirs[] = {
            {Metric::L3Miss, false},      {Metric::L1iMiss, true},
            {Metric::DtlbMiss, false},    {Metric::DataHitStlb, true},
            {Metric::FetchStall, true},   {Metric::ResourceStall, false},
            {Metric::SnoopHit, false},    {Metric::SnoopHitE, false},
            {Metric::SnoopHitM, false},   {Metric::Store, true},
            {Metric::Ilp, true},          {Metric::KernelMode, true},
            {Metric::ItlbMiss, true},
        };
        for (const Direction &d : dirs) {
            std::size_t idx = set.indexOf(d.metric);
            if (idx >= set.size())
                continue;
            double ratio = diff.hadoopOverSpark[idx];
            bool pass = d.hadoopHigher ? ratio > 1.0 : ratio < 1.0;
            add(out,
                std::string("fig5.") + metricName(d.metric),
                std::string(d.hadoopHigher ? "Hadoop" : "Spark")
                    + " has the higher " + metricName(d.metric),
                "H/S ratio = " + fmtDouble(ratio, 3), pass);
        }
    }

    // --- Section VI: subsetting ---
    bool k7_in_sweep = false;
    for (const auto &pt : res.bic.points)
        if (pt.k == 7)
            k7_in_sweep = true;
    std::size_t subset_k = k7_in_sweep ? 7 : 0;
    auto near = selectRepresentatives(
        res, RepresentativeStrategy::NearestToCentroid, subset_k);
    auto far = selectRepresentatives(
        res, RepresentativeStrategy::FarthestFromCentroid, subset_k);
    add(out, "tab5.diversity",
        "boundary representatives cover at least as much linkage "
        "diversity as centroid ones (11.20 vs 5.82)",
        fmtDouble(far.maxPairwiseLinkage, 2) + " vs "
            + fmtDouble(near.maxPairwiseLinkage, 2),
        far.maxPairwiseLinkage >= near.maxPairwiseLinkage - 1e-9);

    unsigned h_reps = 0, s_reps = 0;
    for (std::size_t rep : far.representatives) {
        if (stackOfName(res.names[rep]) == 'H')
            ++h_reps;
        else
            ++s_reps;
    }
    add(out, "tab5.mix",
        "a representative subset must include both software stacks",
        std::to_string(h_reps) + " Hadoop + " + std::to_string(s_reps)
            + " Spark representatives",
        h_reps > 0 && s_reps > 0);

    return out;
}

std::size_t
writeFindingsReport(std::ostream &os,
                    const std::vector<Finding> &findings)
{
    TextTable t({"finding", "paper claim", "measured", "verdict"});
    std::size_t failed = 0;
    for (const Finding &f : findings) {
        if (!f.pass)
            ++failed;
        t.addRow({f.id, f.claim, f.measured, f.pass ? "PASS" : "FAIL"});
    }
    t.print(os);
    os << findings.size() - failed << '/' << findings.size()
       << " findings reproduced\n";
    return failed;
}

} // namespace bds
