/**
 * @file
 * Automatic verification of the paper's findings.
 *
 * Every qualitative claim in Sections V-VI is encoded as a checkable
 * predicate over a PipelineResult, so a characterization run can be
 * scored against the paper in one call — the reproduction's
 * regression test, usable on simulated or externally measured data.
 */

#ifndef BDS_CORE_FINDINGS_H
#define BDS_CORE_FINDINGS_H

#include <ostream>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace bds {

/** One checked claim. */
struct Finding
{
    std::string id;          ///< short identifier ("obs1", "fig5.l3")
    std::string claim;       ///< what the paper says
    std::string measured;    ///< what this run shows
    bool pass = false;       ///< does the run support the claim?
};

/**
 * Evaluate all encoded findings against a pipeline result.
 *
 * Requires paper-style workload labels ("H-..." / "S-..."). Figure 5
 * metric checks are included only when the matrix has the 45 Table
 * II columns.
 */
std::vector<Finding> evaluatePaperFindings(const PipelineResult &res);

/** Render the scorecard; returns the number of failed findings. */
std::size_t writeFindingsReport(std::ostream &os,
                                const std::vector<Finding> &findings);

} // namespace bds

#endif // BDS_CORE_FINDINGS_H
