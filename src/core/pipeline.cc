#include "core/pipeline.h"

#include "common/log.h"
#include "fault/error.h"
#include "obs/trace.h"
#include "uarch/machine.h"

namespace bds {

namespace {

/**
 * Resolve which schema metrics the matrix columns are, projecting a
 * full Table II matrix onto a declared subset when needed. Leaves
 * res.metrics empty for non-schema (external) columns.
 */
void
resolveMetricSet(PipelineResult &res, const PipelineOptions &opts)
{
    const std::size_t cols = res.rawMetrics.cols();
    if (opts.metrics.size() == cols) {
        res.metrics = opts.metrics;
    } else if (!opts.metrics.isFullTableII()) {
        if (cols == kNumMetrics) {
            // A full Table II matrix analyzed on a declared subset:
            // select the subset's columns before normalization.
            inform("pipeline: projecting " + std::to_string(cols)
                   + "-column Table II matrix onto "
                   + std::to_string(opts.metrics.size())
                   + " declared metrics");
            res.rawMetrics = opts.metrics.selectColumns(res.rawMetrics);
            res.metrics = opts.metrics;
        } else {
            BDS_FATAL("pipeline metric set declares "
                      << opts.metrics.size() << " metrics but the "
                      << "matrix has " << cols
                      << " columns (and is not a full Table II "
                      << "matrix to project from)");
        }
    } else {
        // Default full set with a foreign column count: external
        // data whose columns are not schema metrics.
        res.metrics = MetricSet::none();
    }

    if (!res.metrics.empty()) {
        res.metricLabels = res.metrics.names();
    } else if (!opts.columnLabels.empty()) {
        if (opts.columnLabels.size() != res.rawMetrics.cols())
            BDS_FATAL("pipeline got " << opts.columnLabels.size()
                      << " column labels for "
                      << res.rawMetrics.cols() << " columns");
        res.metricLabels = opts.columnLabels;
    }
}

} // namespace

PipelineResult
runPipeline(const Matrix &metrics, const std::vector<std::string> &names,
            const PipelineOptions &opts)
{
    if (names.size() != metrics.rows())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "pipeline needs one name per row: " << names.size()
                      << " names, " << metrics.rows() << " rows");
    if (metrics.rows() < 3)
        BDS_RAISE(ErrorCode::DegenerateData,
                  "pipeline needs at least three workloads, got "
                      << metrics.rows());

    TraceSpan span("pipeline.run");
    PipelineResult res;
    res.names = names;
    res.rawMetrics = metrics;
    resolveMetricSet(res, opts);
    {
        TraceSpan stage("pipeline.zscore");
        res.z = zscore(res.rawMetrics);
    }
    {
        TraceSpan stage("pipeline.pca");
        res.pca = pca(res.z.normalized, opts.pca);
        if (opts.pca.forcedComponents > 0
            && res.pca.numComponents < opts.pca.forcedComponents)
            warn("pipeline: retained "
                 + std::to_string(res.pca.numComponents)
                 + " principal components of the "
                 + std::to_string(opts.pca.forcedComponents)
                 + " requested (rank-limited input)");
    }
    {
        TraceSpan stage("pipeline.hcluster");
        res.dendrogram =
            hierarchicalCluster(res.pca.scores, opts.linkage);
    }
    {
        TraceSpan stage("pipeline.bic_sweep");
        std::size_t k_max = std::min(opts.kMax, metrics.rows() - 1);
        res.bic = sweepBic(res.pca.scores, opts.kMin, k_max, opts.seed,
                           opts.kmeans, opts.parallel);
    }
    if (opts.useFirstLocalBicMax)
        res.bic.bestIndex = res.bic.firstLocalMaxIndex();
    return res;
}

PipelineOptions
pipelineOptionsFor(const RunConfig &cfg)
{
    PipelineOptions opts;
    opts.parallel = cfg.parallel;
    opts.sampling = cfg.sampling;
    opts.machine = resolveMachineSpec(cfg.machineSpec);
    if (!cfg.metricNames.empty())
        opts.metrics = MetricSet::fromNames(cfg.metricNames);
    return opts;
}

} // namespace bds
