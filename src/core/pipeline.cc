#include "core/pipeline.h"

#include "common/log.h"

namespace bds {

PipelineResult
runPipeline(const Matrix &metrics, const std::vector<std::string> &names,
            const PipelineOptions &opts)
{
    if (names.size() != metrics.rows())
        BDS_FATAL("pipeline needs one name per row: " << names.size()
                  << " names, " << metrics.rows() << " rows");
    if (metrics.rows() < 3)
        BDS_FATAL("pipeline needs at least three workloads");

    PipelineResult res;
    res.names = names;
    res.rawMetrics = metrics;
    res.z = zscore(metrics);
    res.pca = pca(res.z.normalized, opts.pca);
    res.dendrogram = hierarchicalCluster(res.pca.scores, opts.linkage);

    std::size_t k_max = std::min(opts.kMax, metrics.rows() - 1);
    res.bic = sweepBic(res.pca.scores, opts.kMin, k_max, opts.seed,
                       opts.kmeans, opts.parallel);
    if (opts.useFirstLocalBicMax)
        res.bic.bestIndex = res.bic.firstLocalMaxIndex();
    return res;
}

} // namespace bds
