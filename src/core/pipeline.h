/**
 * @file
 * The paper's methodology as a library: normalize the 45-metric
 * matrix, PCA with Kaiser's criterion, single-linkage hierarchical
 * clustering of the PC scores (Section V), and the K-means/BIC
 * subsetting (Section VI).
 *
 * The pipeline is deliberately independent of where the metric
 * matrix came from — the simulator-backed WorkloadRunner, a CSV of
 * real PMC measurements, or a synthetic test fixture all work.
 */

#ifndef BDS_CORE_PIPELINE_H
#define BDS_CORE_PIPELINE_H

#include <string>
#include <vector>

#include "common/parallel.h"
#include "metrics/set.h"
#include "obs/runconfig.h"
#include "sample/options.h"
#include "stats/bic.h"
#include "stats/hcluster.h"
#include "stats/normalize.h"
#include "stats/pca.h"
#include "uarch/config.h"

namespace bds {

/** Options for the characterization pipeline. */
struct PipelineOptions
{
    /** Linkage used for the similarity dendrogram (paper: single). */
    Linkage linkage = Linkage::Single;

    /** PCA retention options (paper: Kaiser, eigenvalue >= 1). */
    PcaOptions pca;

    /** K-means K sweep range for the BIC selection. */
    std::size_t kMin = 2;

    /** Upper end of the K sweep. */
    std::size_t kMax = 15;

    /** K-means options for each sweep point. */
    KMeansOptions kmeans;

    /**
     * Seed for the K-means sweep. Each K of the sweep draws from its
     * own RNG stream derived from (seed, K), so the sweep result
     * does not depend on the execution order or thread count.
     */
    std::uint64_t seed = 7;

    /**
     * Worker threads for the parallel stages (currently the BIC K
     * sweep). 0 means hardware concurrency; 1 runs serially. Every
     * setting yields an identical PipelineResult — see
     * docs/THREADING.md for the determinism contract.
     */
    ParallelOptions parallel;

    /**
     * Select K at the first local BIC maximum instead of the global
     * one. The paper's curve peaks once (K = 7); on more dispersed
     * suites the global maximum drifts toward the sweep cap while
     * the first local maximum stays at the paper-like knee. The
     * sweep itself always records every K for inspection.
     */
    bool useFirstLocalBicMax = false;

    /**
     * Sampled-simulation knobs for callers that build the metric
     * matrix themselves (bench/bench_common.h, the examples): when
     * sampling.enabled, the matrix comes from a SampledCharacterizer
     * (src/sample) instead of full detailed runs. runPipeline()
     * itself is matrix-in, so it ignores this field.
     */
    SamplingOptions sampling;

    /**
     * The machine the matrix is (to be) measured on, resolved from
     * RunConfig.machineSpec by pipelineOptionsFor(). Like `sampling`,
     * this is for the matrix-building callers — runPipeline() itself
     * never constructs a node — so no tool hard-codes
     * NodeConfig::defaultSim() anymore.
     */
    NodeConfig machine = NodeConfig::defaultSim();

    /**
     * The schema metrics this analysis runs on (default: the full
     * Table II). When the input matrix has exactly this many columns
     * they are taken to be these metrics in set order; when a full
     * 45-column matrix is given with a declared subset, runPipeline
     * projects the matrix onto the subset's columns first. Any other
     * combination with a non-default set is a fatal mismatch. A full
     * default set with a foreign column count leaves the columns
     * unnamed (external, non-Table-II data).
     */
    MetricSet metrics;

    /**
     * Optional column labels for matrices whose columns are not
     * schema metrics (e.g. external CSV measurements). Used for
     * report headers only; must be empty or one label per column.
     */
    std::vector<std::string> columnLabels;
};

/** Everything the paper's Sections V and VI derive from the data. */
struct PipelineResult
{
    /** Workload labels, one per row. */
    std::vector<std::string> names;

    /**
     * The schema metrics behind rawMetrics' columns, in column
     * order; empty when the columns are not schema metrics.
     */
    MetricSet metrics = MetricSet::none();

    /**
     * One label per rawMetrics column: schema names when `metrics`
     * applies, caller-provided labels otherwise, else generated
     * ("m0", "m1", ...). Report writers read only this.
     */
    std::vector<std::string> metricLabels;

    /** Raw metric matrix (rows = workloads, cols = metricLabels). */
    Matrix rawMetrics;

    /** Z-scored matrix and the normalization parameters. */
    ZScoreResult z;

    /** PCA over the normalized matrix. */
    PcaResult pca;

    /** Similarity dendrogram over the PC scores (Figure 1). */
    Dendrogram dendrogram{1, {}};

    /** K-means sweep with BIC scores (Table IV's selection). */
    BicSweepResult bic;
};

/**
 * Run the full pipeline over a metric matrix.
 *
 * @param metrics Workloads x metrics matrix.
 * @param names One label per row.
 * @param opts Pipeline options.
 */
PipelineResult runPipeline(const Matrix &metrics,
                           const std::vector<std::string> &names,
                           const PipelineOptions &opts = {});

/**
 * Resolve a RunConfig (the unified env/CLI entry point, src/obs)
 * into PipelineOptions: worker threads, sampling knobs, the machine
 * geometry (cfg.machineSpec through resolveMachineSpec()), and the
 * metric set (cfg.metricNames validated through
 * MetricSet::fromNames(); empty means the full Table II). The
 * analysis-internal knobs (linkage, PCA retention, the K-sweep seed)
 * keep their paper defaults.
 */
PipelineOptions pipelineOptionsFor(const RunConfig &cfg);

} // namespace bds

#endif // BDS_CORE_PIPELINE_H
