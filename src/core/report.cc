#include "core/report.h"

#include <string>

#include "common/log.h"
#include "common/table.h"
#include "metrics/set.h"

namespace bds {

namespace {

/**
 * Label of column `m`: the result's resolved labels when present,
 * schema names for full hand-built Table II matrices, else generic.
 */
std::string
colName(const PipelineResult &res, std::size_t m)
{
    if (m < res.metricLabels.size())
        return res.metricLabels[m];
    if (res.rawMetrics.cols() == kNumMetrics)
        return metricName(m);
    return "m" + std::to_string(m);
}

/**
 * The schema metrics behind the result's columns: the resolved set
 * when the pipeline named them, the full Table II for hand-built
 * 45-column matrices, the empty set for foreign columns.
 */
MetricSet
effectiveMetricSet(const PipelineResult &res)
{
    if (!res.metrics.empty())
        return res.metrics;
    if (res.rawMetrics.cols() == kNumMetrics)
        return MetricSet::tableII();
    return MetricSet::none();
}

} // namespace

void
writePcaSummary(std::ostream &os, const PipelineResult &res)
{
    os << "PCA: " << res.pca.numComponents
       << " components retained (Kaiser eigenvalue >= 1), "
       << fmtDouble(100.0 * res.pca.totalVarianceRetained, 2)
       << "% of total variance\n";
    os << "eigenvalues:";
    for (std::size_t i = 0; i < res.pca.eigenvalues.size(); ++i) {
        os << ' ' << fmtDouble(res.pca.eigenvalues[i], 3);
        if (i + 1 == res.pca.numComponents)
            os << " |";
    }
    os << '\n';
}

void
writeDendrogramReport(std::ostream &os, const PipelineResult &res)
{
    writePcaSummary(os, res);
    os << "\nFigure 1 — single-linkage dendrogram over "
       << res.pca.numComponents << " PC scores\n\n";
    os << res.dendrogram.renderAscii(res.names);

    os << "\nmerge list (agglomeration order):\n";
    TextTable t({"step", "left", "right", "distance", "size"});
    const auto &names = res.names;
    auto label = [&](std::size_t id) {
        return id < names.size() ? names[id]
                                 : "cluster#" + std::to_string(id);
    };
    for (std::size_t i = 0; i < res.dendrogram.merges().size(); ++i) {
        const Merge &m = res.dendrogram.merges()[i];
        t.addRow({std::to_string(i), label(m.left), label(m.right),
                  fmtDouble(m.distance, 3), std::to_string(m.size)});
    }
    t.print(os);
}

void
writeLinkageCsv(std::ostream &os, const PipelineResult &res)
{
    os << "left,right,distance,size\n";
    for (const Merge &m : res.dendrogram.merges())
        os << m.left << ',' << m.right << ','
           << fmtDouble(m.distance, 6) << ',' << m.size << '\n';
}

void
writeSimilarityObservations(std::ostream &os, const PipelineResult &res)
{
    SimilarityObservations obs = analyzeSimilarity(res);
    os << "Observation 1: " << obs.sameStackFirstIterMerges << '/'
       << obs.firstIterMerges
       << " first-iteration merges are same-stack ("
       << fmtDouble(100.0 * obs.sameStackShare, 1)
       << "%; paper: 80%)\n";
    os << "  cross-stack first-iteration pairs:";
    if (obs.crossStackFirstIterPairs.empty())
        os << " none";
    for (const auto &p : obs.crossStackFirstIterPairs)
        os << ' ' << p;
    os << '\n';
    os << "Observation 2: closest same-algorithm cross-stack pair is "
       << obs.closestCrossStackPair << " at linkage distance "
       << fmtDouble(obs.minCrossStackSameAlgDistance, 3)
       << " (paper: H-Sort/S-Sort at 3.19)\n";
    os << "Observation 5: a pure-Hadoop cluster of "
       << obs.hadoopTightSize << " forms by height "
       << fmtDouble(obs.hadoopTightHeight, 3)
       << "; largest pure-Spark cluster at that height: "
       << obs.sparkSizeAtThatHeight
       << " (paper: 9 Hadoop within 2.72 vs 3 Spark within 3.13)\n";
}

void
writeScatterReport(std::ostream &os, const PipelineResult &res,
                   std::size_t pc_a, std::size_t pc_b)
{
    os << "workload,stack,PC" << pc_a + 1 << ",PC" << pc_b + 1 << '\n';
    for (std::size_t i = 0; i < res.names.size(); ++i) {
        os << res.names[i] << ','
           << (stackOfName(res.names[i]) == 'H' ? "Hadoop" : "Spark")
           << ',' << fmtDouble(res.pca.scores(i, pc_a), 4) << ','
           << fmtDouble(res.pca.scores(i, pc_b), 4) << '\n';
    }

    PcSpread spread = pcSpread(res);
    os << "\nper-stack score variance (spread):\n";
    TextTable t({"PC", "Hadoop var", "Spark var", "Spark/Hadoop"});
    for (std::size_t pc : {pc_a, pc_b}) {
        double h = spread.hadoopVariance[pc];
        double s = spread.sparkVariance[pc];
        t.addRow({"PC" + std::to_string(pc + 1), fmtDouble(h, 3),
                  fmtDouble(s, 3),
                  h > 0 ? fmtDouble(s / h, 2) : "inf"});
    }
    t.print(os);
}

void
writeLoadingsReport(std::ostream &os, const PipelineResult &res,
                    std::size_t num_pcs)
{
    num_pcs = std::min(num_pcs, res.pca.numComponents);
    os << "metric";
    for (std::size_t pc = 0; pc < num_pcs; ++pc)
        os << ",PC" << pc + 1;
    os << '\n';
    for (std::size_t m = 0; m < res.pca.loadings.rows(); ++m) {
        os << csvEscape(colName(res, m));
        for (std::size_t pc = 0; pc < num_pcs; ++pc)
            os << ',' << fmtDouble(res.pca.loadings(m, pc), 4);
        os << '\n';
    }
}

void
writeStackDifferentiationReport(std::ostream &os,
                                const PipelineResult &res)
{
    StackDifferentiation diff = differentiateStacks(res);
    os << "separating PC: PC" << diff.separatingPc + 1
       << " (|point-biserial correlation| = "
       << fmtDouble(diff.correlation, 3) << "; paper: PC2)\n\n";

    TextTable t({"metric", "loading sign", "Hadoop/Spark mean ratio"});
    for (std::size_t m : diff.negativeMetrics)
        t.addRow({colName(res, m), "negative",
                  fmtDouble(diff.hadoopOverSpark[m], 3)});
    for (std::size_t m : diff.positiveMetrics)
        t.addRow({colName(res, m), "positive",
                  fmtDouble(diff.hadoopOverSpark[m], 3)});
    t.print(os);

    // The paper's Figure 5 key ratios, looked up by schema metric in
    // whatever set the loaded columns provide; metrics absent from
    // the set are reported as skipped instead of silently dropped.
    struct KeyRatio
    {
        Metric metric;
        const char *direction;
    };
    static const KeyRatio kKeyRatios[] = {
        {Metric::L3Miss, "< 1 (Spark ~2x)"},
        {Metric::L1iMiss, "> 1 (~1.3x)"},
        {Metric::DtlbMiss, "< 1"},
        {Metric::DataHitStlb, "> 1"},
        {Metric::FetchStall, "> 1"},
        {Metric::ResourceStall, "< 1"},
        {Metric::SnoopHit, "< 1"},
        {Metric::SnoopHitE, "< 1"},
        {Metric::SnoopHitM, "< 1"},
        {Metric::Store, "> 1"},
        {Metric::Ilp, "> 1"},
        {Metric::UopsExeCycle, "> 1"},
        {Metric::UopsStall, "< 1"},
        {Metric::OffcoreData, "> 1"},
    };

    MetricSet set = effectiveMetricSet(res);
    if (set.empty()) {
        warn("stack differentiation: columns are not schema metrics; "
             "skipping the named key Figure 5 ratios");
        os << "\n(key Figure 5 ratios unavailable: the loaded columns "
              "are not Table II metrics)\n";
        return;
    }

    std::string missing;
    os << "\nkey Figure 5 ratios (Hadoop mean / Spark mean):\n";
    TextTable k({"metric", "ratio", "paper direction"});
    for (const KeyRatio &key : kKeyRatios) {
        std::size_t idx = set.indexOf(key.metric);
        if (idx >= set.size()) {
            if (!missing.empty())
                missing += ", ";
            missing += metricName(key.metric);
            continue;
        }
        k.addRow({metricName(key.metric),
                  fmtDouble(diff.hadoopOverSpark[idx], 3),
                  key.direction});
    }
    k.print(os);
    if (!missing.empty()) {
        warn("stack differentiation: metric set lacks key ratios: "
             + missing);
        os << "(not in the loaded metric set: " << missing << ")\n";
    }
}

namespace {

/** Print one clustering as a Table IV-style listing. */
void
printClusters(std::ostream &os, const PipelineResult &res,
              std::size_t forced_k)
{
    SubsetResult subset = selectRepresentatives(
        res, RepresentativeStrategy::FarthestFromCentroid, forced_k);
    TextTable t({"cluster", "workloads", "number"});
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        std::string members;
        for (std::size_t r : subset.clusters[c]) {
            if (!members.empty())
                members += ", ";
            members += res.names[r];
        }
        t.addRow({std::to_string(c + 1), members,
                  std::to_string(subset.clusters[c].size())});
    }
    t.print(os);
}

} // namespace

void
writeClusterReport(std::ostream &os, const PipelineResult &res,
                   std::size_t paper_k)
{
    os << "BIC sweep (larger is better):\n";
    TextTable sweep({"K", "BIC", "inertia"});
    for (const auto &pt : res.bic.points)
        sweep.addRow({std::to_string(pt.k), fmtDouble(pt.bic, 2),
                      fmtDouble(pt.result.inertia, 2)});
    sweep.print(os);
    os << "\nBIC-selected K = " << res.bic.bestK()
       << " (paper: 7; see EXPERIMENTS.md on why the simulated "
          "suite's optimum is larger)\n\n";

    os << "Table IV — clusters at the BIC-selected K = "
       << res.bic.bestK() << ":\n";
    printClusters(os, res, 0);

    bool paper_k_in_sweep = false;
    for (const auto &pt : res.bic.points)
        if (pt.k == paper_k)
            paper_k_in_sweep = true;
    if (paper_k_in_sweep && paper_k != res.bic.bestK()) {
        os << "\nclusters at the paper's K = " << paper_k
           << " (for direct Table IV comparison):\n";
        printClusters(os, res, paper_k);
    }
}

void
writeRepresentativesReport(std::ostream &os, const PipelineResult &res,
                           std::size_t forced_k)
{
    os << "Table V — representative workloads by strategy (K = "
       << (forced_k ? forced_k : res.bic.bestK()) << "):\n\n";
    for (RepresentativeStrategy strat :
         {RepresentativeStrategy::NearestToCentroid,
          RepresentativeStrategy::FarthestFromCentroid}) {
        SubsetResult subset =
            selectRepresentatives(res, strat, forced_k);
        os << strategyName(strat) << ":\n";
        TextTable t({"representative", "cluster size"});
        for (std::size_t c = 0; c < subset.representatives.size(); ++c)
            t.addRow({res.names[subset.representatives[c]],
                      std::to_string(subset.clusters[c].size())});
        t.print(os);
        os << "maximal linkage distance among representatives: "
           << fmtDouble(subset.maxPairwiseLinkage, 3) << '\n';
        os << (strat == RepresentativeStrategy::NearestToCentroid
                   ? "(paper: 5.82)\n\n"
                   : "(paper: 11.20)\n\n");
    }
}

void
writeKiviatReport(std::ostream &os, const PipelineResult &res,
                  std::size_t forced_k)
{
    SubsetResult subset = selectRepresentatives(
        res, RepresentativeStrategy::FarthestFromCentroid, forced_k);
    auto diagrams = kiviatDiagrams(res, subset);
    os << "Figure 6 — Kiviat axes (retained PC scores) of the "
       << diagrams.size() << " representatives:\n";
    std::vector<std::string> header{"workload"};
    for (std::size_t pc = 0; pc < res.pca.numComponents; ++pc)
        header.push_back("PC" + std::to_string(pc + 1));
    TextTable t(header);
    for (const auto &d : diagrams) {
        std::vector<std::string> row{d.name};
        for (double v : d.scores)
            row.push_back(fmtDouble(v, 2));
        t.addRow(row);
    }
    t.print(os);
}

void
writeMetricsCsv(std::ostream &os, const PipelineResult &res)
{
    os << "workload";
    for (std::size_t m = 0; m < res.rawMetrics.cols(); ++m)
        os << ',' << csvEscape(colName(res, m));
    os << '\n';
    for (std::size_t i = 0; i < res.names.size(); ++i) {
        os << res.names[i];
        for (std::size_t m = 0; m < res.rawMetrics.cols(); ++m)
            os << ',' << fmtDouble(res.rawMetrics(i, m), 6);
        os << '\n';
    }
}

void
writeCpiStackReport(std::ostream &os,
                    const std::vector<std::string> &names,
                    const std::vector<PmcCounters> &counters)
{
    if (names.size() != counters.size())
        BDS_FATAL("cpi stack needs one counter set per name");
    TextTable t({"workload", "CPI", "issue", "fetch", "ild+dec", "rat",
                 "resource", "other"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const PmcCounters &p = counters[i];
        double ins = static_cast<double>(p.instructions);
        if (ins == 0.0 || p.cycles == 0.0) {
            t.addRow({names[i], "-", "-", "-", "-", "-", "-", "-"});
            continue;
        }
        double cpi = p.cycles / ins;
        auto share = [&](double cyc) { return cyc / p.cycles; };
        double issue = share(p.uopsExecutedCycles);
        double fetch = share(p.fetchStallCycles);
        double dec = share(p.ildStallCycles + p.decoderStallCycles);
        double rat = share(p.ratStallCycles);
        double res = share(p.resourceStallCycles);
        double other =
            std::max(0.0, 1.0 - issue - fetch - dec - rat - res);
        t.addRow({names[i], fmtDouble(cpi, 2), fmtDouble(issue, 3),
                  fmtDouble(fetch, 3), fmtDouble(dec, 3),
                  fmtDouble(rat, 3), fmtDouble(res, 3),
                  fmtDouble(other, 3)});
    }
    t.print(os);
}

} // namespace bds
