/**
 * @file
 * Report writers: render every table and figure of the paper from a
 * PipelineResult, as aligned ASCII for humans plus CSV rows for
 * plotting. Each bench binary calls exactly one of these.
 */

#ifndef BDS_CORE_REPORT_H
#define BDS_CORE_REPORT_H

#include <ostream>

#include "core/analysis.h"
#include "uarch/pmc.h"
#include "core/pipeline.h"
#include "core/subset.h"

namespace bds {

/** Figure 1: ASCII dendrogram plus the ordered merge list. */
void writeDendrogramReport(std::ostream &os, const PipelineResult &res);

/**
 * The merge history in scipy linkage-matrix form
 * (`left,right,distance,size` CSV, clusters numbered past the leaf
 * count) — paste into scipy.cluster.hierarchy.dendrogram to plot the
 * real Figure 1.
 */
void writeLinkageCsv(std::ostream &os, const PipelineResult &res);

/** Observations 1-5 summary derived from the dendrogram. */
void writeSimilarityObservations(std::ostream &os,
                                 const PipelineResult &res);

/**
 * Figures 2-3: scatter series of two PCs as CSV
 * (name,stack,pcA,pcB), plus the per-stack spread summary.
 */
void writeScatterReport(std::ostream &os, const PipelineResult &res,
                        std::size_t pc_a, std::size_t pc_b);

/** Figure 4: factor loadings of the first `num_pcs` PCs as CSV. */
void writeLoadingsReport(std::ostream &os, const PipelineResult &res,
                         std::size_t num_pcs = 4);

/**
 * Figure 5: the separating PC, its dominating metrics, and the
 * Hadoop/Spark mean ratio for each of them.
 */
void writeStackDifferentiationReport(std::ostream &os,
                                     const PipelineResult &res);

/**
 * Table IV: BIC sweep and the K-means clusterings — the BIC-selected
 * one and (when inside the sweep) the clustering at `paper_k` for
 * direct comparison with the paper's seven clusters.
 */
void writeClusterReport(std::ostream &os, const PipelineResult &res,
                        std::size_t paper_k = 7);

/**
 * Table V: representatives under both strategies at `forced_k`
 * clusters (0 = the BIC-selected K).
 */
void writeRepresentativesReport(std::ostream &os,
                                const PipelineResult &res,
                                std::size_t forced_k = 0);

/**
 * Figure 6: Kiviat PC scores of the representatives selected by the
 * boundary strategy at `forced_k` clusters (0 = BIC-selected).
 */
void writeKiviatReport(std::ostream &os, const PipelineResult &res,
                       std::size_t forced_k = 0);

/** PCA header: eigenvalues, Kaiser cut, retained variance. */
void writePcaSummary(std::ostream &os, const PipelineResult &res);

/** The raw 45-metric matrix as CSV (workload per row). */
void writeMetricsCsv(std::ostream &os, const PipelineResult &res);

/**
 * Extension: per-workload cycle accounting ("CPI stack") — how each
 * workload's cycles split across issue, frontend stalls, decode,
 * rename, and backend resource stalls. Not a paper figure, but the
 * breakdown the paper's Section V-C reasons about.
 * @param os Output stream.
 * @param names Workload labels.
 * @param counters Raw counters, aligned with names.
 */
void writeCpiStackReport(
    std::ostream &os, const std::vector<std::string> &names,
    const std::vector<PmcCounters> &counters);

} // namespace bds

#endif // BDS_CORE_REPORT_H
