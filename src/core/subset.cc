#include "core/subset.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "stats/distance.h"

namespace bds {

const char *
strategyName(RepresentativeStrategy s)
{
    switch (s) {
      case RepresentativeStrategy::NearestToCentroid:
        return "nearest-to-centroid";
      case RepresentativeStrategy::FarthestFromCentroid:
        return "farthest-from-centroid";
    }
    BDS_PANIC("unknown strategy");
}

SubsetResult
selectRepresentatives(const PipelineResult &res,
                      RepresentativeStrategy strategy,
                      std::size_t forced_k)
{
    const KMeansResult *selected = &res.bic.best();
    if (forced_k != 0) {
        selected = nullptr;
        for (const auto &pt : res.bic.points)
            if (pt.k == forced_k)
                selected = &pt.result;
        if (!selected)
            BDS_FATAL("K = " << forced_k
                      << " is outside the recorded sweep");
    }
    const KMeansResult &km = *selected;
    const Matrix &scores = res.pca.scores;

    auto groups = groupByLabel(km.labels, km.k);
    // Present clusters largest-first, as the paper's Table IV does.
    std::sort(groups.begin(), groups.end(),
              [](const auto &a, const auto &b) {
                  if (a.size() != b.size())
                      return a.size() > b.size();
                  return a < b; // deterministic tie-break
              });

    SubsetResult out;
    for (const auto &group : groups) {
        if (group.empty())
            continue;
        // Distances to the group's centroid in PC space.
        std::vector<double> centroid(scores.cols(), 0.0);
        for (std::size_t r : group)
            for (std::size_t c = 0; c < scores.cols(); ++c)
                centroid[c] += scores(r, c);
        for (double &v : centroid)
            v /= static_cast<double>(group.size());

        std::size_t pick = group[0];
        double best = strategy == RepresentativeStrategy::NearestToCentroid
            ? std::numeric_limits<double>::infinity()
            : -1.0;
        for (std::size_t r : group) {
            double d = euclidean(scores.row(r), centroid);
            bool better =
                strategy == RepresentativeStrategy::NearestToCentroid
                    ? d < best
                    : d > best;
            if (better) {
                best = d;
                pick = r;
            }
        }
        out.clusters.push_back(group);
        out.representatives.push_back(pick);
    }

    // Diversity measure: maximal cophenetic distance between picks.
    for (std::size_t i = 0; i < out.representatives.size(); ++i)
        for (std::size_t j = i + 1; j < out.representatives.size(); ++j)
            out.maxPairwiseLinkage = std::max(
                out.maxPairwiseLinkage,
                res.dendrogram.copheneticDistance(
                    out.representatives[i], out.representatives[j]));
    return out;
}

std::vector<KiviatDiagram>
kiviatDiagrams(const PipelineResult &res, const SubsetResult &subset)
{
    std::vector<KiviatDiagram> out;
    for (std::size_t rep : subset.representatives) {
        KiviatDiagram d;
        d.name = res.names[rep];
        d.scores = res.pca.scores.row(rep);
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace bds
