/**
 * @file
 * Section VI: subsetting. Groups the workloads with the BIC-selected
 * K-means clustering (Table IV) and selects one representative per
 * cluster by either of the paper's two strategies (Table V), plus
 * the Kiviat data of Figure 6.
 */

#ifndef BDS_CORE_SUBSET_H
#define BDS_CORE_SUBSET_H

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace bds {

/** Representative-selection strategy (Eeckhout et al.). */
enum class RepresentativeStrategy
{
    NearestToCentroid,   ///< pick the most average member
    FarthestFromCentroid ///< pick the boundary member (paper's choice)
};

/** Strategy display name. */
const char *strategyName(RepresentativeStrategy s);

/** One selected subset. */
struct SubsetResult
{
    /** Clusters as row-index lists, largest first (Table IV). */
    std::vector<std::vector<std::size_t>> clusters;

    /** One representative row index per cluster, aligned. */
    std::vector<std::size_t> representatives;

    /**
     * Maximal cophenetic (linkage) distance between any two selected
     * representatives — the paper's diversity measure (Table V:
     * 5.82 nearest vs 11.20 farthest).
     */
    double maxPairwiseLinkage = 0.0;
};

/**
 * Cluster via the pipeline's BIC-selected K-means and pick
 * representatives.
 *
 * @param res Pipeline result (carries the recorded K sweep).
 * @param strategy Selection strategy.
 * @param forced_k When non-zero, use the sweep's clustering at this
 *        K instead of the BIC-selected one (e.g., the paper's K = 7
 *        for Table IV/V comparability); must lie inside the sweep.
 */
SubsetResult selectRepresentatives(const PipelineResult &res,
                                   RepresentativeStrategy strategy,
                                   std::size_t forced_k = 0);

/** One Kiviat diagram: a representative's retained PC scores. */
struct KiviatDiagram
{
    std::string name;           ///< workload label
    std::vector<double> scores; ///< one value per retained PC
};

/** Kiviat data for the selected representatives (Figure 6). */
std::vector<KiviatDiagram> kiviatDiagrams(const PipelineResult &res,
                                          const SubsetResult &subset);

} // namespace bds

#endif // BDS_CORE_SUBSET_H
