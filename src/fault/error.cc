#include "fault/error.h"

namespace bds {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "none";
      case ErrorCode::InvalidConfig: return "invalid_config";
      case ErrorCode::UnknownName: return "unknown_name";
      case ErrorCode::DegenerateData: return "degenerate_data";
      case ErrorCode::WorkloadFailure: return "workload_failure";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::AllocFailure: return "alloc_failure";
      case ErrorCode::InjectedFault: return "injected_fault";
      case ErrorCode::Io: return "io";
      case ErrorCode::Internal: return "internal";
      case ErrorCode::Overloaded: return "overloaded";
    }
    BDS_PANIC("unknown error code");
}

bool
errorCodeFromName(const std::string &name, ErrorCode *out)
{
    for (unsigned c = 0;
         c <= static_cast<unsigned>(ErrorCode::Overloaded); ++c) {
        ErrorCode code = static_cast<ErrorCode>(c);
        if (name == errorCodeName(code)) {
            *out = code;
            return true;
        }
    }
    return false;
}

namespace detail {

void
throwError(ErrorCode code, const char *file, int line,
           const std::string &msg)
{
    std::ostringstream oss;
    oss << errorCodeName(code) << ": " << msg << " (" << file << ':'
        << line << ')';
    throw Error(code, oss.str());
}

} // namespace detail

} // namespace bds
