/**
 * @file
 * The typed error taxonomy of the fault-tolerance layer.
 *
 * bds::Error refines the ad-hoc BDS_FATAL path with a machine-
 * readable ErrorCode, so recovery policy (retry? quarantine? abort?)
 * and failure records (manifest, trace) can dispatch on *what went
 * wrong* instead of parsing message strings. Error derives from
 * FatalError, so every existing `catch (const FatalError &)` handler
 * — the example/bench mains, the test suite — keeps working
 * unchanged; typed throwers simply carry more information.
 *
 * Raise with BDS_RAISE(code, msg), the streaming macro twin of
 * BDS_FATAL.
 */

#ifndef BDS_FAULT_ERROR_H
#define BDS_FAULT_ERROR_H

#include <sstream>
#include <string>

#include "common/log.h"

namespace bds {

/** What kind of failure an Error describes. */
enum class ErrorCode : unsigned
{
    None,            ///< no error (clean RunRecord placeholder)
    InvalidConfig,   ///< bad knob, flag or argument value
    UnknownName,     ///< unknown scale/metric/workload name
    DegenerateData,  ///< NaN/Inf values, zero variance, K > n
    WorkloadFailure, ///< a workload simulation threw
    Timeout,         ///< the watchdog deadline expired
    AllocFailure,    ///< allocation failed at a guarded site
    InjectedFault,   ///< the fault injector fired at this site
    Io,              ///< file could not be read or written
    Internal,        ///< violated invariant (library bug)
    Overloaded,      ///< request shed by the admission queue
};

/** Stable snake_case name of a code ("injected_fault", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * Parse an errorCodeName() string. Returns false (leaving *out
 * untouched) for unknown names, so manifest validators can report
 * rather than throw.
 */
bool errorCodeFromName(const std::string &name, ErrorCode *out);

/** A FatalError carrying a typed ErrorCode. */
class Error : public FatalError
{
  public:
    Error(ErrorCode code, const std::string &msg)
        : FatalError(msg), code_(code) {}

    /** The failure classification. */
    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

namespace detail {

/** Build the message string and throw bds::Error. */
[[noreturn]] void throwError(ErrorCode code, const char *file, int line,
                             const std::string &msg);

} // namespace detail

} // namespace bds

/** Abort the operation with a typed bds::Error. */
#define BDS_RAISE(code, msg)                                                \
    do {                                                                    \
        std::ostringstream bds_oss_;                                        \
        bds_oss_ << msg;                                                    \
        ::bds::detail::throwError(code, __FILE__, __LINE__,                 \
                                  bds_oss_.str());                          \
    } while (0)

#endif // BDS_FAULT_ERROR_H
