#include "fault/inject.h"

#include <sstream>
#include <thread>

#include "fault/error.h"

namespace bds {

namespace {

thread_local const AttemptContext *tl_attempt = nullptr;

/** Split a comma-separated target list; empty input yields empty. */
std::vector<std::string>
splitTargets(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

AttemptScope::AttemptScope(const AttemptContext &ctx) : prev_(tl_attempt)
{
    tl_attempt = &ctx;
}

AttemptScope::~AttemptScope()
{
    tl_attempt = prev_;
}

const AttemptContext *
currentAttempt()
{
    return tl_attempt;
}

void
faultCheckpoint()
{
    const AttemptContext *ctx = tl_attempt;
    if (!ctx || !ctx->hasDeadline)
        return;
    if (std::chrono::steady_clock::now() > ctx->deadline)
        BDS_RAISE(ErrorCode::Timeout,
                  "watchdog deadline exceeded on attempt "
                      << ctx->attempt);
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector instance;
    return instance;
}

void
FaultInjector::arm(const FaultOptions &opts)
{
    throwAt_ = splitTargets(opts.throwAt);
    stallAt_ = splitTargets(opts.stallAt);
    corruptAt_ = splitTargets(opts.corruptAt);
    allocAt_ = splitTargets(opts.allocAt);
    ioAt_ = splitTargets(opts.ioAt);
    stallMs_ = opts.stallMs;
    attempts_ = opts.attempts;
    ioFires_.store(0, std::memory_order_relaxed);
    armed_.store(opts.any(), std::memory_order_relaxed);
}

void
FaultInjector::disarm()
{
    armed_.store(false, std::memory_order_relaxed);
    throwAt_.clear();
    stallAt_.clear();
    corruptAt_.clear();
    allocAt_.clear();
    ioAt_.clear();
    ioFires_.store(0, std::memory_order_relaxed);
}

bool
FaultInjector::matches(const std::vector<std::string> &list,
                       const std::string &target)
{
    for (const std::string &t : list)
        if (t == "*" || t == target)
            return true;
    return false;
}

bool
FaultInjector::attemptEligible() const
{
    if (attempts_ == 0)
        return true;
    const AttemptContext *ctx = tl_attempt;
    unsigned attempt = ctx ? ctx->attempt : 0;
    return attempt < attempts_;
}

void
FaultInjector::maybeThrow(const std::string &workload) const
{
    if (!armed())
        return;
    if (matches(throwAt_, workload) && attemptEligible())
        BDS_RAISE(ErrorCode::InjectedFault,
                  "injected exception in workload " << workload);
}

void
FaultInjector::maybeStall(const std::string &workload) const
{
    if (!armed())
        return;
    if (!matches(stallAt_, workload) || !attemptEligible())
        return;
    // 1 ms slices keep the watchdog responsive: a deadline that
    // expires mid-stall surfaces as a typed Timeout within ~1 ms.
    auto until = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(stallMs_);
    while (std::chrono::steady_clock::now() < until) {
        faultCheckpoint();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    faultCheckpoint();
}

bool
FaultInjector::shouldCorrupt(const std::string &workload) const
{
    if (!armed())
        return false;
    return matches(corruptAt_, workload) && attemptEligible();
}

bool
FaultInjector::shouldFailIo(const char *site) const
{
    if (!armed())
        return false;
    if (!matches(ioAt_, site))
        return false;
    // I/O sites are not tied to a workload attempt: `attempts` caps
    // the total fires instead, so a bounded spec fails the first N
    // store operations and then lets the disk "recover".
    if (attempts_ != 0) {
        const std::uint64_t fired =
            ioFires_.fetch_add(1, std::memory_order_relaxed);
        if (fired >= attempts_)
            return false;
    }
    return true;
}

void
FaultInjector::checkAlloc(const char *site) const
{
    if (!armed())
        return;
    if (matches(allocAt_, site) && attemptEligible())
        BDS_RAISE(ErrorCode::AllocFailure,
                  "injected allocation failure at site " << site);
}

} // namespace bds
