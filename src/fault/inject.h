/**
 * @file
 * Deterministic, seeded-by-identity fault injection plus the
 * cooperative watchdog.
 *
 * FaultInjector is process-global like the Tracer (src/obs/trace.h)
 * and follows the same null-sink discipline: when disarmed — the
 * default — every hook is one relaxed atomic load and an early
 * return, so the fault layer is bitwise-neutral when idle. arm() is
 * normally driven by a Session from RunConfig's BDS_FAULT_* /
 * --fault-* knobs; tests arm it directly.
 *
 * Injection is deterministic: a hook fires iff its (site, target,
 * attempt) triple matches the armed FaultOptions — membership tests
 * only, no RNG — so a given spec always fails the same workloads at
 * the same points, and every recovery path can be pinned by tests
 * and the CI fault matrix.
 *
 * The watchdog is cooperative. Each workload attempt installs an
 * AttemptScope (thread-local attempt index + wall-clock deadline);
 * faultCheckpoint() raises a typed Timeout once the deadline passes.
 * Checkpoints sit at attempt start and inside every injected stall
 * slice, so a stalled workload converts into a timed-out one instead
 * of wedging the sweep. Genuinely non-cooperative code cannot be
 * interrupted — the checkpoints bound where a stuck attempt is
 * detected (see docs/ROBUSTNESS.md).
 */

#ifndef BDS_FAULT_INJECT_H
#define BDS_FAULT_INJECT_H

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "fault/options.h"

namespace bds {

/** Thread-local identity of the workload attempt in progress. */
struct AttemptContext
{
    /** 0-based attempt index (0 = first try). */
    unsigned attempt = 0;

    /** True when `deadline` is armed. */
    bool hasDeadline = false;

    /** Wall-clock point after which checkpoints raise Timeout. */
    std::chrono::steady_clock::time_point deadline{};
};

/**
 * RAII installer of the thread-local AttemptContext. The sweep
 * drivers install one per attempt on the attempt's executing thread
 * (and again inside per-node pool tasks, which do not inherit
 * thread-locals). The referenced context must outlive the scope.
 */
class AttemptScope
{
  public:
    explicit AttemptScope(const AttemptContext &ctx);
    ~AttemptScope();

    AttemptScope(const AttemptScope &) = delete;
    AttemptScope &operator=(const AttemptScope &) = delete;

  private:
    const AttemptContext *prev_;
};

/** The installed context, or nullptr outside any attempt. */
const AttemptContext *currentAttempt();

/**
 * Cooperative watchdog check: raises Error(Timeout) when the
 * installed attempt's deadline has passed. A no-op without an
 * installed deadline.
 */
void faultCheckpoint();

/**
 * The process-global fault injector. All mutation goes through
 * arm()/disarm(); the hooks are called from the execution paths.
 */
class FaultInjector
{
  public:
    /** The singleton instance. */
    static FaultInjector &global();

    /** Parse and enable an injection spec. Overwrites any prior arm. */
    void arm(const FaultOptions &opts);

    /** Disable all injection. Idempotent. */
    void disarm();

    /** True when an injection spec is armed. */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Throw site: raises Error(InjectedFault) for matched targets. */
    void maybeThrow(const std::string &workload) const;

    /**
     * Stall site: sleeps stallMs in 1 ms slices for matched targets,
     * calling faultCheckpoint() per slice so a watchdog deadline
     * converts the stall into a typed Timeout.
     */
    void maybeStall(const std::string &workload) const;

    /** Corruption site: true when the target's result must be poisoned. */
    bool shouldCorrupt(const std::string &workload) const;

    /** Allocation site: raises Error(AllocFailure) for matched sites. */
    void checkAlloc(const char *site) const;

    /**
     * Shared-store I/O site ("store.write", "store.rename",
     * "store.lease", "store.enospc"): true when the operation must
     * fail. Never throws — the store's degradation machinery owns
     * the response. `attempts` bounds the total number of fires
     * across all I/O sites (0 = unbounded), enabling deterministic
     * fail-then-heal tests.
     */
    bool shouldFailIo(const char *site) const;

  private:
    FaultInjector() = default;

    /** True when `target` is in `list` ("*" matches everything). */
    static bool matches(const std::vector<std::string> &list,
                        const std::string &target);

    /** Attempt gating: true when the current attempt may inject. */
    bool attemptEligible() const;

    std::atomic<bool> armed_{false};
    std::vector<std::string> throwAt_;
    std::vector<std::string> stallAt_;
    std::vector<std::string> corruptAt_;
    std::vector<std::string> allocAt_;
    std::vector<std::string> ioAt_;
    std::uint64_t stallMs_ = 0;
    unsigned attempts_ = 0;

    /** Fires consumed by I/O sites since arm() (attempts gating). */
    mutable std::atomic<std::uint64_t> ioFires_{0};
};

} // namespace bds

#endif // BDS_FAULT_INJECT_H
