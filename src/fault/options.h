/**
 * @file
 * Knobs for the fault-tolerance layer: the recovery policy applied
 * by the sweep drivers (WorkloadRunner, SampledCharacterizer) and
 * the deterministic fault-injection spec.
 *
 * Kept dependency-free (strings and integers only) so RunConfig can
 * embed a FaultOptions without bds_obs linking bds_fault's
 * machinery; FaultInjector (src/fault/inject.h) interprets the spec.
 */

#ifndef BDS_FAULT_OPTIONS_H
#define BDS_FAULT_OPTIONS_H

#include <cstdint>
#include <string>

namespace bds {

/** What a sweep does when one workload fails for good. */
enum class FailPolicy : unsigned
{
    /**
     * Rethrow the failure (lowest workload index first) after the
     * sweep settles: the run exits nonzero with the typed error, the
     * pre-fault-layer contract.
     */
    FailFast,

    /**
     * Drop the failed workloads, record them in the SweepReport /
     * RunManifest, and continue the analysis on the surviving rows.
     */
    Quarantine,
};

/** Stable knob name of a policy ("failfast" / "quarantine"). */
const char *failPolicyName(FailPolicy policy);

/** Parse a failPolicyName(); returns false for unknown names. */
bool failPolicyFromName(const std::string &name, FailPolicy *out);

/** How a sweep isolates and retries failing workloads. */
struct RecoveryOptions
{
    /** Disposition of workloads that exhaust their retries. */
    FailPolicy policy = FailPolicy::FailFast;

    /**
     * Retries per workload after the first failed attempt. Attempt
     * `a` derives its data seed from (workload, node, a), so every
     * retry — and therefore the whole recovered sweep — is bitwise
     * reproducible across reruns and thread counts.
     */
    unsigned maxRetries = 0;

    /**
     * Watchdog wall-clock budget per workload attempt, in
     * milliseconds; 0 disables the watchdog. Enforced cooperatively:
     * the execution path checks the deadline at its fault
     * checkpoints (attempt start, each stall slice) and raises a
     * typed Timeout past it.
     */
    std::uint64_t timeoutMs = 0;
};

/**
 * Deterministic fault-injection spec (BDS_FAULT_* / --fault-*).
 *
 * Each site knob is a comma-separated list of targets — workload
 * names ("H-Sort,S-Grep") for the workload sites, site labels
 * ("datagen") for the allocation site — or "*" for every target.
 * Injection is decided purely by (site, target, attempt) membership:
 * no RNG, so a given spec always fails the same workloads at the
 * same points.
 */
struct FaultOptions
{
    /** Recovery policy the sweep drivers apply. */
    RecoveryOptions recovery;

    /** Workloads that throw a typed InjectedFault when executed. */
    std::string throwAt;

    /** Workloads that stall for stallMs before executing. */
    std::string stallAt;

    /**
     * Workloads whose extracted metric vector is poisoned with NaN
     * (simulating counter/trace corruption); the degenerate-data
     * guard then rejects the result.
     */
    std::string corruptAt;

    /** Allocation sites (e.g. "datagen") that fail with AllocFailure. */
    std::string allocAt;

    /**
     * Shared-store I/O sites that fail deterministically:
     * "store.write" (entry write), "store.rename" (publish rename),
     * "store.lease" (lease acquisition), "store.enospc" (disk-full
     * on write), or "*" for all of them. Unlike the workload sites,
     * `attempts` bounds the *total number of fires* across the run
     * (0 = fire every time) — so `attempts=1` fails exactly one
     * store operation and lets the store heal, pinning the
     * degrade-then-recover path. Storage-only by construction: the
     * spec never changes computed bytes, so it stays outside the
     * canonical RunConfig hash.
     */
    std::string ioAt;

    /** Stall duration for stallAt targets, in milliseconds. */
    std::uint64_t stallMs = 50;

    /**
     * Inject only while the attempt index is below this bound; 0
     * means every attempt. 1 with maxRetries >= 1 exercises the
     * retried-ok path: the first attempt fails, the retry succeeds.
     */
    unsigned attempts = 0;

    /** True when any injection site is configured. */
    bool
    any() const
    {
        return !throwAt.empty() || !stallAt.empty()
            || !corruptAt.empty() || !allocAt.empty()
            || !ioAt.empty();
    }
};

} // namespace bds

#endif // BDS_FAULT_OPTIONS_H
