/**
 * @file
 * guardedRun(): the shared failure-isolation driver of the sweep
 * layers (WorkloadRunner::runAll, SampledCharacterizer::runAll).
 *
 * One call runs one workload's attempt loop: execute the body under
 * an installed AttemptScope (watchdog deadline + attempt index),
 * catch anything it throws, retry up to RecoveryOptions::maxRetries
 * with the attempt index advancing (the body derives attempt-salted
 * seeds from it, keeping retries bitwise-reproducible), and return a
 * RunRecord describing the final disposition. guardedRun never
 * throws; policy — rethrow under fail-fast, drop under quarantine —
 * is applied by the sweep after all slots settle, in workload order,
 * so the outcome is deterministic for every thread count.
 */

#ifndef BDS_FAULT_RECOVER_H
#define BDS_FAULT_RECOVER_H

#include <chrono>
#include <new>

#include "common/log.h"
#include "fault/error.h"
#include "fault/inject.h"
#include "fault/status.h"

namespace bds {

/**
 * Run `body` with failure isolation and bounded retries.
 *
 * @param name Workload label for the record and retry logging.
 * @param rec Retry/timeout policy (the FailPolicy itself is applied
 *        by the caller over the finished records).
 * @param body Callable taking (const AttemptContext &); it must
 *        derive any attempt-dependent seed from ctx.attempt and
 *        re-install an AttemptScope inside pool tasks it fans out
 *        to (thread-locals do not cross threads).
 */
template <typename Fn>
RunRecord
guardedRun(const std::string &name, const RecoveryOptions &rec,
           Fn &&body)
{
    RunRecord record;
    record.name = name;
    auto start = std::chrono::steady_clock::now();
    for (unsigned attempt = 0;; ++attempt) {
        record.attempts = attempt + 1;
        AttemptContext ctx;
        ctx.attempt = attempt;
        if (rec.timeoutMs > 0) {
            ctx.hasDeadline = true;
            ctx.deadline = std::chrono::steady_clock::now()
                + std::chrono::milliseconds(rec.timeoutMs);
        }
        try {
            AttemptScope scope(ctx);
            faultCheckpoint();
            body(ctx);
            // On a retried success, code/message keep the last failed
            // attempt's cause — the failure record stays diagnosable.
            record.status = attempt == 0 ? RunStatus::Ok
                                         : RunStatus::RetriedOk;
            break;
        } catch (const Error &e) {
            record.code = e.code();
            record.message = e.what();
        } catch (const std::bad_alloc &) {
            record.code = ErrorCode::AllocFailure;
            record.message = "allocation failed";
        } catch (const std::exception &e) {
            record.code = ErrorCode::WorkloadFailure;
            record.message = e.what();
        }
        if (attempt >= rec.maxRetries) {
            record.status = record.code == ErrorCode::Timeout
                ? RunStatus::TimedOut
                : RunStatus::Failed;
            break;
        }
        warn("workload " + name + " attempt "
             + std::to_string(attempt + 1) + " failed ("
             + std::string(errorCodeName(record.code))
             + "), retrying");
    }
    record.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return record;
}

} // namespace bds

#endif // BDS_FAULT_RECOVER_H
