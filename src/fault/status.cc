#include "fault/status.h"

namespace bds {

const char *
failPolicyName(FailPolicy policy)
{
    switch (policy) {
      case FailPolicy::FailFast: return "failfast";
      case FailPolicy::Quarantine: return "quarantine";
    }
    BDS_PANIC("unknown fail policy");
}

bool
failPolicyFromName(const std::string &name, FailPolicy *out)
{
    if (name == "failfast") {
        *out = FailPolicy::FailFast;
        return true;
    }
    if (name == "quarantine") {
        *out = FailPolicy::Quarantine;
        return true;
    }
    return false;
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok: return "ok";
      case RunStatus::RetriedOk: return "retried_ok";
      case RunStatus::Failed: return "failed";
      case RunStatus::TimedOut: return "timed_out";
      case RunStatus::Quarantined: return "quarantined";
    }
    BDS_PANIC("unknown run status");
}

bool
runStatusFromName(const std::string &name, RunStatus *out)
{
    for (unsigned s = 0;
         s <= static_cast<unsigned>(RunStatus::Quarantined); ++s) {
        RunStatus status = static_cast<RunStatus>(s);
        if (name == runStatusName(status)) {
            *out = status;
            return true;
        }
    }
    return false;
}

bool
SweepReport::allOk() const
{
    return survivors.size() == records.size();
}

std::vector<std::string>
SweepReport::survivorNames() const
{
    std::vector<std::string> out;
    out.reserve(survivors.size());
    for (std::size_t i : survivors)
        out.push_back(records[i].name);
    return out;
}

std::vector<RunRecord>
SweepReport::failures() const
{
    std::vector<RunRecord> out;
    for (const RunRecord &r : records)
        if (r.status != RunStatus::Ok)
            out.push_back(r);
    return out;
}

std::vector<std::string>
SweepReport::quarantinedNames() const
{
    std::vector<std::string> out;
    for (const RunRecord &r : records)
        if (r.status == RunStatus::Quarantined)
            out.push_back(r.name);
    return out;
}

} // namespace bds
