/**
 * @file
 * Per-workload run statuses and the SweepReport a fault-tolerant
 * sweep produces next to its metric matrix: one RunRecord per
 * attempted workload (status, attempts, typed failure code) plus the
 * surviving row set, so callers can label the possibly-shrunken
 * matrix and manifests can record every failure.
 */

#ifndef BDS_FAULT_STATUS_H
#define BDS_FAULT_STATUS_H

#include <cstddef>
#include <string>
#include <vector>

#include "fault/error.h"
#include "fault/options.h"

namespace bds {

/** Final disposition of one workload in a sweep. */
enum class RunStatus : unsigned
{
    Ok,          ///< succeeded on the first attempt
    RetriedOk,   ///< succeeded after at least one failed attempt
    Failed,      ///< exhausted its retries; no result
    TimedOut,    ///< last attempt hit the watchdog; no result
    Quarantined, ///< failed/timed out and was dropped by quarantine
};

/** Stable snake_case name ("ok", "timed_out", "quarantined", ...). */
const char *runStatusName(RunStatus status);

/** Parse a runStatusName(); returns false for unknown names. */
bool runStatusFromName(const std::string &name, RunStatus *out);

/** True for statuses that produced a usable result row. */
inline bool
runStatusOk(RunStatus status)
{
    return status == RunStatus::Ok || status == RunStatus::RetriedOk;
}

/** Outcome of running one workload under the recovery policy. */
struct RunRecord
{
    std::string name;                  ///< workload label ("H-Sort")
    RunStatus status = RunStatus::Ok;  ///< final disposition
    unsigned attempts = 1;             ///< attempts consumed (>= 1)
    ErrorCode code = ErrorCode::None;  ///< last failure code
    std::string message;               ///< last failure message
    double seconds = 0.0;              ///< wall-clock across attempts
};

/** Everything a fault-tolerant sweep reports about itself. */
struct SweepReport
{
    /** The policy the sweep ran under. */
    FailPolicy policy = FailPolicy::FailFast;

    /** One record per workload, in sweep (allWorkloads) order. */
    std::vector<RunRecord> records;

    /**
     * Indices into `records` whose workloads produced a result, in
     * order: row i of the returned matrix is records[survivors[i]].
     */
    std::vector<std::size_t> survivors;

    /** True when every workload succeeded (no dropped rows). */
    bool allOk() const;

    /** Names of the surviving rows, in matrix row order. */
    std::vector<std::string> survivorNames() const;

    /** Records that did not end Ok (retried, failed, quarantined). */
    std::vector<RunRecord> failures() const;

    /** Names with status Quarantined, in sweep order. */
    std::vector<std::string> quarantinedNames() const;
};

} // namespace bds

#endif // BDS_FAULT_STATUS_H
