#include "metrics/schema.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

namespace {

using CF = CounterField;

constexpr CounterSum
term(CF a)
{
    return {{a, a, a, a}, 1};
}

constexpr CounterSum
term(CF a, CF b)
{
    return {{a, b, b, b}, 2};
}

constexpr CounterSum
term(CF a, CF b, CF c, CF d)
{
    return {{a, b, c, d}, 4};
}

constexpr CounterSum
noTerm()
{
    return {{CF::instructions, CF::instructions, CF::instructions,
             CF::instructions},
            0};
}

/** Shorthand for the recurring denominators. */
constexpr CounterSum kIns = term(CF::instructions);
constexpr CounterSum kCyc = term(CF::cycles);
constexpr CounterSum kMemAcc = term(CF::loadInstrs, CF::storeInstrs);
constexpr CounterSum kOffcore = term(CF::offcoreData, CF::offcoreCode,
                                     CF::offcoreRfo, CF::offcoreWb);

constexpr MetricSpec
share(Metric id, const char *name, const char *desc, CounterSum num,
      CounterSum den, bool complement = false)
{
    return {id, name, desc, UnitKind::Share, num, den, 0.0, complement};
}

constexpr MetricSpec
perKilo(Metric id, const char *name, const char *desc, CF field)
{
    return {id, name, desc, UnitKind::PerKilo, term(field), kIns, 0.0,
            false};
}

constexpr MetricSpec
ratio(Metric id, const char *name, const char *desc, CounterSum num,
      CounterSum den, double fallback = 0.0)
{
    return {id, name, desc, UnitKind::Ratio, num, den, fallback, false};
}

constexpr std::array<MetricSpec, kNumMetrics> kSchema = {{
    share(Metric::Load, "LOAD", "load operations' percentage",
          term(CF::loadInstrs), kIns),
    share(Metric::Store, "STORE", "store operations' percentage",
          term(CF::storeInstrs), kIns),
    share(Metric::Branch, "BRANCH", "branch operations' percentage",
          term(CF::branchInstrs), kIns),
    share(Metric::Integer, "INTEGER", "integer operations' percentage",
          term(CF::intInstrs), kIns),
    share(Metric::FpX87, "FP",
          "X87 floating point operations' percentage",
          term(CF::fpInstrs), kIns),
    share(Metric::SseFp, "SSE FP",
          "SSE floating point operations' percentage",
          term(CF::sseInstrs), kIns),
    share(Metric::KernelMode, "KERNEL MODE",
          "ratio of instructions running in kernel mode",
          term(CF::kernelInstrs), kIns),
    share(Metric::UserMode, "USER MODE",
          "ratio of instructions running in user mode",
          term(CF::userInstrs), kIns),
    ratio(Metric::UopsToIns, "UOPS TO INS",
          "ratio of micro operations to instructions", term(CF::uops),
          kIns),
    perKilo(Metric::L1iMiss, "L1I MISS",
            "L1 instruction cache misses per K instructions",
            CF::l1iMisses),
    perKilo(Metric::L1iHit, "L1I HIT",
            "L1 instruction cache hits per K instructions",
            CF::l1iHits),
    perKilo(Metric::L2Miss, "L2 MISS",
            "L2 cache misses per K instructions", CF::l2Misses),
    perKilo(Metric::L2Hit, "L2 HIT", "L2 cache hits per K instructions",
            CF::l2Hits),
    perKilo(Metric::L3Miss, "L3 MISS",
            "L3 cache misses per K instructions", CF::l3Misses),
    perKilo(Metric::L3Hit, "L3 HIT", "L3 cache hits per K instructions",
            CF::l3Hits),
    perKilo(Metric::LoadHitLfb, "LOAD HIT LFB",
            "loads missing L1D hitting the line fill buffer "
            "per K instructions",
            CF::loadHitLfb),
    perKilo(Metric::LoadHitL2, "LOAD HIT L2",
            "loads hitting the L2 cache per K instructions",
            CF::loadHitL2),
    perKilo(Metric::LoadHitSibe, "LOAD HIT SIBE",
            "loads hitting a sibling core's L2 per K "
            "instructions",
            CF::loadHitSibling),
    perKilo(Metric::LoadHitL3, "LOAD HIT L3",
            "loads hitting unshared L3 lines per K instructions",
            CF::loadHitL3Unshared),
    perKilo(Metric::LoadLlcMiss, "LOAD LLC MISS",
            "loads missing the L3 per K instructions",
            CF::loadLlcMiss),
    perKilo(Metric::ItlbMiss, "ITLB MISS",
            "all-level instruction TLB misses per K instructions",
            CF::itlbWalks),
    share(Metric::ItlbCycle, "ITLB CYCLE",
          "instruction TLB walk cycles over total cycles",
          term(CF::itlbWalkCycles), kCyc),
    perKilo(Metric::DtlbMiss, "DTLB MISS",
            "all-level data TLB misses per K instructions",
            CF::dtlbWalks),
    share(Metric::DtlbCycle, "DTLB CYCLE",
          "data TLB walk cycles over total cycles",
          term(CF::dtlbWalkCycles), kCyc),
    perKilo(Metric::DataHitStlb, "DATA HIT STLB",
            "DTLB first-level misses hitting the STLB per K "
            "instructions",
            CF::dataHitStlb),
    ratio(Metric::BrMiss, "BR MISS", "branch misprediction ratio",
          term(CF::branchesMispredicted), term(CF::branchesRetired)),
    ratio(Metric::BrExeToRe, "BR EXE TO RE",
          "executed to retired branch instruction ratio",
          term(CF::branchesExecuted), term(CF::branchesRetired)),
    share(Metric::FetchStall, "FETCH STALL",
          "instruction fetch stall cycles over total cycles",
          term(CF::fetchStallCycles), kCyc),
    share(Metric::IldStall, "ILD STALL",
          "instruction length decoder stall cycles over total",
          term(CF::ildStallCycles), kCyc),
    share(Metric::DecoderStall, "DECODER STALL",
          "decoder stall cycles over total cycles",
          term(CF::decoderStallCycles), kCyc),
    share(Metric::RatStall, "RAT STALL",
          "register allocation table stall cycles over total",
          term(CF::ratStallCycles), kCyc),
    share(Metric::ResourceStall, "RESOURCE STALL",
          "resource-related stall cycles over total",
          term(CF::resourceStallCycles), kCyc),
    share(Metric::UopsExeCycle, "UOPS EXE CYCLE",
          "cycles with micro-ops executed over total",
          term(CF::uopsExecutedCycles), kCyc),
    share(Metric::UopsStall, "UOPS STALL",
          "cycles with no micro-op executed over total",
          term(CF::uopsExecutedCycles), kCyc, true),
    share(Metric::OffcoreData, "OFFCORE DATA",
          "share of offcore data requests", term(CF::offcoreData),
          kOffcore),
    share(Metric::OffcoreCode, "OFFCORE CODE",
          "share of offcore code requests", term(CF::offcoreCode),
          kOffcore),
    share(Metric::OffcoreRfo, "OFFCORE RFO",
          "share of offcore requests-for-ownership",
          term(CF::offcoreRfo), kOffcore),
    share(Metric::OffcoreWb, "OFFCORE WB",
          "share of offcore data write-backs", term(CF::offcoreWb),
          kOffcore),
    perKilo(Metric::SnoopHit, "SNOOP HIT",
            "HIT snoop responses per K instructions", CF::snoopHit),
    perKilo(Metric::SnoopHitE, "SNOOP HITE",
            "HIT-Exclusive snoop responses per K instructions",
            CF::snoopHitE),
    perKilo(Metric::SnoopHitM, "SNOOP HITM",
            "HIT-Modified snoop responses per K instructions",
            CF::snoopHitM),
    ratio(Metric::Ilp, "ILP", "instruction level parallelism (IPC)",
          term(CF::instructions), kCyc),
    ratio(Metric::Mlp, "MLP", "memory level parallelism",
          term(CF::mlpSum), term(CF::mlpSamples), 1.0),
    ratio(Metric::IntToMem, "INT TO MEM",
          "integer computation to memory access ratio",
          term(CF::intInstrs), kMemAcc),
    ratio(Metric::FpToMem, "FP TO MEM",
          "floating point computation to memory access ratio",
          term(CF::fpInstrs, CF::sseInstrs), kMemAcc),
}};

constexpr const char *kCounterFieldNames[kNumCounterFields] = {
#define BDS_PMC_X(f) #f,
    BDS_PMC_FIELDS(BDS_PMC_X, BDS_PMC_X)
#undef BDS_PMC_X
};

double
sumFields(const CounterSum &s,
          const std::array<double, kNumCounterFields> &c)
{
    double total = 0.0;
    for (std::size_t i = 0; i < s.count; ++i)
        total += c[static_cast<std::size_t>(s.fields[i])];
    return total;
}

std::string
sumFormula(const CounterSum &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.count; ++i) {
        if (i)
            out += " + ";
        out += counterFieldName(s.fields[i]);
    }
    return s.count > 1 ? "(" + out + ")" : out;
}

} // namespace

const char *
counterFieldName(CounterField f)
{
    auto idx = static_cast<std::size_t>(f);
    if (idx >= kNumCounterFields)
        BDS_PANIC("counter field " << idx << " out of range");
    return kCounterFieldNames[idx];
}

const char *
unitKindName(UnitKind u)
{
    switch (u) {
      case UnitKind::Share: return "share";
      case UnitKind::PerKilo: return "per-K-instructions";
      case UnitKind::Ratio: return "ratio";
      case UnitKind::Absolute: return "absolute";
    }
    BDS_PANIC("unknown unit kind");
}

const std::array<MetricSpec, kNumMetrics> &
metricSchema()
{
    return kSchema;
}

const MetricSpec &
metricSpec(Metric m)
{
    return metricSpec(static_cast<std::size_t>(m));
}

const MetricSpec &
metricSpec(std::size_t idx)
{
    if (idx >= kNumMetrics)
        BDS_FATAL("metric index " << idx << " out of range");
    return kSchema[idx];
}

const char *
metricName(Metric m)
{
    return metricSpec(m).name;
}

const char *
metricName(std::size_t idx)
{
    return metricSpec(idx).name;
}

const char *
metricDescription(Metric m)
{
    return metricSpec(m).description;
}

std::vector<std::string>
metricNames()
{
    std::vector<std::string> out;
    out.reserve(kNumMetrics);
    for (const MetricSpec &spec : kSchema)
        out.emplace_back(spec.name);
    return out;
}

std::size_t
metricIndexByName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        if (name == kSchema[i].name)
            return i;
    return kNumMetrics;
}

double
evaluateMetric(const MetricSpec &spec,
               const std::array<double, kNumCounterFields> &c)
{
    double num = sumFields(spec.num, c);
    if (spec.num.count == 0)
        BDS_PANIC("metric '" << spec.name << "' has no numerator");
    if (spec.den.count == 0)
        return num; // Absolute
    double den = sumFields(spec.den, c);

    // Keep the operation order of the original hand-written
    // derivations so refactored extraction stays bitwise identical:
    // per-K metrics multiply by a shared 1000/instructions factor
    // instead of dividing num * 1000 by instructions.
    if (spec.unit == UnitKind::PerKilo)
        return num * (den > 0.0 ? 1000.0 / den : 0.0);

    double v = den != 0.0 ? num / den : spec.fallback;
    if (spec.complement)
        v = std::max(0.0, 1.0 - v);
    return v;
}

MetricVector
extractMetrics(const PmcCounters &pmc)
{
    const std::array<double, kNumCounterFields> c = pmc.toArray();
    MetricVector v{};
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        v[i] = evaluateMetric(kSchema[i], c);
    return v;
}

std::string
metricFormula(const MetricSpec &spec)
{
    std::string num = sumFormula(spec.num);
    if (spec.den.count == 0)
        return num;
    std::string den = sumFormula(spec.den);
    std::string core;
    if (spec.unit == UnitKind::PerKilo)
        core = "1000 * " + num + " / " + den;
    else
        core = num + " / " + den;
    if (spec.complement)
        core = "1 - " + core;
    if (spec.fallback != 0.0) {
        std::ostringstream fb;
        fb << spec.fallback;
        core += " [" + fb.str() + " when " + den + " = 0]";
    }
    return core;
}

} // namespace bds
