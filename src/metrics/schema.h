/**
 * @file
 * The declarative metric schema: the paper's Table II as data.
 *
 * Every metric is one MetricSpec row — id, canonical CSV name,
 * description, unit kind, and a derivation expressed as counter-field
 * accessors over PmcCounters (numerator sum, denominator sum, plus a
 * zero-denominator fallback and an optional complement). Extraction,
 * report headers, findings' key ratios, the sampled-path error
 * report, and CSV column matching all interpret this one table; no
 * metric name, description, or formula exists anywhere else.
 *
 * Metric order matches Table II exactly (index = table number - 1),
 * so factor-loading output lines up with the paper's Figure 4.
 * Ratios are expressed as fractions (not x100 percentages); PCA is
 * scale-invariant after z-scoring, so only relative values matter.
 *
 * Alternate metric sets (other platforms' PMU events, as in Wang et
 * al. 2015 or Gao et al. 2018) become new spec tables plus a
 * MetricSet selection (set.h) — data, not code.
 */

#ifndef BDS_METRICS_SCHEMA_H
#define BDS_METRICS_SCHEMA_H

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "uarch/pmc.h"
#include "uarch/pmc_fields.h"

namespace bds {

/** Number of Table II metrics (the full schema size). */
constexpr std::size_t kNumMetrics = 45;

/** Table II metric identifiers (index = table number - 1). */
enum class Metric : unsigned
{
    Load = 0,     ///< 1: load instruction share
    Store,        ///< 2: store instruction share
    Branch,       ///< 3: branch instruction share
    Integer,      ///< 4: integer instruction share
    FpX87,        ///< 5: x87 FP instruction share
    SseFp,        ///< 6: SSE FP instruction share
    KernelMode,   ///< 7: kernel-mode instruction ratio
    UserMode,     ///< 8: user-mode instruction ratio
    UopsToIns,    ///< 9: uops per instruction
    L1iMiss,      ///< 10: L1I misses per K instructions
    L1iHit,       ///< 11: L1I hits per K instructions
    L2Miss,       ///< 12: L2 misses per K instructions
    L2Hit,        ///< 13: L2 hits per K instructions
    L3Miss,       ///< 14: L3 misses per K instructions
    L3Hit,        ///< 15: L3 hits per K instructions
    LoadHitLfb,   ///< 16: loads merged into the LFB per K instructions
    LoadHitL2,    ///< 17: loads hitting own L2 per K instructions
    LoadHitSibe,  ///< 18: loads hitting a sibling L2 per K instructions
    LoadHitL3,    ///< 19: loads hitting unshared L3 lines per K instrs
    LoadLlcMiss,  ///< 20: loads missing the L3 per K instructions
    ItlbMiss,     ///< 21: ITLB all-level misses per K instructions
    ItlbCycle,    ///< 22: ITLB walk cycle share
    DtlbMiss,     ///< 23: DTLB all-level misses per K instructions
    DtlbCycle,    ///< 24: DTLB walk cycle share
    DataHitStlb,  ///< 25: DTLB L1 misses hitting STLB per K instrs
    BrMiss,       ///< 26: branch misprediction ratio
    BrExeToRe,    ///< 27: executed-to-retired branch ratio
    FetchStall,   ///< 28: instruction fetch stall cycle share
    IldStall,     ///< 29: instruction length decoder stall share
    DecoderStall, ///< 30: decoder stall cycle share
    RatStall,     ///< 31: register allocation table stall share
    ResourceStall,///< 32: resource-related stall cycle share
    UopsExeCycle, ///< 33: cycles with uops executing, share
    UopsStall,    ///< 34: cycles with no uop executed, share
    OffcoreData,  ///< 35: offcore data request share
    OffcoreCode,  ///< 36: offcore code request share
    OffcoreRfo,   ///< 37: offcore RFO request share
    OffcoreWb,    ///< 38: offcore write-back share
    SnoopHit,     ///< 39: HIT snoop responses per K instructions
    SnoopHitE,    ///< 40: HIT-E snoop responses per K instructions
    SnoopHitM,    ///< 41: HIT-M snoop responses per K instructions
    Ilp,          ///< 42: instructions per cycle
    Mlp,          ///< 43: mean outstanding-miss overlap
    IntToMem,     ///< 44: integer ops per memory access
    FpToMem,      ///< 45: FP ops per memory access
};

/** All metrics in Table II order. */
using MetricVector = std::array<double, kNumMetrics>;

/**
 * Counter-field accessors, generated from the same X-macro as
 * PmcCounters::toArray() (uarch/pmc_fields.h), so the enum value IS
 * the toArray() index of that field.
 */
enum class CounterField : unsigned
{
#define BDS_PMC_X(f) f,
    BDS_PMC_FIELDS(BDS_PMC_X, BDS_PMC_X)
#undef BDS_PMC_X
};

/** Number of counter fields (== PmcCounters::kNumFields). */
constexpr std::size_t kNumCounterFields = PmcCounters::kNumFields;

/** Field name as spelled in PmcCounters ("l1iMisses", ...). */
const char *counterFieldName(CounterField f);

/** What a metric's value denotes (printing/docs; see evaluation). */
enum class UnitKind : unsigned
{
    Share,    ///< fraction of a total (instructions, cycles, requests)
    PerKilo,  ///< events per 1000 instructions
    Ratio,    ///< unbounded ratio of two counts
    Absolute, ///< raw counter value (reserved for custom sets)
};

/** Unit kind as a short printable token ("share", "per-K", ...). */
const char *unitKindName(UnitKind u);

/**
 * Sum of up to four counter fields. count == 0 means "no term"
 * (an Absolute metric's denominator).
 */
struct CounterSum
{
    std::array<CounterField, 4> fields;
    std::size_t count;
};

/**
 * One schema row: everything there is to know about a metric.
 *
 * Evaluation semantics (evaluateMetric):
 *  - PerKilo:  num * (1000 / den), 0 when den == 0
 *  - Share / Ratio: num / den, `fallback` when den == 0; when
 *    `complement` is set the value is max(0, 1 - that ratio)
 *  - Absolute (den.count == 0): the numerator sum itself
 */
struct MetricSpec
{
    Metric id;               ///< position in Table II
    const char *name;        ///< canonical CSV/report name
    const char *description; ///< Table II's right column
    UnitKind unit;           ///< unit kind
    CounterSum num;          ///< numerator counter fields
    CounterSum den;          ///< denominator counter fields
    double fallback;         ///< value when the denominator is zero
    bool complement;         ///< value = max(0, 1 - num/den)
};

/** The full Table II schema, index = table number - 1. */
const std::array<MetricSpec, kNumMetrics> &metricSchema();

/** Schema row of one metric. */
const MetricSpec &metricSpec(Metric m);

/** Schema row by index; fatal when out of range. */
const MetricSpec &metricSpec(std::size_t idx);

/** Short metric name as printed in the paper ("L3 MISS", ...). */
const char *metricName(Metric m);

/** Short metric name by index. */
const char *metricName(std::size_t idx);

/** One-line description (Table II's right column). */
const char *metricDescription(Metric m);

/** All 45 names in order. */
std::vector<std::string> metricNames();

/**
 * Index of the named metric in the schema, or kNumMetrics when the
 * name matches no schema row. Matching is exact (canonical names).
 */
std::size_t metricIndexByName(std::string_view name);

/** Evaluate one spec over flattened counters (toArray() order). */
double evaluateMetric(const MetricSpec &spec,
                      const std::array<double, kNumCounterFields> &c);

/** Derive the 45 metrics from raw counters (schema interpretation). */
MetricVector extractMetrics(const PmcCounters &pmc);

/**
 * Human-readable derivation, e.g. "1000 * l1iMisses / instructions"
 * or "1 - uopsExecutedCycles / cycles".
 */
std::string metricFormula(const MetricSpec &spec);

} // namespace bds

#endif // BDS_METRICS_SCHEMA_H
