#include "metrics/set.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

namespace {

std::vector<Metric>
fullTableII()
{
    std::vector<Metric> all;
    all.reserve(kNumMetrics);
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        all.push_back(static_cast<Metric>(i));
    return all;
}

void
rejectDuplicates(const std::vector<Metric> &members)
{
    std::vector<bool> seen(kNumMetrics, false);
    for (Metric m : members) {
        auto idx = static_cast<std::size_t>(m);
        if (idx >= kNumMetrics)
            BDS_FATAL("metric id " << idx << " out of schema range");
        if (seen[idx])
            BDS_FATAL("metric set lists '" << metricName(m)
                      << "' twice");
        seen[idx] = true;
    }
}

} // namespace

MetricSet::MetricSet() : members_(fullTableII()) {}

MetricSet::MetricSet(std::vector<Metric> members)
    : members_(std::move(members))
{
}

MetricSet
MetricSet::tableII()
{
    return MetricSet();
}

MetricSet
MetricSet::none()
{
    return MetricSet(std::vector<Metric>{});
}

MetricSet
MetricSet::fromMetrics(const std::vector<Metric> &members)
{
    rejectDuplicates(members);
    return MetricSet(members);
}

MetricSet
MetricSet::fromNames(const std::vector<std::string> &names)
{
    std::vector<Metric> members;
    members.reserve(names.size());
    std::string unknown;
    for (const std::string &name : names) {
        std::size_t idx = metricIndexByName(name);
        if (idx == kNumMetrics) {
            if (!unknown.empty())
                unknown += ", ";
            unknown += "'" + name + "'";
            continue;
        }
        members.push_back(static_cast<Metric>(idx));
    }
    if (!unknown.empty())
        BDS_FATAL("metric set names match no schema metric: "
                  << unknown);
    rejectDuplicates(members);
    return MetricSet(std::move(members));
}

bool
MetricSet::isFullTableII() const
{
    if (members_.size() != kNumMetrics)
        return false;
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        if (members_[i] != static_cast<Metric>(i))
            return false;
    return true;
}

Metric
MetricSet::at(std::size_t i) const
{
    if (i >= members_.size())
        BDS_FATAL("metric set index " << i << " out of range (size "
                  << members_.size() << ")");
    return members_[i];
}

const MetricSpec &
MetricSet::specAt(std::size_t i) const
{
    return metricSpec(at(i));
}

std::vector<std::string>
MetricSet::names() const
{
    std::vector<std::string> out;
    out.reserve(members_.size());
    for (Metric m : members_)
        out.emplace_back(metricName(m));
    return out;
}

std::size_t
MetricSet::indexOf(Metric m) const
{
    auto it = std::find(members_.begin(), members_.end(), m);
    return static_cast<std::size_t>(it - members_.begin());
}

std::vector<double>
MetricSet::project(const MetricVector &full) const
{
    std::vector<double> out;
    out.reserve(members_.size());
    for (Metric m : members_)
        out.push_back(full[static_cast<std::size_t>(m)]);
    return out;
}

std::vector<double>
MetricSet::extract(const PmcCounters &pmc) const
{
    return project(extractMetrics(pmc));
}

Matrix
MetricSet::selectColumns(const Matrix &full) const
{
    if (full.cols() != kNumMetrics)
        BDS_FATAL("metric set projection needs a full "
                  << kNumMetrics << "-column matrix, got "
                  << full.cols() << " columns");
    Matrix out(full.rows(), members_.size());
    for (std::size_t r = 0; r < full.rows(); ++r)
        for (std::size_t c = 0; c < members_.size(); ++c)
            out(r, c) = full(r, static_cast<std::size_t>(members_[c]));
    return out;
}

} // namespace bds
