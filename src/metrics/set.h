/**
 * @file
 * MetricSet: an ordered selection of schema metrics — the handle an
 * analysis declares to say which Table II metrics it runs on.
 *
 * The default set is the full Table II (all 45 metrics in table
 * order). Subsets keep schema order-independence: members are looked
 * up by canonical name or Metric id, projections reorder full
 * vectors/matrices into the set's own column order, and CSV loading
 * (core/csvio.h alignMetricTable) matches columns by name against the
 * set instead of trusting positions.
 */

#ifndef BDS_METRICS_SET_H
#define BDS_METRICS_SET_H

#include <string>
#include <vector>

#include "metrics/schema.h"
#include "stats/matrix.h"

namespace bds {

/** Ordered selection of schema metrics. Cheap to copy. */
class MetricSet
{
  public:
    /** The default set: all of Table II, in table order. */
    MetricSet();

    /** The full Table II set (same as the default constructor). */
    static MetricSet tableII();

    /** The empty set ("columns are not schema metrics"). */
    static MetricSet none();

    /**
     * A subset in the given order; fatal on duplicates.
     */
    static MetricSet fromMetrics(const std::vector<Metric> &members);

    /**
     * Resolve canonical names against the schema; fatal on unknown
     * or duplicate names (the diagnostic lists the offenders).
     */
    static MetricSet fromNames(const std::vector<std::string> &names);

    /** Number of selected metrics (the column count of analyses). */
    std::size_t size() const { return members_.size(); }

    /** True when no metric is selected. */
    bool empty() const { return members_.empty(); }

    /** True when this is the full Table II in table order. */
    bool isFullTableII() const;

    /** The i-th selected metric. */
    Metric at(std::size_t i) const;

    /** Schema row of the i-th selected metric. */
    const MetricSpec &specAt(std::size_t i) const;

    /** Canonical names, one per selected metric, in set order. */
    std::vector<std::string> names() const;

    /** Position of `m` in this set, or size() when absent. */
    std::size_t indexOf(Metric m) const;

    /** True when `m` is a member. */
    bool contains(Metric m) const { return indexOf(m) < size(); }

    /** Project a full Table II vector onto this set's order. */
    std::vector<double> project(const MetricVector &full) const;

    /** Derive only this set's metrics from raw counters. */
    std::vector<double> extract(const PmcCounters &pmc) const;

    /**
     * Select this set's columns out of a full 45-column matrix
     * (rows = workloads); fatal when the matrix is not 45 wide.
     */
    Matrix selectColumns(const Matrix &full) const;

    bool operator==(const MetricSet &rhs) const
    {
        return members_ == rhs.members_;
    }

  private:
    explicit MetricSet(std::vector<Metric> members);

    std::vector<Metric> members_;
};

} // namespace bds

#endif // BDS_METRICS_SET_H
