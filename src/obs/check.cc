#include "obs/check.h"

#include <fstream>
#include <istream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"
#include "obs/manifest.h"

namespace bds {

namespace {

/** Open-span bookkeeping while replaying one thread's events. */
struct OpenSpan
{
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t beginUs = 0;
};

} // namespace

TraceCheckResult
checkTrace(std::istream &is)
{
    TraceCheckResult res;
    std::map<std::uint64_t, std::vector<OpenSpan>> stacks; // per tid
    std::map<std::uint64_t, std::uint64_t> lastUs;         // per tid
    std::map<std::uint64_t, bool> seenIds;

    auto fail = [&](std::size_t lineno, const std::string &why) {
        res.errors.push_back("line " + std::to_string(lineno) + ": "
                             + why);
    };

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty()) {
            fail(lineno, "empty line");
            continue;
        }
        JsonValue ev;
        try {
            ev = parseJson(line);
        } catch (const FatalError &e) {
            fail(lineno, e.what());
            continue;
        }
        ++res.events;
        std::string kind;
        try {
            kind = ev.at("ev").asString();

            if (kind == "M")
                continue;

            std::uint64_t tid = ev.at("tid").asUint();
            std::uint64_t t_us = ev.at("t_us").asUint();
            if (t_us < lastUs[tid])
                fail(lineno, "timestamp not monotonic on tid "
                                 + std::to_string(tid));
            lastUs[tid] = t_us;

            if (kind == "B") {
                std::uint64_t id = ev.at("id").asUint();
                if (seenIds[id])
                    fail(lineno, "duplicate span id "
                                     + std::to_string(id));
                seenIds[id] = true;
                // The parent must be this thread's innermost open
                // span (or 0 at top level): spans strictly nest per
                // thread.
                std::uint64_t parent = ev.at("parent").asUint();
                const auto &stack = stacks[tid];
                std::uint64_t expect =
                    stack.empty() ? 0 : stack.back().id;
                if (parent != expect)
                    fail(lineno,
                         "span " + std::to_string(id) + " parent "
                             + std::to_string(parent) + " != expected "
                             + std::to_string(expect));
                stacks[tid].push_back(
                    OpenSpan{id, ev.at("name").asString(), t_us});
            } else if (kind == "E") {
                std::uint64_t id = ev.at("id").asUint();
                auto &stack = stacks[tid];
                if (stack.empty() || stack.back().id != id) {
                    fail(lineno, "end of span " + std::to_string(id)
                                     + " does not match open span");
                } else {
                    const OpenSpan &open = stack.back();
                    std::string name = ev.at("name").asString();
                    if (name != open.name)
                        fail(lineno, "end name '" + name
                                         + "' != begin name '"
                                         + open.name + "'");
                    std::uint64_t dur = ev.at("dur_us").asUint();
                    if (open.beginUs + dur > t_us + 1)
                        fail(lineno,
                             "duration exceeds begin/end distance");
                    ++res.spanCounts[name];
                    stack.pop_back();
                }
            } else if (kind == "C") {
                res.counterTotals[ev.at("name").asString()] +=
                    ev.at("delta").asUint();
            } else if (kind == "G") {
                ev.at("name").asString();
                ev.at("value").asNumber();
            } else {
                fail(lineno, "unknown event kind '" + kind + "'");
            }
        } catch (const FatalError &e) {
            fail(lineno, e.what());
        }
    }

    for (const auto &[tid, stack] : stacks)
        for (const OpenSpan &open : stack)
            res.errors.push_back(
                "span " + std::to_string(open.id) + " ('" + open.name
                + "') on tid " + std::to_string(tid)
                + " never closed");
    if (res.events == 0)
        res.errors.push_back("trace contains no events");
    return res;
}

TraceCheckResult
checkTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        TraceCheckResult res;
        res.errors.push_back("cannot open trace '" + path + "'");
        return res;
    }
    return checkTrace(in);
}

std::vector<std::string>
checkManifestFile(const std::string &path)
{
    std::vector<std::string> errors;
    RunManifest m;
    try {
        m = readRunManifestFile(path);
    } catch (const FatalError &e) {
        errors.push_back(e.what());
        return errors;
    }

    if (m.manifestVersion != 1)
        errors.push_back("unsupported manifest_version "
                         + std::to_string(m.manifestVersion));
    if (m.tool.empty())
        errors.push_back("tool is empty");
    if (m.version.empty())
        errors.push_back("bds_version is empty");
    if (m.created.size() != 20 || m.created.back() != 'Z')
        errors.push_back("created is not ISO-8601 UTC: '" + m.created
                         + "'");
    const std::string &scale = m.config.scaleName;
    if (scale != "quick" && scale != "standard" && scale != "full")
        errors.push_back("unknown scale '" + scale + "'");
    // The machine spec is validated structurally only (empty means a
    // hand-edited manifest): bds_obs sits below bds_uarch, so the
    // full resolveMachineSpec() check belongs to the tools that
    // execute the config, not to the manifest grammar.
    if (m.config.machineSpec.empty())
        errors.push_back("machine spec is empty");
    if (m.config.machineSpec.find_first_of(" \t\n\"")
        != std::string::npos)
        errors.push_back("machine spec contains whitespace: '"
                         + m.config.machineSpec + "'");
    if (m.config.parallel.resolved() < 1)
        errors.push_back("resolved threads < 1");
    if (m.config.sampling.intervalUops == 0)
        errors.push_back("sampling interval_uops is 0");
    if (m.wallSeconds < 0.0)
        errors.push_back("negative wall_seconds");
    for (const StageTime &st : m.stages) {
        if (st.name.empty())
            errors.push_back("stage with empty name");
        if (st.seconds < 0.0)
            errors.push_back("stage '" + st.name
                             + "' has negative seconds");
    }

    // Failure-record grammar: the parser already rejected unknown
    // status/code names, so what is left is internal consistency —
    // attempt counts that match the status, causes on terminal
    // failures, and a quarantined list that mirrors the quarantined
    // records in order.
    std::vector<std::string> expect_quarantined;
    for (const RunRecord &r : m.failures) {
        if (r.name.empty())
            errors.push_back("failure record with empty name");
        if (r.status == RunStatus::Ok)
            errors.push_back("failure record '" + r.name
                             + "' has status ok");
        if (r.attempts < 1)
            errors.push_back("failure record '" + r.name
                             + "' has attempts < 1");
        if (r.status == RunStatus::RetriedOk && r.attempts < 2)
            errors.push_back("retried_ok record '" + r.name
                             + "' has attempts < 2");
        if (r.status != RunStatus::RetriedOk
            && r.code == ErrorCode::None)
            errors.push_back("failure record '" + r.name
                             + "' has no error code");
        if (r.status == RunStatus::TimedOut
            && r.code != ErrorCode::Timeout)
            errors.push_back("timed_out record '" + r.name
                             + "' has code "
                             + errorCodeName(r.code));
        if (r.seconds < 0.0)
            errors.push_back("failure record '" + r.name
                             + "' has negative seconds");
        if (r.status == RunStatus::Quarantined)
            expect_quarantined.push_back(r.name);
    }
    if (m.quarantined != expect_quarantined)
        errors.push_back(
            "quarantined list does not match the quarantined "
            "failure records");
    return errors;
}

} // namespace bds
