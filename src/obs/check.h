/**
 * @file
 * Structural validation of trace files and run manifests — shared by
 * the test suite and the bench/obs_check CLI (which CI runs against
 * a traced characterize_suite invocation).
 *
 * The trace checker replays the JSON-lines stream and verifies the
 * event grammar: every line parses, begin/end events balance with
 * strict per-thread nesting, ids are unique, per-thread timestamps
 * are monotonic, and durations are consistent. It returns per-name
 * span counts so callers can assert coverage ("32 workload.run
 * spans, one bic.k per sweep point").
 */

#ifndef BDS_OBS_CHECK_H
#define BDS_OBS_CHECK_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace bds {

/** Outcome of validating one trace stream. */
struct TraceCheckResult
{
    /** Total events seen (including metadata). */
    std::size_t events = 0;

    /** Completed spans per name. */
    std::map<std::string, std::size_t> spanCounts;

    /** Counter totals per name. */
    std::map<std::string, std::uint64_t> counterTotals;

    /** Every grammar violation found (empty = valid). */
    std::vector<std::string> errors;

    /** True when no violations were found. */
    bool ok() const { return errors.empty(); }
};

/** Validate a JSON-lines trace stream. */
TraceCheckResult checkTrace(std::istream &is);

/** checkTrace() over a file; unreadable files are an error entry. */
TraceCheckResult checkTraceFile(const std::string &path);

/**
 * Validate a run manifest: parse it (fatal errors are captured as an
 * error entry) and check field sanity — a known scale name, resolved
 * threads >= 1, non-negative wall clocks, and stage names present.
 * Returns the violations (empty = valid).
 */
std::vector<std::string> checkManifestFile(const std::string &path);

} // namespace bds

#endif // BDS_OBS_CHECK_H
