#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace bds {

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        BDS_FATAL("JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        BDS_FATAL("JSON value is not a number");
    return num_;
}

std::uint64_t
JsonValue::asUint() const
{
    double n = asNumber();
    if (n < 0.0 || n != std::floor(n))
        BDS_FATAL("JSON number " << n
                  << " is not a non-negative integer");
    return static_cast<std::uint64_t>(n);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        BDS_FATAL("JSON value is not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        BDS_FATAL("JSON value is not an array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        BDS_FATAL("JSON value is not an object");
    return obj_;
}

bool
JsonValue::has(const std::string &key) const
{
    return kind_ == Kind::Object && obj_.count(key) != 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const auto &obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end())
        BDS_FATAL("JSON object has no member '" << key << "'");
    return it->second;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> a)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.arr_ = std::move(a);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> o)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.obj_ = std::move(o);
    return v;
}

namespace {

/** Cursor over the input text with fatal-on-error primitives. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        BDS_FATAL("JSON parse error at offset " << pos_ << ": " << why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek()
                 + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue::makeString(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Our own writer only escapes ASCII controls, so a
                // plain one-byte decode covers everything we emit.
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number '" + tok + "'");
        return JsonValue::makeNumber(v);
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> out;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(out));
        }
        while (true) {
            out.push_back(parseValue());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return JsonValue::makeArray(std::move(out));
            }
            fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        std::map<std::string, JsonValue> out;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(out));
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            out[key] = parseValue();
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return JsonValue::makeObject(std::move(out));
            }
            fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace bds
