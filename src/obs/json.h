/**
 * @file
 * Minimal JSON value model and recursive-descent parser for the
 * observability layer: RunManifest round-trips, trace-event
 * validation (src/obs/check.h), and the obs_check tool all read
 * JSON this library wrote itself.
 *
 * Scope is deliberately small — UTF-8 pass-through, no comments, no
 * trailing commas — because every consumer parses documents produced
 * by this codebase. Parse errors are BDS_FATAL: a manifest or trace
 * that does not parse is a user-visible defect, not a recoverable
 * condition.
 */

#ifndef BDS_OBS_JSON_H
#define BDS_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bds {

/** One JSON value: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    /** The JSON type tags. */
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /** The value's type. */
    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** The boolean payload; fatal when not a bool. */
    bool asBool() const;

    /** The numeric payload; fatal when not a number. */
    double asNumber() const;

    /** asNumber() rounded and checked to be a non-negative integer. */
    std::uint64_t asUint() const;

    /** The string payload; fatal when not a string. */
    const std::string &asString() const;

    /** The array elements; fatal when not an array. */
    const std::vector<JsonValue> &asArray() const;

    /** The object members (sorted by key); fatal when not an object. */
    const std::map<std::string, JsonValue> &asObject() const;

    /** True when an object has `key`. */
    bool has(const std::string &key) const;

    /** Object member access; fatal when absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> a);
    static JsonValue makeObject(std::map<std::string, JsonValue> o);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/**
 * Parse one JSON document from `text`. Trailing non-whitespace after
 * the document is fatal, as is any syntax error.
 */
JsonValue parseJson(const std::string &text);

/** JSON-escape a string (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** Render a double the way the manifest writer does (shortest trip). */
std::string jsonNumber(double v);

} // namespace bds

#endif // BDS_OBS_JSON_H
