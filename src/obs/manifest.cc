#include "obs/manifest.h"

#include <ctime>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace bds {

const char *
bdsVersion()
{
#ifdef BDS_VERSION
    return BDS_VERSION;
#else
    return "0.0.0";
#endif
}

namespace {

/** Write a JSON string array on one line. */
void
writeStringArray(std::ostream &os,
                 const std::vector<std::string> &items)
{
    os << '[';
    for (std::size_t i = 0; i < items.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(items[i]) << '"';
    os << ']';
}

std::vector<std::string>
readStringArray(const JsonValue &v)
{
    std::vector<std::string> out;
    for (const JsonValue &item : v.asArray())
        out.push_back(item.asString());
    return out;
}

} // namespace

void
writeRunManifest(std::ostream &os, const RunManifest &m)
{
    const RunConfig &c = m.config;
    os << "{\n"
       << "  \"manifest_version\": " << m.manifestVersion << ",\n"
       << "  \"tool\": \"" << jsonEscape(m.tool) << "\",\n"
       << "  \"bds_version\": \"" << jsonEscape(m.version) << "\",\n"
       << "  \"created\": \"" << jsonEscape(m.created) << "\",\n"
       << "  \"argv\": ";
    writeStringArray(os, m.argv);
    os << ",\n"
       << "  \"config\": {\n"
       << "    \"scale\": \"" << jsonEscape(c.scaleName) << "\",\n"
       << "    \"seed\": " << c.seed << ",\n"
       << "    \"threads\": {\"requested\": " << c.parallel.threads
       << ", \"resolved\": " << c.parallel.resolved() << "},\n"
       << "    \"metrics\": ";
    writeStringArray(os, c.metricNames);
    os << ",\n"
       << "    \"sampling\": {\"enabled\": "
       << (c.sampling.enabled ? "true" : "false")
       << ", \"interval_uops\": " << c.sampling.intervalUops
       << ", \"bbv_dims\": " << c.sampling.bbvDims
       << ", \"k_min\": " << c.sampling.kMin
       << ", \"k_max\": " << c.sampling.kMax
       << ", \"warmup_intervals\": " << c.sampling.warmupIntervals
       << ", \"seed\": " << c.sampling.seed << "},\n"
       << "    \"trace\": {\"enabled\": "
       << (c.trace ? "true" : "false") << ", \"path\": \""
       << jsonEscape(c.trace ? c.resolvedTracePath() : std::string())
       << "\"}\n"
       << "  },\n"
       << "  \"stages\": [";
    for (std::size_t i = 0; i < m.stages.size(); ++i)
        os << (i ? ", " : "") << "{\"name\": \""
           << jsonEscape(m.stages[i].name) << "\", \"seconds\": "
           << jsonNumber(m.stages[i].seconds) << "}";
    os << "],\n"
       << "  \"wall_seconds\": " << jsonNumber(m.wallSeconds) << ",\n"
       << "  \"peak_rss_kb\": " << m.peakRssKb << ",\n"
       << "  \"artifacts\": ";
    writeStringArray(os, m.artifacts);
    os << "\n}\n";
}

RunManifest
parseRunManifest(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    JsonValue root = parseJson(buf.str());

    RunManifest m;
    m.manifestVersion =
        static_cast<int>(root.at("manifest_version").asUint());
    m.tool = root.at("tool").asString();
    m.version = root.at("bds_version").asString();
    m.created = root.at("created").asString();
    m.argv = readStringArray(root.at("argv"));

    const JsonValue &cfg = root.at("config");
    m.config.tool = m.tool;
    m.config.scaleName = cfg.at("scale").asString();
    m.config.seed = cfg.at("seed").asUint();
    m.config.parallel.threads = static_cast<unsigned>(
        cfg.at("threads").at("requested").asUint());
    m.config.metricNames = readStringArray(cfg.at("metrics"));

    const JsonValue &s = cfg.at("sampling");
    m.config.sampling.enabled = s.at("enabled").asBool();
    m.config.sampling.intervalUops = s.at("interval_uops").asUint();
    m.config.sampling.bbvDims = s.at("bbv_dims").asUint();
    m.config.sampling.kMin = s.at("k_min").asUint();
    m.config.sampling.kMax = s.at("k_max").asUint();
    m.config.sampling.warmupIntervals =
        static_cast<unsigned>(s.at("warmup_intervals").asUint());
    m.config.sampling.seed = s.at("seed").asUint();

    const JsonValue &t = cfg.at("trace");
    m.config.trace = t.at("enabled").asBool();
    m.config.tracePath = t.at("path").asString();

    for (const JsonValue &st : root.at("stages").asArray()) {
        StageTime stage;
        stage.name = st.at("name").asString();
        stage.seconds = st.at("seconds").asNumber();
        m.stages.push_back(std::move(stage));
    }
    m.wallSeconds = root.at("wall_seconds").asNumber();
    m.peakRssKb = static_cast<long>(root.at("peak_rss_kb").asUint());
    m.artifacts = readStringArray(root.at("artifacts"));
    return m;
}

RunManifest
readRunManifestFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        BDS_FATAL("cannot open manifest '" << path << "'");
    return parseRunManifest(in);
}

} // namespace bds
