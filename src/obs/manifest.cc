#include "obs/manifest.h"

#include <ctime>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace bds {

const char *
bdsVersion()
{
#ifdef BDS_VERSION
    return BDS_VERSION;
#else
    return "0.0.0";
#endif
}

namespace {

/** Write a JSON string array on one line. */
void
writeStringArray(std::ostream &os,
                 const std::vector<std::string> &items)
{
    os << '[';
    for (std::size_t i = 0; i < items.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(items[i]) << '"';
    os << ']';
}

std::vector<std::string>
readStringArray(const JsonValue &v)
{
    std::vector<std::string> out;
    for (const JsonValue &item : v.asArray())
        out.push_back(item.asString());
    return out;
}

} // namespace

void
writeRunManifest(std::ostream &os, const RunManifest &m)
{
    const RunConfig &c = m.config;
    os << "{\n"
       << "  \"manifest_version\": " << m.manifestVersion << ",\n"
       << "  \"tool\": \"" << jsonEscape(m.tool) << "\",\n"
       << "  \"bds_version\": \"" << jsonEscape(m.version) << "\",\n"
       << "  \"created\": \"" << jsonEscape(m.created) << "\",\n"
       << "  \"argv\": ";
    writeStringArray(os, m.argv);
    os << ",\n"
       << "  \"config\": {\n"
       << "    \"scale\": \"" << jsonEscape(c.scaleName) << "\",\n"
       << "    \"seed\": " << c.seed << ",\n"
       << "    \"machine\": \"" << jsonEscape(c.machineSpec)
       << "\",\n"
       << "    \"threads\": {\"requested\": " << c.parallel.threads
       << ", \"resolved\": " << c.parallel.resolved() << "},\n"
       << "    \"metrics\": ";
    writeStringArray(os, c.metricNames);
    os << ",\n"
       << "    \"sampling\": {\"enabled\": "
       << (c.sampling.enabled ? "true" : "false")
       << ", \"interval_uops\": " << c.sampling.intervalUops
       << ", \"bbv_dims\": " << c.sampling.bbvDims
       << ", \"k_min\": " << c.sampling.kMin
       << ", \"k_max\": " << c.sampling.kMax
       << ", \"warmup_intervals\": " << c.sampling.warmupIntervals
       << ", \"seed\": " << c.sampling.seed << "},\n"
       << "    \"trace\": {\"enabled\": "
       << (c.trace ? "true" : "false") << ", \"path\": \""
       << jsonEscape(c.trace ? c.resolvedTracePath() : std::string())
       << "\"},\n"
       << "    \"recovery\": {\"policy\": \""
       << failPolicyName(c.fault.recovery.policy)
       << "\", \"retries\": " << c.fault.recovery.maxRetries
       << ", \"timeout_ms\": " << c.fault.recovery.timeoutMs
       << ", \"fault_injection\": "
       << (c.fault.any() ? "true" : "false") << "}";
    // Only daemons carry a serve block (batch manifests stay
    // byte-identical to the pre-serve layout).
    if (c.serve.enabled)
        os << ",\n"
           << "    \"serve\": {\"socket\": \""
           << jsonEscape(c.serve.socketPath) << "\", \"cache_dir\": \""
           << jsonEscape(c.serve.storeDir)
           << "\", \"max_inflight\": " << c.serve.maxInFlight
           << ", \"max_queue\": " << c.serve.maxQueue
           << ", \"store_max_bytes\": " << c.serve.maxStoreBytes
           << ", \"bypass\": "
           << (c.serve.bypassStore ? "true" : "false")
           << ", \"request_log\": \""
           << jsonEscape(c.serve.logPath) << "\"}";
    // Likewise, only checkpoint-enabled runs carry the block —
    // manifests of runs without the knob stay byte-identical.
    if (c.ckpt.enabled)
        os << ",\n"
           << "    \"checkpoint\": {\"enabled\": true, \"dir\": \""
           << jsonEscape(c.ckpt.dir)
           << "\", \"max_bytes\": " << c.ckpt.maxBytes << "}";
    os << "\n"
       << "  },\n"
       << "  \"stages\": [";
    for (std::size_t i = 0; i < m.stages.size(); ++i)
        os << (i ? ", " : "") << "{\"name\": \""
           << jsonEscape(m.stages[i].name) << "\", \"seconds\": "
           << jsonNumber(m.stages[i].seconds) << "}";
    os << "],\n"
       << "  \"wall_seconds\": " << jsonNumber(m.wallSeconds) << ",\n"
       << "  \"peak_rss_kb\": " << m.peakRssKb << ",\n"
       << "  \"artifacts\": ";
    writeStringArray(os, m.artifacts);
    // Failure records only appear when something went wrong, so a
    // clean run's manifest is unchanged by the fault layer.
    if (!m.failures.empty()) {
        os << ",\n  \"failures\": [\n";
        for (std::size_t i = 0; i < m.failures.size(); ++i) {
            const RunRecord &r = m.failures[i];
            os << (i ? ",\n" : "") << "    {\"name\": \""
               << jsonEscape(r.name) << "\", \"status\": \""
               << runStatusName(r.status)
               << "\", \"attempts\": " << r.attempts
               << ", \"code\": \"" << errorCodeName(r.code)
               << "\", \"message\": \"" << jsonEscape(r.message)
               << "\", \"seconds\": " << jsonNumber(r.seconds) << "}";
        }
        os << "\n  ],\n  \"quarantined\": ";
        writeStringArray(os, m.quarantined);
    }
    os << "\n}\n";
}

RunManifest
parseRunManifest(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    JsonValue root = parseJson(buf.str());

    RunManifest m;
    m.manifestVersion =
        static_cast<int>(root.at("manifest_version").asUint());
    m.tool = root.at("tool").asString();
    m.version = root.at("bds_version").asString();
    m.created = root.at("created").asString();
    m.argv = readStringArray(root.at("argv"));

    const JsonValue &cfg = root.at("config");
    m.config.tool = m.tool;
    m.config.scaleName = cfg.at("scale").asString();
    m.config.seed = cfg.at("seed").asUint();
    // Pre-DSE manifests lack the machine field; they were all
    // recorded on the implicit Table III default.
    if (cfg.has("machine"))
        m.config.machineSpec = cfg.at("machine").asString();
    m.config.parallel.threads = static_cast<unsigned>(
        cfg.at("threads").at("requested").asUint());
    m.config.metricNames = readStringArray(cfg.at("metrics"));

    const JsonValue &s = cfg.at("sampling");
    m.config.sampling.enabled = s.at("enabled").asBool();
    m.config.sampling.intervalUops = s.at("interval_uops").asUint();
    m.config.sampling.bbvDims = s.at("bbv_dims").asUint();
    m.config.sampling.kMin = s.at("k_min").asUint();
    m.config.sampling.kMax = s.at("k_max").asUint();
    m.config.sampling.warmupIntervals =
        static_cast<unsigned>(s.at("warmup_intervals").asUint());
    m.config.sampling.seed = s.at("seed").asUint();

    const JsonValue &t = cfg.at("trace");
    m.config.trace = t.at("enabled").asBool();
    m.config.tracePath = t.at("path").asString();

    // Pre-fault-layer manifests lack the recovery block.
    if (cfg.has("recovery")) {
        const JsonValue &r = cfg.at("recovery");
        if (!failPolicyFromName(r.at("policy").asString(),
                                &m.config.fault.recovery.policy))
            BDS_FATAL("manifest has unknown fail policy '"
                      << r.at("policy").asString() << "'");
        m.config.fault.recovery.maxRetries =
            static_cast<unsigned>(r.at("retries").asUint());
        m.config.fault.recovery.timeoutMs =
            r.at("timeout_ms").asUint();
    }

    // Only daemon manifests carry the serve block.
    if (cfg.has("serve")) {
        const JsonValue &sv = cfg.at("serve");
        m.config.serve.enabled = true;
        m.config.serve.socketPath = sv.at("socket").asString();
        m.config.serve.storeDir = sv.at("cache_dir").asString();
        m.config.serve.maxInFlight = static_cast<unsigned>(
            sv.at("max_inflight").asUint());
        // Pre-shared-store manifests lack the queue/budget fields.
        if (sv.has("max_queue"))
            m.config.serve.maxQueue = static_cast<unsigned>(
                sv.at("max_queue").asUint());
        if (sv.has("store_max_bytes"))
            m.config.serve.maxStoreBytes =
                sv.at("store_max_bytes").asUint();
        m.config.serve.bypassStore = sv.at("bypass").asBool();
        m.config.serve.logPath =
            sv.at("request_log").asString();
    }

    // Only checkpoint-enabled runs carry the checkpoint block.
    if (cfg.has("checkpoint")) {
        const JsonValue &ck = cfg.at("checkpoint");
        m.config.ckpt.enabled = ck.at("enabled").asBool();
        m.config.ckpt.dir = ck.at("dir").asString();
        if (ck.has("max_bytes"))
            m.config.ckpt.maxBytes = ck.at("max_bytes").asUint();
    }

    for (const JsonValue &st : root.at("stages").asArray()) {
        StageTime stage;
        stage.name = st.at("name").asString();
        stage.seconds = st.at("seconds").asNumber();
        m.stages.push_back(std::move(stage));
    }
    m.wallSeconds = root.at("wall_seconds").asNumber();
    m.peakRssKb = static_cast<long>(root.at("peak_rss_kb").asUint());
    m.artifacts = readStringArray(root.at("artifacts"));
    if (root.has("failures")) {
        for (const JsonValue &f : root.at("failures").asArray()) {
            RunRecord r;
            r.name = f.at("name").asString();
            if (!runStatusFromName(f.at("status").asString(),
                                   &r.status))
                BDS_FATAL("manifest has unknown run status '"
                          << f.at("status").asString() << "'");
            r.attempts =
                static_cast<unsigned>(f.at("attempts").asUint());
            if (!errorCodeFromName(f.at("code").asString(), &r.code))
                BDS_FATAL("manifest has unknown error code '"
                          << f.at("code").asString() << "'");
            r.message = f.at("message").asString();
            r.seconds = f.at("seconds").asNumber();
            m.failures.push_back(std::move(r));
        }
        m.quarantined = readStringArray(root.at("quarantined"));
    }
    return m;
}

RunManifest
readRunManifestFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        BDS_FATAL("cannot open manifest '" << path << "'");
    return parseRunManifest(in);
}

} // namespace bds
