/**
 * @file
 * RunManifest: the self-description written next to every report and
 * bench artifact, so any CSV or BENCH_*.json can be traced back to
 * the exact configuration that produced it — resolved options (scale,
 * seed, threads, sampling knobs, metric set, trace knobs), library
 * version, per-stage wall-clock, peak RSS, and the artifacts the run
 * wrote.
 *
 * The manifest is plain JSON (schema in docs/OBSERVABILITY.md) and
 * round-trips: writeRunManifest() followed by parseRunManifest()
 * reproduces every resolved-option field bit for bit, which the
 * tests pin.
 */

#ifndef BDS_OBS_MANIFEST_H
#define BDS_OBS_MANIFEST_H

#include <iosfwd>
#include <string>
#include <vector>

#include "fault/status.h"
#include "obs/runconfig.h"

namespace bds {

/** The library version recorded in manifests and trace metadata. */
const char *bdsVersion();

/** Wall-clock of one named run stage. */
struct StageTime
{
    std::string name;     ///< stage label ("characterize", "analyze")
    double seconds = 0.0; ///< host wall-clock spent in the stage
};

/** Everything a run records about itself. */
struct RunManifest
{
    /** Manifest schema version (bumped on incompatible changes). */
    int manifestVersion = 1;

    /** The binary that ran ("characterize_suite", "fig1_dendrogram"). */
    std::string tool;

    /** Library version string. */
    std::string version;

    /** Wall-clock creation time, ISO-8601 UTC. */
    std::string created;

    /** The command line, argv[0] included (empty when not captured). */
    std::vector<std::string> argv;

    /** The fully resolved run configuration. */
    RunConfig config;

    /** Per-stage wall-clock, in execution order. */
    std::vector<StageTime> stages;

    /** Wall-clock of the whole run. */
    double wallSeconds = 0.0;

    /** Peak resident set size in kilobytes (0 when unavailable). */
    long peakRssKb = 0;

    /** Paths of the artifacts the run wrote (reports, CSVs, JSON). */
    std::vector<std::string> artifacts;

    /**
     * Workloads that did not end Ok (retried, failed, timed out or
     * quarantined), in sweep order. Empty for clean runs — the field
     * is omitted from the JSON entirely, keeping pre-fault-layer
     * manifests byte-identical.
     */
    std::vector<RunRecord> failures;

    /** Names of the quarantined (dropped) workloads, in sweep order. */
    std::vector<std::string> quarantined;
};

/** Serialize `m` as pretty-printed JSON. */
void writeRunManifest(std::ostream &os, const RunManifest &m);

/** Parse a manifest written by writeRunManifest(). Fatal on errors. */
RunManifest parseRunManifest(std::istream &is);

/** parseRunManifest() over a file; fatal when unreadable. */
RunManifest readRunManifestFile(const std::string &path);

} // namespace bds

#endif // BDS_OBS_MANIFEST_H
