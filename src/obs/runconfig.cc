#include "obs/runconfig.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/log.h"

namespace bds {

namespace detail {

std::uint64_t
parseUint(const std::string &what, const std::string &value)
{
    if (value.empty()
        || value.find_first_not_of("0123456789") != std::string::npos)
        BDS_FATAL(what << " must be a non-negative integer, got '"
                       << value << "'");
    errno = 0;
    std::uint64_t v = std::strtoull(value.c_str(), nullptr, 10);
    if (errno == ERANGE)
        BDS_FATAL(what << " is out of range: '" << value << "'");
    return v;
}

} // namespace detail

namespace {

using detail::parseUint;

/** Validate a scale name (the one knob that is an enumeration). */
void
checkScaleName(const std::string &what, const std::string &name)
{
    if (name != "quick" && name != "standard" && name != "full")
        BDS_FATAL(what << " must be quick, standard or full, got '"
                       << name << "'");
}

/** Split a comma-separated list, rejecting empty elements. */
std::vector<std::string>
splitNames(const std::string &what, const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            BDS_FATAL(what << " has an empty metric name in '" << csv
                           << "'");
        out.push_back(item);
    }
    if (out.empty())
        BDS_FATAL(what << " must name at least one metric");
    return out;
}

/** A 0/1 switch (BDS_SAMPLE, BDS_TRACE). */
bool
parseSwitch(const std::string &what, const std::string &value)
{
    if (value == "0")
        return false;
    if (value == "1")
        return true;
    BDS_FATAL(what << " must be 0 or 1, got '" << value << "'");
}

/** Parse a fail-policy name, fataling on anything unknown. */
FailPolicy
parsePolicy(const std::string &what, const std::string &value)
{
    FailPolicy policy;
    if (!failPolicyFromName(value, &policy))
        BDS_FATAL(what << " must be failfast or quarantine, got '"
                       << value << "'");
    return policy;
}

} // namespace

RunConfig
RunConfig::resolve(const std::string &tool, int argc, char **argv)
{
    RunConfig cfg;
    cfg.tool = tool;
    cfg.applyEnv();
    if (argc > 0 && argv) {
        cfg.argv.assign(argv, argv + argc);
        std::vector<std::string> rest = cfg.applyArgs(
            std::vector<std::string>(argv + 1, argv + argc));
        if (!rest.empty())
            BDS_FATAL(tool << " got an unexpected argument '"
                           << rest.front() << "'");
    }
    return cfg;
}

void
RunConfig::applyEnv()
{
    if (const char *v = std::getenv("BDS_SCALE")) {
        checkScaleName("BDS_SCALE", v);
        scaleName = v;
    }
    if (const char *v = std::getenv("BDS_SEED"))
        seed = parseUint("BDS_SEED", v);
    if (const char *v = std::getenv("BDS_THREADS"))
        parallel.threads =
            static_cast<unsigned>(parseUint("BDS_THREADS", v));
    if (const char *v = std::getenv("BDS_MACHINE")) {
        if (*v == '\0')
            BDS_FATAL("BDS_MACHINE must be a machine spec "
                      "(preset name and/or key=value overrides)");
        machineSpec = v;
    }
    if (const char *v = std::getenv("BDS_METRICS"))
        metricNames = splitNames("BDS_METRICS", v);

    if (const char *v = std::getenv("BDS_SAMPLE"))
        sampling.enabled = parseSwitch("BDS_SAMPLE", v);
    if (const char *v = std::getenv("BDS_SAMPLE_INTERVAL")) {
        sampling.intervalUops = parseUint("BDS_SAMPLE_INTERVAL", v);
        if (sampling.intervalUops == 0)
            BDS_FATAL("BDS_SAMPLE_INTERVAL must be positive");
    }
    if (const char *v = std::getenv("BDS_SAMPLE_BBV")) {
        sampling.bbvDims = parseUint("BDS_SAMPLE_BBV", v);
        if (sampling.bbvDims == 0)
            BDS_FATAL("BDS_SAMPLE_BBV must be positive");
    }
    if (const char *v = std::getenv("BDS_SAMPLE_KMAX")) {
        sampling.kMax = parseUint("BDS_SAMPLE_KMAX", v);
        if (sampling.kMax == 0)
            BDS_FATAL("BDS_SAMPLE_KMAX must be positive");
    }
    if (const char *v = std::getenv("BDS_SAMPLE_WARMUP"))
        sampling.warmupIntervals = static_cast<unsigned>(
            parseUint("BDS_SAMPLE_WARMUP", v));
    if (const char *v = std::getenv("BDS_SAMPLE_SEED"))
        sampling.seed = parseUint("BDS_SAMPLE_SEED", v);

    if (const char *v = std::getenv("BDS_FAIL_POLICY"))
        fault.recovery.policy = parsePolicy("BDS_FAIL_POLICY", v);
    if (const char *v = std::getenv("BDS_RETRIES"))
        fault.recovery.maxRetries =
            static_cast<unsigned>(parseUint("BDS_RETRIES", v));
    if (const char *v = std::getenv("BDS_RUN_TIMEOUT_MS"))
        fault.recovery.timeoutMs = parseUint("BDS_RUN_TIMEOUT_MS", v);
    if (const char *v = std::getenv("BDS_FAULT_THROW"))
        fault.throwAt = v;
    if (const char *v = std::getenv("BDS_FAULT_STALL"))
        fault.stallAt = v;
    if (const char *v = std::getenv("BDS_FAULT_CORRUPT"))
        fault.corruptAt = v;
    if (const char *v = std::getenv("BDS_FAULT_ALLOC"))
        fault.allocAt = v;
    if (const char *v = std::getenv("BDS_FAULT_STALL_MS"))
        fault.stallMs = parseUint("BDS_FAULT_STALL_MS", v);
    if (const char *v = std::getenv("BDS_FAULT_ATTEMPTS"))
        fault.attempts = static_cast<unsigned>(
            parseUint("BDS_FAULT_ATTEMPTS", v));
    if (const char *v = std::getenv("BDS_FAULT_IO"))
        fault.ioAt = v;

    if (const char *v = std::getenv("BDS_SERVE_SOCKET"))
        serve.socketPath = v;
    if (const char *v = std::getenv("BDS_SERVE_CACHE")) {
        if (*v == '\0')
            BDS_FATAL("BDS_SERVE_CACHE must name a directory");
        serve.storeDir = v;
    }
    if (const char *v = std::getenv("BDS_SERVE_MAX_INFLIGHT"))
        serve.maxInFlight = static_cast<unsigned>(
            parseUint("BDS_SERVE_MAX_INFLIGHT", v));
    if (const char *v = std::getenv("BDS_SERVE_MAX_QUEUE"))
        serve.maxQueue = static_cast<unsigned>(
            parseUint("BDS_SERVE_MAX_QUEUE", v));
    if (const char *v = std::getenv("BDS_STORE_MAX_BYTES"))
        serve.maxStoreBytes = parseUint("BDS_STORE_MAX_BYTES", v);
    if (const char *v = std::getenv("BDS_SERVE_BYPASS"))
        serve.bypassStore = parseSwitch("BDS_SERVE_BYPASS", v);
    if (const char *v = std::getenv("BDS_SERVE_LOG"))
        serve.logPath = v;

    if (const char *v = std::getenv("BDS_CKPT_DIR")) {
        if (*v == '\0')
            BDS_FATAL("BDS_CKPT_DIR must name a directory");
        ckpt.dir = v;
        ckpt.enabled = true;
    }
    // The explicit switch outranks the directory-implied enable, so
    // BDS_CKPT=0 can park a configured cache without unsetting its dir.
    if (const char *v = std::getenv("BDS_CKPT"))
        ckpt.enabled = parseSwitch("BDS_CKPT", v);
    if (const char *v = std::getenv("BDS_CKPT_MAX_BYTES"))
        ckpt.maxBytes = parseUint("BDS_CKPT_MAX_BYTES", v);

    if (const char *v = std::getenv("BDS_TRACE"))
        trace = parseSwitch("BDS_TRACE", v);
    if (const char *v = std::getenv("BDS_TRACE_FILE")) {
        tracePath = v;
        trace = true;
    }
    if (const char *v = std::getenv("BDS_MANIFEST")) {
        std::string s(v);
        if (s == "0") {
            manifest = false;
        } else if (s == "1") {
            manifest = true;
        } else {
            manifest = true;
            manifestPath = s;
        }
    }
}

std::vector<std::string>
RunConfig::applyArgs(const std::vector<std::string> &args)
{
    std::vector<std::string> rest;
    if (argv.empty())
        argv = args;

    // Flags come as "--flag value" or "--flag=value"; `take` fetches
    // the value either way, fataling on a flag with no value.
    std::size_t i = 0;
    auto take = [&](const std::string &flag,
                    const std::string &inlineVal,
                    bool hasInline) -> std::string {
        if (hasInline)
            return inlineVal;
        if (i + 1 >= args.size())
            BDS_FATAL(flag << " needs a value");
        return args[++i];
    };

    for (; i < args.size(); ++i) {
        const std::string &arg = args[i];
        std::string flag = arg, inlineVal;
        bool hasInline = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            flag = arg.substr(0, eq);
            inlineVal = arg.substr(eq + 1);
            hasInline = true;
        }

        if (flag == "--scale") {
            std::string v = take(flag, inlineVal, hasInline);
            checkScaleName("--scale", v);
            scaleName = v;
        } else if (flag == "--seed") {
            seed = parseUint("--seed", take(flag, inlineVal, hasInline));
        } else if (flag == "--threads") {
            parallel.threads = static_cast<unsigned>(
                parseUint("--threads", take(flag, inlineVal, hasInline)));
        } else if (flag == "--machine") {
            machineSpec = take(flag, inlineVal, hasInline);
            if (machineSpec.empty())
                BDS_FATAL("--machine must be a machine spec "
                          "(preset name and/or key=value overrides)");
        } else if (flag == "--metrics") {
            metricNames = splitNames(
                "--metrics", take(flag, inlineVal, hasInline));
        } else if (flag == "--sampled" || flag == "--sample") {
            sampling.enabled = true;
        } else if (flag == "--trace") {
            trace = true;
        } else if (flag == "--no-trace") {
            trace = false;
        } else if (flag == "--trace-file") {
            tracePath = take(flag, inlineVal, hasInline);
            trace = true;
        } else if (flag == "--manifest") {
            manifestPath = take(flag, inlineVal, hasInline);
            manifest = true;
        } else if (flag == "--no-manifest") {
            manifest = false;
        } else if (flag == "--fail-policy") {
            fault.recovery.policy = parsePolicy(
                "--fail-policy", take(flag, inlineVal, hasInline));
        } else if (flag == "--retries") {
            fault.recovery.maxRetries = static_cast<unsigned>(
                parseUint("--retries", take(flag, inlineVal, hasInline)));
        } else if (flag == "--run-timeout-ms") {
            fault.recovery.timeoutMs = parseUint(
                "--run-timeout-ms", take(flag, inlineVal, hasInline));
        } else if (flag == "--fault-throw") {
            fault.throwAt = take(flag, inlineVal, hasInline);
        } else if (flag == "--fault-stall") {
            fault.stallAt = take(flag, inlineVal, hasInline);
        } else if (flag == "--fault-corrupt") {
            fault.corruptAt = take(flag, inlineVal, hasInline);
        } else if (flag == "--fault-alloc") {
            fault.allocAt = take(flag, inlineVal, hasInline);
        } else if (flag == "--fault-stall-ms") {
            fault.stallMs = parseUint(
                "--fault-stall-ms", take(flag, inlineVal, hasInline));
        } else if (flag == "--fault-attempts") {
            fault.attempts = static_cast<unsigned>(parseUint(
                "--fault-attempts", take(flag, inlineVal, hasInline)));
        } else if (flag == "--fault-io") {
            fault.ioAt = take(flag, inlineVal, hasInline);
        } else if (flag == "--serve-socket") {
            serve.socketPath = take(flag, inlineVal, hasInline);
        } else if (flag == "--serve-cache") {
            serve.storeDir = take(flag, inlineVal, hasInline);
            if (serve.storeDir.empty())
                BDS_FATAL("--serve-cache must name a directory");
        } else if (flag == "--serve-max-inflight") {
            serve.maxInFlight = static_cast<unsigned>(parseUint(
                "--serve-max-inflight",
                take(flag, inlineVal, hasInline)));
        } else if (flag == "--serve-max-queue") {
            serve.maxQueue = static_cast<unsigned>(parseUint(
                "--serve-max-queue", take(flag, inlineVal, hasInline)));
        } else if (flag == "--store-max-bytes") {
            serve.maxStoreBytes = parseUint(
                "--store-max-bytes", take(flag, inlineVal, hasInline));
        } else if (flag == "--serve-bypass") {
            serve.bypassStore = true;
        } else if (flag == "--serve-log") {
            serve.logPath = take(flag, inlineVal, hasInline);
        } else if (flag == "--ckpt") {
            ckpt.enabled = true;
        } else if (flag == "--no-ckpt") {
            ckpt.enabled = false;
        } else if (flag == "--ckpt-dir") {
            ckpt.dir = take(flag, inlineVal, hasInline);
            if (ckpt.dir.empty())
                BDS_FATAL("--ckpt-dir must name a directory");
            ckpt.enabled = true;
        } else if (flag == "--ckpt-max-bytes") {
            ckpt.maxBytes = parseUint(
                "--ckpt-max-bytes", take(flag, inlineVal, hasInline));
        } else {
            rest.push_back(arg);
        }
    }
    return rest;
}

std::string
RunConfig::resolvedTracePath() const
{
    return tracePath.empty() ? tool + ".trace.jsonl" : tracePath;
}

std::string
RunConfig::resolvedManifestPath() const
{
    return manifestPath.empty() ? tool + ".manifest.json"
                                : manifestPath;
}

std::string
RunConfig::describe() const
{
    std::ostringstream os;
    os << "scale=" << scaleName << " seed=" << seed
       << " threads=" << parallel.resolved();
    if (machineSpec != "default" && !machineSpec.empty())
        os << " machine=" << machineSpec;
    if (!metricNames.empty())
        os << " metrics=" << metricNames.size() << "/45";
    if (sampling.enabled)
        os << " sampled(interval=" << sampling.intervalUops
           << ",kmax=" << sampling.kMax
           << ",warmup=" << sampling.warmupIntervals << ")";
    if (fault.recovery.policy != FailPolicy::FailFast
        || fault.recovery.maxRetries > 0
        || fault.recovery.timeoutMs > 0)
        os << " recovery("
           << failPolicyName(fault.recovery.policy)
           << ",retries=" << fault.recovery.maxRetries
           << ",timeout_ms=" << fault.recovery.timeoutMs << ")";
    if (fault.any())
        os << " fault-injection=on";
    if (serve.enabled) {
        os << " serve(store=" << serve.storeDir;
        if (!serve.socketPath.empty())
            os << ",socket=" << serve.socketPath;
        if (serve.maxInFlight)
            os << ",max-inflight=" << serve.maxInFlight;
        if (serve.maxQueue != 1024)
            os << ",max-queue=" << serve.maxQueue;
        if (serve.maxStoreBytes)
            os << ",max-bytes=" << serve.maxStoreBytes;
        if (serve.bypassStore)
            os << ",bypass";
        os << ")";
    }
    if (ckpt.enabled) {
        os << " ckpt(dir=" << ckpt.dir;
        if (ckpt.maxBytes)
            os << ",max-bytes=" << ckpt.maxBytes;
        os << ")";
    }
    if (trace)
        os << " trace=" << resolvedTracePath();
    return os.str();
}

} // namespace bds
