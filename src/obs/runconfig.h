/**
 * @file
 * bds::RunConfig — the single entry point that resolves environment
 * variables (BDS_*) and command-line flags into the options every
 * tool needs: scale, seed, worker threads, sampling knobs, metric
 * set, and the observability knobs (tracing, manifest emission).
 *
 * Resolution order (later wins):
 *   1. struct defaults (tool may pre-seed, e.g. quick scale),
 *   2. applyEnv()  — the BDS_* environment,
 *   3. applyArgs() — recognized --flags, leaving positionals to the
 *      tool.
 *
 * Every numeric knob is parsed strictly: a value that is not a plain
 * non-negative decimal integer is a fatal error, not a silent
 * default. RunConfig deliberately stores plain strings/ints for the
 * knobs interpreted by higher layers (scale name, metric names), so
 * the obs library depends only on bds_common; ScaleProfile::byName()
 * and MetricSet::fromNames() do the final conversion where those
 * types live.
 *
 * Environment:
 *   BDS_SCALE   = quick | standard | full   workload input scale
 *   BDS_SEED    = <uint>                    data-generation seed
 *   BDS_THREADS = <uint>                    0 = all cores, 1 = serial
 *   BDS_MACHINE = <spec>                    machine geometry: preset
 *                                           name and/or key=value
 *                                           overrides (resolved by
 *                                           resolveMachineSpec(),
 *                                           src/uarch/machine.h)
 *   BDS_METRICS = name,name,...             metric subset (empty =
 *                                           full Table II)
 *   BDS_SAMPLE          = 0 | 1             sampled characterization
 *   BDS_SAMPLE_INTERVAL = <uops>            interval size
 *   BDS_SAMPLE_BBV      = <buckets>         BBV hash dimensions
 *   BDS_SAMPLE_KMAX     = <k>               max interval clusters
 *   BDS_SAMPLE_WARMUP   = <intervals>       warm window (0 = all)
 *   BDS_SAMPLE_SEED     = <uint>            interval-clustering seed
 *   BDS_TRACE      = 0 | 1                  JSON-lines tracing
 *   BDS_TRACE_FILE = <path>                 trace sink (implies on)
 *   BDS_MANIFEST   = 0 | 1 | <path>         run-manifest emission
 *   BDS_FAIL_POLICY    = failfast | quarantine   sweep failure policy
 *   BDS_RETRIES        = <n>                retries per workload
 *   BDS_RUN_TIMEOUT_MS = <ms>               watchdog per attempt
 *                                           (0 = off)
 *   BDS_FAULT_THROW    = w1,w2 | *          inject exceptions
 *   BDS_FAULT_STALL    = w1,w2 | *          inject stalls
 *   BDS_FAULT_CORRUPT  = w1,w2 | *          poison extracted metrics
 *   BDS_FAULT_ALLOC    = site,... | *       fail named allocations
 *   BDS_FAULT_STALL_MS = <ms>               injected stall duration
 *   BDS_FAULT_ATTEMPTS = <n>                inject only while the
 *                                           attempt index < n
 *                                           (0 = every attempt); for
 *                                           BDS_FAULT_IO it caps the
 *                                           total number of fires
 *   BDS_FAULT_IO       = site,... | *       fail shared-store I/O
 *                                           sites (store.write,
 *                                           store.rename,
 *                                           store.lease,
 *                                           store.enospc)
 *   BDS_SERVE_SOCKET   = <path>             bds_serve Unix socket
 *   BDS_SERVE_CACHE    = <dir>              result-store directory
 *   BDS_SERVE_MAX_INFLIGHT = <n>            concurrent sweep bound
 *                                           (0 = all cores)
 *   BDS_SERVE_MAX_QUEUE = <n>               admission queue bound;
 *                                           excess requests shed
 *                                           with `err overloaded`
 *   BDS_SERVE_BYPASS   = 0 | 1              skip the result store
 *   BDS_SERVE_LOG      = <path>             binary request log
 *   BDS_STORE_MAX_BYTES = <bytes>           result-store byte budget
 *                                           (0 = unbounded)
 *   BDS_CKPT           = 0 | 1              interval checkpoint/
 *                                           restore
 *   BDS_CKPT_DIR       = <dir>              checkpoint cache
 *                                           directory (implies on)
 *   BDS_CKPT_MAX_BYTES = <bytes>            checkpoint-cache byte
 *                                           budget (0 = unbounded)
 *
 * Flags (each also accepts --flag=value):
 *   --scale S, --seed N, --threads N, --machine SPEC,
 *   --metrics a,b,c, --sampled,
 *   --trace, --no-trace, --trace-file PATH, --manifest PATH,
 *   --no-manifest, --fail-policy P, --retries N, --run-timeout-ms N,
 *   --fault-throw L, --fault-stall L, --fault-corrupt L,
 *   --fault-alloc L, --fault-stall-ms N, --fault-attempts N,
 *   --fault-io L,
 *   --serve-socket PATH, --serve-cache DIR, --serve-max-inflight N,
 *   --serve-max-queue N, --serve-bypass, --serve-log PATH,
 *   --store-max-bytes N,
 *   --ckpt, --no-ckpt, --ckpt-dir DIR, --ckpt-max-bytes N
 */

#ifndef BDS_OBS_RUNCONFIG_H
#define BDS_OBS_RUNCONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/options.h"
#include "common/parallel.h"
#include "fault/options.h"
#include "sample/options.h"
#include "serve/options.h"

namespace bds {

/** Fully resolved run options for one tool invocation. */
struct RunConfig
{
    /** The binary this configuration belongs to. */
    std::string tool = "bds";

    /** Scale profile name: quick, standard or full. */
    std::string scaleName = "standard";

    /** Data-generation seed (BDS_SEED). */
    std::uint64_t seed = 42;

    /**
     * Machine geometry spec (BDS_MACHINE / --machine): a preset name
     * ("default", "westmere", "l3-4m", ...) optionally followed by
     * comma-separated key=value overrides. Stored as a plain string
     * — like scaleName — so bds_obs stays below bds_uarch;
     * resolveMachineSpec() (src/uarch/machine.h) validates and
     * converts it where NodeConfig lives. The default resolves to
     * the Table III simulation machine, keeping every run without
     * the knob bitwise-identical to the pre-DSE tree.
     */
    std::string machineSpec = "default";

    /** Worker-thread knob (BDS_THREADS). */
    ParallelOptions parallel;

    /** Sampled-simulation knobs (BDS_SAMPLE*). */
    SamplingOptions sampling;

    /**
     * Recovery policy and fault-injection spec (BDS_FAIL_POLICY,
     * BDS_RETRIES, BDS_RUN_TIMEOUT_MS, BDS_FAULT_*). All defaults
     * are off, keeping runs bitwise-identical to the pre-fault-layer
     * behaviour unless a knob is set.
     */
    FaultOptions fault;

    /**
     * Serving knobs (BDS_SERVE_*): socket path, result-store
     * directory, in-flight bound, cache bypass, request log. Only
     * bds_serve reads them; serve.enabled marks a daemon config for
     * the manifest. Like SamplingOptions, the struct is a
     * dependency-free header so obs stays at the bottom of the
     * library stack.
     */
    ServeOptions serve;

    /**
     * Interval checkpoint/restore knobs (BDS_CKPT, BDS_CKPT_DIR).
     * Off by default — a run without the knob warms from zero,
     * bitwise-identical to the pre-checkpoint tree. Interpreted by
     * checkpointContextFor() (src/ckpt/context.h) where the cache
     * machinery lives; like the structs above, the options header is
     * dependency-free so bds_obs stays at the bottom of the stack.
     */
    CkptOptions ckpt;

    /**
     * Metric subset by canonical schema name; empty means the full
     * Table II set. Validated against the schema by
     * MetricSet::fromNames() at use time.
     */
    std::vector<std::string> metricNames;

    /** Emit JSON-lines trace events. */
    bool trace = false;

    /** Trace sink path; empty = "<tool>.trace.jsonl". */
    std::string tracePath;

    /** Write a RunManifest at the end of the run. */
    bool manifest = true;

    /** Manifest path; empty = "<tool>.manifest.json". */
    std::string manifestPath;

    /** The raw command line, captured by resolve()/applyArgs(). */
    std::vector<std::string> argv;

    /**
     * Env-then-args resolution for tools without positional
     * arguments: any argument applyArgs() does not consume is fatal.
     * Passing argc = 0 skips argument handling entirely.
     */
    static RunConfig resolve(const std::string &tool, int argc = 0,
                             char **argv = nullptr);

    /** Overlay the BDS_* environment onto this config. */
    void applyEnv();

    /**
     * Consume every recognized --flag from `args` and return the
     * leftovers (positionals and tool-specific arguments) in order.
     * Unknown flags are left for the tool to reject or interpret.
     */
    std::vector<std::string>
    applyArgs(const std::vector<std::string> &args);

    /** The trace sink path with the tool default applied. */
    std::string resolvedTracePath() const;

    /** The manifest path with the tool default applied. */
    std::string resolvedManifestPath() const;

    /** One-line human summary ("scale=quick seed=42 threads=8 ..."). */
    std::string describe() const;
};

namespace detail {

/**
 * Strict non-negative decimal parse shared by env and flag handling:
 * signs, whitespace, trailing junk or an empty value are fatal — a
 * typo in a knob must never silently become 0.
 */
std::uint64_t parseUint(const std::string &what,
                        const std::string &value);

} // namespace detail

} // namespace bds

#endif // BDS_OBS_RUNCONFIG_H
