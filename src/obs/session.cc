#include "obs/session.h"

#include <ctime>
#include <fstream>
#include <iostream>

#include "common/log.h"
#include "fault/inject.h"
#include "obs/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bds {

namespace {

/** Current wall-clock time as ISO-8601 UTC. */
std::string
isoNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/** Peak resident set size in KB, 0 when the platform hides it. */
long
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return ru.ru_maxrss / 1024; // bytes on Darwin
#else
        return ru.ru_maxrss; // kilobytes on Linux
#endif
    }
#endif
    return 0;
}

} // namespace

Session::Session(RunConfig cfg)
    : cfg_(std::move(cfg)), start_(std::chrono::steady_clock::now())
{
    if (cfg_.trace) {
        Tracer::global().enable(cfg_.resolvedTracePath());
        Tracer::global().emitMeta(cfg_.tool, bdsVersion());
        std::cerr << "[obs] " << cfg_.tool << ": tracing to "
                  << cfg_.resolvedTracePath() << '\n';
    }
    if (cfg_.fault.any()) {
        FaultInjector::global().arm(cfg_.fault);
        armedInjector_ = true;
        std::cerr << "[obs] " << cfg_.tool
                  << ": fault injection armed\n";
    }
}

Session::~Session()
{
    try {
        finish();
    } catch (const std::exception &e) {
        // Destructor context (possibly unwinding): report, don't
        // rethrow.
        std::cerr << "[obs] manifest write failed: " << e.what()
                  << '\n';
    }
}

void
Session::recordStage(const std::string &name, double seconds)
{
    stages_.push_back(StageTime{name, seconds});
}

void
Session::noteArtifact(const std::string &path)
{
    artifacts_.push_back(path);
}

void
Session::recordSweep(const SweepReport &report)
{
    std::vector<RunRecord> failures = report.failures();
    failures_.insert(failures_.end(), failures.begin(),
                     failures.end());
    std::vector<std::string> dropped = report.quarantinedNames();
    quarantined_.insert(quarantined_.end(), dropped.begin(),
                        dropped.end());
    if (!dropped.empty()) {
        std::cerr << "[obs] " << cfg_.tool << ": quarantined "
                  << dropped.size() << " workload(s):";
        for (const std::string &name : dropped)
            std::cerr << ' ' << name;
        std::cerr << '\n';
    }
}

RunManifest
Session::buildManifest() const
{
    RunManifest m;
    m.tool = cfg_.tool;
    m.version = bdsVersion();
    m.created = isoNow();
    m.argv = cfg_.argv;
    m.config = cfg_;
    m.stages = stages_;
    m.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    m.peakRssKb = peakRssKb();
    m.artifacts = artifacts_;
    m.failures = failures_;
    m.quarantined = quarantined_;
    return m;
}

void
Session::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (armedInjector_)
        FaultInjector::global().disarm();
    if (cfg_.trace) {
        Tracer::global().writeSummary(std::cerr);
        Tracer::global().disable();
    }
    if (cfg_.manifest) {
        RunManifest m = buildManifest();
        const std::string path = cfg_.resolvedManifestPath();
        std::ofstream os(path);
        if (!os)
            BDS_FATAL("cannot write manifest '" << path << "'");
        writeRunManifest(os, m);
        std::cerr << "[obs] " << cfg_.tool << ": wrote " << path
                  << '\n';
    }
}

StageTimer::StageTimer(Session &session, std::string name)
    : session_(session), name_(std::move(name)),
      start_(std::chrono::steady_clock::now())
{
}

StageTimer::~StageTimer()
{
    session_.recordStage(
        name_, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count());
}

} // namespace bds
