/**
 * @file
 * Session: the RAII lifecycle of one observed run.
 *
 * Constructed from a resolved RunConfig, a Session enables the
 * global tracer when requested, accumulates stage wall-clocks and
 * artifact notes as the tool works, and on finish() (or destruction)
 * writes the RunManifest next to the run's artifacts and prints the
 * tracer's end-of-run summary to stderr.
 *
 * All Session output is diagnostic and goes to stderr or to files —
 * never to stdout, so piping a report or CSV stays clean.
 */

#ifndef BDS_OBS_SESSION_H
#define BDS_OBS_SESSION_H

#include <chrono>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/runconfig.h"

namespace bds {

/** One observed run of a tool. */
class Session
{
  public:
    /**
     * Start the run: snapshot the config, start the wall clock, and
     * enable tracing per cfg.trace. Only one Session may be tracing
     * at a time (the tracer is process-global).
     */
    explicit Session(RunConfig cfg);

    /** finish() if the tool did not, swallowing write errors. */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** The resolved configuration this run executes under. */
    const RunConfig &config() const { return cfg_; }

    /** Record a completed stage's wall-clock. */
    void recordStage(const std::string &name, double seconds);

    /** Note an artifact path this run wrote (for the manifest). */
    void noteArtifact(const std::string &path);

    /**
     * Record a sweep's failure outcome: failures() land in the
     * manifest's failures array, quarantinedNames() in its
     * quarantined list, and a one-line summary goes to stderr when
     * anything was dropped. A clean report is a no-op.
     */
    void recordSweep(const SweepReport &report);

    /**
     * End the run: write the manifest (unless disabled), print the
     * trace summary to stderr and disable the tracer. Idempotent.
     */
    void finish();

    /** The manifest as it would be written now (tests, inspection). */
    RunManifest buildManifest() const;

  private:
    RunConfig cfg_;
    std::chrono::steady_clock::time_point start_;
    std::vector<StageTime> stages_;
    std::vector<std::string> artifacts_;
    std::vector<RunRecord> failures_;
    std::vector<std::string> quarantined_;
    bool armedInjector_ = false;
    bool finished_ = false;
};

/**
 * RAII stage clock: times the enclosing scope and records it on the
 * session at scope exit.
 */
class StageTimer
{
  public:
    StageTimer(Session &session, std::string name);
    ~StageTimer();

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    Session &session_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace bds

#endif // BDS_OBS_SESSION_H
