#include "obs/trace.h"

#include <sstream>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "obs/json.h"

namespace bds {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
} // namespace detail

namespace {

/**
 * Per-thread open-span stack. Spans strictly nest within a thread
 * (they are RAII scopes), so the parent of a new span is whatever
 * this thread opened last. Pool workers each get their own stack, so
 * a span opened inside a worker task parents to the task's enclosing
 * span, not to some other worker's.
 */
thread_local std::vector<std::uint64_t> t_span_stack;

/** Monotonically assigned small ids for event attribution. */
std::atomic<unsigned> g_next_thread_tag{0};

} // namespace

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

unsigned
Tracer::threadTag()
{
    thread_local unsigned tag =
        g_next_thread_tag.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

void
Tracer::enable(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path);
    if (!*file)
        BDS_FATAL("cannot open trace file '" << path << "'");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sink_)
            BDS_FATAL("tracer is already enabled");
        file_ = std::move(file);
        sink_ = file_.get();
        path_ = path;
        t0_ = std::chrono::steady_clock::now();
        spans_.clear();
        counters_.clear();
        gauges_.clear();
    }
    detail::g_trace_enabled.store(true, std::memory_order_release);
}

void
Tracer::enableStream(std::ostream *os)
{
    if (!os)
        BDS_FATAL("tracer needs a sink stream");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sink_)
            BDS_FATAL("tracer is already enabled");
        sink_ = os;
        path_.clear();
        t0_ = std::chrono::steady_clock::now();
        spans_.clear();
        counters_.clear();
        gauges_.clear();
    }
    detail::g_trace_enabled.store(true, std::memory_order_release);
}

void
Tracer::disable()
{
    detail::g_trace_enabled.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_)
        file_->flush();
    file_.reset();
    sink_ = nullptr;
    path_.clear();
}

std::uint64_t
Tracer::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
}

void
Tracer::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_)
        *sink_ << line << '\n';
}

void
Tracer::emitMeta(const std::string &tool, const std::string &version)
{
    if (!traceEnabled())
        return;
    std::ostringstream os;
    os << "{\"ev\":\"M\",\"tool\":\"" << jsonEscape(tool)
       << "\",\"version\":\"" << jsonEscape(version)
       << "\",\"t_us\":" << nowUs() << "}";
    writeLine(os.str());
}

std::uint64_t
Tracer::beginSpan(const char *name, const std::string &attrJson,
                 std::uint64_t *t0_us)
{
    std::uint64_t id = nextId_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t parent =
        t_span_stack.empty() ? 0 : t_span_stack.back();
    *t0_us = nowUs();
    std::ostringstream os;
    os << "{\"ev\":\"B\",\"id\":" << id << ",\"parent\":" << parent
       << ",\"tid\":" << threadTag() << ",\"t_us\":" << *t0_us
       << ",\"name\":\"" << jsonEscape(name) << '"';
    if (!attrJson.empty())
        os << ",\"attrs\":" << attrJson;
    os << "}";
    writeLine(os.str());
    t_span_stack.push_back(id);
    return id;
}

void
Tracer::endSpan(std::uint64_t id, const char *name,
                std::uint64_t t0_us)
{
    // The stack top must be this span: TraceSpan is a strict RAII
    // scope, so an imbalance means the instrumentation has a bug.
    if (t_span_stack.empty() || t_span_stack.back() != id)
        BDS_PANIC("trace span imbalance closing '" << name << "'");
    t_span_stack.pop_back();

    std::uint64_t now = nowUs();
    std::uint64_t dur = now >= t0_us ? now - t0_us : 0;
    std::ostringstream os;
    os << "{\"ev\":\"E\",\"id\":" << id << ",\"tid\":" << threadTag()
       << ",\"t_us\":" << now << ",\"name\":\"" << jsonEscape(name)
       << "\",\"dur_us\":" << dur << "}";

    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_)
        *sink_ << os.str() << '\n';
    SpanStats &st = spans_[name];
    ++st.count;
    st.totalUs += dur;
}

void
Tracer::counter(const char *name, std::uint64_t delta)
{
    if (!traceEnabled())
        return;
    std::ostringstream os;
    os << "{\"ev\":\"C\",\"tid\":" << threadTag()
       << ",\"t_us\":" << nowUs() << ",\"name\":\"" << jsonEscape(name)
       << "\",\"delta\":" << delta << "}";
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_)
        *sink_ << os.str() << '\n';
    counters_[name] += delta;
}

void
Tracer::gauge(const char *name, double value)
{
    if (!traceEnabled())
        return;
    std::ostringstream os;
    os << "{\"ev\":\"G\",\"tid\":" << threadTag()
       << ",\"t_us\":" << nowUs() << ",\"name\":\"" << jsonEscape(name)
       << "\",\"value\":" << jsonNumber(value) << "}";
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_)
        *sink_ << os.str() << '\n';
    gauges_[name] = value;
}

std::map<std::string, SpanStats>
Tracer::spanSummary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::map<std::string, std::uint64_t>
Tracer::counterSummary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::map<std::string, double>
Tracer::gaugeSummary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_;
}

void
Tracer::writeSummary(std::ostream &os) const
{
    auto spans = spanSummary();
    auto counters = counterSummary();
    auto gauges = gaugeSummary();

    os << "trace summary\n";
    if (!spans.empty()) {
        TextTable t({"span", "count", "total"});
        for (const auto &[name, st] : spans)
            t.addRow({name, std::to_string(st.count),
                      fmtDouble(static_cast<double>(st.totalUs) / 1e6,
                                3)
                          + " s"});
        t.print(os);
    }
    if (!counters.empty()) {
        TextTable t({"counter", "total"});
        for (const auto &[name, total] : counters)
            t.addRow({name, std::to_string(total)});
        t.print(os);
    }
    if (!gauges.empty()) {
        TextTable t({"gauge", "last value"});
        for (const auto &[name, value] : gauges)
            t.addRow({name, fmtDouble(value, 4)});
        t.print(os);
    }
}

TraceSpan::TraceSpan(const char *name)
{
    if (!traceEnabled())
        return;
    id_ = Tracer::global().beginSpan(name, std::string(), &t0Us_);
    name_ = name;
    active_ = true;
}

TraceSpan::TraceSpan(const char *name, const char *key,
                     const std::string &value)
{
    if (!traceEnabled())
        return;
    id_ = Tracer::global().beginSpan(name,
                                     "{\"" + jsonEscape(key) + "\":\""
                                         + jsonEscape(value) + "\"}",
                                     &t0Us_);
    name_ = name;
    active_ = true;
}

TraceSpan::TraceSpan(const char *name, const char *key,
                     std::uint64_t value)
{
    if (!traceEnabled())
        return;
    id_ = Tracer::global().beginSpan(
        name,
        "{\"" + jsonEscape(key) + "\":" + std::to_string(value) + "}",
        &t0Us_);
    name_ = name;
    active_ = true;
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    Tracer::global().endSpan(id_, name_, t0Us_);
}

} // namespace bds
