/**
 * @file
 * Run-level tracing: hierarchical spans plus named counters and
 * gauges, emitted as JSON-lines events and aggregated into an
 * end-of-run summary.
 *
 * The instrumented layers (runPipeline stages, per-workload
 * simulation, the sampled-path stages, each K of the BIC sweep) open
 * a TraceSpan around their work. When tracing is disabled — the
 * default — every hook is a null sink: one relaxed atomic load and
 * an early return, no clock reads, no allocation, no locking, and no
 * effect whatsoever on computed results. The determinism contract of
 * docs/THREADING.md therefore holds with tracing on or off: the
 * tracer only observes.
 *
 * Span nesting is tracked per thread (a thread-local span stack), so
 * spans opened inside thread-pool workers parent correctly to the
 * enclosing span of *that worker's* current task, and events from
 * different workers interleave in the output without corrupting each
 * other (one mutex-guarded line write per event).
 *
 * Event schema (one JSON object per line, docs/OBSERVABILITY.md):
 *   {"ev":"M", ...}                               run metadata
 *   {"ev":"B","id":N,"parent":N,"tid":N,"t_us":N,
 *    "name":"...","attrs":{...}}                  span begin
 *   {"ev":"E","id":N,"tid":N,"t_us":N,
 *    "name":"...","dur_us":N}                     span end
 *   {"ev":"C","tid":N,"t_us":N,"name":"...",
 *    "delta":N}                                   counter increment
 *   {"ev":"G","tid":N,"t_us":N,"name":"...",
 *    "value":X}                                   gauge sample
 */

#ifndef BDS_OBS_TRACE_H
#define BDS_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace bds {

namespace detail {
/** Global trace switch; read inline on every hook. */
extern std::atomic<bool> g_trace_enabled;
} // namespace detail

/** True when the global tracer is recording. */
inline bool
traceEnabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/** Aggregated statistics of one span name. */
struct SpanStats
{
    std::uint64_t count = 0;   ///< completed spans
    std::uint64_t totalUs = 0; ///< summed durations
};

/**
 * The process-global tracer. All mutation goes through enable() /
 * disable() (normally driven by a Session); the instrumentation
 * hooks are TraceSpan, counter() and gauge().
 */
class Tracer
{
  public:
    /** The singleton instance. */
    static Tracer &global();

    /**
     * Start recording to a JSON-lines file at `path`. Fatal when the
     * file cannot be opened or tracing is already enabled.
     */
    void enable(const std::string &path);

    /**
     * Start recording to a caller-owned stream (tests). The stream
     * must outlive the enabled period.
     */
    void enableStream(std::ostream *os);

    /** Stop recording and close/flush the sink. Idempotent. */
    void disable();

    /** The sink path of the current enable(), empty for streams. */
    const std::string &sinkPath() const { return path_; }

    /** Emit the run-metadata event ("ev":"M"). */
    void emitMeta(const std::string &tool, const std::string &version);

    /** Add `delta` to the named counter (no-op when disabled). */
    void counter(const char *name, std::uint64_t delta);

    /** Record a gauge sample (no-op when disabled). */
    void gauge(const char *name, double value);

    /** Per-name span aggregates collected since enable(). */
    std::map<std::string, SpanStats> spanSummary() const;

    /** Counter totals collected since enable(). */
    std::map<std::string, std::uint64_t> counterSummary() const;

    /** Last-seen gauge values collected since enable(). */
    std::map<std::string, double> gaugeSummary() const;

    /**
     * Human-readable end-of-run summary: one aligned row per span
     * name (count, total wall-clock) plus counter totals and gauges.
     */
    void writeSummary(std::ostream &os) const;

  private:
    friend class TraceSpan;

    Tracer() = default;

    /**
     * Begin a span; returns its id and stores the timestamp written
     * into the begin event in *t0_us, so the closing event's
     * duration agrees exactly with the emitted begin/end pair.
     * attrJson may be empty.
     */
    std::uint64_t beginSpan(const char *name,
                            const std::string &attrJson,
                            std::uint64_t *t0_us);

    /** End the span `id` opened with `name` at begin-time `t0_us`. */
    void endSpan(std::uint64_t id, const char *name,
                 std::uint64_t t0_us);

    /** Microseconds since enable(). */
    std::uint64_t nowUs() const;

    /** Small per-thread id for event attribution. */
    static unsigned threadTag();

    /** Serialize one event line to the sink. */
    void writeLine(const std::string &line);

    mutable std::mutex mutex_;
    std::ostream *sink_ = nullptr;
    std::unique_ptr<std::ofstream> file_;
    std::string path_;
    std::chrono::steady_clock::time_point t0_;
    std::atomic<std::uint64_t> nextId_{1};
    std::map<std::string, SpanStats> spans_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

/**
 * RAII span: opens on construction, closes on destruction. When
 * tracing is disabled the constructor is one atomic load and the
 * destructor one branch.
 *
 * Span names must be string literals (they are stored as pointers
 * and used as summary keys).
 */
class TraceSpan
{
  public:
    /** Open an attribute-less span. */
    explicit TraceSpan(const char *name);

    /** Open a span with one string attribute. */
    TraceSpan(const char *name, const char *key,
              const std::string &value);

    /** Open a span with one integer attribute. */
    TraceSpan(const char *name, const char *key, std::uint64_t value);

    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool active_ = false;
    std::uint64_t id_ = 0;
    std::uint64_t t0Us_ = 0;
    const char *name_ = nullptr;
};

} // namespace bds

#endif // BDS_OBS_TRACE_H
