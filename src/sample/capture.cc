#include "sample/capture.h"

#include <cmath>
#include <limits>

#include "fault/recover.h"
#include "obs/trace.h"
#include "sample/interval.h"
#include "uarch/system.h"

namespace bds {

namespace {

/**
 * Per-(workload, node) seed for the interval clustering sweep —
 * derived from fixed identities only, so sampled selection never
 * depends on execution order or thread count.
 */
std::uint64_t
pickerSeed(const SamplingOptions &opts, const WorkloadId &id,
           unsigned node)
{
    return opts.seed + 1000 * static_cast<std::uint64_t>(id.alg)
        + (id.stack == StackKind::Spark ? 500000ULL : 0ULL)
        + 7919ULL * static_cast<std::uint64_t>(node);
}

} // namespace

WorkloadCapture
captureWorkload(const WorkloadRunner &runner,
                const SamplingOptions &opts, const WorkloadId &id,
                unsigned node)
{
    if (opts.intervalUops == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sampling interval must be at least one uop");
    if (opts.bbvDims == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sampling BBV needs at least one bucket");

    WorkloadCapture cap;
    cap.id = id;
    cap.node = node;
    cap.numCores = runner.config().numCores;

    // 1. Record: drive the stack engine into a recording-only target
    //    — the op stream of a detailed run at profiling cost.
    RecordingTarget target(cap.numCores);
    {
        TraceSpan stage("sample.record");
        // Attempt 0 records over the plain node seed (bitwise equal
        // to the pre-recovery path); retries record over the same
        // attempt-salted seed the full path would use.
        const AttemptContext *ctx = currentAttempt();
        runner.execute(id, target,
                       runner.attemptDataSeed(
                           id, node, ctx ? ctx->attempt : 0));
    }
    cap.trace = target.trace();

    // 2. Profile: split into intervals with BBV/mix features.
    IntervalProfiler profiler(opts.intervalUops, opts.bbvDims);
    {
        TraceSpan stage("sample.profile");
        cap.trace.replay(profiler);
        profiler.finish();
    }
    cap.numIntervals = profiler.numIntervals();

    // 3. Pick: cluster intervals, choose weighted representatives.
    RepresentativePicker picker(opts);
    {
        TraceSpan stage("sample.pick");
        cap.picked = picker.pick(profiler.featureMatrix(),
                                 profiler.intervals(),
                                 pickerSeed(opts, id, node));
    }
    return cap;
}

SampledWorkloadResult
replayCapture(const WorkloadCapture &cap, const NodeConfig &machine,
              const SamplingOptions &opts,
              const CheckpointContext *ckpt)
{
    // A trace records the stack engines' work sharding across cores;
    // replaying it on a machine with a different core count would
    // attribute ops to cores that machine does not have (or leave
    // cores idle that its scheduler would have used). Geometry may
    // vary freely; the core count may not.
    if (machine.numCores != cap.numCores)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "capture of " << cap.id.name() << " was recorded on "
                      << cap.numCores
                      << " cores and cannot replay on "
                      << machine.numCores
                      << " (re-capture for this machine)");

    // 4. Replay: functional warming + detailed representatives.
    SystemModel sys(machine);
    SampledReplayer replayer(sys, opts.intervalUops,
                             opts.warmupIntervals);
    // Checkpoints are keyed to the op stream; a retry attempt records
    // over an attempt-salted seed, so only attempt 0 may touch them.
    const AttemptContext *attempt = currentAttempt();
    if (ckpt && ckpt->enabled()
        && (!attempt || attempt->attempt == 0))
        replayer.setCheckpoints(
            ckpt->cache, ckpt->keyFor(cap.id.name(), cap.node));
    SampledReplayStats stats;
    std::vector<PmcCounters> snaps;
    {
        TraceSpan stage("sample.replay");
        snaps = replayer.replay(cap.trace, cap.picked, &stats);
    }
    Tracer::global().counter("sample.total_ops", stats.totalOps);
    Tracer::global().counter("sample.detail_ops", stats.detailOps);

    // 5. Estimate: weighted counter reconstruction.
    SampleEstimate est;
    {
        TraceSpan stage("sample.estimate");
        est = estimateMetrics(snaps, cap.picked);
    }

    SampledWorkloadResult res;
    res.id = cap.id;
    res.counters = est.counters;
    res.metrics = est.metrics;
    res.stats = stats;
    res.numIntervals = cap.numIntervals;
    res.k = cap.picked.k;
    res.numReps = cap.picked.reps.size();
    if (FaultInjector::global().shouldCorrupt(cap.id.name()))
        res.metrics[0] = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        if (!std::isfinite(res.metrics[i]))
            BDS_RAISE(ErrorCode::DegenerateData,
                      "sampled workload " << cap.id.name()
                          << " estimated a non-finite metric");
    return res;
}

} // namespace bds
