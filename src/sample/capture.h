/**
 * @file
 * The capture/replay seam of the sampled path.
 *
 * The first three stages of sampled characterization — record the op
 * stream, profile it into intervals, pick weighted representatives —
 * depend only on the workload, its data seed, the sampling knobs and
 * the recorded core count. They never touch cache or predictor
 * state. The last two stages — warm + detailed replay, counter
 * estimation — are where the machine geometry matters. Splitting the
 * pipeline at that boundary lets a design-space-exploration sweep
 * (bench/dse_sweep.cc) capture each workload once and replay the one
 * capture against every same-core-count geometry, exactly the
 * trace-driven methodology of the paper's tech-report sequel.
 *
 * SampledCharacterizer::runOnNode() is implemented on this seam, so
 * the single-machine path and the sweep path cannot drift apart: a
 * capture replayed on the capturing runner's own machine is bitwise
 * identical to the monolithic pipeline it replaced.
 */

#ifndef BDS_SAMPLE_CAPTURE_H
#define BDS_SAMPLE_CAPTURE_H

#include "ckpt/context.h"
#include "sample/characterizer.h"
#include "sample/options.h"
#include "sample/picker.h"
#include "trace/recorder.h"
#include "workloads/registry.h"

namespace bds {

/**
 * One workload's machine-independent sampling state: the recorded op
 * stream plus the interval selection made over it. Valid for replay
 * on any geometry with the same core count (the stack engines shard
 * work across cores at record time, so the stream itself bakes the
 * core count in — replaying a 4-core trace on a 2-core machine would
 * not be that machine's execution).
 */
struct WorkloadCapture
{
    WorkloadId id{};          ///< which workload was captured
    unsigned node = 0;        ///< cluster-node shard index
    unsigned numCores = 0;    ///< core count the trace was recorded on
    TraceRecorder trace;      ///< the full op/DMA stream
    PickResult picked;        ///< representative intervals + weights
    std::size_t numIntervals = 0; ///< profiled intervals
};

/**
 * Record, profile and pick for one (workload, node) shard: stages
 * 1-3 of the sampled pipeline. Seeds derive from (opts.seed, id,
 * node) and the current retry attempt only, so captures are
 * deterministic at any thread count. Raises Error(InvalidConfig) on
 * degenerate sampling knobs.
 */
WorkloadCapture captureWorkload(const WorkloadRunner &runner,
                                const SamplingOptions &opts,
                                const WorkloadId &id, unsigned node);

/**
 * Warm, replay and estimate a capture on `machine`: stages 4-5 of
 * the sampled pipeline, including the fault layer's metric-
 * corruption injection point and the non-finite estimate check.
 * Raises Error(InvalidConfig) when `machine` has a different core
 * count than the capture was recorded on.
 *
 * `ckpt` (optional) attaches the run's checkpoint context: the
 * replay restores representative-entry snapshots when present and
 * writes them when absent (docs/CHECKPOINT.md). Ignored on retry
 * attempts — attempt-salted record seeds change the op stream, so a
 * retry's intervals must never alias attempt 0's checkpoints.
 */
SampledWorkloadResult replayCapture(const WorkloadCapture &cap,
                                    const NodeConfig &machine,
                                    const SamplingOptions &opts,
                                    const CheckpointContext *ckpt
                                    = nullptr);

} // namespace bds

#endif // BDS_SAMPLE_CAPTURE_H
