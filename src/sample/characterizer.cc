#include "sample/characterizer.h"

#include <chrono>

#include "common/log.h"
#include "fault/recover.h"
#include "obs/trace.h"
#include "sample/capture.h"

namespace bds {

SampledCharacterizer::SampledCharacterizer(const WorkloadRunner &runner,
                                           SamplingOptions opts)
    : runner_(runner), opts_(opts)
{
    if (opts_.intervalUops == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sampling interval must be at least one uop");
    if (opts_.bbvDims == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sampling BBV needs at least one bucket");
}

SampledWorkloadResult
SampledCharacterizer::runOnNode(const WorkloadId &id,
                                unsigned node) const
{
    // The capture/replay seam (sample/capture.h): stages 1-3 are
    // machine-independent, stages 4-5 run on the runner's machine.
    // Replaying a fresh capture on the capturing machine is the
    // monolithic pipeline this method used to inline.
    const WorkloadCapture cap =
        captureWorkload(runner_, opts_, id, node);
    return replayCapture(cap, runner_.config(), opts_, &ckpt_);
}

SampledWorkloadResult
SampledCharacterizer::run(const WorkloadId &id) const
{
    TraceSpan span("workload.sample", "workload", id.name());
    auto start = std::chrono::steady_clock::now();
    FaultInjector::global().maybeThrow(id.name());
    FaultInjector::global().maybeStall(id.name());
    unsigned nodes = runner_.clusterNodes();

    SampledWorkloadResult total = runOnNode(id, 0);
    if (nodes > 1) {
        // Fixed node order, as in the full path's mean reduction.
        MetricVector mean = total.metrics;
        for (unsigned node = 1; node < nodes; ++node) {
            SampledWorkloadResult per = runOnNode(id, node);
            total.counters += per.counters;
            total.stats.totalOps += per.stats.totalOps;
            total.stats.detailOps += per.stats.detailOps;
            total.stats.warmOps += per.stats.warmOps;
            total.stats.skippedOps += per.stats.skippedOps;
            total.stats.ckptRestores += per.stats.ckptRestores;
            total.stats.ckptWrites += per.stats.ckptWrites;
            total.numIntervals += per.numIntervals;
            total.k += per.k;
            total.numReps += per.numReps;
            for (std::size_t i = 0; i < kNumMetrics; ++i)
                mean[i] += per.metrics[i];
        }
        for (double &v : mean)
            v /= static_cast<double>(nodes);
        total.metrics = mean;
    }
    total.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start).count();
    return total;
}

Matrix
SampledCharacterizer::runAll(
    std::vector<SampledWorkloadResult> *details,
    SweepReport *report) const
{
    TraceSpan span("sampler.runAll");
    auto ids = allWorkloads();

    // One pool task per workload into a preallocated slot; each task
    // derives every seed from the workload identity, so the matrix is
    // bitwise identical for every thread count. guardedRun isolates
    // failures per slot; policy is settled after the loop, in
    // allWorkloads() order, exactly as in WorkloadRunner::runAll.
    const RecoveryOptions &rec = runner_.recovery();
    unsigned threads = runner_.parallel().resolvedFor(ids.size());
    std::vector<SampledWorkloadResult> slots(ids.size());
    std::vector<RunRecord> records(ids.size());
    parallelFor(ids.size(), threads, [&](std::size_t i) {
        inform("sampling workload " + ids[i].name());
        records[i] = guardedRun(
            ids[i].name(), rec, [&](const AttemptContext &) {
                slots[i] = run(ids[i]);
            });
    });

    SweepReport rep;
    rep.policy = rec.policy;
    rep.records = std::move(records);
    if (rec.policy == FailPolicy::FailFast) {
        for (const RunRecord &r : rep.records)
            if (!runStatusOk(r.status))
                throw Error(r.code, r.message);
    } else {
        for (RunRecord &r : rep.records)
            if (!runStatusOk(r.status))
                r.status = RunStatus::Quarantined;
    }
    for (std::size_t i = 0; i < rep.records.size(); ++i)
        if (runStatusOk(rep.records[i].status))
            rep.survivors.push_back(i);

    Matrix m(rep.survivors.size(), kNumMetrics);
    for (std::size_t row = 0; row < rep.survivors.size(); ++row)
        for (std::size_t j = 0; j < kNumMetrics; ++j)
            m(row, j) = slots[rep.survivors[row]].metrics[j];

    if (details)
        for (std::size_t i : rep.survivors)
            details->push_back(std::move(slots[i]));
    if (report)
        *report = std::move(rep);
    return m;
}

} // namespace bds
