#include "sample/characterizer.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "fault/recover.h"
#include "obs/trace.h"
#include "sample/interval.h"
#include "sample/picker.h"
#include "uarch/system.h"

namespace bds {

namespace {

/**
 * Per-(workload, node) seed for the interval clustering sweep —
 * derived from fixed identities only, so sampled selection never
 * depends on execution order or thread count.
 */
std::uint64_t
pickerSeed(const SamplingOptions &opts, const WorkloadId &id,
           unsigned node)
{
    return opts.seed + 1000 * static_cast<std::uint64_t>(id.alg)
        + (id.stack == StackKind::Spark ? 500000ULL : 0ULL)
        + 7919ULL * static_cast<std::uint64_t>(node);
}

} // namespace

SampledCharacterizer::SampledCharacterizer(const WorkloadRunner &runner,
                                           SamplingOptions opts)
    : runner_(runner), opts_(opts)
{
    if (opts_.intervalUops == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sampling interval must be at least one uop");
    if (opts_.bbvDims == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sampling BBV needs at least one bucket");
}

SampledWorkloadResult
SampledCharacterizer::runOnNode(const WorkloadId &id,
                                unsigned node) const
{
    // 1. Record: drive the stack engine into a recording-only target
    //    — the op stream of a detailed run at profiling cost.
    RecordingTarget target(runner_.config().numCores);
    {
        TraceSpan stage("sample.record");
        // Attempt 0 records over the plain node seed (bitwise equal
        // to the pre-recovery path); retries record over the same
        // attempt-salted seed the full path would use.
        const AttemptContext *ctx = currentAttempt();
        runner_.execute(id, target,
                        runner_.attemptDataSeed(
                            id, node, ctx ? ctx->attempt : 0));
    }
    const TraceRecorder &trace = target.trace();

    // 2. Profile: split into intervals with BBV/mix features.
    IntervalProfiler profiler(opts_.intervalUops, opts_.bbvDims);
    {
        TraceSpan stage("sample.profile");
        trace.replay(profiler);
        profiler.finish();
    }

    // 3. Pick: cluster intervals, choose weighted representatives.
    RepresentativePicker picker(opts_);
    PickResult picked;
    {
        TraceSpan stage("sample.pick");
        picked = picker.pick(profiler.featureMatrix(),
                             profiler.intervals(),
                             pickerSeed(opts_, id, node));
    }

    // 4. Replay: functional warming + detailed representatives.
    SystemModel sys(runner_.config());
    SampledReplayer replayer(sys, opts_.intervalUops,
                             opts_.warmupIntervals);
    SampledReplayStats stats;
    std::vector<PmcCounters> snaps;
    {
        TraceSpan stage("sample.replay");
        snaps = replayer.replay(trace, picked, &stats);
    }
    Tracer::global().counter("sample.total_ops", stats.totalOps);
    Tracer::global().counter("sample.detail_ops", stats.detailOps);

    // 5. Estimate: weighted counter reconstruction.
    SampleEstimate est;
    {
        TraceSpan stage("sample.estimate");
        est = estimateMetrics(snaps, picked);
    }

    SampledWorkloadResult res;
    res.id = id;
    res.counters = est.counters;
    res.metrics = est.metrics;
    res.stats = stats;
    res.numIntervals = profiler.numIntervals();
    res.k = picked.k;
    res.numReps = picked.reps.size();
    if (FaultInjector::global().shouldCorrupt(id.name()))
        res.metrics[0] = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        if (!std::isfinite(res.metrics[i]))
            BDS_RAISE(ErrorCode::DegenerateData,
                      "sampled workload " << id.name()
                          << " estimated a non-finite metric");
    return res;
}

SampledWorkloadResult
SampledCharacterizer::run(const WorkloadId &id) const
{
    TraceSpan span("workload.sample", "workload", id.name());
    auto start = std::chrono::steady_clock::now();
    FaultInjector::global().maybeThrow(id.name());
    FaultInjector::global().maybeStall(id.name());
    unsigned nodes = runner_.clusterNodes();

    SampledWorkloadResult total = runOnNode(id, 0);
    if (nodes > 1) {
        // Fixed node order, as in the full path's mean reduction.
        MetricVector mean = total.metrics;
        for (unsigned node = 1; node < nodes; ++node) {
            SampledWorkloadResult per = runOnNode(id, node);
            total.counters += per.counters;
            total.stats.totalOps += per.stats.totalOps;
            total.stats.detailOps += per.stats.detailOps;
            total.stats.warmOps += per.stats.warmOps;
            total.stats.skippedOps += per.stats.skippedOps;
            total.numIntervals += per.numIntervals;
            total.k += per.k;
            total.numReps += per.numReps;
            for (std::size_t i = 0; i < kNumMetrics; ++i)
                mean[i] += per.metrics[i];
        }
        for (double &v : mean)
            v /= static_cast<double>(nodes);
        total.metrics = mean;
    }
    total.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start).count();
    return total;
}

Matrix
SampledCharacterizer::runAll(
    std::vector<SampledWorkloadResult> *details,
    SweepReport *report) const
{
    TraceSpan span("sampler.runAll");
    auto ids = allWorkloads();

    // One pool task per workload into a preallocated slot; each task
    // derives every seed from the workload identity, so the matrix is
    // bitwise identical for every thread count. guardedRun isolates
    // failures per slot; policy is settled after the loop, in
    // allWorkloads() order, exactly as in WorkloadRunner::runAll.
    const RecoveryOptions &rec = runner_.recovery();
    unsigned threads = runner_.parallel().resolvedFor(ids.size());
    std::vector<SampledWorkloadResult> slots(ids.size());
    std::vector<RunRecord> records(ids.size());
    parallelFor(ids.size(), threads, [&](std::size_t i) {
        inform("sampling workload " + ids[i].name());
        records[i] = guardedRun(
            ids[i].name(), rec, [&](const AttemptContext &) {
                slots[i] = run(ids[i]);
            });
    });

    SweepReport rep;
    rep.policy = rec.policy;
    rep.records = std::move(records);
    if (rec.policy == FailPolicy::FailFast) {
        for (const RunRecord &r : rep.records)
            if (!runStatusOk(r.status))
                throw Error(r.code, r.message);
    } else {
        for (RunRecord &r : rep.records)
            if (!runStatusOk(r.status))
                r.status = RunStatus::Quarantined;
    }
    for (std::size_t i = 0; i < rep.records.size(); ++i)
        if (runStatusOk(rep.records[i].status))
            rep.survivors.push_back(i);

    Matrix m(rep.survivors.size(), kNumMetrics);
    for (std::size_t row = 0; row < rep.survivors.size(); ++row)
        for (std::size_t j = 0; j < kNumMetrics; ++j)
            m(row, j) = slots[rep.survivors[row]].metrics[j];

    if (details)
        for (std::size_t i : rep.survivors)
            details->push_back(std::move(slots[i]));
    if (report)
        *report = std::move(rep);
    return m;
}

} // namespace bds
