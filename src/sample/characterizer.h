/**
 * @file
 * Sampled characterization: the end-to-end per-workload pipeline —
 * record, profile, pick, warm, replay, estimate — and the 32-workload
 * sweep that produces a sampled 32 x 45 metric matrix.
 *
 * The sweep mirrors WorkloadRunner::runAll's determinism contract:
 * one preallocated slot per workload, per-workload derived seeds, a
 * serial clustering sweep inside each task — so the sampled matrix is
 * bitwise identical for every thread count.
 */

#ifndef BDS_SAMPLE_CHARACTERIZER_H
#define BDS_SAMPLE_CHARACTERIZER_H

#include <vector>

#include "ckpt/context.h"
#include "sample/estimate.h"
#include "sample/options.h"
#include "sample/replay.h"
#include "stats/matrix.h"
#include "workloads/registry.h"

namespace bds {

/** Result of one sampled workload characterization. */
struct SampledWorkloadResult
{
    WorkloadId id;            ///< which workload ran
    PmcCounters counters;     ///< estimated full-run counters
    MetricVector metrics;     ///< estimated Table II metrics
    SampledReplayStats stats; ///< op accounting of the replay
    std::size_t numIntervals = 0; ///< profiled intervals
    std::size_t k = 0;            ///< interval clusters selected
    std::size_t numReps = 0;      ///< representatives simulated
    double wallSeconds = 0.0;     ///< host wall-clock of the run
};

/** Runs workloads through the sampled-simulation path. */
class SampledCharacterizer
{
  public:
    /**
     * @param runner Source of workloads, node geometry, scale, data
     *        seeds and the parallelism knob. Cluster-node fan-out is
     *        honored: each node's shard is sampled independently and
     *        the metrics averaged, as in the full path.
     * @param opts Sampling knobs.
     */
    SampledCharacterizer(const WorkloadRunner &runner,
                         SamplingOptions opts);

    /** Sample one workload (all cluster nodes, metrics averaged). */
    SampledWorkloadResult run(const WorkloadId &id) const;

    /**
     * Sample all 32 workloads under the runner's recovery policy
     * (WorkloadRunner::setRecovery), mirroring the full path's
     * failure isolation: every workload is attempted, failures are
     * settled after the sweep in allWorkloads() order (fail-fast
     * rethrow of the lowest-index failure, or quarantine row drop).
     * @param details Optional per-workload result sink, rows
     *        parallel to the returned matrix.
     * @param report Optional sink for the per-workload RunRecords
     *        and the survivor set.
     * @return survivors x 45 estimated metric matrix, allWorkloads()
     *         order (all 32 rows on a clean run).
     */
    Matrix runAll(std::vector<SampledWorkloadResult> *details
                  = nullptr,
                  SweepReport *report = nullptr) const;

    /** The sampling options in effect. */
    const SamplingOptions &options() const { return opts_; }

    /**
     * Attach a run's checkpoint context (checkpointContextFor): every
     * replay restores representative-entry snapshots when present in
     * the shared cache and writes them when absent. A disabled
     * context (the default) leaves replays warming from zero.
     */
    void setCheckpoints(CheckpointContext ctx) { ckpt_ = std::move(ctx); }

    /** The checkpoint context in effect (disabled by default). */
    const CheckpointContext &checkpoints() const { return ckpt_; }

  private:
    /** Sample one node's shard of a workload. */
    SampledWorkloadResult runOnNode(const WorkloadId &id,
                                    unsigned node) const;

    const WorkloadRunner &runner_;
    SamplingOptions opts_;
    CheckpointContext ckpt_;
};

} // namespace bds

#endif // BDS_SAMPLE_CHARACTERIZER_H
