#include "sample/estimate.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace bds {

SampleEstimate
estimateMetrics(const std::vector<PmcCounters> &reps,
                const PickResult &picked)
{
    if (reps.size() != picked.reps.size())
        BDS_FATAL("counter snapshots (" << reps.size()
                  << ") do not match representatives ("
                  << picked.reps.size() << ")");

    std::array<double, PmcCounters::kNumFields> total{};
    for (std::size_t r = 0; r < reps.size(); ++r) {
        auto v = reps[r].toArray();
        double w = picked.reps[r].weight;
        for (std::size_t i = 0; i < v.size(); ++i)
            total[i] += w * v[i];
    }

    SampleEstimate out;
    out.counters = PmcCounters::fromArray(total);
    out.metrics = extractMetrics(out.counters);
    return out;
}

MetricErrorReport
compareMetrics(const MetricVector &full, const MetricVector &sampled)
{
    constexpr double kEps = 1e-12;
    MetricErrorReport rep;
    double sum = 0.0;
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
        double denom = std::max(std::abs(full[i]), kEps);
        double err = std::abs(sampled[i] - full[i]) / denom;
        if (std::abs(full[i]) < kEps && std::abs(sampled[i]) < kEps)
            err = 0.0;
        rep.relError[i] = err;
        sum += err;
        if (err > rep.maxError) {
            rep.maxError = err;
            rep.worstMetric = i;
        }
    }
    rep.meanError = sum / static_cast<double>(kNumMetrics);
    return rep;
}

} // namespace bds
