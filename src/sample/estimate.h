/**
 * @file
 * Metric reconstruction from weighted representative intervals.
 *
 * Each representative's counters stand in for its whole cluster:
 * full-run counter totals are estimated as sum_r weight_r * pmc_r
 * (weight_r = cluster ops / representative ops), and the 45 Table II
 * metrics are derived from the estimated totals with the very same
 * extractMetrics() the full path uses. The error report quantifies
 * the sampling accuracy contract per metric.
 */

#ifndef BDS_SAMPLE_ESTIMATE_H
#define BDS_SAMPLE_ESTIMATE_H

#include <array>
#include <vector>

#include "sample/picker.h"
#include "metrics/schema.h"
#include "uarch/pmc.h"

namespace bds {

/** Reconstructed full-run counters and metrics. */
struct SampleEstimate
{
    PmcCounters counters; ///< weighted counter totals
    MetricVector metrics; ///< Table II metrics of those totals
};

/**
 * Reconstruct full-run counters/metrics from per-representative
 * counter snapshots (SampledReplayer::replay output, same order as
 * picked.reps).
 */
SampleEstimate estimateMetrics(const std::vector<PmcCounters> &reps,
                               const PickResult &picked);

/** Per-metric reconstruction error of a sampled run. */
struct MetricErrorReport
{
    /**
     * |sampled - full| / max(|full|, eps) per metric. Metrics that
     * are zero in both runs report zero error.
     */
    std::array<double, kNumMetrics> relError{};

    double meanError = 0.0; ///< mean of relError
    double maxError = 0.0;  ///< worst metric's relError
    std::size_t worstMetric = 0; ///< index of that metric
};

/** Compare a sampled metric vector against the full run's. */
MetricErrorReport compareMetrics(const MetricVector &full,
                                 const MetricVector &sampled);

} // namespace bds

#endif // BDS_SAMPLE_ESTIMATE_H
