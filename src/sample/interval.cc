#include "sample/interval.h"

#include "common/log.h"

namespace bds {

namespace {

/** SplitMix64-style avalanche of a branch IP into a BBV bucket. */
std::uint64_t
hashIp(std::uint64_t ip)
{
    std::uint64_t h = ip + 0x9E3779B97F4A7C15ULL;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
    return h ^ (h >> 31);
}

} // namespace

IntervalProfiler::IntervalProfiler(std::uint64_t interval_uops,
                                   std::size_t bbv_dims)
    : intervalUops_(interval_uops), bbvDims_(bbv_dims),
      bbv_(bbv_dims, 0.0), classMix_(6, 0.0), modeMix_(2, 0.0)
{
    if (intervalUops_ == 0)
        BDS_FATAL("interval size must be at least one uop");
    if (bbvDims_ == 0)
        BDS_FATAL("BBV needs at least one bucket");
}

void
IntervalProfiler::consume(unsigned core, const MicroOp &op)
{
    if (core >= sinceBranch_.size())
        sinceBranch_.resize(core + 1, 0);

    ++classMix_[static_cast<std::size_t>(op.cls)];
    ++modeMix_[static_cast<std::size_t>(op.mode)];
    if (op.newInstruction)
        ++instructions_;

    // Branch-based basic-block vector: a branch at `ip` closes the
    // basic block its core was executing, so credit the block's
    // instruction count to the branch's hash bucket.
    if (op.cls == OpClass::Branch) {
        std::size_t bucket =
            static_cast<std::size_t>(hashIp(op.ip) % bbvDims_);
        bbv_[bucket] +=
            static_cast<double>(sinceBranch_[core] + 1);
        sinceBranch_[core] = 0;
    } else if (op.newInstruction) {
        ++sinceBranch_[core];
    }

    ++opCount_;
    ++streamPos_;
    if (opCount_ >= intervalUops_)
        closeInterval();
}

void
IntervalProfiler::finish()
{
    if (opCount_ > 0)
        closeInterval();
}

void
IntervalProfiler::closeInterval()
{
    IntervalRecord rec;
    rec.firstOp = streamPos_ - opCount_;
    rec.opCount = opCount_;
    rec.instructions = instructions_;
    intervals_.push_back(rec);

    // Per-uop rates: interval length divides out, so a short trailing
    // interval is comparable with the full-size ones.
    double inv = 1.0 / static_cast<double>(opCount_);
    std::vector<double> row;
    row.reserve(bbvDims_ + classMix_.size() + modeMix_.size());
    for (double v : bbv_)
        row.push_back(v * inv);
    for (double v : classMix_)
        row.push_back(v * inv);
    for (double v : modeMix_)
        row.push_back(v * inv);
    features_.push_back(std::move(row));

    opCount_ = 0;
    instructions_ = 0;
    bbv_.assign(bbvDims_, 0.0);
    classMix_.assign(6, 0.0);
    modeMix_.assign(2, 0.0);
    sinceBranch_.assign(sinceBranch_.size(), 0);
}

Matrix
IntervalProfiler::featureMatrix() const
{
    std::size_t dims = bbvDims_ + 6 + 2;
    Matrix m(features_.size(), dims);
    for (std::size_t i = 0; i < features_.size(); ++i)
        for (std::size_t j = 0; j < dims; ++j)
            m(i, j) = features_[i][j];
    return m;
}

} // namespace bds
