/**
 * @file
 * Interval profiling: the paper's feature-extraction step applied
 * recursively to execution intervals.
 *
 * An IntervalProfiler consumes a micro-op stream (live, or a
 * TraceRecorder replay) and splits it into fixed-size intervals,
 * collecting per interval the cheap structural features SimPoint-style
 * sampling clusters on: a hashed branch-target basic-block vector plus
 * the op-class and privilege-mode mixes. No microarchitectural state
 * is simulated, so a profiling pass costs a small constant per op.
 */

#ifndef BDS_SAMPLE_INTERVAL_H
#define BDS_SAMPLE_INTERVAL_H

#include <cstdint>
#include <vector>

#include "stats/matrix.h"
#include "trace/microop.h"
#include "trace/recorder.h"

namespace bds {

/** Position and size of one profiled interval in the op stream. */
struct IntervalRecord
{
    std::uint64_t firstOp = 0;      ///< stream index of the first op
    std::uint64_t opCount = 0;      ///< micro-ops in the interval
    std::uint64_t instructions = 0; ///< macro-instructions
};

/**
 * Recording-only execution target: implements the ExecTarget seam so
 * a stack engine can drive it exactly like a SystemModel, but every
 * op and DMA event lands in a TraceRecorder instead of a detailed
 * simulation. This is what makes the sampled path cheap: op
 * generation without microarchitectural cost.
 */
class RecordingTarget : public ExecTarget
{
  public:
    /** @param num_cores Core count reported to the engines. */
    explicit RecordingTarget(unsigned num_cores) : cores_(num_cores) {}

    void consume(unsigned core, const MicroOp &op) override
    {
        trace_.consume(core, op);
    }

    unsigned numCores() const override { return cores_; }

    void dmaFill(std::uint64_t addr, std::uint64_t bytes) override
    {
        trace_.recordDma(addr, bytes);
    }

    /** The captured trace. */
    const TraceRecorder &trace() const { return trace_; }

  private:
    unsigned cores_;
    TraceRecorder trace_;
};

/** Splits an op stream into intervals with feature vectors. */
class IntervalProfiler : public OpSink
{
  public:
    /**
     * @param interval_uops Interval size in micro-ops (>= 1).
     * @param bbv_dims Hashed basic-block-vector buckets (>= 1).
     */
    IntervalProfiler(std::uint64_t interval_uops, std::size_t bbv_dims);

    void consume(unsigned core, const MicroOp &op) override;

    /**
     * Close the trailing partial interval, if any. Call once after
     * the whole stream has been consumed; idempotent.
     */
    void finish();

    /** Number of closed intervals (call finish() first). */
    std::size_t numIntervals() const { return intervals_.size(); }

    /** Interval positions/sizes, in stream order. */
    const std::vector<IntervalRecord> &intervals() const
    {
        return intervals_;
    }

    /**
     * Feature matrix: one row per interval, columns = bbv_dims BBV
     * buckets, then 6 op-class shares, then 2 mode shares. All
     * features are per-uop rates, so interval length cancels out.
     */
    Matrix featureMatrix() const;

  private:
    /** Close the current interval and reset the accumulators. */
    void closeInterval();

    std::uint64_t intervalUops_;
    std::size_t bbvDims_;

    std::uint64_t streamPos_ = 0;  ///< ops consumed in total
    std::uint64_t opCount_ = 0;    ///< ops in the open interval
    std::uint64_t instructions_ = 0;
    std::vector<double> bbv_;      ///< per-bucket instruction counts
    std::vector<double> classMix_; ///< per-OpClass uop counts (6)
    std::vector<double> modeMix_;  ///< per-Mode uop counts (2)

    /** Per-core instructions since the core's last branch. */
    std::vector<std::uint64_t> sinceBranch_;

    std::vector<IntervalRecord> intervals_;
    std::vector<std::vector<double>> features_;
};

} // namespace bds

#endif // BDS_SAMPLE_INTERVAL_H
