/**
 * @file
 * Knobs for the sampled-simulation subsystem.
 *
 * Kept dependency-free (plain integers only) so PipelineOptions can
 * embed a SamplingOptions without bds_core linking bds_sample: the
 * struct travels with the options, the machinery that interprets it
 * lives in src/sample.
 */

#ifndef BDS_SAMPLE_OPTIONS_H
#define BDS_SAMPLE_OPTIONS_H

#include <cstddef>
#include <cstdint>

namespace bds {

/** Configuration of the sampled characterization path. */
struct SamplingOptions
{
    /** Master switch: off reproduces the full detailed runs. */
    bool enabled = false;

    /**
     * Interval size in micro-ops. Intervals are the unit of
     * clustering and replay; smaller intervals give the picker more
     * resolution but cost more clustering work per workload. The
     * default is calibrated so the quick-scale 32-workload sweep
     * keeps every paper finding while simulating under a fifth of
     * the micro-ops in detail (see docs/SAMPLING.md).
     */
    std::uint64_t intervalUops = 50000;

    /**
     * Dimensions of the hashed branch-target basic-block vector.
     * Branch IPs hash into this many buckets, SimPoint-style; the
     * op-class and privilege-mode mixes ride along as extra columns.
     */
    std::size_t bbvDims = 32;

    /** Smallest interval-cluster count tried in the BIC sweep. */
    std::size_t kMin = 1;

    /** Largest interval-cluster count tried (clamped to intervals). */
    std::size_t kMax = 6;

    /**
     * Functional-warming window: how many intervals before each
     * representative are replayed counter-frozen. 0 means "warm
     * everything" — every non-representative interval is replayed in
     * the freeze mode, so microarchitectural state at each
     * representative is exactly the full run's (most accurate, least
     * wall-clock saving). W > 0 fast-forwards intervals outside the
     * window entirely (their DMA events still apply).
     */
    unsigned warmupIntervals = 0;

    /**
     * Base seed for the per-workload interval K-means sweeps. Each
     * workload derives its own stream from (seed, algorithm, stack,
     * node), so sampled sweeps are order- and thread-independent.
     */
    std::uint64_t seed = 7;
};

} // namespace bds

#endif // BDS_SAMPLE_OPTIONS_H
