#include "sample/picker.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "stats/bic.h"
#include "stats/kmeans.h"
#include "stats/normalize.h"

namespace bds {

PickResult
RepresentativePicker::pick(const Matrix &features,
                           const std::vector<IntervalRecord> &intervals,
                           std::uint64_t seed) const
{
    if (features.rows() != intervals.size())
        BDS_FATAL("feature rows (" << features.rows()
                  << ") do not match interval count ("
                  << intervals.size() << ")");
    if (intervals.empty())
        BDS_FATAL("cannot pick representatives of an empty stream");

    PickResult out;
    for (const IntervalRecord &r : intervals)
        out.totalOps += r.opCount;

    // Too few intervals to cluster: simulate everything in detail.
    // (Also covers the degenerate single-interval stream.)
    std::size_t n = intervals.size();
    if (n <= opts_.kMin || n < 2) {
        for (std::size_t i = 0; i < n; ++i) {
            Representative rep;
            rep.interval = i;
            rep.cluster = i;
            rep.clusterSize = 1;
            rep.weight = 1.0;
            out.reps.push_back(rep);
            out.detailOps += intervals[i].opCount;
        }
        out.k = n;
        return out;
    }

    // The paper's pipeline, on intervals: z-score the features, sweep
    // K with seeded per-K streams, pick the first local BIC maximum
    // (the compact knee). The sweep runs serially — pick() may itself
    // be inside a parallel per-workload fan-out.
    ZScoreResult z = zscore(features);
    std::size_t k_max = std::min(opts_.kMax, n);
    std::size_t k_min = std::max<std::size_t>(1, opts_.kMin);
    ParallelOptions serial;
    serial.threads = 1;
    BicSweepResult sweep =
        sweepBic(z.normalized, k_min, k_max, seed, {}, serial);
    const KMeansResult &best =
        sweep.points[sweep.firstLocalMaxIndex()].result;
    out.k = best.k;

    // Representative of each cluster: the member interval closest to
    // the centroid (ties break to the earliest interval, so the
    // choice is deterministic).
    auto groups = groupByLabel(best.labels, best.k);
    for (std::size_t c = 0; c < groups.size(); ++c) {
        if (groups[c].empty())
            continue;
        std::size_t rep_idx = groups[c].front();
        double best_d = std::numeric_limits<double>::infinity();
        std::uint64_t cluster_ops = 0;
        for (std::size_t idx : groups[c]) {
            cluster_ops += intervals[idx].opCount;
            double d = 0.0;
            for (std::size_t j = 0; j < z.normalized.cols(); ++j) {
                double diff = z.normalized(idx, j) - best.centers(c, j);
                d += diff * diff;
            }
            if (d < best_d) {
                best_d = d;
                rep_idx = idx;
            }
        }
        Representative rep;
        rep.interval = rep_idx;
        rep.cluster = c;
        rep.clusterSize = groups[c].size();
        rep.weight = static_cast<double>(cluster_ops)
            / static_cast<double>(intervals[rep_idx].opCount);
        out.reps.push_back(rep);
        out.detailOps += intervals[rep_idx].opCount;
    }

    std::sort(out.reps.begin(), out.reps.end(),
              [](const Representative &a, const Representative &b) {
                  return a.interval < b.interval;
              });
    return out;
}

} // namespace bds
