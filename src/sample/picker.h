/**
 * @file
 * Representative-interval selection: the paper's subsetting method
 * (z-score, seeded K-means++ sweep, BIC) applied to the interval
 * feature matrix of one workload.
 *
 * Each cluster of similar intervals is represented by the member
 * closest to the cluster centroid, carrying a weight equal to the
 * cluster's share of the op stream — exactly how the paper represents
 * a workload cluster by the workload nearest the center.
 */

#ifndef BDS_SAMPLE_PICKER_H
#define BDS_SAMPLE_PICKER_H

#include <cstdint>
#include <vector>

#include "sample/interval.h"
#include "sample/options.h"
#include "stats/matrix.h"

namespace bds {

/** One chosen interval and its estimation weight. */
struct Representative
{
    std::size_t interval = 0;    ///< interval index in stream order
    std::size_t cluster = 0;     ///< cluster it represents
    std::size_t clusterSize = 0; ///< intervals in that cluster
    /**
     * Estimation weight: cluster micro-ops over representative
     * micro-ops. Weighted per-interval counters summed with these
     * weights reconstruct full-run totals.
     */
    double weight = 1.0;
};

/** Outcome of representative selection for one workload. */
struct PickResult
{
    /** Chosen intervals, ascending by interval index. */
    std::vector<Representative> reps;

    /** Number of interval clusters the BIC sweep selected. */
    std::size_t k = 0;

    /** Total micro-ops across all intervals. */
    std::uint64_t totalOps = 0;

    /** Micro-ops inside the chosen intervals (the detail cost). */
    std::uint64_t detailOps = 0;
};

/** Chooses weighted representative intervals for one workload. */
class RepresentativePicker
{
  public:
    explicit RepresentativePicker(const SamplingOptions &opts)
        : opts_(opts)
    {
    }

    /**
     * Select representatives.
     *
     * Runs serially regardless of any outer parallelism; the result
     * depends only on (features, intervals, seed), never on thread
     * count — the property the sampled determinism test enforces.
     *
     * @param features Interval feature matrix (IntervalProfiler).
     * @param intervals Matching interval records.
     * @param seed Per-workload seed for the K-means sweep.
     */
    PickResult pick(const Matrix &features,
                    const std::vector<IntervalRecord> &intervals,
                    std::uint64_t seed) const;

  private:
    SamplingOptions opts_;
};

} // namespace bds

#endif // BDS_SAMPLE_PICKER_H
