#include "sample/replay.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

namespace {

/** What to do with the ops of one interval. */
enum class IntervalMode : std::uint8_t
{
    Skip,   ///< fast-forward (DMA only)
    Warm,   ///< counter-frozen functional warming
    Detail, ///< live counters, snapshot at the end
};

/**
 * Routes a replayed stream through the system according to the
 * per-interval plan, toggling the freeze mode and snapshotting
 * counters at interval boundaries.
 */
class PlanSink : public OpSink
{
  public:
    PlanSink(SystemModel &sys, std::uint64_t interval_uops,
             const std::vector<IntervalMode> &plan,
             const std::vector<int> &rep_of,
             std::vector<PmcCounters> &snaps, SampledReplayStats &stats)
        : sys_(sys), intervalUops_(interval_uops), plan_(plan),
          repOf_(rep_of), snaps_(snaps), stats_(stats)
    {
        enterInterval(0);
        left_ = intervalUops_;
    }

    void consume(unsigned core, const MicroOp &op) override
    {
        // Countdown to the interval boundary; ops arrive one at a
        // time, so the interval index only ever advances by one.
        if (left_ == 0) {
            leaveInterval();
            enterInterval(current_ + 1);
            left_ = intervalUops_;
        }
        --left_;
        ++stats_.totalOps;
        switch (mode_) {
          case IntervalMode::Skip:
            ++stats_.skippedOps;
            return;
          case IntervalMode::Warm:
            ++stats_.warmOps;
            break;
          case IntervalMode::Detail:
            ++stats_.detailOps;
            break;
        }
        sys_.consume(core, op);
    }

    /** DMA events always reach the node, whatever the mode. */
    void dma(std::uint64_t addr, std::uint64_t bytes)
    {
        sys_.dmaFill(addr, bytes);
    }

    /** Close the final interval after the stream ends. */
    void finish()
    {
        leaveInterval();
        sys_.setCounterFreeze(false);
    }

  private:
    void enterInterval(std::size_t interval)
    {
        current_ = interval;
        mode_ = interval < plan_.size() ? plan_[interval]
                                        : IntervalMode::Warm;
        if (mode_ == IntervalMode::Detail) {
            sys_.setCounterFreeze(false);
            sys_.resetCounters();
        } else {
            sys_.setCounterFreeze(true);
        }
    }

    void leaveInterval()
    {
        if (mode_ == IntervalMode::Detail
            && current_ < repOf_.size() && repOf_[current_] >= 0)
            snaps_[static_cast<std::size_t>(repOf_[current_])] =
                sys_.aggregateCounters();
    }

    SystemModel &sys_;
    std::uint64_t intervalUops_;
    const std::vector<IntervalMode> &plan_;
    const std::vector<int> &repOf_;
    std::vector<PmcCounters> &snaps_;
    SampledReplayStats &stats_;

    std::uint64_t left_ = 0; ///< uops left in the current interval
    std::size_t current_ = 0;
    IntervalMode mode_ = IntervalMode::Warm;
};

} // namespace

SampledReplayer::SampledReplayer(SystemModel &sys,
                                 std::uint64_t interval_uops,
                                 unsigned warmup_intervals)
    : sys_(sys), intervalUops_(interval_uops),
      warmupIntervals_(warmup_intervals)
{
    if (intervalUops_ == 0)
        BDS_FATAL("interval size must be at least one uop");
}

std::vector<PmcCounters>
SampledReplayer::replay(const TraceRecorder &trace,
                        const PickResult &picked,
                        SampledReplayStats *stats)
{
    // Build the per-interval plan. Representatives run in detail;
    // with a bounded warmup window, only the W intervals before each
    // representative are warmed and the rest are skipped. W == 0
    // warms everything.
    std::size_t n = static_cast<std::size_t>(
        (picked.totalOps + intervalUops_ - 1) / intervalUops_);
    for (const Representative &r : picked.reps)
        n = std::max(n, r.interval + 1);
    std::vector<IntervalMode> plan(
        n, warmupIntervals_ == 0 ? IntervalMode::Warm
                                 : IntervalMode::Skip);
    std::vector<int> rep_of(n, -1);
    for (std::size_t r = 0; r < picked.reps.size(); ++r) {
        std::size_t i = picked.reps[r].interval;
        plan[i] = IntervalMode::Detail;
        rep_of[i] = static_cast<int>(r);
    }
    if (warmupIntervals_ > 0) {
        for (const Representative &r : picked.reps) {
            std::size_t lo = r.interval > warmupIntervals_
                ? r.interval - warmupIntervals_ : 0;
            for (std::size_t i = lo; i < r.interval; ++i)
                if (plan[i] == IntervalMode::Skip)
                    plan[i] = IntervalMode::Warm;
        }
    }

    std::vector<PmcCounters> snaps(picked.reps.size());
    SampledReplayStats local;
    PlanSink sink(sys_, intervalUops_, plan, rep_of, snaps, local);
    trace.replay(sink, [&](std::uint64_t addr, std::uint64_t bytes) {
        sink.dma(addr, bytes);
    });
    sink.finish();

    if (stats)
        *stats = local;
    return snaps;
}

} // namespace bds
