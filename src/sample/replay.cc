#include "sample/replay.h"

#include <algorithm>
#include <map>

#include "ckpt/state.h"
#include "common/log.h"
#include "fault/error.h"

namespace bds {

namespace {

/** What to do with the ops of one interval. */
enum class IntervalMode : std::uint8_t
{
    Skip,   ///< fast-forward (DMA only)
    Jump,   ///< checkpoint-covered: no ops, no DMA
    Warm,   ///< counter-frozen functional warming
    Detail, ///< live counters, snapshot at the end
};

/** Checkpoint traffic of one replay: the probed payloads + cache. */
struct CkptPlan
{
    const CheckpointCache *cache = nullptr;
    const CheckpointKey *key = nullptr;

    /** Payloads restored at detail-interval entry, by interval. */
    std::map<std::size_t, std::string> payloads;
};

/**
 * Routes a replayed stream through the system according to the
 * per-interval plan, toggling the freeze mode and snapshotting
 * counters at interval boundaries.
 */
class PlanSink : public OpSink
{
  public:
    PlanSink(SystemModel &sys, std::uint64_t interval_uops,
             const std::vector<IntervalMode> &plan,
             const std::vector<int> &rep_of,
             std::vector<PmcCounters> &snaps, SampledReplayStats &stats,
             CkptPlan *ckpt)
        : sys_(sys), intervalUops_(interval_uops), plan_(plan),
          repOf_(rep_of), snaps_(snaps), stats_(stats), ckpt_(ckpt),
          tailMode_(ckpt ? IntervalMode::Jump : IntervalMode::Warm)
    {
        enterInterval(0);
        left_ = intervalUops_;
    }

    void consume(unsigned core, const MicroOp &op) override
    {
        // Countdown to the interval boundary; ops arrive one at a
        // time, so the interval index only ever advances by one.
        if (left_ == 0) {
            leaveInterval();
            enterInterval(current_ + 1);
            left_ = intervalUops_;
        }
        --left_;
        ++stats_.totalOps;
        switch (mode_) {
          case IntervalMode::Skip:
          case IntervalMode::Jump:
            ++stats_.skippedOps;
            return;
          case IntervalMode::Warm:
            ++stats_.warmOps;
            break;
          case IntervalMode::Detail:
            ++stats_.detailOps;
            break;
        }
        sys_.consume(core, op);
    }

    /**
     * DMA events reach the node in every mode except Jump: a jumped
     * range ends at a restored checkpoint whose snapshot already
     * embodies the range's DMA effects (or at the end of the trace,
     * after which nothing is observed).
     */
    void dma(std::uint64_t addr, std::uint64_t bytes)
    {
        if (mode_ != IntervalMode::Jump)
            sys_.dmaFill(addr, bytes);
    }

    /** Close the final interval after the stream ends. */
    void finish()
    {
        leaveInterval();
        sys_.setCounterFreeze(false);
    }

  private:
    void enterInterval(std::size_t interval)
    {
        current_ = interval;
        mode_ = interval < plan_.size() ? plan_[interval] : tailMode_;
        if (mode_ != IntervalMode::Detail) {
            sys_.setCounterFreeze(true);
            return;
        }
        // Detail entry is the checkpoint point: unfreeze and zero the
        // counters first, so the saved (and restored) state is
        // exactly what detail replay starts from.
        sys_.setCounterFreeze(false);
        sys_.resetCounters();
        if (!ckpt_)
            return;
        auto it = ckpt_->payloads.find(interval);
        if (it != ckpt_->payloads.end()) {
            // The probe already validated container checksum, version
            // and machine text; equal machine text implies every
            // geometry guard below matches, so a loadState failure
            // here would be a program bug, not an input — let the
            // typed error propagate.
            StateSource src(it->second,
                            ckpt_->cache->path(*ckpt_->key, interval));
            sys_.loadState(src);
            src.finish();
            ++stats_.ckptRestores;
        } else {
            StateSink sink;
            sys_.saveState(sink);
            try {
                ckpt_->cache->store(*ckpt_->key, interval,
                                    sink.take());
                ++stats_.ckptWrites;
            } catch (const Error &e) {
                // A full disk must degrade the cache, not the run.
                warn(std::string("checkpoint: cannot store interval "
                                 "snapshot: ")
                     + e.what());
            }
        }
    }

    void leaveInterval()
    {
        if (mode_ == IntervalMode::Detail
            && current_ < repOf_.size() && repOf_[current_] >= 0)
            snaps_[static_cast<std::size_t>(repOf_[current_])] =
                sys_.aggregateCounters();
    }

    SystemModel &sys_;
    std::uint64_t intervalUops_;
    const std::vector<IntervalMode> &plan_;
    const std::vector<int> &repOf_;
    std::vector<PmcCounters> &snaps_;
    SampledReplayStats &stats_;
    CkptPlan *ckpt_;
    IntervalMode tailMode_;

    std::uint64_t left_ = 0; ///< uops left in the current interval
    std::size_t current_ = 0;
    IntervalMode mode_ = IntervalMode::Warm;
};

} // namespace

SampledReplayer::SampledReplayer(SystemModel &sys,
                                 std::uint64_t interval_uops,
                                 unsigned warmup_intervals)
    : sys_(sys), intervalUops_(interval_uops),
      warmupIntervals_(warmup_intervals)
{
    if (intervalUops_ == 0)
        BDS_FATAL("interval size must be at least one uop");
}

void
SampledReplayer::setCheckpoints(
    std::shared_ptr<const CheckpointCache> cache, CheckpointKey key)
{
    ckptCache_ = std::move(cache);
    ckptKey_ = std::move(key);
}

std::vector<PmcCounters>
SampledReplayer::replay(const TraceRecorder &trace,
                        const PickResult &picked,
                        SampledReplayStats *stats)
{
    // Build the per-interval plan. Representatives run in detail;
    // with a bounded warmup window, only the W intervals before each
    // representative are warmed and the rest are skipped. W == 0
    // warms everything.
    std::size_t n = static_cast<std::size_t>(
        (picked.totalOps + intervalUops_ - 1) / intervalUops_);
    for (const Representative &r : picked.reps)
        n = std::max(n, r.interval + 1);
    std::vector<IntervalMode> plan(
        n, warmupIntervals_ == 0 ? IntervalMode::Warm
                                 : IntervalMode::Skip);
    std::vector<int> rep_of(n, -1);
    for (std::size_t r = 0; r < picked.reps.size(); ++r) {
        std::size_t i = picked.reps[r].interval;
        plan[i] = IntervalMode::Detail;
        rep_of[i] = static_cast<int>(r);
    }
    if (warmupIntervals_ > 0) {
        for (const Representative &r : picked.reps) {
            std::size_t lo = r.interval > warmupIntervals_
                ? r.interval - warmupIntervals_ : 0;
            for (std::size_t i = lo; i < r.interval; ++i)
                if (plan[i] == IntervalMode::Skip)
                    plan[i] = IntervalMode::Warm;
        }
    }

    // Probe the checkpoint cache up front — never mid-stream, so a
    // corrupt entry can still fall back to warming from zero. Every
    // interval strictly before a restorable representative is
    // covered by its snapshot and jumps; a representative without a
    // valid checkpoint keeps its warm-up plan intact and writes one
    // at detail entry. Reps arrive in ascending interval order
    // (picker contract), so the cursor walks the stream once.
    CkptPlan ckpt;
    if (ckptCache_) {
        ckpt.cache = ckptCache_.get();
        ckpt.key = &ckptKey_;
        std::size_t cursor = 0;
        for (const Representative &r : picked.reps) {
            std::string payload;
            bool have = false;
            try {
                have = ckptCache_->load(ckptKey_, r.interval,
                                        &payload);
                if (!have)
                    noteCkptMiss();
            } catch (const std::exception &e) {
                // Corrupt/truncated/foreign entry: report, warm from
                // zero, rewrite at detail entry.
                warn(std::string("checkpoint: ") + e.what());
                noteCkptFallback();
            }
            if (have) {
                ckpt.payloads[r.interval] = std::move(payload);
                for (std::size_t i = cursor; i < r.interval; ++i)
                    plan[i] = IntervalMode::Jump;
            }
            cursor = r.interval + 1;
        }
        // Nothing is observed after the last representative's
        // snapshot, so the tail never needs warming either.
        for (std::size_t i = cursor; i < n; ++i)
            plan[i] = IntervalMode::Jump;
    }

    std::vector<PmcCounters> snaps(picked.reps.size());
    SampledReplayStats local;
    PlanSink sink(sys_, intervalUops_, plan, rep_of, snaps, local,
                  ckptCache_ ? &ckpt : nullptr);
    trace.replay(sink, [&](std::uint64_t addr, std::uint64_t bytes) {
        sink.dma(addr, bytes);
    });
    sink.finish();

    if (stats)
        *stats = local;
    return snaps;
}

} // namespace bds
