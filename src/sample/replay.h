/**
 * @file
 * Warmup-aware sampled replay, with interval checkpoint/restore.
 *
 * A SampledReplayer drives a recorded op stream into a SystemModel,
 * simulating only the chosen representative intervals with live
 * counters. Everything else is either functionally warmed — replayed
 * in the SystemModel's counter-freeze mode, so caches, TLBs, the
 * branch predictor and coherence advance while PmcCounters stand
 * still — or fast-forwarded entirely when outside the warmup window
 * (DMA events still apply, keeping the memory image in sync).
 *
 * With a checkpoint cache attached (setCheckpoints), the replayer
 * additionally snapshots the full SystemModel state at each
 * representative's entry — after the unfreeze + counter reset, so
 * the payload is exactly what detail replay starts from — and on a
 * later run restores those snapshots instead of warming the
 * intervals that precede them. Restored replays are bitwise-identical
 * to warming from zero (test-pinned); a corrupt, truncated or
 * foreign checkpoint is a typed error the replayer converts into a
 * transparent warm-from-zero fallback for that interval.
 */

#ifndef BDS_SAMPLE_REPLAY_H
#define BDS_SAMPLE_REPLAY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/checkpoint.h"
#include "sample/picker.h"
#include "trace/recorder.h"
#include "uarch/pmc.h"
#include "uarch/system.h"

namespace bds {

/** Op accounting of one sampled replay. */
struct SampledReplayStats
{
    std::uint64_t totalOps = 0;   ///< ops in the trace
    std::uint64_t detailOps = 0;  ///< simulated with live counters
    std::uint64_t warmOps = 0;    ///< replayed counter-frozen
    std::uint64_t skippedOps = 0; ///< fast-forwarded entirely
    std::uint64_t ckptRestores = 0; ///< representatives restored
    std::uint64_t ckptWrites = 0;   ///< checkpoints written
};

/** Replays a trace, detailing only the representative intervals. */
class SampledReplayer
{
  public:
    /**
     * @param sys Target node (fresh, same geometry as the recording).
     * @param interval_uops Interval size used by the profiler.
     * @param warmup_intervals Warming window before each
     *        representative; 0 warms every non-detail interval.
     */
    SampledReplayer(SystemModel &sys, std::uint64_t interval_uops,
                    unsigned warmup_intervals);

    /**
     * Attach a checkpoint cache. `key` identifies this replay's
     * stream (config hash + machine + workload + node); the interval
     * index is appended per representative. Before replaying, every
     * representative's checkpoint is probed: present-and-valid ones
     * are restored (the preceding intervals jump — no warming, no
     * DMA, all already embodied in the snapshot), the rest warm as
     * usual and are written at detail entry for the next run.
     */
    void setCheckpoints(std::shared_ptr<const CheckpointCache> cache,
                        CheckpointKey key);

    /**
     * Replay the trace and capture per-representative counters.
     * @param trace The recorded stream (profiler's interval origin).
     * @param picked Representatives to simulate in detail.
     * @param stats Optional op-accounting sink.
     * @return One aggregated PmcCounters per representative, in
     *         picked.reps order.
     */
    std::vector<PmcCounters> replay(const TraceRecorder &trace,
                                    const PickResult &picked,
                                    SampledReplayStats *stats = nullptr);

  private:
    SystemModel &sys_;
    std::uint64_t intervalUops_;
    unsigned warmupIntervals_;
    std::shared_ptr<const CheckpointCache> ckptCache_;
    CheckpointKey ckptKey_;
};

} // namespace bds

#endif // BDS_SAMPLE_REPLAY_H
