/**
 * @file
 * Warmup-aware sampled replay.
 *
 * A SampledReplayer drives a recorded op stream into a SystemModel,
 * simulating only the chosen representative intervals with live
 * counters. Everything else is either functionally warmed — replayed
 * in the SystemModel's counter-freeze mode, so caches, TLBs, the
 * branch predictor and coherence advance while PmcCounters stand
 * still — or fast-forwarded entirely when outside the warmup window
 * (DMA events always apply, keeping the memory image in sync).
 */

#ifndef BDS_SAMPLE_REPLAY_H
#define BDS_SAMPLE_REPLAY_H

#include <cstdint>
#include <vector>

#include "sample/picker.h"
#include "trace/recorder.h"
#include "uarch/pmc.h"
#include "uarch/system.h"

namespace bds {

/** Op accounting of one sampled replay. */
struct SampledReplayStats
{
    std::uint64_t totalOps = 0;   ///< ops in the trace
    std::uint64_t detailOps = 0;  ///< simulated with live counters
    std::uint64_t warmOps = 0;    ///< replayed counter-frozen
    std::uint64_t skippedOps = 0; ///< fast-forwarded entirely
};

/** Replays a trace, detailing only the representative intervals. */
class SampledReplayer
{
  public:
    /**
     * @param sys Target node (fresh, same geometry as the recording).
     * @param interval_uops Interval size used by the profiler.
     * @param warmup_intervals Warming window before each
     *        representative; 0 warms every non-detail interval.
     */
    SampledReplayer(SystemModel &sys, std::uint64_t interval_uops,
                    unsigned warmup_intervals);

    /**
     * Replay the trace and capture per-representative counters.
     * @param trace The recorded stream (profiler's interval origin).
     * @param picked Representatives to simulate in detail.
     * @param stats Optional op-accounting sink.
     * @return One aggregated PmcCounters per representative, in
     *         picked.reps order.
     */
    std::vector<PmcCounters> replay(const TraceRecorder &trace,
                                    const PickResult &picked,
                                    SampledReplayStats *stats = nullptr);

  private:
    SystemModel &sys_;
    std::uint64_t intervalUops_;
    unsigned warmupIntervals_;
};

} // namespace bds

#endif // BDS_SAMPLE_REPLAY_H
