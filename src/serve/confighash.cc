#include "serve/confighash.h"

#include <sstream>

#include "uarch/machine.h"

namespace bds {

std::string
canonicalRunConfig(const RunConfig &cfg)
{
    // Fixed field order, integers rendered in decimal, booleans as
    // 0/1 — never touch this rendering without bumping
    // kConfigHashSchemaVersion (the stability test pins the result).
    std::ostringstream os;
    os << "bds-runconfig-v" << kConfigHashSchemaVersion << '\n'
       << "scale=" << cfg.scaleName << '\n'
       << "seed=" << cfg.seed << '\n'
       // The *resolved* geometry, not the spec string: equivalent
       // spellings of one machine share a cell, and any override
       // that actually changes the geometry changes the key.
       << "machine="
       << canonicalMachineText(resolveMachineSpec(cfg.machineSpec))
       << '\n'
       << "sampling.enabled=" << (cfg.sampling.enabled ? 1 : 0) << '\n'
       << "sampling.interval_uops=" << cfg.sampling.intervalUops << '\n'
       << "sampling.bbv_dims=" << cfg.sampling.bbvDims << '\n'
       << "sampling.k_min=" << cfg.sampling.kMin << '\n'
       << "sampling.k_max=" << cfg.sampling.kMax << '\n'
       << "sampling.warmup_intervals=" << cfg.sampling.warmupIntervals
       << '\n'
       << "sampling.seed=" << cfg.sampling.seed << '\n'
       << "recovery.policy="
       << failPolicyName(cfg.fault.recovery.policy) << '\n'
       << "recovery.max_retries=" << cfg.fault.recovery.maxRetries
       << '\n'
       << "recovery.timeout_ms=" << cfg.fault.recovery.timeoutMs << '\n'
       << "fault.throw=" << cfg.fault.throwAt << '\n'
       << "fault.stall=" << cfg.fault.stallAt << '\n'
       << "fault.corrupt=" << cfg.fault.corruptAt << '\n'
       << "fault.alloc=" << cfg.fault.allocAt << '\n'
       << "fault.stall_ms=" << cfg.fault.stallMs << '\n'
       << "fault.attempts=" << cfg.fault.attempts << '\n';
    return os.str();
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
runConfigHash(const RunConfig &cfg)
{
    return fnv1a64(canonicalRunConfig(cfg));
}

std::string
toHex64(std::uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::string
runConfigHashHex(const RunConfig &cfg)
{
    return toHex64(runConfigHash(cfg));
}

} // namespace bds
