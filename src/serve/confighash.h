/**
 * @file
 * Canonical RunConfig serialization and the content-address of the
 * result store: runConfigHash().
 *
 * The serving layer answers a request from the cache iff the fully
 * resolved configuration that would recompute it hashes to an
 * existing entry, so the hash must cover exactly the fields that can
 * change the 45-metric matrix and nothing else:
 *
 *  - INCLUDED: scale name, data seed, the resolved machine geometry
 *    (two machines must never alias one cell; the *resolved*
 *    canonical text is hashed, so "westmere" and the equivalent
 *    explicit override spec share a cell), every sampling knob, the
 *    recovery policy and the fault-injection spec (an injected run
 *    must never alias a clean cell).
 *  - EXCLUDED: worker threads (the matrix is bitwise-identical at
 *    any thread count — docs/THREADING.md), tracing/manifest knobs
 *    (observation is bitwise-neutral — docs/OBSERVABILITY.md), the
 *    tool name and argv, the serve transport knobs, and the metric
 *    subset (the store always holds the full Table II matrix; a
 *    subset is a projection applied at response time, so requests
 *    differing only in their metric selection share one cell).
 *
 * The canonical form is versioned text (one "key=value" line per
 * field, fixed order). kConfigHashSchemaVersion is baked into the
 * serialization: adding a result-relevant field to RunConfig must
 * come with a version bump, which retires every stale cache entry
 * instead of letting keys silently alias across schemas. A stability
 * test (tests/serve/test_confighash.cc) pins the hash of a fixed
 * configuration so accidental drift fails loudly.
 */

#ifndef BDS_SERVE_CONFIGHASH_H
#define BDS_SERVE_CONFIGHASH_H

#include <cstdint>
#include <string>

#include "obs/runconfig.h"

namespace bds {

/**
 * Version of the canonical serialization. Bump when a field is
 * added, removed or reinterpreted; every cache key changes and the
 * store cleanly recomputes instead of serving stale bytes.
 *
 * v1: scale/seed/sampling/recovery/fault.
 * v2: + the resolved machine geometry (the DSE axis).
 */
constexpr unsigned kConfigHashSchemaVersion = 2;

/**
 * The canonical text form of the result-relevant fields of `cfg`,
 * deterministic across platforms and runs.
 */
std::string canonicalRunConfig(const RunConfig &cfg);

/** FNV-1a 64-bit over canonicalRunConfig(cfg). */
std::uint64_t runConfigHash(const RunConfig &cfg);

/** runConfigHash() as 16 lowercase hex digits (the store key). */
std::string runConfigHashHex(const RunConfig &cfg);

/** FNV-1a 64-bit of an arbitrary byte string (payload checksums). */
std::uint64_t fnv1a64(const std::string &bytes);

/** A std::uint64_t as 16 lowercase hex digits. */
std::string toHex64(std::uint64_t v);

} // namespace bds

#endif // BDS_SERVE_CONFIGHASH_H
