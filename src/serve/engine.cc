#include "serve/engine.h"

#include <chrono>
#include <condition_variable>
#include <ctime>
#include <sstream>

#include "ckpt/context.h"
#include "core/csvio.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "metrics/set.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "sample/characterizer.h"
#include "serve/confighash.h"
#include "workloads/registry.h"

namespace bds {

namespace {

/** Current wall-clock time as ISO-8601 UTC. */
std::string
isoNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

/**
 * Counting semaphore bounding concurrent sweep computations, with a
 * bounded admission queue in front. Cache hits never take a slot, so
 * a slow cold cell cannot starve warm traffic; a compute arriving
 * with maxQueue others already waiting is shed with a typed
 * Overloaded error instead of queueing unboundedly.
 */
struct ServeEngine::Gate
{
    Gate(unsigned slots, unsigned maxQueue)
        : free(slots), maxQueue(maxQueue)
    {
    }

    std::mutex mutex;
    std::condition_variable cv;
    unsigned free;
    unsigned waiting = 0;
    const unsigned maxQueue;

    struct Slot
    {
        explicit Slot(Gate &g) : gate(g)
        {
            std::unique_lock<std::mutex> lock(gate.mutex);
            if (gate.free == 0) {
                // Shed before blocking: the admission decision is
                // made while the queue state is visible, so the
                // bound is exact, not best-effort.
                if (gate.waiting >= gate.maxQueue)
                    BDS_RAISE(ErrorCode::Overloaded,
                              "admission queue full ("
                                  << gate.waiting
                                  << " computes already waiting, "
                                     "max_queue="
                                  << gate.maxQueue << ")");
                ++gate.waiting;
                gate.cv.wait(lock, [&] { return gate.free > 0; });
                --gate.waiting;
            }
            --gate.free;
        }
        ~Slot()
        {
            {
                std::lock_guard<std::mutex> lock(gate.mutex);
                ++gate.free;
            }
            gate.cv.notify_one();
        }
        Gate &gate;
    };
};

ServeEngine::ServeEngine(RunConfig base, Session *session)
    : base_(std::move(base)),
      store_(base_.serve.storeDir, base_.serve.maxStoreBytes),
      session_(session),
      maxInFlight_(base_.serve.maxInFlight
                       ? base_.serve.maxInFlight
                       : ParallelOptions{0}.resolved()),
      gate_(std::make_shared<Gate>(maxInFlight_, base_.serve.maxQueue))
{
}

RunConfig
ServeEngine::requestConfig(const RequestRecord &req) const
{
    RunConfig cfg = base_;
    cfg.scaleName = serveScaleName(req.scale);
    cfg.seed = req.seed;
    cfg.machineSpec = serveMachineName(req.machine);
    cfg.sampling.enabled = (req.flags & kServeFlagSampled) != 0;
    // The metric/workload masks are response projections, not part
    // of the cell (see serve/confighash.h).
    cfg.metricNames.clear();
    return cfg;
}

ComputedResult
ServeEngine::computeCell(const RunConfig &cfg)
{
    TraceSpan span("serve.compute");
    // Everything — machine geometry included — flows from the
    // request's RunConfig; nothing is hard-coded here.
    WorkloadRunner runner = WorkloadRunner::fromRunConfig(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    Matrix metrics;
    SweepReport report;
    if (cfg.sampling.enabled) {
        SampledCharacterizer sampler(runner, cfg.sampling);
        // The checkpoint cache rides along: a recomputed cell (store
        // bypassed, or a cell retired by a schema bump) still reuses
        // the representative-entry snapshots keyed to its config.
        sampler.setCheckpoints(checkpointContextFor(cfg));
        metrics = sampler.runAll(nullptr, &report);
    } else {
        metrics = runner.runAll(nullptr, nullptr, &report);
    }
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    ComputedResult out;
    out.cacheable = report.allOk();
    if (!report.allOk()) {
        out.quarantined = report.quarantinedNames();
        std::lock_guard<std::mutex> lock(mutex_);
        if (session_)
            session_->recordSweep(report);
    }
    out.entry.hashHex = runConfigHashHex(cfg);
    out.entry.canonicalConfig = canonicalRunConfig(cfg);
    out.entry.names = report.survivorNames();

    // Exactly the batch tools' CSV: full Table II columns by schema
    // name, 6-significant-digit cells (core/report.cc).
    PipelineResult res;
    res.names = out.entry.names;
    res.rawMetrics = metrics;
    std::ostringstream csv;
    writeMetricsCsv(csv, res);
    out.entry.csv = csv.str();

    std::ostringstream mf;
    mf << "{\"tool\": \"" << jsonEscape(base_.tool)
       << "\", \"bds_version\": \"" << jsonEscape(bdsVersion())
       << "\", \"created\": \"" << isoNow() << "\", \"hash\": \""
       << out.entry.hashHex << "\", \"scale\": \"" << cfg.scaleName
       << "\", \"seed\": " << cfg.seed << ", \"machine\": \""
       << jsonEscape(cfg.machineSpec) << "\", \"sampled\": "
       << (cfg.sampling.enabled ? "true" : "false")
       << ", \"workloads\": " << out.entry.names.size()
       << ", \"compute_seconds\": " << jsonNumber(seconds) << "}\n";
    out.entry.manifestJson = mf.str();
    return out;
}

std::string
ServeEngine::projectPayload(const ResultEntry &entry,
                            const RequestRecord &req)
{
    const bool all_rows = req.workloadMask == 0xffffffffu;
    if (all_rows && req.metricMask == 0)
        return entry.csv; // the byte-identical full-width fast path

    std::istringstream in(entry.csv);
    MetricTable table = readMetricsCsv(in);
    MetricSet set =
        req.metricMask
            ? MetricSet::fromNames(metricNamesFromMask(req.metricMask))
            : MetricSet::tableII();
    Matrix aligned = alignMetricTable(table, set);

    std::vector<std::size_t> rows;
    if (all_rows) {
        for (std::size_t i = 0; i < table.names.size(); ++i)
            rows.push_back(i);
    } else {
        // Keep the cell's row order; requested workloads missing
        // from the entry (quarantined) are simply absent.
        for (const std::string &name :
             workloadNamesFromMask(req.workloadMask))
            for (std::size_t i = 0; i < table.names.size(); ++i)
                if (table.names[i] == name) {
                    rows.push_back(i);
                    break;
                }
    }

    PipelineResult res;
    res.metrics = set;
    res.metricLabels = set.names();
    res.rawMetrics = Matrix(rows.size(), set.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        res.names.push_back(table.names[rows[r]]);
        for (std::size_t c = 0; c < set.size(); ++c)
            res.rawMetrics(r, c) = aligned(rows[r], c);
    }
    std::ostringstream csv;
    writeMetricsCsv(csv, res);
    return csv.str();
}

ServeResponse
ServeEngine::handle(const RequestRecord &req)
{
    Tracer::global().counter("serve.requests", 1);
    TraceSpan span("serve.request");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests;
    }

    ServeResponse resp;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        if (req.op != static_cast<std::uint32_t>(ServeOp::Characterize))
            BDS_RAISE(ErrorCode::InvalidConfig,
                      "unsupported request op " << req.op);
        const RunConfig cfg = requestConfig(req);
        resp.hashHex = runConfigHashHex(cfg);

        ComputedResult result;
        const bool bypass = base_.serve.bypassStore
            || (req.flags & kServeFlagBypass);
        if (bypass) {
            Tracer::global().counter("serve.bypass", 1);
            Gate::Slot slot(*gate_);
            result = computeCell(cfg);
        } else {
            result = store_.getOrCompute(
                resp.hashHex,
                [&]() -> ComputedResult {
                    Gate::Slot slot(*gate_);
                    return computeCell(cfg);
                },
                &resp.hit);
        }
        resp.quarantined = result.quarantined;
        resp.payload = projectPayload(result.entry, req);
        resp.ok = true;
    } catch (const Error &e) {
        resp.code = e.code();
        resp.message = e.what();
        if (e.code() == ErrorCode::Overloaded) {
            Tracer::global().counter("serve.shed", 1);
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.shed;
        }
    } catch (const FatalError &e) {
        resp.code = ErrorCode::InvalidConfig;
        resp.message = e.what();
    } catch (const std::exception &e) {
        resp.code = ErrorCode::Internal;
        resp.message = e.what();
    }
    resp.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    Tracer::global().counter(resp.ok ? (resp.hit ? "serve.hits"
                                                 : "serve.misses")
                                     : "serve.errors",
                             1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!resp.ok)
            ++stats_.errors;
        else if (resp.hit)
            ++stats_.hits;
        else
            ++stats_.misses;
        if (resp.ok
            && (base_.serve.bypassStore
                || (req.flags & kServeFlagBypass)))
            ++stats_.bypassed;
    }
    return resp;
}

ServeStats
ServeEngine::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServeStats out = stats_;
    out.ckpt = ckptStats();
    out.store = storeStats();
    return out;
}

} // namespace bds
