/**
 * @file
 * ServeEngine: the transport-independent request handler of the
 * characterization service.
 *
 * One engine owns a ResultStore and a base RunConfig (the daemon's
 * resolved environment: worker threads, sampling detail knobs, the
 * fault policy and any armed injection spec). handle() resolves a
 * RequestRecord into a full RunConfig, content-addresses it with
 * runConfigHash(), and answers from the store — scheduling a
 * WorkloadRunner sweep under the fault layer only on a miss.
 *
 * handle() is thread-safe and never throws: every failure — an
 * invalid request, an injected fault, a quarantined sweep that
 * fail-fast rethrew — becomes an error response with the typed
 * ErrorCode, so one poisoned request can never take the daemon down
 * (the per-request quarantine contract). The engine holds no global
 * mutable state: concurrent requests share only the store (locked,
 * single-flight) and the process-wide observers (Tracer,
 * FaultInjector), which are armed once per process by the daemon's
 * Session, never per request.
 *
 * Overload shedding: a bounded admission queue sits ahead of the
 * in-flight gate. At most serve.maxQueue computes may be waiting for
 * a slot; a request beyond that is shed immediately with a typed
 * Overloaded error (`err overloaded` on the wire) instead of
 * queueing unboundedly — the daemon stays responsive under a
 * thundering herd, and clients get an honest retry signal. Cache
 * hits are never queued, never shed.
 *
 * Trace counters: serve.requests, serve.hits, serve.misses,
 * serve.errors, serve.bypass, serve.shed; spans serve.request /
 * serve.compute.
 */

#ifndef BDS_SERVE_ENGINE_H
#define BDS_SERVE_ENGINE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "fault/error.h"
#include "obs/runconfig.h"
#include "serve/request.h"
#include "serve/store.h"

namespace bds {

class Session;

/** What the engine answers one request with. */
struct ServeResponse
{
    /** True when a payload was produced. */
    bool ok = false;

    /** True when the payload came from the result store. */
    bool hit = false;

    /** The content address of the resolved configuration. */
    std::string hashHex;

    /** CSV payload (projected to the requested rows/columns). */
    std::string payload;

    /**
     * Workloads this request's sweep quarantined (empty on clean
     * runs and cache hits). The payload still carries the survivors;
     * the cell is not cached.
     */
    std::vector<std::string> quarantined;

    /** Failure classification when !ok. */
    ErrorCode code = ErrorCode::None;

    /** Failure message when !ok. */
    std::string message;

    /** Wall-clock spent answering, in seconds. */
    double seconds = 0.0;
};

/** Monotonic counters the engine keeps next to the trace counters. */
struct ServeStats
{
    std::uint64_t requests = 0; ///< requests handled
    std::uint64_t hits = 0;     ///< answered from the store
    std::uint64_t misses = 0;   ///< computed (and usually cached)
    std::uint64_t errors = 0;   ///< answered with an error response
    std::uint64_t bypassed = 0; ///< computed with the store bypassed
    std::uint64_t shed = 0;     ///< shed by the admission queue

    /**
     * Shared-store traffic of this process (publishes, evictions,
     * down/heal transitions, lease activity): populated from the
     * process-wide storeStats() when the snapshot is taken.
     */
    StoreStats store;

    /**
     * Interval checkpoint traffic of this process's sampled replays
     * (src/ckpt): populated from the process-wide ckptStats() when
     * the snapshot is taken, so the `stats` verb and --stats-json
     * show how much re-characterization the checkpoint cache saved.
     */
    CkptStats ckpt;
};

/** The transport-independent characterization service. */
class ServeEngine
{
  public:
    /**
     * @param base The daemon's resolved configuration. base.serve
     *        supplies the cache directory, in-flight bound and
     *        bypass switch.
     * @param session Optional: per-request sweep failures are
     *        recorded here so the daemon manifest carries them.
     */
    explicit ServeEngine(RunConfig base, Session *session = nullptr);

    /** Answer one request. Thread-safe; never throws. */
    ServeResponse handle(const RequestRecord &req);

    /** Counter snapshot. */
    ServeStats stats() const;

    /** The store (tests poke entries directly). */
    ResultStore &store() { return store_; }

    /**
     * Resolve a request into the full RunConfig its cell is keyed
     * by: the daemon's base config with the request's scale, seed
     * and sampled switch applied. Exposed so replay drivers and
     * tests can compute the hash a request will be served under.
     */
    RunConfig requestConfig(const RequestRecord &req) const;

  private:
    /**
     * Run the sweep for `cfg`. Quarantine info travels in the
     * returned ComputedResult so single-flight followers see it too.
     */
    ComputedResult computeCell(const RunConfig &cfg);

    /** Project an entry's CSV onto the request's rows/columns. */
    static std::string projectPayload(const ResultEntry &entry,
                                      const RequestRecord &req);

    RunConfig base_;
    ResultStore store_;
    Session *session_;
    unsigned maxInFlight_;

    mutable std::mutex mutex_; ///< guards stats_ and session_ use
    ServeStats stats_;

    /** Counting semaphore bounding concurrent sweeps. */
    struct Gate;
    std::shared_ptr<Gate> gate_;
};

} // namespace bds

#endif // BDS_SERVE_ENGINE_H
