/**
 * @file
 * bds_serve: the characterization-as-a-service daemon.
 *
 * Modes (docs/SERVING.md has the runbook):
 *
 *   bds_serve                      line protocol on stdin/stdout
 *   bds_serve --serve-socket P     line protocol on Unix socket P
 *   bds_serve --replay LOG         serve a binary request log, exit
 *
 * Extra flags on top of the common RunConfig set
 * (src/obs/runconfig.h; the BDS_SERVE_* environment configures the
 * same serve knobs, flags win):
 *
 *   --replay LOG        replay a binary request log, then exit
 *   --payload-dir DIR   mirror every response payload to DIR/<i>.csv
 *   --stats-json FILE   write the final counter snapshot as JSON
 *
 * All protocol traffic goes to stdout; diagnostics and the shutdown
 * stats line go to stderr, so piping responses stays clean.
 */

#include <csignal>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.h"
#include "obs/runconfig.h"
#include "obs/session.h"
#include "serve/server.h"

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: bds_serve [options]\n\n"
          "Characterization-as-a-service daemon with a content-\n"
          "addressed result store (docs/SERVING.md).\n\n"
          "modes:\n"
          "  (default)                 line protocol on stdin/stdout\n"
          "  --serve-socket PATH       line protocol on a Unix socket\n"
          "  --replay LOG              replay a binary request log, "
          "exit\n\n"
          "serve options (flags win over BDS_SERVE_*):\n"
          "  --serve-cache DIR         result-store directory\n"
          "  --serve-max-inflight N    concurrent sweep bound (0 = "
          "cores)\n"
          "  --serve-bypass            compute every request, skip "
          "the store\n"
          "  --serve-log FILE          append requests to a binary "
          "log\n"
          "  --payload-dir DIR         mirror payloads to DIR/<i>.csv\n"
          "  --stats-json FILE         final counters as JSON\n"
          "  --ckpt / --ckpt-dir DIR   interval checkpoint cache for\n"
          "                            sampled recomputes "
          "(docs/CHECKPOINT.md)\n\n"
          "plus the common BDS_* knobs: --scale/--seed/--threads/\n"
          "--machine/--sampled/--trace/--manifest... "
          "(src/obs/runconfig.h).\n";
}

void
writeStatsJson(const std::string &path, const bds::ServeStats &s)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        BDS_FATAL("cannot write --stats-json file '" << path << "'");
    out << "{\n"
        << "  \"requests\": " << s.requests << ",\n"
        << "  \"hits\": " << s.hits << ",\n"
        << "  \"misses\": " << s.misses << ",\n"
        << "  \"errors\": " << s.errors << ",\n"
        << "  \"bypassed\": " << s.bypassed << ",\n"
        << "  \"shed\": " << s.shed << ",\n"
        << "  \"store\": {\n"
        << "    \"publishes\": " << s.store.publishes << ",\n"
        << "    \"publish_skipped\": " << s.store.publishSkipped
        << ",\n"
        << "    \"evicted\": " << s.store.evicted << ",\n"
        << "    \"evicted_bytes\": " << s.store.evictedBytes << ",\n"
        << "    \"downs\": " << s.store.downs << ",\n"
        << "    \"heals\": " << s.store.heals << ",\n"
        << "    \"lease_acquires\": " << s.store.leaseAcquires
        << ",\n"
        << "    \"lease_waits\": " << s.store.leaseWaits << ",\n"
        << "    \"lease_takeovers\": " << s.store.leaseTakeovers
        << ",\n"
        << "    \"index_rebuilds\": " << s.store.indexRebuilds << "\n"
        << "  },\n"
        << "  \"ckpt\": {\n"
        << "    \"hits\": " << s.ckpt.hits << ",\n"
        << "    \"misses\": " << s.ckpt.misses << ",\n"
        << "    \"writes\": " << s.ckpt.writes << ",\n"
        << "    \"fallbacks\": " << s.ckpt.fallbacks << ",\n"
        << "    \"bytes_read\": " << s.ckpt.bytesRead << ",\n"
        << "    \"bytes_written\": " << s.ckpt.bytesWritten << "\n"
        << "  }\n"
        << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // A client (or stdout pipe) that vanishes mid-response must be a
    // write error for that request, never a SIGPIPE daemon death.
    std::signal(SIGPIPE, SIG_IGN);

    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &a : args)
        if (a == "--help" || a == "-h") {
            printUsage(std::cout);
            return 0;
        }

    try {
        bds::RunConfig cfg;
        cfg.tool = "bds_serve";
        cfg.scaleName = "quick";
        cfg.argv.assign(argv, argv + argc);
        cfg.applyEnv();
        std::vector<std::string> leftovers = cfg.applyArgs(args);
        cfg.serve.enabled = true;

        std::string replay_log, payload_dir, stats_json;
        for (auto it = leftovers.begin(); it != leftovers.end();) {
            auto take = [&](std::string *out) {
                if (it + 1 == leftovers.end())
                    BDS_FATAL(*it << " needs a value");
                it = leftovers.erase(it);
                *out = *it;
                it = leftovers.erase(it);
            };
            if (*it == "--replay")
                take(&replay_log);
            else if (*it == "--payload-dir")
                take(&payload_dir);
            else if (*it == "--stats-json")
                take(&stats_json);
            else
                BDS_FATAL("unknown bds_serve argument '" << *it
                          << "' (--help lists the options)");
        }

        bds::Session session(cfg);
        bds::ServeServer server(cfg, &session);
        if (!payload_dir.empty())
            server.setPayloadDir(payload_dir);

        if (!replay_log.empty()) {
            const bds::ReplaySummary sum = server.replayLog(replay_log);
            std::cerr << "bds_serve: replayed " << sum.requests
                      << " request(s) from " << replay_log << " in "
                      << sum.seconds << " s (" << sum.hits
                      << " hit(s), " << sum.errors << " error(s))\n";
        } else if (!cfg.serve.socketPath.empty()) {
            server.serveSocket(cfg.serve.socketPath);
        } else {
            server.serveStream(std::cin, std::cout);
        }

        const bds::ServeStats stats = server.engine().stats();
        std::cerr << "bds_serve: requests=" << stats.requests
                  << " hits=" << stats.hits
                  << " misses=" << stats.misses
                  << " errors=" << stats.errors
                  << " bypassed=" << stats.bypassed
                  << " shed=" << stats.shed << '\n';
        if (!stats_json.empty())
            writeStatsJson(stats_json, stats);
        session.noteArtifact(server.engine().store().dir());
        return stats.errors == stats.requests && stats.requests > 0
            ? 2
            : 0;
    } catch (const bds::FatalError &e) {
        std::cerr << "bds_serve: " << e.what() << "\n";
        return 1;
    } catch (const bds::PanicError &e) {
        std::cerr << "bds_serve: internal error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "bds_serve: " << e.what() << "\n";
        return 1;
    }
}
