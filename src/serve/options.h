/**
 * @file
 * Knobs for the characterization-as-a-service daemon (bds_serve).
 *
 * Kept dependency-free (strings and integers only) so RunConfig can
 * embed a ServeOptions without bds_obs linking the serving machinery;
 * ServeEngine/ServeServer (src/serve) interpret the knobs.
 *
 * Options-struct convention (shared with PipelineOptions,
 * SamplingOptions and CkptOptions — see docs/CHECKPOINT.md "One
 * options convention"):
 *  - `enabled` is the master switch and defaults to off;
 *  - directory fields end in `Dir`, file fields end in `Path`;
 *  - RunConfig is the only env/flag funnel — no struct reads
 *    getenv() itself.
 *
 * Environment / flags (resolved by RunConfig, strict like every
 * other BDS_* knob — garbage values are fatal, never silent
 * defaults):
 *   BDS_SERVE_SOCKET      = <path>   --serve-socket PATH
 *   BDS_SERVE_CACHE       = <dir>    --serve-cache DIR
 *   BDS_SERVE_MAX_INFLIGHT= <n>      --serve-max-inflight N
 *   BDS_SERVE_MAX_QUEUE   = <n>      --serve-max-queue N
 *   BDS_SERVE_BYPASS      = 0 | 1    --serve-bypass
 *   BDS_SERVE_LOG         = <path>   --serve-log PATH
 *   BDS_STORE_MAX_BYTES   = <bytes>  --store-max-bytes N
 */

#ifndef BDS_SERVE_OPTIONS_H
#define BDS_SERVE_OPTIONS_H

#include <cstdint>
#include <string>

namespace bds {

/** Configuration of the serving front end. */
struct ServeOptions
{
    /**
     * True inside a serving tool (bds_serve sets it). Controls only
     * whether manifests persist the serve block; the batch tools
     * still validate the BDS_SERVE_* environment strictly.
     */
    bool enabled = false;

    /**
     * Unix-domain socket to listen on. Empty — the default — serves
     * the line protocol on stdin/stdout instead.
     */
    std::string socketPath;

    /**
     * Directory of the content-addressed result store. One file per
     * distinct resolved configuration, named by its runConfigHash.
     * (The env knob stays BDS_SERVE_CACHE and the manifest wire key
     * stays "cache_dir" — on-disk/wire compatibility outlives field
     * spellings.)
     */
    std::string storeDir = "bds_serve_cache";

    /**
     * Maximum characterization sweeps computed concurrently; cache
     * hits are never throttled. 0 resolves to the hardware
     * concurrency.
     */
    unsigned maxInFlight = 0;

    /**
     * Bounded admission queue ahead of the in-flight gate: at most
     * this many computes may be *waiting* for an in-flight slot;
     * excess requests are shed with a typed `err overloaded` instead
     * of queueing unboundedly. 0 sheds anything beyond maxInFlight.
     * The default is deliberately generous — shedding is a safety
     * valve, not a scheduler.
     */
    unsigned maxQueue = 1024;

    /**
     * Byte budget of the result store (BDS_STORE_MAX_BYTES); entries
     * beyond it are evicted least-recently-used. 0 = unbounded, the
     * pre-budget behaviour.
     */
    std::uint64_t maxStoreBytes = 0;

    /**
     * Skip the result store entirely: every request recomputes and
     * nothing is written. For A/B-checking the store path itself.
     */
    bool bypassStore = false;

    /**
     * Durable request log: every accepted request is appended as a
     * fixed-size binary record (src/serve/request.h), replayable with
     * `bds_serve --replay` and bench/serve_replay. Empty = no log.
     */
    std::string logPath;

    // Deprecated field spellings, predating the one-convention
    // cleanup. Reference aliases of the fields above: reads and
    // writes keep working (and warn), new code names the real field.
    [[deprecated("use storeDir")]]
    std::string &cacheDir = storeDir;
    [[deprecated("use bypassStore")]]
    bool &bypassCache = bypassStore;
    [[deprecated("use logPath")]]
    std::string &requestLogPath = logPath;

    // The alias references pin the implicit copy operations to the
    // source object's members; copy the real fields instead. The
    // constructors (re)bind the aliases, which counts as a "use" —
    // silence that here so only genuinely stale call sites warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    ServeOptions() = default;
    ServeOptions(const ServeOptions &o)
        : enabled(o.enabled), socketPath(o.socketPath),
          storeDir(o.storeDir), maxInFlight(o.maxInFlight),
          maxQueue(o.maxQueue), maxStoreBytes(o.maxStoreBytes),
          bypassStore(o.bypassStore), logPath(o.logPath)
    {
    }
    ServeOptions &operator=(const ServeOptions &o)
    {
        enabled = o.enabled;
        socketPath = o.socketPath;
        storeDir = o.storeDir;
        maxInFlight = o.maxInFlight;
        maxQueue = o.maxQueue;
        maxStoreBytes = o.maxStoreBytes;
        bypassStore = o.bypassStore;
        logPath = o.logPath;
        return *this;
    }
#pragma GCC diagnostic pop
};

} // namespace bds

#endif // BDS_SERVE_OPTIONS_H
