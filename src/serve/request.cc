#include "serve/request.h"

#include <fstream>
#include <sstream>

#include "metrics/schema.h"
#include "obs/runconfig.h"
#include "uarch/machine.h"
#include "workloads/registry.h"

namespace bds {

namespace {

/** Split a comma-separated list; empty elements are InvalidConfig. */
std::vector<std::string>
splitList(const std::string &what, const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            BDS_RAISE(ErrorCode::InvalidConfig,
                      what << " has an empty name in '" << csv << "'");
        out.push_back(item);
    }
    if (out.empty())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  what << " must name at least one entry");
    return out;
}

/** Strict 0/1 switch for request fields. */
bool
parseFlag(const std::string &what, const std::string &value)
{
    if (value == "0")
        return false;
    if (value == "1")
        return true;
    BDS_RAISE(ErrorCode::InvalidConfig,
              what << " must be 0 or 1, got '" << value << "'");
}

/** Strict non-negative integer for request fields. */
std::uint64_t
parseRequestUint(const std::string &what, const std::string &value)
{
    if (value.empty()
        || value.find_first_not_of("0123456789") != std::string::npos)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  what << " must be a non-negative integer, got '"
                       << value << "'");
    return detail::parseUint(what, value);
}

/** Workload-name list to mask; unknown names are InvalidConfig. */
std::uint32_t
workloadMaskFromNames(const std::vector<std::string> &names)
{
    const std::vector<WorkloadId> all = allWorkloads();
    std::uint32_t mask = 0;
    for (const std::string &name : names) {
        bool found = false;
        for (std::size_t i = 0; i < all.size(); ++i)
            if (all[i].name() == name) {
                mask |= 1u << i;
                found = true;
                break;
            }
        if (!found)
            BDS_RAISE(ErrorCode::UnknownName,
                      "request names unknown workload '" << name
                          << "'");
    }
    return mask;
}

/**
 * Metric names on the wire spell spaces as '_' ("SSE FP" travels as
 * "SSE_FP"), because the line protocol splits tokens on whitespace.
 * No schema name contains '_', so the mapping is bijective.
 */
std::string
wireMetricName(std::string name)
{
    for (char &c : name)
        if (c == ' ')
            c = '_';
    return name;
}

std::string
unwireMetricName(std::string name)
{
    for (char &c : name)
        if (c == '_')
            c = ' ';
    return name;
}

/** Metric-name list to mask; unknown names are UnknownName. */
std::uint64_t
metricMaskFromNames(const std::vector<std::string> &names)
{
    std::uint64_t mask = 0;
    for (const std::string &name : names) {
        std::size_t idx = metricIndexByName(unwireMetricName(name));
        if (idx >= kNumMetrics)
            BDS_RAISE(ErrorCode::UnknownName,
                      "request names unknown metric '" << name << "'");
        mask |= 1ull << idx;
    }
    // Selecting every column is the full set; canonicalize to 0 so
    // the wire forms agree.
    if (mask == (1ull << kNumMetrics) - 1)
        mask = 0;
    return mask;
}

} // namespace

std::string
serveScaleName(std::uint32_t scale)
{
    switch (scale) {
    case 0:
        return "quick";
    case 1:
        return "standard";
    case 2:
        return "full";
    default:
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "request record has unknown scale index " << scale);
    }
}

std::uint32_t
serveScaleIndex(const std::string &name)
{
    if (name == "quick")
        return 0;
    if (name == "standard")
        return 1;
    if (name == "full")
        return 2;
    BDS_RAISE(ErrorCode::InvalidConfig,
              "request scale must be quick, standard or full, got '"
                  << name << "'");
}

std::string
serveMachineName(std::uint32_t machine)
{
    const std::vector<MachinePreset> &all = machinePresets();
    if (machine >= all.size())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "request record has machine index "
                      << machine << " beyond the " << all.size()
                      << "-preset registry (log from a newer build?)");
    return all[machine].name;
}

std::uint32_t
serveMachineIndex(const std::string &name)
{
    if (name.find('=') != std::string::npos)
        BDS_RAISE(ErrorCode::UnknownName,
                  "request machine '"
                      << name
                      << "' looks like an override spec; the wire "
                         "accepts registry preset names only");
    return static_cast<std::uint32_t>(machinePresetIndex(name));
}

std::vector<std::string>
workloadNamesFromMask(std::uint32_t mask)
{
    const std::vector<WorkloadId> all = allWorkloads();
    std::vector<std::string> out;
    for (std::size_t i = 0; i < all.size(); ++i)
        if (mask & (1u << i))
            out.push_back(all[i].name());
    return out;
}

std::vector<std::string>
metricNamesFromMask(std::uint64_t mask)
{
    std::vector<std::string> out;
    if (mask == 0)
        return out;
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        if (mask & (1ull << i))
            out.push_back(metricName(i));
    return out;
}

RequestRecord
parseRequestLine(const std::string &line)
{
    std::istringstream ss(line);
    std::string verb;
    ss >> verb;
    if (verb != "characterize")
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "unknown request verb '" << verb << "'");

    RequestRecord req;
    req.op = static_cast<std::uint32_t>(ServeOp::Characterize);
    req.scale = serveScaleIndex("quick");
    std::string token;
    while (ss >> token) {
        std::string::size_type eq = token.find('=');
        if (eq == std::string::npos)
            BDS_RAISE(ErrorCode::InvalidConfig,
                      "request token '" << token
                          << "' is not key=value");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "scale") {
            req.scale = serveScaleIndex(value);
        } else if (key == "seed") {
            req.seed = parseRequestUint("request seed", value);
        } else if (key == "sampled") {
            if (parseFlag("request sampled", value))
                req.flags |= kServeFlagSampled;
            else
                req.flags &= ~kServeFlagSampled;
        } else if (key == "bypass") {
            if (parseFlag("request bypass", value))
                req.flags |= kServeFlagBypass;
            else
                req.flags &= ~kServeFlagBypass;
        } else if (key == "machine") {
            req.machine = serveMachineIndex(value);
        } else if (key == "workloads") {
            req.workloadMask =
                value == "all"
                    ? 0xffffffffu
                    : workloadMaskFromNames(
                          splitList("request workloads", value));
        } else if (key == "metrics") {
            req.metricMask =
                value == "all" ? 0
                               : metricMaskFromNames(splitList(
                                     "request metrics", value));
        } else {
            BDS_RAISE(ErrorCode::InvalidConfig,
                      "request has unknown key '" << key << "'");
        }
    }
    return req;
}

std::string
formatRequestLine(const RequestRecord &req)
{
    std::ostringstream os;
    os << "characterize scale=" << serveScaleName(req.scale)
       << " seed=" << req.seed;
    if (req.flags & kServeFlagSampled)
        os << " sampled=1";
    if (req.flags & kServeFlagBypass)
        os << " bypass=1";
    if (req.machine != 0)
        os << " machine=" << serveMachineName(req.machine);
    if (req.workloadMask != 0xffffffffu) {
        os << " workloads=";
        const std::vector<std::string> names =
            workloadNamesFromMask(req.workloadMask);
        for (std::size_t i = 0; i < names.size(); ++i)
            os << (i ? "," : "") << names[i];
    }
    if (req.metricMask != 0) {
        os << " metrics=";
        const std::vector<std::string> names =
            metricNamesFromMask(req.metricMask);
        for (std::size_t i = 0; i < names.size(); ++i)
            os << (i ? "," : "") << wireMetricName(names[i]);
    }
    return os.str();
}

void
storeRequestLog(const std::string &path,
                const std::vector<RequestRecord> &requests)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        BDS_RAISE(ErrorCode::Io,
                  "cannot write request log '" << path << "'");
    const std::uint32_t magic = kRequestLogMagic;
    const std::uint32_t version = kRequestLogVersion;
    const std::uint32_t count =
        static_cast<std::uint32_t>(requests.size());
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&version),
              sizeof(version));
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const RequestRecord &req : requests)
        out.write(reinterpret_cast<const char *>(&req), sizeof(req));
    if (!out)
        BDS_RAISE(ErrorCode::Io,
                  "short write to request log '" << path << "'");
}

std::vector<RequestRecord>
loadRequestLog(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        BDS_RAISE(ErrorCode::Io,
                  "cannot open request log '" << path << "'");
    std::uint32_t magic = 0, version = 0, count = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in)
        BDS_RAISE(ErrorCode::Io,
                  "request log '" << path << "' is truncated (header)");
    if (magic != kRequestLogMagic)
        BDS_RAISE(ErrorCode::Io,
                  "'" << path << "' is not a bds request log "
                      << "(bad magic)");
    if (version != kRequestLogVersion && version != 1)
        BDS_RAISE(ErrorCode::Io,
                  "request log '" << path << "' has unsupported "
                      << "version " << version << " (expected "
                      << kRequestLogVersion << ")");
    // v1 records are a strict 32-byte prefix of the v2 layout — the
    // machine/reserved tail was appended, never reordered — so a v1
    // log reads as v2 records with machine 0 (the default, which is
    // exactly what every v1 request meant).
    const std::streamsize rec_bytes = static_cast<std::streamsize>(
        version == 1 ? kRequestRecordV1Bytes : sizeof(RequestRecord));
    std::vector<RequestRecord> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        RequestRecord req;
        in.read(reinterpret_cast<char *>(&req), rec_bytes);
        if (!in || in.gcount() != rec_bytes)
            BDS_RAISE(ErrorCode::Io,
                      "request log '" << path << "' declares " << count
                          << " records but ends after " << i);
        out.push_back(req);
    }
    char extra;
    if (in.read(&extra, 1))
        BDS_RAISE(ErrorCode::Io,
                  "request log '" << path << "' has trailing bytes "
                      << "beyond its declared " << count << " records");
    return out;
}

struct RequestLogWriter::Impl
{
    std::fstream out;
    std::string path;
};

RequestLogWriter::RequestLogWriter(const std::string &path)
    : impl_(new Impl)
{
    impl_->path = path;
    impl_->out.open(path, std::ios::binary | std::ios::out
                              | std::ios::trunc);
    if (!impl_->out) {
        delete impl_;
        BDS_RAISE(ErrorCode::Io,
                  "cannot write request log '" << path << "'");
    }
    const std::uint32_t magic = kRequestLogMagic;
    const std::uint32_t version = kRequestLogVersion;
    const std::uint32_t count = 0;
    impl_->out.write(reinterpret_cast<const char *>(&magic),
                     sizeof(magic));
    impl_->out.write(reinterpret_cast<const char *>(&version),
                     sizeof(version));
    impl_->out.write(reinterpret_cast<const char *>(&count),
                     sizeof(count));
    impl_->out.flush();
}

RequestLogWriter::~RequestLogWriter()
{
    delete impl_;
}

void
RequestLogWriter::append(const RequestRecord &req)
{
    std::fstream &out = impl_->out;
    out.seekp(0, std::ios::end);
    out.write(reinterpret_cast<const char *>(&req), sizeof(req));
    ++count_;
    // Patch the header count so a crash leaves a loadable prefix.
    out.seekp(2 * sizeof(std::uint32_t), std::ios::beg);
    out.write(reinterpret_cast<const char *>(&count_), sizeof(count_));
    out.flush();
    if (!out)
        BDS_RAISE(ErrorCode::Io, "short write to request log '"
                                     << impl_->path << "'");
}

} // namespace bds
