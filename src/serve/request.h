/**
 * @file
 * The serving request formats: the text line protocol clients speak
 * and the fixed-size binary record streams that make request logs
 * durable and replayable.
 *
 * A characterization request names a cell of the sweep space —
 * workload set x scale x seed x metric set x sim/sample config — in
 * one line:
 *
 *   characterize scale=quick seed=42 [sampled=0|1] [bypass=0|1]
 *                [machine=default|westmere|l3-4m|...]
 *                [workloads=all|H-Sort,S-Grep,...]
 *                [metrics=all|LOAD,ILP,SSE_FP,...]
 *
 * Metric names spell their spaces as '_' on the wire ("SSE FP"
 * travels as "SSE_FP") because tokens split on whitespace. The
 * machine key accepts registry preset names only — the record stores
 * a preset index, keeping it fixed-size; free-form key=value
 * override specs are a library/CLI feature (--machine), not a wire
 * one.
 *
 * parseRequestLine() resolves it strictly (unknown keys, unknown
 * workload or metric names, malformed integers are typed
 * InvalidConfig errors) into a RequestRecord; formatRequestLine()
 * renders the canonical text back, so text and binary forms
 * round-trip.
 *
 * The binary form follows the load_workload/store_workload idiom of
 * the index-benchmark literature: a small header (magic, version,
 * record count) followed by packed fixed-size records, so a million-
 * request log is one sequential read. Loading applies the same
 * hardening as the trace loader: bad magic, wrong version, truncated
 * records or an overstated count are typed Io errors, never silent
 * short reads.
 */

#ifndef BDS_SERVE_REQUEST_H
#define BDS_SERVE_REQUEST_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/error.h"

namespace bds {

/** Request verbs carried by a record. */
enum class ServeOp : std::uint32_t
{
    Characterize = 0, ///< run/fetch one characterization cell
};

/** RequestRecord.flags bits. */
enum : std::uint32_t
{
    kServeFlagSampled = 1u << 0, ///< sampled-simulation path
    kServeFlagBypass = 1u << 1,  ///< skip the result store
};

/**
 * One durable request: a fixed-size, trivially copyable record.
 * Integers are stored in host byte order; the log header's magic
 * doubles as an endianness check.
 */
struct RequestRecord
{
    std::uint32_t op = 0;    ///< ServeOp
    std::uint32_t scale = 0; ///< 0 quick / 1 standard / 2 full
    std::uint64_t seed = 42; ///< data-generation seed
    std::uint32_t flags = 0; ///< kServeFlag* bits

    /**
     * Requested workload rows: bit i selects allWorkloads()[i].
     * All-ones (the default) is the full 32-workload suite.
     */
    std::uint32_t workloadMask = 0xffffffffu;

    /**
     * Requested metric columns: bit i selects schema metric i.
     * 0 means the full Table II set (the common case stays the
     * byte-identical full-width CSV).
     */
    std::uint64_t metricMask = 0;

    /**
     * Machine geometry as an index into machinePresets() (0 is the
     * Table III default, so a v1 record — which lacks the field —
     * loads as the machine every v1 request implicitly meant).
     */
    std::uint32_t machine = 0;

    std::uint32_t reserved0 = 0; ///< padding, must be 0 on the wire
};

static_assert(sizeof(RequestRecord) == 40,
              "RequestRecord is the on-disk log format");

/** Scale name of a record's scale field; fatal on junk values. */
std::string serveScaleName(std::uint32_t scale);

/** Scale field value of a scale name; fatal on unknown names. */
std::uint32_t serveScaleIndex(const std::string &name);

/**
 * Preset name of a record's machine field; Error(InvalidConfig) on
 * indices beyond the registry (a log from a newer build).
 */
std::string serveMachineName(std::uint32_t machine);

/**
 * Machine field value of a preset name. Error(UnknownName) for
 * non-preset names, including override specs — the wire carries
 * registry presets only.
 */
std::uint32_t serveMachineIndex(const std::string &name);

/** Workload names selected by `mask`, in allWorkloads() order. */
std::vector<std::string> workloadNamesFromMask(std::uint32_t mask);

/**
 * Schema metric names selected by `mask`, in schema order; empty for
 * mask 0 (the full set).
 */
std::vector<std::string> metricNamesFromMask(std::uint64_t mask);

/**
 * Parse one protocol line into a record. Raises
 * Error(InvalidConfig) on unknown verbs, unknown keys, unknown
 * workload/metric names, or malformed values.
 */
RequestRecord parseRequestLine(const std::string &line);

/** The canonical text form of a record (parses back identically). */
std::string formatRequestLine(const RequestRecord &req);

/** Magic of a binary request log ("BRQ1" little-endian). */
constexpr std::uint32_t kRequestLogMagic = 0x31515242u;

/**
 * Version of the binary log layout. v1 records are 32 bytes (no
 * machine field); the loader still accepts v1 logs, resolving every
 * record to the default machine, so pre-DSE logs stay replayable.
 */
constexpr std::uint32_t kRequestLogVersion = 2;

/** Byte size of one record in a v1 log (no machine/reserved tail). */
constexpr std::size_t kRequestRecordV1Bytes = 32;

/**
 * Write a whole request log: header (magic, version, count) plus
 * packed records. Raises Error(Io) when the file cannot be written.
 */
void storeRequestLog(const std::string &path,
                     const std::vector<RequestRecord> &requests);

/**
 * Load a request log. Raises Error(Io) on unreadable files, bad
 * magic, unsupported versions, truncated records, or trailing bytes
 * beyond the declared count.
 */
std::vector<RequestRecord> loadRequestLog(const std::string &path);

/**
 * Append-friendly log writer for the daemon: writes the header up
 * front and patches the record count after every append, so a
 * crashed daemon leaves a loadable prefix instead of a torn file.
 */
class RequestLogWriter
{
  public:
    /** Create/truncate the log at `path`; Error(Io) on failure. */
    explicit RequestLogWriter(const std::string &path);
    ~RequestLogWriter();

    RequestLogWriter(const RequestLogWriter &) = delete;
    RequestLogWriter &operator=(const RequestLogWriter &) = delete;

    /** Append one record and update the header count. */
    void append(const RequestRecord &req);

    /** Records appended so far. */
    std::uint32_t count() const { return count_; }

  private:
    struct Impl;
    Impl *impl_;
    std::uint32_t count_ = 0;
};

} // namespace bds

#endif // BDS_SERVE_REQUEST_H
