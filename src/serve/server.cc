#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"
#include "obs/trace.h"

namespace bds {

namespace {

/** Trim one trailing '\r' (telnet-style clients). */
std::string
chomp(std::string line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

/** First whitespace-delimited token of a line. */
std::string
firstToken(const std::string &line)
{
    std::istringstream ss(line);
    std::string tok;
    ss >> tok;
    return tok;
}

/**
 * Book-keeping shared by the accept loop and its (detached) client
 * threads: the open client fds (so a quit can unblock peers parked
 * in read), the live-thread count (what shutdown waits on instead of
 * an ever-growing vector of thread handles), and the accepting flag.
 */
struct ClientRoster
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> fds;   ///< open client sockets
    std::size_t active = 0; ///< client threads still running
    bool running = true;    ///< daemon still accepting
};

} // namespace

ServeServer::ServeServer(RunConfig cfg, Session *session)
    : engine_(cfg, session), requestLogPath_(cfg.serve.logPath)
{
    if (!requestLogPath_.empty())
        log_ = std::make_unique<RequestLogWriter>(requestLogPath_);
}

ServeServer::~ServeServer() = default;

void
ServeServer::setPayloadDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        // Capture errno before the stream below can clobber it.
        const int err = errno;
        BDS_RAISE(ErrorCode::Io, "cannot create payload dir '" << dir
                                     << "': "
                                     << std::strerror(err));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    payloadDir_ = dir;
}

void
ServeServer::mirrorPayload(const std::string &payload)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (payloadDir_.empty())
            return;
        path = payloadDir_ + "/" + std::to_string(payloadIndex_++)
            + ".csv";
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << payload;
    if (!out)
        BDS_RAISE(ErrorCode::Io,
                  "cannot mirror payload to '" << path << "'");
}

void
ServeServer::writeResponse(std::ostream &out, std::uint64_t id,
                           const ServeResponse &resp)
{
    if (resp.ok) {
        out << "ok id=" << id << " hash=" << resp.hashHex
            << " hit=" << (resp.hit ? 1 : 0)
            << " bytes=" << resp.payload.size();
        if (!resp.quarantined.empty()) {
            out << " quarantined=";
            for (std::size_t i = 0; i < resp.quarantined.size(); ++i)
                out << (i ? "," : "") << resp.quarantined[i];
        }
        out << '\n' << resp.payload;
    } else {
        // Keep the error line one line: the message may carry
        // multi-word diagnostics but never newlines by construction.
        out << "err id=" << id << " code=" << errorCodeName(resp.code)
            << " msg=" << resp.message << '\n';
    }
    out.flush();
}

bool
ServeServer::handleLine(const std::string &raw, std::uint64_t id,
                        std::ostream &out)
{
    const std::string line = chomp(raw);
    const std::string verb = firstToken(line);

    if (verb.empty())
        return true; // blank line: keep the connection open
    if (verb == "quit") {
        out << "bye\n";
        out.flush();
        return false;
    }
    if (verb == "ping") {
        out << "pong\n";
        out.flush();
        return true;
    }
    if (verb == "stats") {
        const ServeStats s = engine_.stats();
        out << "stats requests=" << s.requests << " hits=" << s.hits
            << " misses=" << s.misses << " errors=" << s.errors
            << " bypassed=" << s.bypassed << " shed=" << s.shed
            << " ckpt_hits=" << s.ckpt.hits
            << " ckpt_misses=" << s.ckpt.misses
            << " ckpt_writes=" << s.ckpt.writes
            << " ckpt_fallbacks=" << s.ckpt.fallbacks
            << " ckpt_bytes_read=" << s.ckpt.bytesRead
            << " ckpt_bytes_written=" << s.ckpt.bytesWritten
            << " store_publishes=" << s.store.publishes
            << " store_publish_skipped=" << s.store.publishSkipped
            << " store_evicted=" << s.store.evicted
            << " store_evicted_bytes=" << s.store.evictedBytes
            << " store_downs=" << s.store.downs
            << " store_heals=" << s.store.heals
            << " store_lease_acquires=" << s.store.leaseAcquires
            << " store_lease_waits=" << s.store.leaseWaits
            << " store_lease_takeovers=" << s.store.leaseTakeovers
            << " store_index_rebuilds=" << s.store.indexRebuilds
            << '\n';
        out.flush();
        return true;
    }

    ServeResponse resp;
    try {
        const RequestRecord req = parseRequestLine(line);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (log_)
                log_->append(req);
        }
        resp = engine_.handle(req);
        // Inside the try: a mirror failure (full disk, unwritable
        // --payload-dir) must degrade to an err response, not an
        // exception that kills the daemon or a client thread.
        if (resp.ok)
            mirrorPayload(resp.payload);
    } catch (const Error &e) {
        resp.ok = false;
        resp.code = e.code();
        resp.message = e.what();
    } catch (const FatalError &e) {
        resp.ok = false;
        resp.code = ErrorCode::InvalidConfig;
        resp.message = e.what();
    }
    writeResponse(out, id, resp);
    return true;
}

void
ServeServer::serveStream(std::istream &in, std::ostream &out)
{
    std::string line;
    std::uint64_t id = 0;
    while (std::getline(in, line))
        if (!handleLine(line, id++, out))
            break;
}

void
ServeServer::serveSocket(const std::string &path)
{
    if (path.empty())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "serveSocket needs a socket path");
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "socket path too long: '" << path << "'");

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        const int err = errno;
        BDS_RAISE(ErrorCode::Io,
                  "socket(): " << std::strerror(err));
    }
    ::unlink(path.c_str()); // stale socket from a previous daemon
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        const int err = errno;
        ::close(fd);
        BDS_RAISE(ErrorCode::Io, "bind('" << path
                                          << "'): "
                                          << std::strerror(err));
    }
    if (::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        BDS_RAISE(ErrorCode::Io,
                  "listen(): " << std::strerror(err));
    }
    inform("bds_serve: listening on " + path);

    auto roster = std::make_shared<ClientRoster>();
    while (true) {
        const int client = ::accept(fd, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            break; // quit shut the listening socket, or a hard error
        }
        {
            std::lock_guard<std::mutex> lock(roster->mutex);
            if (!roster->running) {
                ::close(client);
                break;
            }
            roster->fds.push_back(client);
            ++roster->active;
        }
        // Detached: shutdown waits on roster->active, so a long-
        // lived daemon never accumulates unreaped thread handles.
        std::thread([this, client, fd, roster] {
            // Stream-ify the fd: read whole lines, answer framed.
            std::string buf;
            char chunk[4096];
            bool open = true;
            bool quit = false; // explicit quit verb, not a dead peer
            std::uint64_t id = 0;
            while (open) {
                const ssize_t n =
                    ::read(client, chunk, sizeof(chunk));
                if (n <= 0)
                    break;
                buf.append(chunk, static_cast<std::size_t>(n));
                std::size_t nl;
                while (open
                       && (nl = buf.find('\n')) != std::string::npos) {
                    const std::string line = buf.substr(0, nl);
                    buf.erase(0, nl + 1);
                    std::ostringstream out;
                    quit = !handleLine(line, id++, out);
                    open = !quit;
                    const std::string bytes = out.str();
                    std::size_t off = 0;
                    while (off < bytes.size()) {
                        // MSG_NOSIGNAL: a client that closed its
                        // socket mid-response is EPIPE here, not a
                        // SIGPIPE that kills the daemon.
                        const ssize_t w = ::send(
                            client, bytes.data() + off,
                            bytes.size() - off, MSG_NOSIGNAL);
                        if (w <= 0) {
                            // Dead peer: drop this client only; the
                            // daemon keeps serving everyone else.
                            open = false;
                            break;
                        }
                        off += static_cast<std::size_t>(w);
                    }
                }
            }
            {
                std::lock_guard<std::mutex> lock(roster->mutex);
                roster->fds.erase(std::remove(roster->fds.begin(),
                                              roster->fds.end(),
                                              client),
                                  roster->fds.end());
                ::close(client);
                if (quit && roster->running) {
                    // Only the explicit quit verb shuts the daemon
                    // down: wake the accept loop and every peer
                    // parked in read so shutdown cannot hang on a
                    // silent client. Under the lock (and before the
                    // active decrement releases serveSocket), every
                    // fd here is still live — no reuse races.
                    roster->running = false;
                    ::shutdown(fd, SHUT_RDWR);
                    for (int peer : roster->fds)
                        ::shutdown(peer, SHUT_RDWR);
                }
                --roster->active;
            }
            roster->cv.notify_all();
        }).detach();
    }
    {
        std::unique_lock<std::mutex> lock(roster->mutex);
        roster->cv.wait(lock, [&] { return roster->active == 0; });
    }
    ::close(fd);
    ::unlink(path.c_str());
}

ReplaySummary
ServeServer::replayLog(const std::string &path)
{
    const std::vector<RequestRecord> requests = loadRequestLog(path);
    ReplaySummary sum;
    const auto t0 = std::chrono::steady_clock::now();
    for (const RequestRecord &req : requests) {
        const ServeResponse resp = engine_.handle(req);
        ++sum.requests;
        if (!resp.ok)
            ++sum.errors;
        else if (resp.hit)
            ++sum.hits;
        if (resp.ok)
            mirrorPayload(resp.payload);
        sum.latencies.push_back(resp.seconds);
    }
    sum.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return sum;
}

} // namespace bds
