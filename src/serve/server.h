/**
 * @file
 * ServeServer: the transports of the characterization service.
 *
 * Three front-ends drive one ServeEngine:
 *
 *  - serveStream(): the text line protocol on an istream/ostream
 *    pair (the daemon's stdin/stdout mode, and what tests talk to a
 *    popen'd bds_serve through).
 *  - serveSocket(): the same protocol on a Unix-domain socket, one
 *    thread per accepted client, so concurrent clients exercise the
 *    store's single-flight path.
 *  - replayLog(): feed a binary request log (serve/request.h)
 *    straight into the engine and summarize — the CI smoke and the
 *    serve_replay bench both ride on this.
 *
 * Protocol, one request per line:
 *
 *   characterize scale=S seed=N [sampled=0|1] [bypass=0|1]
 *                [workloads=...] [metrics=...]
 *   ping | stats | quit
 *
 * Responses are length-prefixed so payloads never need escaping:
 *
 *   ok id=<n> hash=<hex> hit=0|1 bytes=<k>[ quarantined=a,b]\n
 *   <k payload bytes>
 *   err id=<n> code=<name> msg=<text>\n
 *
 * When the configuration names a request log
 * (BDS_SERVE_LOG/--serve-log), every characterize request that
 * arrives over a stream or socket is appended to it as a binary
 * record, making live traffic replayable.
 */

#ifndef BDS_SERVE_SERVER_H
#define BDS_SERVE_SERVER_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/engine.h"

namespace bds {

/** What replayLog() measured. */
struct ReplaySummary
{
    std::uint64_t requests = 0; ///< records replayed
    std::uint64_t hits = 0;     ///< served from the store
    std::uint64_t errors = 0;   ///< error responses
    double seconds = 0.0;       ///< wall clock for the whole replay

    /** Per-request latencies, seconds, log order. */
    std::vector<double> latencies;
};

/** The daemon: transports around one ServeEngine. */
class ServeServer
{
  public:
    /**
     * @param cfg The daemon's resolved configuration (cfg.serve
     *        carries the transport/cache knobs).
     * @param session Optional manifest sink, passed to the engine.
     */
    explicit ServeServer(RunConfig cfg, Session *session = nullptr);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Serve the line protocol until EOF or a `quit` line. Thread-safe
     * against other transports of the same server.
     */
    void serveStream(std::istream &in, std::ostream &out);

    /**
     * Bind a Unix-domain socket at `path` (unlinking any stale one)
     * and serve accepted clients, one thread each, until a client
     * sends `quit`. Raises Error(Io) when the socket cannot be bound.
     */
    void serveSocket(const std::string &path);

    /** Replay a binary request log through the engine. */
    ReplaySummary replayLog(const std::string &path);

    /**
     * Mirror every response payload into `dir` as
     * <request-index>.csv (creating the directory). The CI smoke
     * compares these files byte-for-byte against batch-mode output.
     */
    void setPayloadDir(const std::string &dir);

    /** The engine behind the transports. */
    ServeEngine &engine() { return engine_; }

  private:
    /**
     * Handle one protocol line; returns false when the connection
     * should close (quit). `id` is the per-connection request index.
     */
    bool handleLine(const std::string &line, std::uint64_t id,
                    std::ostream &out);

    /** Write one response in the framed format. */
    static void writeResponse(std::ostream &out, std::uint64_t id,
                              const ServeResponse &resp);

    /** Mirror a payload to the payload dir (if configured). */
    void mirrorPayload(const std::string &payload);

    ServeEngine engine_;
    std::string requestLogPath_;

    std::mutex mutex_; ///< guards log_, payloadDir_, payloadIndex_
    std::unique_ptr<RequestLogWriter> log_;
    std::string payloadDir_;
    std::uint64_t payloadIndex_ = 0;
};

} // namespace bds

#endif // BDS_SERVE_SERVER_H
