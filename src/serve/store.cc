#include "serve/store.h"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <sys/types.h>

#include "common/log.h"
#include "fault/error.h"
#include "serve/confighash.h"

namespace bds {

namespace {

/** Read one header line; Error(Io) on EOF. */
std::string
readLine(std::istream &is, const std::string &what)
{
    std::string line;
    if (!std::getline(is, line))
        BDS_RAISE(ErrorCode::Io,
                  what << ": truncated result entry (unexpected EOF)");
    return line;
}

/** Parse "<key> <value>" where value is a non-negative integer. */
std::uint64_t
readSizeField(std::istream &is, const std::string &what,
              const std::string &key)
{
    const std::string line = readLine(is, what);
    std::istringstream ss(line);
    std::string k;
    std::uint64_t v = 0;
    if (!(ss >> k >> v) || k != key)
        BDS_RAISE(ErrorCode::Io, what << ": expected '" << key
                                      << " <n>', got '" << line << "'");
    return v;
}

/** Read exactly `n` payload bytes; Error(Io) on short reads. */
std::string
readBytes(std::istream &is, const std::string &what, std::uint64_t n,
          const std::string &label)
{
    std::string out;
    // The size field comes from the (possibly corrupt) entry itself:
    // an implausible value must stay a typed Io error, not a
    // length_error/bad_alloc that escapes the corrupt-entry recovery.
    try {
        out.resize(static_cast<std::size_t>(n));
    } catch (const std::exception &) {
        BDS_RAISE(ErrorCode::Io,
                  what << ": " << label << " declares implausible size "
                       << n << " (corrupt entry)");
    }
    is.read(out.data(), static_cast<std::streamsize>(n));
    if (is.gcount() != static_cast<std::streamsize>(n))
        BDS_RAISE(ErrorCode::Io,
                  what << ": " << label << " payload truncated ("
                       << is.gcount() << " of " << n << " bytes)");
    return out;
}

} // namespace

void
writeResultEntry(std::ostream &os, const ResultEntry &entry)
{
    os << "BDSRESULT " << kResultStoreVersion << '\n'
       << "hash " << entry.hashHex << '\n'
       << "config_bytes " << entry.canonicalConfig.size() << '\n'
       << entry.canonicalConfig
       << "names " << entry.names.size() << '\n';
    for (const std::string &name : entry.names)
        os << name << '\n';
    os << "manifest_bytes " << entry.manifestJson.size() << '\n'
       << entry.manifestJson
       << "csv_fnv " << toHex64(fnv1a64(entry.csv)) << '\n'
       << "csv_bytes " << entry.csv.size() << '\n'
       << entry.csv
       << "END\n";
}

ResultEntry
readResultEntry(std::istream &is, const std::string &what)
{
    ResultEntry entry;

    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string magic;
        unsigned version = 0;
        if (!(ss >> magic >> version) || magic != "BDSRESULT")
            BDS_RAISE(ErrorCode::Io,
                      what << ": not a bds result entry (bad magic)");
        if (version != kResultStoreVersion)
            BDS_RAISE(ErrorCode::Io,
                      what << ": unsupported result-entry version "
                           << version << " (expected "
                           << kResultStoreVersion << ")");
    }
    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string key;
        if (!(ss >> key >> entry.hashHex) || key != "hash"
            || entry.hashHex.size() != 16)
            BDS_RAISE(ErrorCode::Io,
                      what << ": malformed hash line '" << line << "'");
    }
    entry.canonicalConfig = readBytes(
        is, what, readSizeField(is, what, "config_bytes"), "config");
    const std::uint64_t names = readSizeField(is, what, "names");
    for (std::uint64_t i = 0; i < names; ++i)
        entry.names.push_back(readLine(is, what));
    entry.manifestJson = readBytes(
        is, what, readSizeField(is, what, "manifest_bytes"),
        "manifest");
    std::string declared_fnv;
    {
        const std::string line = readLine(is, what);
        std::istringstream ss(line);
        std::string key;
        if (!(ss >> key >> declared_fnv) || key != "csv_fnv"
            || declared_fnv.size() != 16)
            BDS_RAISE(ErrorCode::Io,
                      what << ": malformed csv_fnv line '" << line
                           << "'");
    }
    entry.csv = readBytes(is, what,
                          readSizeField(is, what, "csv_bytes"), "csv");
    if (toHex64(fnv1a64(entry.csv)) != declared_fnv)
        BDS_RAISE(ErrorCode::Io,
                  what << ": csv payload checksum mismatch "
                       << "(corrupt entry)");
    if (readLine(is, what) != "END")
        BDS_RAISE(ErrorCode::Io,
                  what << ": missing END sentinel (truncated entry)");
    return entry;
}

struct ResultStore::Flight
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ComputedResult result;
    std::exception_ptr error;
};

namespace {

SharedStoreOptions
resultStoreOptions(std::string dir, std::uint64_t maxBytes)
{
    SharedStoreOptions opts;
    opts.dir = std::move(dir);
    opts.suffix = ".result";
    opts.maxBytes = maxBytes;
    return opts;
}

} // namespace

ResultStore::ResultStore(std::string dir, std::uint64_t maxBytes)
    : backend_(resultStoreOptions(std::move(dir), maxBytes))
{
}

std::string
ResultStore::entryName(const std::string &hashHex)
{
    return hashHex + ".result";
}

std::string
ResultStore::entryPath(const std::string &hashHex) const
{
    return backend_.entryPath(entryName(hashHex));
}

bool
ResultStore::load(const std::string &hashHex, ResultEntry *out) const
{
    const std::string path = entryPath(hashHex);
    std::string bytes;
    if (!backend_.read(entryName(hashHex), &bytes))
        return false;
    std::istringstream in(bytes);
    ResultEntry entry = readResultEntry(in, path);
    if (entry.hashHex != hashHex)
        BDS_RAISE(ErrorCode::Io,
                  path << ": entry is keyed to " << entry.hashHex
                       << ", expected " << hashHex);
    *out = std::move(entry);
    return true;
}

bool
ResultStore::store(const ResultEntry &entry) const
{
    std::ostringstream out;
    writeResultEntry(out, entry);
    return backend_.publish(entryName(entry.hashHex), out.str());
}

bool
ResultStore::tryLoad(const std::string &hashHex, ResultEntry *out) const
{
    try {
        return load(hashHex, out);
    } catch (const std::exception &e) {
        // Corrupt/truncated entry: report, recompute, replace.
        // std::exception, not just Error, so no corruption mode can
        // dodge the recompute path.
        warn(std::string("result store: dropping corrupt entry: ")
             + e.what());
        return false;
    }
}

ComputedResult
ResultStore::getOrCompute(const std::string &hashHex,
                          const std::function<ComputedResult()> &compute,
                          bool *hit)
{
    *hit = false;

    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = inflight_.find(hashHex);
        if (it != inflight_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<Flight>();
            inflight_[hashHex] = flight;
            leader = true;
        }
    }

    if (!leader) {
        // Someone else is computing this cell right now: wait for
        // their result instead of duplicating a whole sweep. An
        // uncacheable (quarantined) result is not a hit — the
        // follower inherits its quarantine list and must report it.
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        *hit = flight->result.cacheable;
        return flight->result;
    }

    ComputedResult result;
    std::exception_ptr error;
    try {
        ResultEntry cached;
        bool have = tryLoad(hashHex, &cached);
        if (!have) {
            // Cross-process single-flight: take (or wait out) the
            // entry's lease so only one daemon computes this cell.
            // A waiter whose wait ends with the entry on disk — or a
            // leader whose lease arrived after the previous holder
            // published — re-reads instead of recomputing. A null
            // lease without entryAppeared means the store is down or
            // the lease machinery failed: compute uncoordinated,
            // correctness over deduplication.
            FlightTicket ticket =
                backend_.singleFlight(entryName(hashHex));
            have = tryLoad(hashHex, &cached);
            if (!have) {
                result = compute();
                if (result.cacheable)
                    store(result.entry);
            }
        }
        if (have) {
            *hit = true;
            result.entry = std::move(cached);
        }
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(hashHex);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->result = result;
        flight->error = error;
        flight->done = true;
    }
    flight->cv.notify_all();
    if (error)
        std::rethrow_exception(error);
    return result;
}

} // namespace bds
