/**
 * @file
 * The content-addressed result store: disk-backed, versioned cache
 * entries keyed by runConfigHash(), so a repeated characterization
 * request is a file read instead of a re-simulation.
 *
 * An entry holds everything needed to answer any projection of its
 * cell — the full-suite 45-metric CSV exactly as the batch tools
 * write it (byte-identical responses are the contract), the row
 * labels, the canonical configuration text that hashed to the key
 * (audit trail + collision tripwire), and a per-request mini
 * manifest. The payload carries an FNV checksum; loading verifies
 * magic, version, byte counts, the checksum and the END sentinel, so
 * a corrupt or truncated entry is a typed Io error the serving layer
 * converts into a transparent recompute (the same hardening idiom as
 * the trace loader).
 *
 * The store sits on the shared-storage layer (src/store/shared.h,
 * docs/STORAGE.md): publishes are atomic and durable (temp + fsync +
 * rename), the directory honours the BDS_STORE_MAX_BYTES budget with
 * LRU eviction, and any filesystem failure degrades to store-down
 * mode — requests keep computing correct results, they just stop
 * being cached until the disk heals.
 *
 * Single-flight is two-level. Within a process, getOrCompute()
 * deduplicates concurrent same-key requests: one computes, the rest
 * wait for its result. Across processes, the per-process leader
 * takes the entry's lease file: exactly one daemon computes a given
 * cell while the other daemons' leaders wait for its publish (or
 * deterministically take over if it dies or wedges).
 */

#ifndef BDS_SERVE_STORE_H
#define BDS_SERVE_STORE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/shared.h"

namespace bds {

/**
 * Version of the on-disk entry layout. v2 retires every v1 entry:
 * v1 cells were keyed by a config hash that could not distinguish
 * machine geometries, so replaying them against v2 keys could alias
 * results across machines. A v1 entry on disk is a typed Io error
 * from readResultEntry(), which getOrCompute() treats like any other
 * corrupt entry — recompute and overwrite, never crash.
 */
constexpr unsigned kResultStoreVersion = 2;

/** One cached characterization cell. */
struct ResultEntry
{
    /** The store key: runConfigHashHex() of the resolved config. */
    std::string hashHex;

    /** canonicalRunConfig() text that produced hashHex. */
    std::string canonicalConfig;

    /** Surviving workload labels, matrix row order. */
    std::vector<std::string> names;

    /**
     * The metric matrix as CSV bytes, exactly what writeMetricsCsv()
     * emits for the full Table II sweep of this cell.
     */
    std::string csv;

    /**
     * Per-request manifest: a small JSON object recording tool,
     * library version, creation time and compute wall-clock.
     */
    std::string manifestJson;
};

/** What a getOrCompute() callback returns. */
struct ComputedResult
{
    ResultEntry entry;

    /**
     * False keeps the entry out of the store — a quarantined sweep
     * is incomplete by design and must never masquerade as the
     * full-suite cell.
     */
    bool cacheable = true;

    /**
     * Workloads the sweep quarantined (empty on clean computes and
     * disk hits). Carried through the single-flight handoff so a
     * follower of a quarantined compute can report the missing rows
     * instead of passing the survivor-only payload off as a clean
     * full-suite hit.
     */
    std::vector<std::string> quarantined;
};

/** Disk-backed content-addressed store with single-flight compute. */
class ResultStore
{
  public:
    /**
     * Open the store directory, creating it if needed.
     * Error(InvalidConfig) when `dir` is empty; an *uncreatable*
     * directory opens the store in down mode (every request
     * computes, nothing caches) instead of failing the daemon.
     * `maxBytes` bounds the entry bytes on disk (LRU eviction);
     * 0 = unbounded.
     */
    explicit ResultStore(std::string dir, std::uint64_t maxBytes = 0);

    /** The entry file of a key. */
    std::string entryPath(const std::string &hashHex) const;

    /** The store directory. */
    const std::string &dir() const { return backend_.dir(); }

    /** True while the backing store is degraded (not caching). */
    bool storeDown() const { return backend_.down(); }

    /**
     * Load the entry for `hashHex`. Returns false when absent (or
     * the store is down); raises Error(Io) when present but corrupt,
     * truncated, of a foreign version, or keyed to a different hash.
     */
    bool load(const std::string &hashHex, ResultEntry *out) const;

    /**
     * Durably persist an entry (temp + fsync + rename), then enforce
     * the byte budget. Never throws: false means the entry was not
     * cached (store down / disk failure) — the computed result is
     * still valid for the caller.
     */
    bool store(const ResultEntry &entry) const;

    /**
     * The serving fast path: return the cached entry for `hashHex`
     * or run `compute` exactly once — concurrent same-key callers
     * wait for the winner's result instead of recomputing, and a
     * corrupt cache file is recomputed and replaced transparently.
     * Exceptions from `compute` propagate to every waiting caller
     * and nothing is cached.
     *
     * @param hit Set to true iff the result is cache-backed: a disk
     *        read, or a single-flight wait for a cacheable compute.
     *        A follower of an uncacheable (quarantined) compute is
     *        not a hit — its payload is survivor-only.
     */
    ComputedResult getOrCompute(const std::string &hashHex,
                                const std::function<ComputedResult()> &compute,
                                bool *hit);

  private:
    /** In-flight computation shared by concurrent same-key callers. */
    struct Flight;

    /** Entry filename of a key ("<hash>.result"). */
    static std::string entryName(const std::string &hashHex);

    /** load() with corrupt entries demoted to a warned miss. */
    bool tryLoad(const std::string &hashHex, ResultEntry *out) const;

    /** Shared-storage backend (leases, budget, degradation); mutable
     *  because reads bump recency and the down flag. */
    mutable SharedStore backend_;
    std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Flight>> inflight_;
};

/** Serialize an entry to the on-disk format (tests, inspection). */
void writeResultEntry(std::ostream &os, const ResultEntry &entry);

/**
 * Parse an entry; `what` names the source in diagnostics. Raises
 * Error(Io) on any structural violation.
 */
ResultEntry readResultEntry(std::istream &is, const std::string &what);

} // namespace bds

#endif // BDS_SERVE_STORE_H
