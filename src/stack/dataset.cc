#include "stack/dataset.h"

#include "common/log.h"

namespace bds {

std::uint64_t
Dataset::totalRecords() const
{
    std::uint64_t n = 0;
    for (const Partition &p : parts_)
        n += p.host.size();
    return n;
}

std::uint64_t
Dataset::totalBytes() const
{
    std::uint64_t n = 0;
    for (const Partition &p : parts_)
        n += p.ext.bytes();
    return n;
}

void
Dataset::addPartition(AddressSpace &space, std::vector<Record> host,
                      std::uint32_t record_bytes)
{
    if (record_bytes < sizeof(Record))
        BDS_FATAL("record bytes " << record_bytes
                  << " smaller than the logical record");
    Partition p;
    p.ext.recordBytes = record_bytes;
    p.ext.count = host.size();
    p.ext.base = space.allocate(
        Region::Heap, p.ext.count * record_bytes + 64);
    p.host = std::move(host);
    parts_.push_back(std::move(p));
}

} // namespace bds
