/**
 * @file
 * Distributed-dataset abstraction shared by both stack engines.
 *
 * A Dataset is a list of partitions. Each partition pairs *host*
 * records (real values the algorithms compute on) with a *simulated*
 * address extent (where those records live in the simulated node's
 * heap). Engines decide how the simulated addresses are touched: the
 * MapReduce engine streams records through small reused buffers,
 * while the RDD engine reads the resident extent directly — the
 * mechanism behind the paper's data-footprint observations.
 */

#ifndef BDS_STACK_DATASET_H
#define BDS_STACK_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/memlayout.h"

namespace bds {

class ExecContext;

/** One logical record: a key and a value the algorithms act on. */
struct Record
{
    std::uint64_t key = 0;
    std::uint64_t value = 0;
};

/** A contiguous simulated address range holding fixed-size records. */
struct SimExtent
{
    std::uint64_t base = 0;        ///< first byte
    std::uint32_t recordBytes = 16; ///< serialized record size
    std::uint64_t count = 0;       ///< number of records

    /** Simulated address of record i. */
    std::uint64_t
    addrOf(std::uint64_t i) const
    {
        return base + i * recordBytes;
    }

    /** Total bytes covered. */
    std::uint64_t bytes() const { return count * recordBytes; }
};

/** One partition: host records plus their simulated extent. */
struct Partition
{
    std::vector<Record> host; ///< real record values
    SimExtent ext;            ///< simulated residence
};

/** A partitioned dataset. */
class Dataset
{
  public:
    Dataset() = default;

    /** Build with a name for diagnostics. */
    explicit Dataset(std::string name) : name_(std::move(name)) {}

    /** Dataset name. */
    const std::string &name() const { return name_; }

    /** Partitions (mutable for builders). */
    std::vector<Partition> &partitions() { return parts_; }

    /** Partitions. */
    const std::vector<Partition> &partitions() const { return parts_; }

    /** Total records over all partitions. */
    std::uint64_t totalRecords() const;

    /** Total simulated bytes over all partitions. */
    std::uint64_t totalBytes() const;

    /**
     * Append a partition of host records, allocating its simulated
     * extent from the heap.
     */
    void addPartition(AddressSpace &space, std::vector<Record> host,
                      std::uint32_t record_bytes);

    /**
     * Whether the extents already hold the data in simulated memory
     * (an RDD engine output / cached RDD). Non-resident datasets are
     * read from "HDFS" through the kernel path on first use.
     */
    bool resident() const { return resident_; }

    /** Mark residency (set by the engines). */
    void setResident(bool r) { resident_ = r; }

  private:
    std::string name_;
    std::vector<Partition> parts_;
    bool resident_ = false;
};

/** Key/value consumer used by map and reduce user functions. */
class Emitter
{
  public:
    virtual ~Emitter() = default;

    /**
     * Emit one key/value pair.
     * @param ctx The emitting task's execution context.
     * @param key Output key.
     * @param value Output value.
     */
    virtual void emit(ExecContext &ctx, std::uint64_t key,
                      std::uint64_t value) = 0;
};

} // namespace bds

#endif // BDS_STACK_DATASET_H
