#include "stack/engine.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

StackProfile
hadoopProfile()
{
    StackProfile p;
    p.name = "Hadoop";
    // Hadoop 1.0.2's src/ is ~67 MB; the resident framework
    // instruction working set is modelled as 2048 functions spread
    // over ~2 MB of text.
    p.fwFunctions = 2048;
    p.fwFnBodyBytes = 128;
    p.fwFnStrideBytes = 1024;
    p.fwCallZipf = 0.95; // hot dispatch head, long cold tail
    p.fwCallsPerRecord = 7;
    p.fwIntOpsPerCall = 2; // dispatch-heavy interpreted paths
    // Task-runtime state (JobConf, counters, serializer graphs,
    // buffer metadata) spans ~128 pages: inside STLB reach, beyond
    // the first-level DTLB.
    p.fwStateBytes = 1 << 19;
    p.sharedFwState = false; // one JVM per task
    // HDFS's data path is the expensive one: reads arrive over the
    // datanode socket (two copies) with CRC verification, and writes
    // go down a replication pipeline.
    p.ioChunkBytes = 32 * 1024;
    p.pageCacheBytes = 1 << 20;
    p.kernelCallsPerIo = 6;
    p.ioCopies = 2;
    p.ioChecksum = true;
    p.outputReplication = 2;
    p.streamBufferBytes = 256 * 1024;
    p.sortBufferBytes = 512 * 1024;
    p.inMemoryShuffle = false;
    p.cacheInput = false;
    p.uopsPerComplexInstr = 4; // Writable serialization is branchy
    p.serializationStores = 3; // object churn: allocate + field writes
    p.gcAllocThreshold = 4096;
    p.gcSurvivorBytes = 384 * 1024; // big per-task live sets
    return p;
}

StackProfile
sparkProfile()
{
    StackProfile p;
    p.name = "Spark";
    // Spark 0.8.1 is ~11 MB of source, and its per-record path is a
    // tight iterator pipeline: a small hot code image.
    p.fwFunctions = 192;
    p.fwFnBodyBytes = 128;
    p.fwFnStrideBytes = 512;
    p.fwCallZipf = 0.8;
    p.fwCallsPerRecord = 4;
    p.fwIntOpsPerCall = 6; // JIT-fused arithmetic-dense iterators
    p.fwStateBytes = 1 << 15;
    p.sharedFwState = true; // one executor JVM per node
    p.ioChunkBytes = 128 * 1024;
    p.pageCacheBytes = 1 << 20;
    p.kernelCallsPerIo = 3;
    p.ioCopies = 1;
    p.ioChecksum = false;
    p.outputReplication = 1;
    p.streamBufferBytes = 0;      // reads resident partitions directly
    p.sortBufferBytes = 0;        // shuffle buckets live in the heap
    p.inMemoryShuffle = true;
    p.cacheInput = true;
    p.uopsPerComplexInstr = 2;
    p.serializationStores = 1; // aggregator object reuse
    p.gcAllocThreshold = 4096;
    p.gcSurvivorBytes = 128 * 1024; // compact iterator state
    return p;
}

StackEngine::StackEngine(ExecTarget &sys, AddressSpace &space,
                         StackProfile profile, std::uint64_t seed)
    : sys_(sys), space_(space), profile_(std::move(profile)),
      rng_(seed, 0x5eed5eedULL),
      fwImage_(space, Region::FrameworkCode),
      kernelImage_(space, Region::KernelCode),
      fwCallDist_(profile_.fwFunctions, profile_.fwCallZipf)
{
    if (profile_.fwFunctions == 0)
        BDS_FATAL("stack needs at least one framework function");
    if (profile_.fwFnStrideBytes < profile_.fwFnBodyBytes)
        BDS_FATAL("framework fn stride smaller than body");

    fwFns_.reserve(profile_.fwFunctions);
    for (unsigned i = 0; i < profile_.fwFunctions; ++i) {
        fwFns_.push_back(fwImage_.defineFunction(profile_.fwFnBodyBytes));
        // Padding models cold code between the hot entry paths; the
        // varying extra pad keeps function starts from aliasing the
        // same cache sets (real binaries are not set-aligned).
        std::uint32_t pad = profile_.fwFnStrideBytes
            - profile_.fwFnBodyBytes + 64 * (i % 7);
        space_.allocate(Region::FrameworkCode, pad);
    }

    for (unsigned i = 0; i < 64; ++i) {
        kernelFns_.push_back(kernelImage_.defineFunction(256));
        space_.allocate(Region::KernelCode, 64 * (i % 5));
    }

    if (profile_.sharedFwState) {
        std::uint64_t shared =
            space_.allocate(Region::Heap, profile_.fwStateBytes);
        fwStateBase_.assign(sys_.numCores(), shared);
    } else {
        for (unsigned c = 0; c < sys_.numCores(); ++c)
            fwStateBase_.push_back(
                space_.allocate(Region::Heap, profile_.fwStateBytes));
    }

    for (unsigned c = 0; c < sys_.numCores(); ++c) {
        pageCacheBase_.push_back(
            space_.allocate(Region::KernelBuffer, profile_.pageCacheBytes));
        socketBufBase_.push_back(
            space_.allocate(Region::KernelBuffer, 128 * 1024));
        ctxs_.push_back(std::make_unique<ExecContext>(sys_, c, fwFns_[0]));
        fwCursor_.push_back(c * 17); // decorrelate per-core rotations
        survivorBase_.push_back(
            space_.allocate(Region::Heap, 2ULL * profile_.gcSurvivorBytes));
        allocCount_.push_back(0);
        survivorFlip_.push_back(false);
    }
}

ExecContext &
StackEngine::taskCtx(unsigned task)
{
    return *ctxs_[task % ctxs_.size()];
}

void
StackEngine::frameworkWork(ExecContext &ctx, unsigned calls)
{
    unsigned core = ctx.core();
    for (unsigned i = 0; i < calls; ++i) {
        // Mix of hot (Zipf head) and rotating cold call targets.
        std::size_t target;
        if (i % 5 == 4) {
            fwCursor_[core] = (fwCursor_[core] + 1) % fwFns_.size();
            target = fwCursor_[core];
        } else {
            target = fwCallDist_.sample(rng_);
        }
        ctx.call(fwFns_[target]);
        // Framework functions read their state objects: mostly the
        // hot head (counters, current buffers), with a tail over the
        // whole state footprint (conf lookups, serializer graphs) —
        // cache-friendly but TLB-diverse.
        std::uint64_t span = rng_.next() % 10 < 9
            ? std::min<std::uint64_t>(65536, profile_.fwStateBytes)
            : profile_.fwStateBytes;
        std::uint64_t state_off = (rng_.next() % span) & ~7ULL;
        ctx.load(fwStateBase_[core] + state_off);
        ctx.intOps(profile_.fwIntOpsPerCall);
        ctx.branch((state_off & 64) != 0);
        ctx.ret();
    }
}

void
StackEngine::serializationWork(ExecContext &ctx, unsigned records)
{
    unsigned core = ctx.core();
    for (unsigned i = 0; i < records; ++i) {
        ctx.microcoded(profile_.uopsPerComplexInstr);
        for (unsigned s = 0; s < profile_.serializationStores; ++s) {
            std::uint64_t state_off =
                (rng_.next() % profile_.fwStateBytes) & ~7ULL;
            ctx.store(fwStateBase_[core] + state_off);
        }
        allocCount_[core] += profile_.serializationStores;
        if (allocCount_[core] >= profile_.gcAllocThreshold) {
            allocCount_[core] = 0;
            minorGc(ctx);
        }
    }
}

void
StackEngine::minorGc(ExecContext &ctx)
{
    unsigned core = ctx.core();
    std::uint64_t from = survivorBase_[core]
        + (survivorFlip_[core] ? profile_.gcSurvivorBytes : 0);
    std::uint64_t to = survivorBase_[core]
        + (survivorFlip_[core] ? 0 : profile_.gcSurvivorBytes);
    survivorFlip_[core] = !survivorFlip_[core];
    // GC code is part of the runtime's text; walk a couple of its
    // functions, then evacuate the live set.
    ctx.call(fwFns_[fwFns_.size() - 1]);
    ctx.intOps(8);
    ctx.memcopy(to, from, profile_.gcSurvivorBytes);
    ctx.ret();
}

void
StackEngine::diskRead(ExecContext &ctx, std::uint64_t dst,
                      std::uint64_t bytes)
{
    unsigned core = ctx.core();
    std::uint64_t ring = pageCacheBase_[core];
    std::uint64_t sock = socketBufBase_[core];
    Mode prev = ctx.mode();
    for (std::uint64_t off = 0; off < bytes;
         off += profile_.ioChunkBytes) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(profile_.ioChunkBytes, bytes - off);
        std::uint64_t ring_off = ring + (off % profile_.pageCacheBytes);

        // The device (disk/NIC DMA) deposits the data: caches lose
        // any stale copies of the window.
        sys_.dmaFill(ring_off, chunk);

        // Syscall entry: walk kernel code.
        ctx.setMode(Mode::Kernel);
        for (unsigned k = 0; k < profile_.kernelCallsPerIo; ++k) {
            ctx.call(kernelFns_[(off / profile_.ioChunkBytes + k)
                                % kernelFns_.size()]);
            ctx.intOps(6);
            ctx.ret();
        }
        if (profile_.ioChecksum) {
            // CRC verification touches every line of the chunk.
            for (std::uint64_t o = 0; o < chunk; o += 64) {
                ctx.load(ring_off + o);
                ctx.intOps(1);
            }
        }
        if (profile_.ioCopies >= 2) {
            // Socket path: kernel-to-kernel copy before the user copy.
            std::uint64_t sock_off = sock + (off % (128 * 1024));
            ctx.memcopy(sock_off, ring_off, chunk);
            ctx.memcopy(dst + off, sock_off, chunk);
        } else {
            ctx.memcopy(dst + off, ring_off, chunk);
        }
        ctx.setMode(prev);
    }
}

void
StackEngine::diskWrite(ExecContext &ctx, std::uint64_t src,
                       std::uint64_t bytes)
{
    unsigned core = ctx.core();
    std::uint64_t ring = pageCacheBase_[core];
    std::uint64_t sock = socketBufBase_[core];
    Mode prev = ctx.mode();
    unsigned passes = std::max(1u, profile_.outputReplication);
    for (unsigned pass = 0; pass < passes; ++pass) {
        for (std::uint64_t off = 0; off < bytes;
             off += profile_.ioChunkBytes) {
            std::uint64_t chunk = std::min<std::uint64_t>(
                profile_.ioChunkBytes, bytes - off);
            std::uint64_t ring_off = ring + (off % profile_.pageCacheBytes);
            ctx.setMode(Mode::Kernel);
            for (unsigned k = 0; k < profile_.kernelCallsPerIo; ++k) {
                ctx.call(kernelFns_[(off / profile_.ioChunkBytes + k + 7)
                                    % kernelFns_.size()]);
                ctx.intOps(6);
                ctx.ret();
            }
            if (profile_.ioChecksum) {
                for (std::uint64_t o = 0; o < chunk; o += 64) {
                    ctx.load(src + off + o);
                    ctx.intOps(1);
                }
            }
            if (profile_.ioCopies >= 2) {
                std::uint64_t sock_off = sock + (off % (128 * 1024));
                ctx.memcopy(sock_off, src + off, chunk);
                ctx.memcopy(ring_off, sock_off, chunk);
            } else {
                ctx.memcopy(ring_off, src + off, chunk);
            }
            ctx.setMode(prev);
        }
    }
}

void
StackEngine::instrumentedSort(ExecContext &ctx, std::vector<Record> &recs,
                              const SimExtent &buf_ext)
{
    if (recs.empty() || buf_ext.count == 0)
        return;
    std::sort(recs.begin(), recs.end(),
              [&](const Record &a, const Record &b) {
                  // Each comparison touches both records' keys. Sort
                  // permutes elements constantly, so buffer addresses
                  // are derived from the keys and wrap within the
                  // bounded sort buffer — random access over the
                  // extent, like a real in-place sort.
                  ctx.load(buf_ext.addrOf(a.key % buf_ext.count));
                  ctx.load(buf_ext.addrOf(b.key % buf_ext.count));
                  ctx.intOps(1);
                  bool less = a.key < b.key;
                  ctx.branch(less);
                  return less;
              });
}

} // namespace bds
