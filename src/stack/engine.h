/**
 * @file
 * The software-stack execution engine abstraction.
 *
 * Both engines (the MapReduce/"Hadoop" engine and the RDD/"Spark"
 * engine) execute the same JobSpec — the same user functions over the
 * same data — but through their own runtime mechanisms: framework
 * code footprint, I/O path, shuffle implementation, and caching
 * policy. Per the paper's central claim, the microarchitectural
 * differences between stacks must *emerge* from these mechanisms,
 * never from per-metric constants.
 */

#ifndef BDS_STACK_ENGINE_H
#define BDS_STACK_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "stack/dataset.h"
#include "trace/microop.h"
#include "trace/runtime.h"

namespace bds {

/**
 * A map/reduce-shaped job both engines can execute.
 *
 * `map` is called once per input record with the record's host value
 * and the simulated address the engine chose for its bytes; it emits
 * zero or more key/value pairs. `reduce` is called once per key group
 * with all values. User functions do their own instrumented work
 * (loads of the payload, ALU ops, data-dependent branches) through
 * the ExecContext.
 */
struct JobSpec
{
    std::string name; ///< job name for diagnostics

    /** Input dataset (host values + simulated residence). */
    const Dataset *input = nullptr;

    /** User map function's code footprint. */
    FunctionDesc mapFn;

    /** User reduce function's code footprint. */
    FunctionDesc reduceFn;

    /** Per-record user map. */
    std::function<void(ExecContext &, const Record &,
                       std::uint64_t payload_addr, Emitter &)>
        map;

    /** Per-key-group user reduce. */
    std::function<void(ExecContext &, std::uint64_t key,
                       const std::vector<std::uint64_t> &values,
                       Emitter &)>
        reduce;

    /** Number of reduce tasks. */
    unsigned numReducers = 4;

    /** Serialized size of output records. */
    std::uint32_t outputRecordBytes = 16;

    /**
     * Reduce input must be sorted by key (Sort/OrderBy semantics).
     * When false, engines may group by hash (the RDD engine does).
     */
    bool requiresSort = false;

    /**
     * Skip the reduce phase entirely (map-only jobs such as
     * Projection or Grep): map emissions go straight to the output.
     */
    bool mapOnly = false;
};

/**
 * Mechanism-level profile of a software stack. These are sizes and
 * policies of real mechanisms (code footprint, buffers, shuffle
 * path), NOT per-metric tuning knobs.
 */
struct StackProfile
{
    std::string name; ///< stack name ("Hadoop", "Spark")

    // --- framework code footprint ---
    unsigned fwFunctions = 512;      ///< number of framework functions
    std::uint32_t fwFnBodyBytes = 128;   ///< executed bytes per call
    std::uint32_t fwFnStrideBytes = 512; ///< allocation stride (padding)
    double fwCallZipf = 0.7;  ///< skew of call-target popularity
    unsigned fwCallsPerRecord = 6;  ///< framework call chain per record
    unsigned fwIntOpsPerCall = 4;   ///< ALU work inside each fw call
    unsigned fwStateBytes = 1 << 16; ///< framework heap state footprint

    /**
     * Whether all tasks share one runtime-state heap (a single
     * executor JVM, as in Spark) or each task has a private one
     * (per-task JVMs, as in Hadoop 1.x). Shared state is what the
     * coherence protocol has to keep consistent across cores.
     */
    bool sharedFwState = false;

    // --- kernel I/O path ---
    std::uint32_t ioChunkBytes = 64 * 1024;  ///< syscall granularity
    std::uint32_t pageCacheBytes = 1 << 20;  ///< per-core kernel window
    unsigned kernelCallsPerIo = 3;  ///< kernel fns walked per syscall
    unsigned ioCopies = 1;          ///< copies per byte (socket path = 2)
    bool ioChecksum = false;        ///< CRC pass over every I/O byte
    unsigned outputReplication = 1; ///< extra write passes (HDFS pipeline)

    // --- data-path policy ---
    std::uint32_t streamBufferBytes = 256 * 1024; ///< map-input window
    std::uint32_t sortBufferBytes = 512 * 1024;   ///< map-output buffer
    bool inMemoryShuffle = false; ///< shuffle via resident heap buckets
    bool cacheInput = false;      ///< keep input extents resident
    unsigned uopsPerComplexInstr = 3; ///< serialization microcode size
    unsigned serializationStores = 1; ///< object writes per (de)serialize

    // --- JVM memory management ---
    unsigned gcAllocThreshold = 2048;      ///< allocations per minor GC
    std::uint32_t gcSurvivorBytes = 256 * 1024; ///< live set copied per GC
};

/** The paper's Hadoop-like stack: big framework, disk-bound paths. */
StackProfile hadoopProfile();

/** The paper's Spark-like stack: lean framework, in-memory paths. */
StackProfile sparkProfile();

/**
 * Base class for both engines: owns per-core execution contexts, the
 * framework/user/kernel code images, the simulated page cache, and
 * the helpers all framework activity goes through.
 */
class StackEngine
{
  public:
    /**
     * @param sys Execution target the engine runs on — the detailed
     *        uarch SystemModel, or the sampling subsystem's
     *        recording-only target (src/sample).
     * @param space Address space of the engine's process.
     * @param profile Stack mechanism profile.
     * @param seed Engine-private RNG seed.
     */
    StackEngine(ExecTarget &sys, AddressSpace &space,
                StackProfile profile, std::uint64_t seed);

    virtual ~StackEngine() = default;

    /** Stack name ("Hadoop" / "Spark"). */
    const std::string &name() const { return profile_.name; }

    /** Mechanism profile. */
    const StackProfile &profile() const { return profile_; }

    /** Execute a job and return its output dataset. */
    virtual Dataset runJob(const JobSpec &job) = 0;

    /** Address space (workload builders allocate user code here). */
    AddressSpace &space() { return space_; }

    /** The execution target being driven. */
    ExecTarget &system() { return sys_; }

    /** Engine RNG (deterministic). */
    Pcg32 &rng() { return rng_; }

    /** Number of simulated cores tasks are scheduled onto. */
    unsigned numCores() const { return sys_.numCores(); }

  protected:
    /** Execution context for a task index (task i runs on core i%N). */
    ExecContext &taskCtx(unsigned task);

    /**
     * Execute `calls` framework function invocations on the context:
     * Zipf-selected targets, framework-state loads, ALU work, and a
     * data-dependent branch per call. This is the entire source of
     * the stack's instruction footprint.
     */
    void frameworkWork(ExecContext &ctx, unsigned calls);

    /**
     * One serialization/deserialization step: a microcoded
     * instruction plus framework stores (drives UOPS TO INS). Each
     * store is an allocation; crossing the GC threshold triggers a
     * minor collection (see minorGc).
     */
    void serializationWork(ExecContext &ctx, unsigned records);

    /**
     * Minor (young-generation) garbage collection: copy the live set
     * between the per-core survivor spaces. Fires automatically from
     * serializationWork; allocation-heavy stacks collect more often
     * and with larger live sets.
     */
    void minorGc(ExecContext &ctx);

    /**
     * Kernel-mode read of `bytes` from the simulated page cache into
     * a destination buffer (framework syscall + per-chunk copy).
     */
    void diskRead(ExecContext &ctx, std::uint64_t dst,
                  std::uint64_t bytes);

    /** Kernel-mode write of `bytes` from src into the page cache. */
    void diskWrite(ExecContext &ctx, std::uint64_t src,
                   std::uint64_t bytes);

    /**
     * Sort `n` host records in place by key with an instrumented
     * comparator: every comparison issues the two key loads at the
     * records' simulated addresses plus the compare/branch.
     * @param buf_ext Extent the records notionally occupy; element i
     *        is addressed at buf_ext.addrOf(i % buf_ext.count).
     */
    void instrumentedSort(ExecContext &ctx, std::vector<Record> &recs,
                          const SimExtent &buf_ext);

    ExecTarget &sys_;
    AddressSpace &space_;
    StackProfile profile_;
    Pcg32 rng_;

    CodeImage fwImage_;     ///< framework .text
    CodeImage kernelImage_; ///< ring-0 .text
    std::vector<FunctionDesc> fwFns_;
    std::vector<FunctionDesc> kernelFns_;
    ZipfSampler fwCallDist_;

    std::vector<std::uint64_t> fwStateBase_; ///< heap objects (per core
                                             ///< unless sharedFwState)
    std::vector<std::uint64_t> pageCacheBase_; ///< per-core kernel window
    std::vector<std::uint64_t> socketBufBase_; ///< per-core socket buffer
    std::vector<std::unique_ptr<ExecContext>> ctxs_;
    std::vector<std::size_t> fwCursor_; ///< per-core rotation cursor
    std::vector<std::uint64_t> survivorBase_; ///< per-core GC spaces (x2)
    std::vector<unsigned> allocCount_;  ///< per-core allocs since GC
    std::vector<bool> survivorFlip_;    ///< which survivor space is live
};

} // namespace bds

#endif // BDS_STACK_ENGINE_H
