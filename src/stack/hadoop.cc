#include "stack/hadoop.h"

#include <algorithm>

#include "common/log.h"
#include "stack/partition.h"

namespace bds {

MapReduceEngine::MapReduceEngine(ExecTarget &sys, AddressSpace &space,
                                 std::uint64_t seed)
    : MapReduceEngine(sys, space, hadoopProfile(), seed)
{
}

MapReduceEngine::MapReduceEngine(ExecTarget &sys, AddressSpace &space,
                                 StackProfile profile, std::uint64_t seed)
    : StackEngine(sys, space, std::move(profile), seed)
{
    for (unsigned c = 0; c < numCores(); ++c) {
        streamBuf_.push_back(
            space.allocate(Region::Heap, profile_.streamBufferBytes));
        sortBuf_.push_back(
            space.allocate(Region::Heap, profile_.sortBufferBytes));
        mergeBuf_.push_back(
            space.allocate(Region::Heap, profile_.sortBufferBytes));
        outBuf_.push_back(space.allocate(Region::Heap, 64 * 1024));
    }
}

unsigned
MapReduceEngine::partitionOf(std::uint64_t key, unsigned reducers,
                             const std::vector<std::uint64_t> &splits) const
{
    return bds::partitionOf(key, reducers, splits);
}

Dataset
MapReduceEngine::runJob(const JobSpec &job)
{
    if (!job.input)
        BDS_FATAL("job '" << job.name << "' has no input");
    if (!job.map)
        BDS_FATAL("job '" << job.name << "' has no map function");
    if (!job.mapOnly && !job.reduce)
        BDS_FATAL("job '" << job.name << "' has no reduce function");
    if (job.numReducers == 0)
        BDS_FATAL("job '" << job.name << "' needs >= 1 reducer");

    const Dataset &input = *job.input;
    const unsigned reducers = job.numReducers;
    std::vector<std::uint64_t> splits;
    if (job.requiresSort)
        splits = rangeSplits(input, reducers);

    // Spilled map output, already partitioned by reducer.
    std::vector<std::vector<Record>> pending(reducers);
    // Map-only jobs collect per-map output partitions directly.
    std::vector<std::vector<Record>> map_out(input.partitions().size());

    /** Map-side emitter: sort buffer + spill protocol. */
    struct MapEmitter : public Emitter
    {
        MapReduceEngine &eng;
        const JobSpec &job;
        const std::vector<std::uint64_t> &splits;
        std::vector<std::vector<Record>> &pending;
        std::vector<Record> *direct; // map-only destination
        SimExtent sort_ext;
        std::vector<Record> buffer;
        std::uint64_t capacity;

        MapEmitter(MapReduceEngine &e, const JobSpec &j,
                   const std::vector<std::uint64_t> &s,
                   std::vector<std::vector<Record>> &p,
                   std::vector<Record> *d, std::uint64_t sort_base)
            : eng(e), job(j), splits(s), pending(p), direct(d)
        {
            sort_ext.base = sort_base;
            sort_ext.recordBytes = 16;
            sort_ext.count = eng.profile_.sortBufferBytes / 16;
            capacity = sort_ext.count;
        }

        void
        emit(ExecContext &ctx, std::uint64_t key,
             std::uint64_t value) override
        {
            // Serialize the pair into the collect buffer.
            eng.serializationWork(ctx, 1);
            std::uint64_t slot = buffer.size() % capacity;
            ctx.store(sort_ext.addrOf(slot));
            ctx.store(sort_ext.addrOf(slot) + 8);
            buffer.push_back(Record{key, value});
            if (direct) {
                direct->push_back(buffer.back());
                buffer.pop_back();
                return;
            }
            if (buffer.size() >= capacity)
                spill(ctx);
        }

        void
        spill(ExecContext &ctx)
        {
            if (buffer.empty())
                return;
            eng.frameworkWork(ctx, 8); // SpillThread bookkeeping
            eng.instrumentedSort(ctx, buffer, sort_ext);
            eng.diskWrite(ctx, sort_ext.base, buffer.size() * 16);
            for (const Record &r : buffer)
                pending[eng.partitionOf(r.key, job.numReducers, splits)]
                    .push_back(r);
            buffer.clear();
        }
    };

    // ---------------- map phase ----------------
    for (std::size_t m = 0; m < input.partitions().size(); ++m) {
        const Partition &part = input.partitions()[m];
        ExecContext &ctx = taskCtx(static_cast<unsigned>(m));
        unsigned core = ctx.core();

        MapEmitter emitter(*this, job, splits, pending,
                           job.mapOnly ? &map_out[m] : nullptr,
                           sortBuf_[core]);

        frameworkWork(ctx, 24); // task setup: JobConf, RecordReader

        const std::uint32_t rec_bytes = part.ext.recordBytes;
        const std::uint64_t window = profile_.streamBufferBytes;
        std::uint64_t window_fill = 0;

        for (std::size_t i = 0; i < part.host.size(); ++i) {
            std::uint64_t off = i * rec_bytes;
            if (off >= window_fill) {
                // Refill the streaming window from HDFS.
                std::uint64_t chunk = std::min<std::uint64_t>(
                    window, part.ext.bytes() - window_fill);
                diskRead(ctx, streamBuf_[core], chunk);
                window_fill += chunk;
            }
            frameworkWork(ctx, profile_.fwCallsPerRecord);
            serializationWork(ctx, 1); // deserialize the record
            std::uint64_t payload =
                streamBuf_[core] + (off % window);
            ctx.call(job.mapFn);
            job.map(ctx, part.host[i], payload, emitter);
            ctx.ret();
        }
        emitter.spill(ctx);
        frameworkWork(ctx, 16); // task commit
    }

    Dataset output(job.name + ".out");
    if (job.mapOnly) {
        for (std::size_t m = 0; m < map_out.size(); ++m) {
            ExecContext &ctx = taskCtx(static_cast<unsigned>(m));
            // Write the map output file to HDFS.
            diskWrite(ctx, outBuf_[ctx.core()],
                      map_out[m].size() * job.outputRecordBytes);
            output.addPartition(space_, std::move(map_out[m]),
                                job.outputRecordBytes);
        }
        return output;
    }

    // ---------------- reduce phase ----------------
    for (unsigned r = 0; r < reducers; ++r) {
        ExecContext &ctx = taskCtx(r);
        unsigned core = ctx.core();
        std::vector<Record> &recs = pending[r];

        frameworkWork(ctx, 24); // reduce task setup + shuffle client

        // Shuffle: every map-side TaskTracker serves its segment
        // (reads the spill file and writes it to the socket), then
        // the reducer fetches through the kernel path into the
        // bounded merge window.
        std::uint64_t bytes = recs.size() * 16;
        const std::uint64_t window = profile_.sortBufferBytes;
        std::uint64_t per_map = bytes / input.partitions().size();
        for (std::size_t m = 0; m < input.partitions().size(); ++m) {
            ExecContext &server = taskCtx(static_cast<unsigned>(m));
            diskWrite(server, sortBuf_[server.core()],
                      std::min<std::uint64_t>(per_map, window));
        }
        for (std::uint64_t off = 0; off < bytes; off += window)
            diskRead(ctx, mergeBuf_[core],
                     std::min<std::uint64_t>(window, bytes - off));

        SimExtent merge_ext{mergeBuf_[core], 16, window / 16};
        instrumentedSort(ctx, recs, merge_ext);

        // Stream sorted groups into the user reduce.
        std::vector<Record> out_host;
        SimExtent out_ext{outBuf_[core], 16, 64 * 1024 / 16};
        struct ReduceEmitter : public Emitter
        {
            MapReduceEngine &eng;
            std::vector<Record> &out;
            SimExtent ext;
            std::uint64_t pending_bytes = 0;

            ReduceEmitter(MapReduceEngine &e, std::vector<Record> &o,
                          SimExtent x)
                : eng(e), out(o), ext(x)
            {}

            void
            emit(ExecContext &ctx, std::uint64_t key,
                 std::uint64_t value) override
            {
                eng.serializationWork(ctx, 1);
                std::uint64_t slot = out.size() % ext.count;
                ctx.store(ext.addrOf(slot));
                ctx.store(ext.addrOf(slot) + 8);
                out.push_back(Record{key, value});
                pending_bytes += 16;
                if (pending_bytes >= ext.count * 16) {
                    eng.diskWrite(ctx, ext.base, pending_bytes);
                    pending_bytes = 0;
                }
            }
        } out_emitter(*this, out_host, out_ext);

        std::size_t i = 0;
        std::vector<std::uint64_t> values;
        while (i < recs.size()) {
            std::uint64_t key = recs[i].key;
            values.clear();
            while (i < recs.size() && recs[i].key == key) {
                ctx.load(merge_ext.addrOf(i % merge_ext.count));
                ctx.branch(true); // same-group test, taken in group
                values.push_back(recs[i].value);
                ++i;
            }
            ctx.branch(false); // group boundary
            frameworkWork(ctx, 2);
            ctx.call(job.reduceFn);
            job.reduce(ctx, key, values, out_emitter);
            ctx.ret();
        }
        if (out_emitter.pending_bytes > 0)
            diskWrite(ctx, out_ext.base, out_emitter.pending_bytes);
        frameworkWork(ctx, 16); // commit output to HDFS

        output.addPartition(space_, std::move(out_host),
                            job.outputRecordBytes);
        recs.clear();
        recs.shrink_to_fit();
    }
    return output;
}

} // namespace bds
