/**
 * @file
 * The MapReduce engine — the paper's Hadoop stand-in.
 *
 * Mechanisms modelled after Hadoop 1.x:
 *  - map inputs stream from "HDFS" through a small reused per-core
 *    window (kernel-mode reads into the streaming buffer);
 *  - map outputs collect in a bounded sort buffer; when full they are
 *    sorted (instrumented comparator) and spilled to disk;
 *  - the shuffle re-reads spills through the kernel path and merges
 *    on the reduce side; reduce output is written back to "HDFS";
 *  - every record passes through a deep framework call chain and a
 *    serialization step.
 *
 * The upshot — large instruction footprint, high kernel-mode share,
 * small resident data set — is exactly the behavior the paper
 * attributes to Hadoop.
 */

#ifndef BDS_STACK_HADOOP_H
#define BDS_STACK_HADOOP_H

#include "stack/engine.h"

namespace bds {

/** Hadoop-like MapReduce execution engine. */
class MapReduceEngine : public StackEngine
{
  public:
    /**
     * @param sys Node to run on.
     * @param space Process address space.
     * @param seed Engine RNG seed.
     */
    MapReduceEngine(ExecTarget &sys, AddressSpace &space,
                    std::uint64_t seed = 0x4adaaULL);

    /**
     * Build with a custom mechanism profile (ablation studies: e.g.,
     * a MapReduce engine carrying Spark's code footprint).
     */
    MapReduceEngine(ExecTarget &sys, AddressSpace &space,
                    StackProfile profile, std::uint64_t seed);

    Dataset runJob(const JobSpec &job) override;

  private:
    /** Reducer index for a key (hash or range partitioning). */
    unsigned partitionOf(std::uint64_t key, unsigned reducers,
                         const std::vector<std::uint64_t> &splits) const;

    std::vector<std::uint64_t> streamBuf_; ///< per-core input window
    std::vector<std::uint64_t> sortBuf_;   ///< per-core sort buffer
    std::vector<std::uint64_t> mergeBuf_;  ///< per-core shuffle window
    std::vector<std::uint64_t> outBuf_;    ///< per-core output window
};

} // namespace bds

#endif // BDS_STACK_HADOOP_H
