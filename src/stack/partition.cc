#include "stack/partition.h"

#include <algorithm>

namespace bds {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::vector<std::uint64_t>
rangeSplits(const Dataset &input, unsigned reducers)
{
    std::vector<std::uint64_t> sample;
    for (const Partition &p : input.partitions()) {
        std::size_t step = std::max<std::size_t>(1, p.host.size() / 256);
        for (std::size_t i = 0; i < p.host.size(); i += step)
            sample.push_back(p.host[i].key);
    }
    std::sort(sample.begin(), sample.end());
    std::vector<std::uint64_t> splits;
    for (unsigned r = 1; r < reducers; ++r)
        splits.push_back(
            sample.empty()
                ? r * (UINT64_MAX / reducers)
                : sample[r * sample.size() / reducers]);
    return splits;
}

unsigned
partitionOf(std::uint64_t key, unsigned reducers,
            const std::vector<std::uint64_t> &splits)
{
    if (splits.empty())
        return static_cast<unsigned>(mix64(key) % reducers);
    unsigned r = 0;
    while (r < splits.size() && key >= splits[r])
        ++r;
    return r;
}

} // namespace bds
