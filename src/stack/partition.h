/**
 * @file
 * Partitioning helpers shared by the stack engines: the hash mix
 * used for hash partitioning and the sampling-based range splits
 * used for total-order (sort) jobs.
 */

#ifndef BDS_STACK_PARTITION_H
#define BDS_STACK_PARTITION_H

#include <cstdint>
#include <vector>

#include "stack/dataset.h"

namespace bds {

/** 64-bit finalizer (splitmix64) used for hash partitioning. */
std::uint64_t mix64(std::uint64_t x);

/**
 * Sample-based range splits for total-order partitioning (the
 * TotalOrderPartitioner analogue): samples up to ~256 keys per
 * partition and returns `reducers - 1` split points.
 */
std::vector<std::uint64_t> rangeSplits(const Dataset &input,
                                       unsigned reducers);

/**
 * Reducer index for a key: by range when splits are present, by
 * hash otherwise.
 */
unsigned partitionOf(std::uint64_t key, unsigned reducers,
                     const std::vector<std::uint64_t> &splits);

} // namespace bds

#endif // BDS_STACK_PARTITION_H
