#include "stack/spark.h"

#include <algorithm>
#include <unordered_map>

#include "common/log.h"
#include "stack/partition.h"

namespace bds {

RddEngine::RddEngine(ExecTarget &sys, AddressSpace &space,
                     std::uint64_t seed)
    : RddEngine(sys, space, sparkProfile(), seed)
{
}

RddEngine::RddEngine(ExecTarget &sys, AddressSpace &space,
                     StackProfile profile, std::uint64_t seed)
    : StackEngine(sys, space, std::move(profile), seed)
{
    for (unsigned c = 0; c < numCores(); ++c)
        hashTable_.push_back(
            space.allocate(Region::Heap, kHashTableBytes));
}

bool
RddEngine::isCached(const Dataset &ds) const
{
    return ds.resident() || cached_.count(&ds) > 0;
}

void
RddEngine::ensureMaterialized(const Dataset &ds)
{
    if (isCached(ds))
        return;
    for (std::size_t m = 0; m < ds.partitions().size(); ++m) {
        const Partition &part = ds.partitions()[m];
        ExecContext &ctx = taskCtx(static_cast<unsigned>(m));
        frameworkWork(ctx, 12); // HadoopRDD partition open
        diskRead(ctx, part.ext.base, part.ext.bytes());
    }
    cached_.insert(&ds);
}

Dataset
RddEngine::runJob(const JobSpec &job)
{
    if (!job.input)
        BDS_FATAL("job '" << job.name << "' has no input");
    if (!job.map)
        BDS_FATAL("job '" << job.name << "' has no map function");
    if (!job.mapOnly && !job.reduce)
        BDS_FATAL("job '" << job.name << "' has no reduce function");
    if (job.numReducers == 0)
        BDS_FATAL("job '" << job.name << "' needs >= 1 reducer");

    const Dataset &input = *job.input;
    const unsigned reducers = job.numReducers;
    const std::size_t maps = input.partitions().size();

    ensureMaterialized(input);

    std::vector<std::uint64_t> splits;
    if (job.requiresSort)
        splits = rangeSplits(input, reducers);

    // Per-(map, reducer) in-memory shuffle buckets.
    struct Bucket
    {
        std::vector<Record> host;
        SimExtent ext;
        unsigned writerCore = 0;
    };
    std::vector<std::vector<Bucket>> buckets(maps);

    Dataset output(job.name + ".out");
    std::vector<std::vector<Record>> map_out(maps);

    /** Emitter appending to resident shuffle buckets. */
    struct MapEmitter : public Emitter
    {
        RddEngine &eng;
        const JobSpec &job;
        const std::vector<std::uint64_t> &splits;
        std::vector<Bucket> *row;           // buckets of this map task
        std::vector<Record> *direct;        // map-only destination
        SimExtent direct_ext;
        std::uint64_t direct_count = 0;

        MapEmitter(RddEngine &e, const JobSpec &j,
                   const std::vector<std::uint64_t> &s,
                   std::vector<Bucket> *b, std::vector<Record> *d)
            : eng(e), job(j), splits(s), row(b), direct(d)
        {}

        void
        emit(ExecContext &ctx, std::uint64_t key,
             std::uint64_t value) override
        {
            eng.serializationWork(ctx, 1);
            if (direct) {
                std::uint64_t slot = direct_count++ % direct_ext.count;
                ctx.store(direct_ext.addrOf(slot));
                direct->push_back(Record{key, value});
                return;
            }
            unsigned r = partitionOf(key, job.numReducers, splits);
            Bucket &b = (*row)[r];
            std::uint64_t slot = b.host.size() % b.ext.count;
            ctx.store(b.ext.addrOf(slot));
            ctx.store(b.ext.addrOf(slot) + 8);
            b.host.push_back(Record{key, value});
        }
    };

    // ---------------- map stage ----------------
    for (std::size_t m = 0; m < maps; ++m) {
        const Partition &part = input.partitions()[m];
        ExecContext &ctx = taskCtx(static_cast<unsigned>(m));

        MapEmitter emitter(*this, job, splits,
                           job.mapOnly ? nullptr : &buckets[m],
                           job.mapOnly ? &map_out[m] : nullptr);
        if (job.mapOnly) {
            // Output partition materialized in the heap.
            std::uint64_t cap =
                std::max<std::uint64_t>(part.host.size(), 1);
            emitter.direct_ext.base = space_.allocate(
                Region::Heap, cap * job.outputRecordBytes + 64);
            emitter.direct_ext.recordBytes = job.outputRecordBytes;
            emitter.direct_ext.count = cap;
        } else {
            buckets[m].resize(reducers);
            std::uint64_t cap =
                std::max<std::uint64_t>(part.host.size(), 16);
            for (unsigned r = 0; r < reducers; ++r) {
                Bucket &b = buckets[m][r];
                b.ext.base = space_.allocate(Region::Heap, cap * 16 + 64);
                b.ext.recordBytes = 16;
                b.ext.count = cap;
                b.writerCore = ctx.core();
            }
        }

        frameworkWork(ctx, 8); // stage/task setup (DAGScheduler)
        for (std::size_t i = 0; i < part.host.size(); ++i) {
            frameworkWork(ctx, profile_.fwCallsPerRecord);
            std::uint64_t payload = part.ext.addrOf(i);
            // Records are JVM objects: the iterator dereferences the
            // element pointer before the user code can touch it — a
            // dependent access the core cannot overlap.
            ctx.loadDependent(payload);
            ctx.call(job.mapFn);
            job.map(ctx, part.host[i], payload, emitter);
            ctx.ret();
        }
        frameworkWork(ctx, 6);
    }

    if (job.mapOnly) {
        for (std::size_t m = 0; m < maps; ++m)
            output.addPartition(space_, std::move(map_out[m]),
                                job.outputRecordBytes);
        output.setResident(true);
        return output;
    }

    // ---------------- reduce stage ----------------
    SimExtent table_ext{0, 16, kHashTableBytes / 16};
    for (unsigned r = 0; r < reducers; ++r) {
        ExecContext &ctx = taskCtx(r);
        unsigned core = ctx.core();
        table_ext.base = hashTable_[core];

        frameworkWork(ctx, 8);

        // Fetch blocks: read every map task's bucket for r directly
        // from the heap — the writer core's caches still own many of
        // these lines, so this is where cache-to-cache traffic comes
        // from.
        std::vector<Record> recs;
        for (std::size_t m = 0; m < maps; ++m) {
            const Bucket &b = buckets[m][r];
            frameworkWork(ctx, 2); // block manager fetch
            for (std::size_t j = 0; j < b.host.size(); ++j) {
                ctx.load(b.ext.addrOf(j % b.ext.count));
                recs.push_back(b.host[j]);
            }
        }

        std::vector<Record> out_host;
        SimExtent out_ext;
        std::uint64_t out_cap = std::max<std::uint64_t>(recs.size(), 16);
        out_ext.base = space_.allocate(
            Region::Heap, out_cap * job.outputRecordBytes + 64);
        out_ext.recordBytes = job.outputRecordBytes;
        out_ext.count = out_cap;

        struct ReduceEmitter : public Emitter
        {
            RddEngine &eng;
            std::vector<Record> &out;
            SimExtent ext;

            ReduceEmitter(RddEngine &e, std::vector<Record> &o,
                          SimExtent x)
                : eng(e), out(o), ext(x)
            {}

            void
            emit(ExecContext &ctx, std::uint64_t key,
                 std::uint64_t value) override
            {
                std::uint64_t slot = out.size() % ext.count;
                ctx.store(ext.addrOf(slot));
                ctx.store(ext.addrOf(slot) + 8);
                out.push_back(Record{key, value});
            }
        } out_emitter(*this, out_host, out_ext);

        if (job.requiresSort) {
            // Sorted path: sort the fetched records in a resident
            // buffer, then stream groups.
            SimExtent sort_ext;
            std::uint64_t cap = std::max<std::uint64_t>(recs.size(), 16);
            sort_ext.base =
                space_.allocate(Region::Heap, cap * 16 + 64);
            sort_ext.recordBytes = 16;
            sort_ext.count = cap;
            instrumentedSort(ctx, recs, sort_ext);

            std::size_t i = 0;
            std::vector<std::uint64_t> values;
            while (i < recs.size()) {
                std::uint64_t key = recs[i].key;
                values.clear();
                while (i < recs.size() && recs[i].key == key) {
                    ctx.load(sort_ext.addrOf(i % sort_ext.count));
                    ctx.branch(true);
                    values.push_back(recs[i].value);
                    ++i;
                }
                ctx.branch(false);
                ctx.call(job.reduceFn);
                job.reduce(ctx, key, values, out_emitter);
                ctx.ret();
            }
        } else {
            // Hash aggregation: every record probes the open-address
            // table (dependent pointer-chase loads).
            std::unordered_map<std::uint64_t,
                               std::vector<std::uint64_t>>
                groups;
            for (const Record &rec : recs) {
                std::uint64_t h = mix64(rec.key) % table_ext.count;
                ctx.loadDependent(table_ext.addrOf(h));
                auto it = groups.find(rec.key);
                ctx.branch(it != groups.end());
                if (it == groups.end()) {
                    ctx.store(table_ext.addrOf(h));
                    groups[rec.key].push_back(rec.value);
                } else {
                    it->second.push_back(rec.value);
                }
                ctx.intOps(2);
            }
            // Deterministic iteration order over the groups.
            std::vector<std::uint64_t> keys;
            keys.reserve(groups.size());
            for (const auto &kv : groups)
                keys.push_back(kv.first);
            std::sort(keys.begin(), keys.end());
            for (std::uint64_t key : keys) {
                ctx.call(job.reduceFn);
                job.reduce(ctx, key, groups[key], out_emitter);
                ctx.ret();
            }
        }

        output.addPartition(space_, std::move(out_host),
                            job.outputRecordBytes);
    }
    output.setResident(true);
    return output;
}

} // namespace bds
