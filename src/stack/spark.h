/**
 * @file
 * The RDD engine — the paper's Spark stand-in.
 *
 * Mechanisms modelled after Spark 0.8:
 *  - input partitions are materialized into the heap once and then
 *    cached; subsequent jobs (including every iteration of iterative
 *    workloads) read the resident extents directly;
 *  - map output goes to per-(map, reducer) in-memory buckets; reduce
 *    tasks running on other cores read those buckets directly —
 *    cross-core sharing that the coherence protocol must service;
 *  - grouping uses hash aggregation (pointer-chasing probes) unless
 *    the job demands sorted output;
 *  - the framework call chain per record is shallow (a lean iterator
 *    pipeline), and nothing is spilled to disk.
 *
 * The upshot — small instruction footprint, big resident data
 * footprint, lots of cache-to-cache traffic — is the paper's Spark
 * behavior.
 */

#ifndef BDS_STACK_SPARK_H
#define BDS_STACK_SPARK_H

#include <set>

#include "stack/engine.h"

namespace bds {

/** Spark-like RDD execution engine. */
class RddEngine : public StackEngine
{
  public:
    /**
     * @param sys Node to run on.
     * @param space Process address space.
     * @param seed Engine RNG seed.
     */
    RddEngine(ExecTarget &sys, AddressSpace &space,
              std::uint64_t seed = 0x5aa4cULL);

    /**
     * Build with a custom mechanism profile (ablation studies: e.g.,
     * an RDD engine carrying Hadoop's code footprint).
     */
    RddEngine(ExecTarget &sys, AddressSpace &space,
              StackProfile profile, std::uint64_t seed);

    Dataset runJob(const JobSpec &job) override;

    /** Whether a dataset's extents are already resident (tests). */
    bool isCached(const Dataset &ds) const;

  private:
    /**
     * Materialize a dataset's extents from "HDFS" unless cached;
     * marks it cached afterwards.
     */
    void ensureMaterialized(const Dataset &ds);

    std::set<const void *> cached_;
    std::vector<std::uint64_t> hashTable_; ///< per-core probe tables
    static constexpr std::uint64_t kHashTableBytes = 32ULL << 20;
};

} // namespace bds

#endif // BDS_STACK_SPARK_H
