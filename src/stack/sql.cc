#include "stack/sql.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

namespace {

/** Source tag carried in the value's top bit for two-table ops. */
constexpr std::uint64_t kTagB = 1ULL << 63;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Touch a row: deserializing a row reads every cache line of its
 * serialized bytes (one load per 64 B).
 */
void
touchRow(ExecContext &ctx, std::uint64_t payload, std::uint32_t row_bytes)
{
    for (std::uint64_t off = 0; off < row_bytes; off += 64)
        ctx.load(payload + off);
}

} // namespace

const char *
sqlOpName(SqlOp op)
{
    switch (op) {
      case SqlOp::Projection: return "Projection";
      case SqlOp::Filter: return "Filter";
      case SqlOp::OrderBy: return "OrderBy";
      case SqlOp::CrossProduct: return "CrossProduct";
      case SqlOp::Union: return "Union";
      case SqlOp::Difference: return "Difference";
      case SqlOp::Aggregation: return "Aggregation";
      case SqlOp::JoinQuery: return "JoinQuery";
      case SqlOp::AggQuery: return "AggQuery";
      case SqlOp::SelectQuery: return "SelectQuery";
    }
    BDS_PANIC("unknown SqlOp");
}

SqlLayer::SqlLayer(StackEngine &engine)
    : engine_(engine), userCode_(engine.space(), Region::UserCode)
{
    // One small, hot operator body per op (generated query fragments).
    for (unsigned i = 0; i < kNumSqlOps; ++i) {
        mapFns_[i] = userCode_.defineFunction(192);
        reduceFns_[i] = userCode_.defineFunction(128);
    }
}

Dataset
SqlLayer::tagAndUnion(const Dataset &a, const Dataset &b) const
{
    // The combined view aliases the original extents (the engines
    // read the same table bytes); the B side is tagged in the value.
    Dataset both(a.name() + "+" + b.name());
    both.setResident(a.resident() && b.resident());
    for (const Partition &p : a.partitions())
        both.partitions().push_back(p);
    for (const Partition &p : b.partitions()) {
        Partition tagged = p;
        for (Record &r : tagged.host)
            r.value |= kTagB;
        both.partitions().push_back(std::move(tagged));
    }
    return both;
}

Dataset
SqlLayer::run(SqlOp op, const Dataset &big, const Dataset *other)
{
    const unsigned idx = static_cast<unsigned>(op);
    JobSpec job;
    job.name = std::string(engine_.name()) + "-" + sqlOpName(op);
    job.mapFn = mapFns_[idx];
    job.reduceFn = reduceFns_[idx];
    job.numReducers = engine_.numCores();
    const std::uint32_t row_bytes = big.partitions().empty()
        ? 64
        : big.partitions()[0].ext.recordBytes;

    const bool two_table = op == SqlOp::CrossProduct
        || op == SqlOp::Union || op == SqlOp::Difference
        || op == SqlOp::JoinQuery;
    if (two_table && !other)
        BDS_FATAL(sqlOpName(op) << " needs a second table");

    Dataset combined;
    if (op == SqlOp::Union || op == SqlOp::Difference
        || op == SqlOp::JoinQuery) {
        combined = tagAndUnion(big, *other);
        job.input = &combined;
    } else {
        job.input = &big;
    }

    switch (op) {
      case SqlOp::Projection:
        // SELECT two of the columns; no predicate.
        job.mapOnly = true;
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(2);
            out.emit(ctx, r.key, r.value & 0xffffffffULL);
        };
        break;

      case SqlOp::Filter:
        // WHERE price-ish field over a threshold (~50% pass).
        job.mapOnly = true;
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(1);
            bool pass = (r.value & 0xffff) < 0x8000;
            ctx.branch(pass);
            if (pass)
                out.emit(ctx, r.key, r.value);
        };
        break;

      case SqlOp::Union:
        // UNION ALL: concatenation of both scans.
        job.mapOnly = true;
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(1);
            ctx.branch((r.value & kTagB) != 0); // source dispatch
            out.emit(ctx, r.key, r.value & ~kTagB);
        };
        break;

      case SqlOp::SelectQuery:
        // SELECT one column WHERE selective predicate (~12% pass).
        job.mapOnly = true;
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(2);
            bool pass = (r.value & 0xffff) < 0x2000;
            ctx.branch(pass);
            if (pass)
                out.emit(ctx, r.key, r.value >> 32);
        };
        break;

      case SqlOp::OrderBy:
        job.requiresSort = true;
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            out.emit(ctx, r.value & 0xffffffffULL, r.key);
        };
        job.reduce = [](ExecContext &ctx, std::uint64_t key,
                        const std::vector<std::uint64_t> &values,
                        Emitter &out) {
            for (std::uint64_t v : values) {
                ctx.intOps(1);
                out.emit(ctx, key, v);
            }
        };
        break;

      case SqlOp::CrossProduct: {
        // Map-side product against the broadcast small table.
        const Dataset *small = other;
        std::vector<Record> small_rows;
        std::vector<std::uint64_t> small_addrs;
        for (const Partition &p : small->partitions())
            for (std::size_t i = 0; i < p.host.size(); ++i) {
                small_rows.push_back(p.host[i]);
                small_addrs.push_back(p.ext.addrOf(i));
            }
        job.mapOnly = true;
        job.map = [small_rows, small_addrs, row_bytes](
                      ExecContext &ctx, const Record &r,
                      std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            for (std::size_t j = 0; j < small_rows.size(); ++j) {
                ctx.load(small_addrs[j]);
                ctx.intOps(1);
                ctx.branch(j + 1 < small_rows.size());
                out.emit(ctx, r.key ^ small_rows[j].key,
                         r.value + small_rows[j].value);
            }
        };
        break;
      }

      case SqlOp::Difference:
        // A EXCEPT B on the row's content hash.
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(3); // hash the row
            std::uint64_t row_hash = mix64(r.key ^ (r.value & ~kTagB));
            out.emit(ctx, row_hash, r.value & kTagB ? 1 : 0);
        };
        job.reduce = [](ExecContext &ctx, std::uint64_t key,
                        const std::vector<std::uint64_t> &values,
                        Emitter &out) {
            bool in_b = false;
            for (std::uint64_t v : values) {
                ctx.intOps(1);
                in_b = in_b || v == 1;
            }
            ctx.branch(in_b);
            if (!in_b)
                out.emit(ctx, key, 0);
        };
        break;

      case SqlOp::JoinQuery:
        // Repartition equi-join on the key.
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(1);
            out.emit(ctx, r.key, r.value);
        };
        job.reduce = [](ExecContext &ctx, std::uint64_t key,
                        const std::vector<std::uint64_t> &values,
                        Emitter &out) {
            // Pair every A row with every B row of this key.
            std::vector<std::uint64_t> a_side, b_side;
            for (std::uint64_t v : values) {
                bool is_b = (v & kTagB) != 0;
                ctx.branch(is_b);
                (is_b ? b_side : a_side).push_back(v & ~kTagB);
            }
            for (std::uint64_t a : a_side)
                for (std::uint64_t b : b_side) {
                    ctx.intOps(2);
                    out.emit(ctx, key, a + b);
                }
        };
        break;

      case SqlOp::Aggregation:
        // GROUP BY a fine-grained key; SUM.
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(2);
            out.emit(ctx, mix64(r.key) & 0xffff, r.value & 0xffff);
        };
        job.reduce = [](ExecContext &ctx, std::uint64_t key,
                        const std::vector<std::uint64_t> &values,
                        Emitter &out) {
            std::uint64_t sum = 0;
            for (std::uint64_t v : values) {
                ctx.intOps(1);
                sum += v;
            }
            out.emit(ctx, key, sum);
        };
        break;

      case SqlOp::AggQuery:
        // WHERE filter then GROUP BY a coarse key; SUM.
        job.map = [row_bytes](ExecContext &ctx, const Record &r,
                     std::uint64_t payload, Emitter &out) {
            touchRow(ctx, payload, row_bytes);
            ctx.intOps(2);
            bool pass = (r.value & 0xff) < 0xc0;
            ctx.branch(pass);
            if (pass)
                out.emit(ctx, mix64(r.key) & 0x3f, r.value & 0xffff);
        };
        job.reduce = [](ExecContext &ctx, std::uint64_t key,
                        const std::vector<std::uint64_t> &values,
                        Emitter &out) {
            std::uint64_t sum = 0;
            for (std::uint64_t v : values) {
                ctx.intOps(1);
                sum += v;
            }
            out.emit(ctx, key, sum);
        };
        break;
    }

    return engine_.runJob(job);
}

} // namespace bds
