/**
 * @file
 * SQL layer: the Hive/Shark analogue.
 *
 * The paper's ten interactive-analytics workloads are SQL-like
 * operators over e-commerce tables; Hive interprets them as Hadoop
 * jobs and Shark as Spark jobs. This layer compiles each operator
 * into a JobSpec (map/reduce shape, user functions with genuine
 * predicate evaluation over the host rows) and executes it on
 * whichever engine it is bound to — bind a MapReduceEngine and you
 * have "Hive", bind an RddEngine and you have "Shark".
 */

#ifndef BDS_STACK_SQL_H
#define BDS_STACK_SQL_H

#include <memory>

#include "stack/engine.h"

namespace bds {

/** The relational operators of the paper's Table I. */
enum class SqlOp : unsigned
{
    Projection,   ///< SELECT a, b FROM t
    Filter,       ///< SELECT * FROM t WHERE pred
    OrderBy,      ///< SELECT * FROM t ORDER BY key
    CrossProduct, ///< SELECT * FROM big, small
    Union,        ///< SELECT * FROM a UNION ALL SELECT * FROM b
    Difference,   ///< SELECT * FROM a EXCEPT SELECT * FROM b
    Aggregation,  ///< SELECT k, SUM(v) FROM t GROUP BY k
    JoinQuery,    ///< SELECT * FROM a JOIN b ON a.k = b.k
    AggQuery,     ///< SELECT k', SUM(v) FROM t WHERE pred GROUP BY k'
    SelectQuery,  ///< SELECT a FROM t WHERE pred
};

/** Number of SqlOp values. */
constexpr unsigned kNumSqlOps = 10;

/** Operator name as used in workload labels ("OrderBy", ...). */
const char *sqlOpName(SqlOp op);

/**
 * Compiles and runs relational operators on a bound engine.
 *
 * The layer owns the user-code image for the generated operators
 * (query fragments are "user code" from the stack's perspective —
 * small, hot functions, in contrast to the framework).
 */
class SqlLayer
{
  public:
    /**
     * @param engine Engine queries execute on (Hive = MapReduce
     *        engine, Shark = RDD engine).
     */
    explicit SqlLayer(StackEngine &engine);

    /**
     * Execute one operator.
     * @param op The relational operator.
     * @param big The (large) input table.
     * @param other Second table for CrossProduct / Union /
     *        Difference / JoinQuery; must be non-null for those and
     *        is ignored otherwise.
     * @return The result table.
     */
    Dataset run(SqlOp op, const Dataset &big,
                const Dataset *other = nullptr);

    /** The bound engine. */
    StackEngine &engine() { return engine_; }

  private:
    /** Combine two tables into one tagged input (for reduce joins). */
    Dataset tagAndUnion(const Dataset &a, const Dataset &b) const;

    StackEngine &engine_;
    CodeImage userCode_;
    FunctionDesc mapFns_[kNumSqlOps];
    FunctionDesc reduceFns_[kNumSqlOps];
};

} // namespace bds

#endif // BDS_STACK_SQL_H
