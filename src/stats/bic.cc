#include "stats/bic.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "fault/error.h"
#include "obs/trace.h"

namespace bds {

double
pooledVariance(const Matrix &data, const KMeansResult &clustering)
{
    const std::size_t n = data.rows();
    const std::size_t k = clustering.k;
    if (clustering.labels.size() != n)
        BDS_FATAL("clustering labels do not match data rows");
    if (n <= k)
        return 0.0;
    double ss = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        std::size_t c = clustering.labels[r];
        for (std::size_t j = 0; j < data.cols(); ++j) {
            double d = data(r, j) - clustering.centers(c, j);
            ss += d * d;
        }
    }
    return ss / static_cast<double>(n - k);
}

double
bicScore(const Matrix &data, const KMeansResult &clustering)
{
    const double R = static_cast<double>(data.rows());
    const double d = static_cast<double>(data.cols());
    const std::size_t k = clustering.k;

    double sigma2 = pooledVariance(data, clustering);
    // A perfect fit (or K == R) degenerates; floor the variance so the
    // log stays finite. This penalizes overly large K only through
    // the parameter term, matching X-means practice.
    sigma2 = std::max(sigma2, 1e-12);

    auto groups = groupByLabel(clustering.labels, k);
    double ll = 0.0;
    const double two_pi = 2.0 * 3.14159265358979323846;
    for (std::size_t i = 0; i < k; ++i) {
        double Ri = static_cast<double>(groups[i].size());
        if (Ri == 0.0)
            continue;
        ll += -Ri / 2.0 * std::log(two_pi)
            - Ri * d / 2.0 * std::log(sigma2)
            - (Ri - static_cast<double>(k)) / 2.0
            + Ri * std::log(Ri)
            - Ri * std::log(R);
    }

    // Paper: p_j = K + d*K (class probabilities + centroid coords).
    double pj = static_cast<double>(k) + d * static_cast<double>(k);
    return ll - pj / 2.0 * std::log(R);
}

std::size_t
BicSweepResult::globalMaxIndex() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < points.size(); ++i)
        if (points[i].bic > points[best].bic)
            best = i;
    return best;
}

std::size_t
BicSweepResult::firstLocalMaxIndex() const
{
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        bool above_prev = i == 0 || points[i].bic > points[i - 1].bic;
        if (above_prev && points[i].bic > points[i + 1].bic)
            return i;
    }
    return globalMaxIndex();
}

namespace {

/** Clamp and validate a sweep range; returns the effective k_max. */
std::size_t
checkSweepRange(const Matrix &data, std::size_t k_min, std::size_t k_max)
{
    if (k_min == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "sweepBic requires k_min >= 1");
    // K can never exceed the observation count; clamp, and treat a
    // range the clamp empties (k_min > rows) as degenerate input.
    k_max = std::min(k_max, data.rows());
    if (k_min > k_max)
        BDS_RAISE(ErrorCode::DegenerateData,
                  "sweepBic with empty range [" << k_min << ','
                      << k_max << "] (only " << data.rows()
                      << " observations)");
    return k_max;
}

/** Pick bestIndex as the global BIC maximum. */
void
selectBest(BicSweepResult &sweep)
{
    for (std::size_t i = 1; i < sweep.points.size(); ++i)
        if (sweep.points[i].bic > sweep.points[sweep.bestIndex].bic)
            sweep.bestIndex = i;
}

} // namespace

BicSweepResult
sweepBic(const Matrix &data, std::size_t k_min, std::size_t k_max,
         Pcg32 &rng, const KMeansOptions &opts)
{
    k_max = checkSweepRange(data, k_min, k_max);

    BicSweepResult sweep;
    for (std::size_t k = k_min; k <= k_max; ++k) {
        BicSweepPoint pt;
        pt.k = k;
        pt.result = kMeans(data, k, rng, opts);
        pt.bic = bicScore(data, pt.result);
        sweep.points.push_back(std::move(pt));
    }
    selectBest(sweep);
    return sweep;
}

Pcg32
sweepPointRng(std::uint64_t seed, std::size_t k)
{
    // SplitMix64-style finalizer over K decorrelates neighbouring
    // streams; the stream selector keeps sweep RNGs disjoint from
    // every other Pcg32 user (data generators use small streams).
    std::uint64_t z = (static_cast<std::uint64_t>(k)
                       + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return Pcg32(seed ^ z, 0xb1cULL + static_cast<std::uint64_t>(k));
}

BicSweepResult
sweepBic(const Matrix &data, std::size_t k_min, std::size_t k_max,
         std::uint64_t seed, const KMeansOptions &opts,
         const ParallelOptions &par)
{
    k_max = checkSweepRange(data, k_min, k_max);

    // Each K owns a derived RNG stream and a preallocated slot, so
    // the fan-out is race-free and the sweep result is identical for
    // every thread count.
    BicSweepResult sweep;
    sweep.points.resize(k_max - k_min + 1);
    parallelFor(sweep.points.size(), par, [&](std::size_t i) {
        std::size_t k = k_min + i;
        TraceSpan span("bic.k", "k", static_cast<std::uint64_t>(k));
        Pcg32 rng = sweepPointRng(seed, k);
        BicSweepPoint &pt = sweep.points[i];
        pt.k = k;
        pt.result = kMeans(data, k, rng, opts);
        pt.bic = bicScore(data, pt.result);
    });
    selectBest(sweep);
    return sweep;
}

} // namespace bds
