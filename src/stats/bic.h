/**
 * @file
 * Bayesian Information Criterion for K-means model selection.
 *
 * Implements the paper's Equations (1)-(3), i.e. the X-means BIC of
 * Pelleg & Moore: an identical spherical Gaussian per cluster with a
 * single pooled variance. The paper selects the K that maximizes
 * BIC(D, K); with its 32x8 PC-score matrix the winner is K = 7.
 */

#ifndef BDS_STATS_BIC_H
#define BDS_STATS_BIC_H

#include <cstddef>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "stats/kmeans.h"
#include "stats/matrix.h"

namespace bds {

/**
 * BIC score of a clustering (larger is better).
 *
 * BIC(D, K) = l(D|K) - (p_j / 2) * log(R), where l is the pooled
 * spherical-Gaussian log-likelihood (paper Eq. 2), R the number of
 * observations and p_j = K + d*K the parameter count used by the
 * paper (class probabilities plus centroid coordinates).
 *
 * @param data Observations in rows (the PC scores).
 * @param clustering A K-means result over the same data.
 */
double bicScore(const Matrix &data, const KMeansResult &clustering);

/** Pooled variance of Eq. 3: sum of squared residuals over (R - K). */
double pooledVariance(const Matrix &data, const KMeansResult &clustering);

/** One entry of a BIC sweep. */
struct BicSweepPoint
{
    std::size_t k = 0;   ///< number of clusters tried
    double bic = 0.0;    ///< BIC score (larger is better)
    KMeansResult result; ///< the clustering itself
};

/** Outcome of sweeping K over a range. */
struct BicSweepResult
{
    std::vector<BicSweepPoint> points; ///< one per K, ascending K
    std::size_t bestIndex = 0;         ///< index of the selected K

    /** The winning K. */
    std::size_t bestK() const { return points[bestIndex].k; }

    /** The winning clustering. */
    const KMeansResult &best() const { return points[bestIndex].result; }

    /** Index of the global BIC maximum. */
    std::size_t globalMaxIndex() const;

    /**
     * Index of the first local BIC maximum (a point strictly above
     * both neighbours; the last point never qualifies unless it is
     * also the global maximum). Falls back to the global maximum
     * when the curve is monotone. For dispersed suites whose BIC
     * keeps rising with K, this "knee" matches the compact optimum
     * the paper reports (K = 7).
     */
    std::size_t firstLocalMaxIndex() const;
};

/**
 * Run K-means for each K in [k_min, k_max] and score each with BIC,
 * sequentially, drawing every initialization from one shared RNG.
 *
 * The K results therefore depend on the sweep order; prefer the
 * seeded overload below, whose per-K derived streams make the sweep
 * order-free (and parallelizable) without losing determinism.
 *
 * @param data Observations in rows.
 * @param k_min Smallest K tried (>= 1).
 * @param k_max Largest K tried (<= rows; clamped).
 * @param rng Seeded generator shared across the sweep.
 * @param opts Per-K K-means options.
 */
BicSweepResult sweepBic(const Matrix &data, std::size_t k_min,
                        std::size_t k_max, Pcg32 &rng,
                        const KMeansOptions &opts = {});

/**
 * Seed of the RNG stream used for one K of a seeded sweep.
 *
 * Exposed so callers can reproduce a single sweep point (a bench
 * re-running the chosen K, a test pinning one K) without executing
 * the whole sweep.
 */
Pcg32 sweepPointRng(std::uint64_t seed, std::size_t k);

/**
 * Seeded BIC sweep: each K draws from its own RNG stream derived
 * from (seed, K), so every sweep point is independent and the K
 * loop fans out across `par` worker threads. The result — scores,
 * clusterings and selected K — is identical for every thread count,
 * including the serial `par.threads == 1`.
 *
 * @param data Observations in rows.
 * @param k_min Smallest K tried (>= 1).
 * @param k_max Largest K tried (<= rows; clamped).
 * @param seed Base seed; K's stream is derived from (seed, K).
 * @param opts Per-K K-means options.
 * @param par Worker-thread knob for the K fan-out.
 */
BicSweepResult sweepBic(const Matrix &data, std::size_t k_min,
                        std::size_t k_max, std::uint64_t seed,
                        const KMeansOptions &opts = {},
                        const ParallelOptions &par = {});

} // namespace bds

#endif // BDS_STATS_BIC_H
