#include "stats/distance.h"

#include <cmath>

#include "common/log.h"

namespace bds {

double
squaredEuclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        BDS_FATAL("distance between vectors of different dimension: "
                  << a.size() << " vs " << b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

double
euclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    return std::sqrt(squaredEuclidean(a, b));
}

double
manhattan(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        BDS_FATAL("distance between vectors of different dimension: "
                  << a.size() << " vs " << b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += std::fabs(a[i] - b[i]);
    return s;
}

Matrix
pairwiseEuclidean(const Matrix &data)
{
    const std::size_t n = data.rows();
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        auto ri = data.row(i);
        for (std::size_t j = i + 1; j < n; ++j) {
            double d = euclidean(ri, data.row(j));
            out(i, j) = d;
            out(j, i) = d;
        }
    }
    return out;
}

} // namespace bds
