/**
 * @file
 * Distance functions over observation vectors.
 *
 * The paper follows Phansalkar et al. in using Euclidean distance for
 * both hierarchical clustering and K-means; other metrics are kept
 * for ablation experiments.
 */

#ifndef BDS_STATS_DISTANCE_H
#define BDS_STATS_DISTANCE_H

#include <vector>

#include "stats/matrix.h"

namespace bds {

/** Euclidean (L2) distance. */
double euclidean(const std::vector<double> &a, const std::vector<double> &b);

/** Squared Euclidean distance (cheaper; monotone in euclidean). */
double squaredEuclidean(const std::vector<double> &a,
                        const std::vector<double> &b);

/** Manhattan (L1) distance. */
double manhattan(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Full pairwise Euclidean distance matrix of a data set.
 * @param data Observations in rows.
 * @return Symmetric rows x rows matrix with zero diagonal.
 */
Matrix pairwiseEuclidean(const Matrix &data);

} // namespace bds

#endif // BDS_STATS_DISTANCE_H
