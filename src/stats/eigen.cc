#include "stats/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.h"

namespace bds {

namespace {

/** Sum of squares of strictly off-diagonal elements. */
double
offDiagonalNorm(const Matrix &a)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j)
                s += a(i, j) * a(i, j);
    return s;
}

} // namespace

EigenResult
eigenSymmetric(const Matrix &sym, int max_sweeps)
{
    const std::size_t n = sym.rows();
    if (n == 0 || sym.cols() != n)
        BDS_FATAL("eigenSymmetric requires a non-empty square matrix, got "
                  << sym.rows() << 'x' << sym.cols());
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (std::fabs(sym(i, j) - sym(j, i)) > 1e-9)
                BDS_FATAL("eigenSymmetric input is not symmetric at ("
                          << i << ',' << j << ')');

    Matrix a = sym;
    Matrix v = Matrix::identity(n);

    const double eps = 1e-14 * std::max(1.0, offDiagonalNorm(a));
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagonalNorm(a) <= eps)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                double apq = a(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                double app = a(p, p);
                double aqq = a(q, q);
                double theta = (aqq - app) / (2.0 * apq);
                double t = (theta >= 0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    double akp = a(k, p);
                    double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double apk = a(p, k);
                    double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double vkp = v(k, p);
                    double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return a(x, x) > a(y, y);
    });

    EigenResult res;
    res.values.resize(n);
    res.vectors = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        res.values[j] = a(order[j], order[j]);
        for (std::size_t i = 0; i < n; ++i)
            res.vectors(i, j) = v(i, order[j]);
    }

    // Deterministic sign convention: largest-magnitude component of each
    // eigenvector is positive, so PC orientations are stable across runs.
    for (std::size_t j = 0; j < n; ++j) {
        std::size_t imax = 0;
        double vmax = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (std::fabs(res.vectors(i, j)) > vmax) {
                vmax = std::fabs(res.vectors(i, j));
                imax = i;
            }
        }
        if (res.vectors(imax, j) < 0.0)
            for (std::size_t i = 0; i < n; ++i)
                res.vectors(i, j) = -res.vectors(i, j);
    }
    return res;
}

} // namespace bds
