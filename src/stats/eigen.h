/**
 * @file
 * Symmetric eigendecomposition via the cyclic Jacobi method.
 *
 * PCA needs the eigenpairs of a covariance matrix, which is symmetric
 * positive semi-definite. The cyclic Jacobi rotation method is exact
 * enough (machine precision) and simple; matrix sizes here are <= 45.
 */

#ifndef BDS_STATS_EIGEN_H
#define BDS_STATS_EIGEN_H

#include <vector>

#include "stats/matrix.h"

namespace bds {

/** Result of a symmetric eigendecomposition. */
struct EigenResult
{
    /** Eigenvalues sorted in descending order. */
    std::vector<double> values;

    /**
     * Eigenvectors as matrix columns: column j is the unit eigenvector
     * for values[j]. Columns form an orthonormal basis.
     */
    Matrix vectors;
};

/**
 * Decompose a symmetric matrix into eigenvalues/eigenvectors.
 *
 * @param sym Symmetric square matrix (asymmetry beyond 1e-9 is fatal).
 * @param max_sweeps Maximum Jacobi sweeps before declaring failure.
 * @return Eigenpairs sorted by descending eigenvalue.
 */
EigenResult eigenSymmetric(const Matrix &sym, int max_sweeps = 64);

} // namespace bds

#endif // BDS_STATS_EIGEN_H
