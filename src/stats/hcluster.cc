#include "stats/hcluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <sstream>

#include "common/log.h"
#include "common/table.h"
#include "stats/distance.h"

namespace bds {

const char *
linkageName(Linkage l)
{
    switch (l) {
      case Linkage::Single: return "single";
      case Linkage::Complete: return "complete";
      case Linkage::Average: return "average";
    }
    BDS_PANIC("unknown linkage");
}

Dendrogram::Dendrogram(std::size_t num_leaves, std::vector<Merge> merges)
    : numLeaves_(num_leaves), merges_(std::move(merges))
{
    if (numLeaves_ == 0)
        BDS_FATAL("dendrogram needs at least one leaf");
    if (merges_.size() != numLeaves_ - 1)
        BDS_FATAL("dendrogram over " << numLeaves_ << " leaves needs "
                  << numLeaves_ - 1 << " merges, got " << merges_.size());
    for (std::size_t i = 0; i < merges_.size(); ++i) {
        std::size_t cap = numLeaves_ + i;
        if (merges_[i].left >= cap || merges_[i].right >= cap ||
            merges_[i].left == merges_[i].right)
            BDS_FATAL("merge " << i << " references invalid cluster ids");
    }
}

std::vector<std::size_t>
Dendrogram::leavesOf(std::size_t cluster_id) const
{
    std::vector<std::size_t> out;
    std::vector<std::size_t> stack{cluster_id};
    while (!stack.empty()) {
        std::size_t id = stack.back();
        stack.pop_back();
        if (id < numLeaves_) {
            out.push_back(id);
        } else {
            const Merge &m = merges_[id - numLeaves_];
            stack.push_back(m.left);
            stack.push_back(m.right);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::size_t>
Dendrogram::cutIntoK(std::size_t k) const
{
    if (k == 0 || k > numLeaves_)
        BDS_FATAL("cannot cut " << numLeaves_ << " leaves into " << k
                  << " clusters");
    // Roots after undoing the last k-1 merges: every cluster id that is
    // never consumed by a merge among the first n-k merges.
    std::size_t kept = merges_.size() - (k - 1);
    std::vector<bool> consumed(numLeaves_ + kept, false);
    for (std::size_t i = 0; i < kept; ++i) {
        consumed[merges_[i].left] = true;
        consumed[merges_[i].right] = true;
    }
    std::vector<std::size_t> labels(numLeaves_,
                                    std::numeric_limits<std::size_t>::max());
    std::size_t next_label = 0;
    // Assign labels in order of smallest leaf so numbering is stable.
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t id = 0; id < numLeaves_ + kept; ++id) {
        if (!consumed[id])
            groups.push_back(leavesOf(id));
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto &a, const auto &b) { return a[0] < b[0]; });
    for (const auto &g : groups) {
        for (std::size_t leaf : g)
            labels[leaf] = next_label;
        ++next_label;
    }
    BDS_ASSERT(next_label == k, "cut produced wrong cluster count");
    return labels;
}

std::vector<std::size_t>
Dendrogram::cutAtHeight(double height) const
{
    std::size_t below = 0;
    for (const Merge &m : merges_)
        if (m.distance <= height)
            ++below;
    // Merges are recorded in non-decreasing distance order, so the
    // first `below` merges are exactly those at or below the cut.
    return cutIntoK(numLeaves_ - below);
}

std::vector<std::size_t>
Dendrogram::leafOrder() const
{
    std::vector<std::size_t> order;
    std::function<void(std::size_t)> walk = [&](std::size_t id) {
        if (id < numLeaves_) {
            order.push_back(id);
            return;
        }
        const Merge &m = merges_[id - numLeaves_];
        walk(m.left);
        walk(m.right);
    };
    walk(numLeaves_ + merges_.size() - 1);
    return order;
}

std::vector<Merge>
Dendrogram::firstIterationLeafMerges() const
{
    std::vector<Merge> out;
    for (const Merge &m : merges_)
        if (m.left < numLeaves_ && m.right < numLeaves_)
            out.push_back(m);
    return out;
}

double
Dendrogram::copheneticDistance(std::size_t leaf_a, std::size_t leaf_b) const
{
    if (leaf_a >= numLeaves_ || leaf_b >= numLeaves_)
        BDS_FATAL("cophenetic distance of non-leaf ids");
    if (leaf_a == leaf_b)
        return 0.0;
    // Track each leaf's current cluster through the merge sequence.
    std::vector<std::size_t> cluster(numLeaves_);
    for (std::size_t i = 0; i < numLeaves_; ++i)
        cluster[i] = i;
    for (std::size_t i = 0; i < merges_.size(); ++i) {
        std::size_t next_id = numLeaves_ + i;
        const Merge &m = merges_[i];
        for (std::size_t leaf : {leaf_a, leaf_b})
            if (cluster[leaf] == m.left || cluster[leaf] == m.right)
                cluster[leaf] = next_id;
        if (cluster[leaf_a] == cluster[leaf_b])
            return m.distance;
    }
    BDS_PANIC("leaves never merged");
}

std::string
Dendrogram::renderAscii(const std::vector<std::string> &names) const
{
    if (names.size() != numLeaves_)
        BDS_FATAL("renderAscii needs " << numLeaves_ << " names, got "
                  << names.size());
    std::ostringstream oss;
    std::function<void(std::size_t, std::string, bool)> walk =
        [&](std::size_t id, std::string prefix, bool last) {
            oss << prefix << (last ? "`-- " : "|-- ");
            std::string child_prefix = prefix + (last ? "    " : "|   ");
            if (id < numLeaves_) {
                oss << names[id] << '\n';
                return;
            }
            const Merge &m = merges_[id - numLeaves_];
            oss << '[' << fmtDouble(m.distance, 2) << "]\n";
            walk(m.left, child_prefix, false);
            walk(m.right, child_prefix, true);
        };
    walk(numLeaves_ + merges_.size() - 1, "", true);
    return oss.str();
}

namespace {

/** Lance-Williams coefficient update for the supported linkages. */
double
mergedDistance(Linkage linkage, double d_ik, double d_jk,
               std::size_t size_i, std::size_t size_j)
{
    switch (linkage) {
      case Linkage::Single:
        return std::min(d_ik, d_jk);
      case Linkage::Complete:
        return std::max(d_ik, d_jk);
      case Linkage::Average:
        return (d_ik * static_cast<double>(size_i) +
                d_jk * static_cast<double>(size_j)) /
               static_cast<double>(size_i + size_j);
    }
    BDS_PANIC("unknown linkage");
}

} // namespace

Dendrogram
hierarchicalClusterFromDistances(const Matrix &dist, Linkage linkage)
{
    const std::size_t n = dist.rows();
    if (n == 0 || dist.cols() != n)
        BDS_FATAL("distance matrix must be square and non-empty");

    // Working pair distances keyed by original row positions; a
    // position is retired (alive=false) when its cluster is absorbed.
    Matrix d = dist;
    std::vector<Merge> merges;
    merges.reserve(n - 1);
    std::size_t next_id = n;
    std::vector<bool> alive(n, true);
    std::vector<std::size_t> cluster_of(n);
    std::vector<std::size_t> cluster_size(n, 1);
    for (std::size_t i = 0; i < n; ++i)
        cluster_of[i] = i;

    for (std::size_t step = 0; step + 1 < n; ++step) {
        // Find the closest live pair.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!alive[i])
                continue;
            for (std::size_t j = i + 1; j < n; ++j) {
                if (!alive[j])
                    continue;
                if (d(i, j) < best) {
                    best = d(i, j);
                    bi = i;
                    bj = j;
                }
            }
        }
        BDS_ASSERT(std::isfinite(best), "no live pair found");

        merges.push_back(Merge{cluster_of[bi], cluster_of[bj], best,
                               cluster_size[bi] + cluster_size[bj]});

        // Merge bj into bi.
        for (std::size_t k = 0; k < n; ++k) {
            if (!alive[k] || k == bi || k == bj)
                continue;
            double nd = mergedDistance(linkage, d(bi, k), d(bj, k),
                                       cluster_size[bi], cluster_size[bj]);
            d(bi, k) = nd;
            d(k, bi) = nd;
        }
        alive[bj] = false;
        cluster_of[bi] = next_id++;
        cluster_size[bi] += cluster_size[bj];
    }

    return Dendrogram(n, std::move(merges));
}

Dendrogram
hierarchicalCluster(const Matrix &data, Linkage linkage)
{
    return hierarchicalClusterFromDistances(pairwiseEuclidean(data), linkage);
}

} // namespace bds
