/**
 * @file
 * Agglomerative hierarchical clustering and dendrograms.
 *
 * The paper builds its Figure 1 dendrogram with single-linkage
 * (minimum) Euclidean distance over the 8 retained PC scores.
 * Complete and average linkage are provided for the ablation bench.
 *
 * Merge records follow the scipy convention: the original n
 * observations are clusters 0..n-1, and the i-th merge creates
 * cluster id n+i.
 */

#ifndef BDS_STATS_HCLUSTER_H
#define BDS_STATS_HCLUSTER_H

#include <cstddef>
#include <string>
#include <vector>

#include "stats/matrix.h"

namespace bds {

/** Linkage criterion for agglomerative clustering. */
enum class Linkage
{
    Single,   ///< minimum pairwise distance (the paper's choice)
    Complete, ///< maximum pairwise distance
    Average   ///< unweighted average pairwise distance (UPGMA)
};

/** Human-readable linkage name. */
const char *linkageName(Linkage l);

/** One agglomeration step. */
struct Merge
{
    std::size_t left;     ///< cluster id of one child
    std::size_t right;    ///< cluster id of the other child
    double distance;      ///< linkage distance between the children
    std::size_t size;     ///< number of leaves in the merged cluster
};

/**
 * A complete agglomeration history over n leaves (n-1 merges,
 * non-decreasing distances for the metric linkages used here).
 */
class Dendrogram
{
  public:
    /** Build from a merge list; validates the structure. */
    Dendrogram(std::size_t num_leaves, std::vector<Merge> merges);

    /** Number of original observations. */
    std::size_t numLeaves() const { return numLeaves_; }

    /** Merge steps in agglomeration order. */
    const std::vector<Merge> &merges() const { return merges_; }

    /**
     * Cut the tree into exactly k clusters (undo the last k-1 merges).
     * @return Cluster label in [0, k) per leaf; labels are assigned in
     *         order of first appearance over leaf indices.
     */
    std::vector<std::size_t> cutIntoK(std::size_t k) const;

    /**
     * Cut at a linkage height: clusters are the components formed by
     * merges with distance <= height.
     */
    std::vector<std::size_t> cutAtHeight(double height) const;

    /** Leaf ids of the subtree rooted at the given cluster id. */
    std::vector<std::size_t> leavesOf(std::size_t cluster_id) const;

    /** Display order of leaves (left-to-right tree traversal). */
    std::vector<std::size_t> leafOrder() const;

    /**
     * The merges performed in the "first clustering iteration": the
     * maximal set of merges, taken in distance order, whose children
     * are both original leaves. Used for the paper's Observation 1.
     */
    std::vector<Merge> firstIterationLeafMerges() const;

    /**
     * Linkage distance at which two leaves first join one cluster
     * (the cophenetic distance).
     */
    double copheneticDistance(std::size_t leaf_a, std::size_t leaf_b) const;

    /**
     * Render a sideways ASCII tree, one leaf per line, internal nodes
     * labelled with their linkage distance.
     * @param names Per-leaf display names (size must equal numLeaves).
     */
    std::string renderAscii(const std::vector<std::string> &names) const;

  private:
    std::size_t numLeaves_;
    std::vector<Merge> merges_;
};

/**
 * Run agglomerative clustering over row observations.
 *
 * Uses the Lance-Williams update over a dense distance matrix; O(n^3)
 * worst case, entirely adequate for benchmark-suite-sized inputs.
 *
 * @param data Observations in rows (e.g., PC scores).
 * @param linkage Linkage criterion.
 */
Dendrogram hierarchicalCluster(const Matrix &data,
                               Linkage linkage = Linkage::Single);

/** As above but starting from a precomputed distance matrix. */
Dendrogram hierarchicalClusterFromDistances(const Matrix &dist,
                                            Linkage linkage);

} // namespace bds

#endif // BDS_STATS_HCLUSTER_H
