#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "stats/distance.h"

namespace bds {

namespace {

/** Squared distance from row r of data to row c of centers. */
double
sqDistRow(const Matrix &data, std::size_t r, const Matrix &centers,
          std::size_t c)
{
    double s = 0.0;
    for (std::size_t j = 0; j < data.cols(); ++j) {
        double d = data(r, j) - centers(c, j);
        s += d * d;
    }
    return s;
}

/** k-means++ seeding. */
Matrix
seedPlusPlus(const Matrix &data, std::size_t k, Pcg32 &rng)
{
    const std::size_t n = data.rows();
    Matrix centers(k, data.cols());
    std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());

    std::size_t first = rng.nextBounded(static_cast<std::uint32_t>(n));
    centers.setRow(0, data.row(first));

    for (std::size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            min_sq[r] = std::min(min_sq[r], sqDistRow(data, r, centers,
                                                      c - 1));
            total += min_sq[r];
        }
        std::size_t chosen;
        if (total <= 0.0) {
            // All remaining points coincide with a center; pick any.
            chosen = rng.nextBounded(static_cast<std::uint32_t>(n));
        } else {
            double target = rng.nextDouble() * total;
            double acc = 0.0;
            chosen = n - 1;
            for (std::size_t r = 0; r < n; ++r) {
                acc += min_sq[r];
                if (acc >= target) {
                    chosen = r;
                    break;
                }
            }
        }
        centers.setRow(c, data.row(chosen));
    }
    return centers;
}

/** One full Lloyd run from the given seed centers. */
KMeansResult
lloyd(const Matrix &data, Matrix centers, const KMeansOptions &opts)
{
    const std::size_t n = data.rows();
    const std::size_t k = centers.rows();
    const std::size_t dims = data.cols();

    KMeansResult res;
    res.k = k;
    res.labels.assign(n, 0);

    for (std::size_t it = 0; it < opts.maxIterations; ++it) {
        res.iterations = it + 1;
        // Assignment step.
        for (std::size_t r = 0; r < n; ++r) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t arg = 0;
            for (std::size_t c = 0; c < k; ++c) {
                double d = sqDistRow(data, r, centers, c);
                if (d < best) {
                    best = d;
                    arg = c;
                }
            }
            res.labels[r] = arg;
        }
        // Update step.
        Matrix next(k, dims);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t r = 0; r < n; ++r) {
            ++counts[res.labels[r]];
            for (std::size_t j = 0; j < dims; ++j)
                next(res.labels[r], j) += data(r, j);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster with the point farthest
                // from its current center.
                double worst = -1.0;
                std::size_t arg = 0;
                for (std::size_t r = 0; r < n; ++r) {
                    double d = sqDistRow(data, r, centers, res.labels[r]);
                    if (d > worst) {
                        worst = d;
                        arg = r;
                    }
                }
                next.setRow(c, data.row(arg));
                counts[c] = 1;
                res.labels[arg] = c;
            } else {
                for (std::size_t j = 0; j < dims; ++j)
                    next(c, j) /= static_cast<double>(counts[c]);
            }
        }
        double moved = Matrix::maxAbsDiff(next, centers);
        centers = std::move(next);
        if (moved <= opts.tolerance)
            break;
    }

    res.inertia = 0.0;
    for (std::size_t r = 0; r < n; ++r)
        res.inertia += sqDistRow(data, r, centers, res.labels[r]);
    res.centers = std::move(centers);
    return res;
}

} // namespace

KMeansResult
kMeans(const Matrix &data, std::size_t k, Pcg32 &rng,
       const KMeansOptions &opts)
{
    if (k == 0)
        BDS_FATAL("kMeans requires k >= 1");
    if (data.rows() < k)
        BDS_FATAL("kMeans with k=" << k << " needs >= k observations, got "
                  << data.rows());

    KMeansResult best;
    best.inertia = std::numeric_limits<double>::infinity();
    std::size_t runs = std::max<std::size_t>(1, opts.restarts);
    for (std::size_t run = 0; run < runs; ++run) {
        KMeansResult cur = lloyd(data, seedPlusPlus(data, k, rng), opts);
        if (cur.inertia < best.inertia)
            best = std::move(cur);
    }
    return best;
}

std::vector<std::vector<std::size_t>>
groupByLabel(const std::vector<std::size_t> &labels, std::size_t k)
{
    std::vector<std::vector<std::size_t>> groups(k);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] >= k)
            BDS_FATAL("label " << labels[i] << " out of range for k=" << k);
        groups[labels[i]].push_back(i);
    }
    return groups;
}

} // namespace bds
