/**
 * @file
 * K-means clustering (k-means++ seeding, Lloyd iterations).
 *
 * The paper groups the 32 workloads' 8-dimensional PC scores with
 * K-means and selects K by the Bayesian Information Criterion (see
 * bic.h). Seeding is deterministic given the caller's RNG.
 */

#ifndef BDS_STATS_KMEANS_H
#define BDS_STATS_KMEANS_H

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "stats/matrix.h"

namespace bds {

/** K-means output. */
struct KMeansResult
{
    /** Cluster label per observation, in [0, k). */
    std::vector<std::size_t> labels;

    /** Cluster centers, k x dims. */
    Matrix centers;

    /** Sum over points of squared distance to their center. */
    double inertia = 0.0;

    /** Lloyd iterations executed before convergence. */
    std::size_t iterations = 0;

    /** Number of clusters actually used (empty clusters are re-seeded). */
    std::size_t k = 0;
};

/** Options for kMeans(). */
struct KMeansOptions
{
    std::size_t maxIterations = 200;  ///< Lloyd iteration cap
    std::size_t restarts = 8;         ///< independent runs; best kept
    double tolerance = 1e-10;         ///< center-movement convergence bound
};

/**
 * Cluster row observations into k groups.
 *
 * Runs `restarts` independent k-means++ initializations and returns
 * the solution with the lowest inertia. Empty clusters are re-seeded
 * with the point farthest from its center.
 *
 * @param data Observations in rows; must have >= k rows.
 * @param k Number of clusters (>= 1).
 * @param rng Seeded generator; determinism is the caller's contract.
 * @param opts Iteration and restart controls.
 */
KMeansResult kMeans(const Matrix &data, std::size_t k, Pcg32 &rng,
                    const KMeansOptions &opts = {});

/**
 * Group observation indices by label.
 * @return k vectors; vector i holds the row indices with label i.
 */
std::vector<std::vector<std::size_t>>
groupByLabel(const std::vector<std::size_t> &labels, std::size_t k);

} // namespace bds

#endif // BDS_STATS_KMEANS_H
