#include "stats/matrix.h"

#include <cmath>

#include "common/log.h"

namespace bds {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init)
{
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : init) {
        if (row.size() != cols_)
            BDS_FATAL("ragged initializer list: row has " << row.size()
                      << " entries, expected " << cols_);
        for (double v : row)
            data_.push_back(v);
    }
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        BDS_FATAL("matrix index (" << r << ',' << c << ") out of bounds for "
                  << rows_ << 'x' << cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        BDS_FATAL("matrix index (" << r << ',' << c << ") out of bounds for "
                  << rows_ << 'x' << cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    if (r >= rows_)
        BDS_FATAL("row " << r << " out of bounds for " << rows_ << " rows");
    return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    if (c >= cols_)
        BDS_FATAL("col " << c << " out of bounds for " << cols_ << " cols");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

void
Matrix::setRow(std::size_t r, const std::vector<double> &values)
{
    if (r >= rows_ || values.size() != cols_)
        BDS_FATAL("setRow(" << r << ") with " << values.size()
                  << " values on " << rows_ << 'x' << cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        (*this)(r, c) = values[c];
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        BDS_FATAL("shape mismatch in multiply: " << rows_ << 'x' << cols_
                  << " * " << rhs.rows_ << 'x' << rhs.cols_);
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i)
        out(i, i) = 1.0;
    return out;
}

std::vector<double>
Matrix::colMeans() const
{
    std::vector<double> mean(cols_, 0.0);
    if (rows_ == 0)
        return mean;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            mean[c] += (*this)(r, c);
    for (auto &m : mean)
        m /= static_cast<double>(rows_);
    return mean;
}

std::vector<double>
Matrix::colStddevs() const
{
    std::vector<double> sd(cols_, 0.0);
    if (rows_ < 2)
        return sd;
    auto mean = colMeans();
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            double d = (*this)(r, c) - mean[c];
            sd[c] += d * d;
        }
    }
    for (auto &v : sd)
        v = std::sqrt(v / static_cast<double>(rows_ - 1));
    return sd;
}

double
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        BDS_FATAL("maxAbsDiff shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); ++i)
        m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
    return m;
}

} // namespace bds
