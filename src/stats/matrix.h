/**
 * @file
 * Dense row-major matrix of doubles.
 *
 * The statistics pipeline works on small matrices (the paper's data
 * set is 32 workloads x 45 metrics, reduced to 32 x 8), so this class
 * favours clarity and checked access over BLAS-grade performance.
 */

#ifndef BDS_STATS_MATRIX_H
#define BDS_STATS_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace bds {

/** Dense row-major matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer list (rows of equal arity). */
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }

    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** Checked element access. */
    double &at(std::size_t r, std::size_t c);

    /** Checked element access (const). */
    double at(std::size_t r, std::size_t c) const;

    /** Unchecked element access. */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    /** Unchecked element access (const). */
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Copy of row r as a vector. */
    std::vector<double> row(std::size_t r) const;

    /** Copy of column c as a vector. */
    std::vector<double> col(std::size_t c) const;

    /** Overwrite row r. */
    void setRow(std::size_t r, const std::vector<double> &values);

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * rhs. */
    Matrix multiply(const Matrix &rhs) const;

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Per-column means. */
    std::vector<double> colMeans() const;

    /**
     * Per-column sample standard deviations (divides by n-1).
     * Columns with fewer than two rows yield 0.
     */
    std::vector<double> colStddevs() const;

    /** Raw storage (row-major). */
    const std::vector<double> &data() const { return data_; }

    /** Max |a(i,j) - b(i,j)|; matrices must have equal shape. */
    static double maxAbsDiff(const Matrix &a, const Matrix &b);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace bds

#endif // BDS_STATS_MATRIX_H
