#include "stats/normalize.h"

#include "common/log.h"

namespace bds {

ZScoreResult
zscore(const Matrix &data, double eps)
{
    if (data.rows() < 2)
        BDS_FATAL("zscore needs at least two observations, got "
                  << data.rows());
    ZScoreResult res;
    res.means = data.colMeans();
    res.stddevs = data.colStddevs();
    res.normalized = Matrix(data.rows(), data.cols());

    for (std::size_t c = 0; c < data.cols(); ++c) {
        if (res.stddevs[c] < eps) {
            res.constantColumns.push_back(c);
            continue; // column stays zero
        }
        for (std::size_t r = 0; r < data.rows(); ++r)
            res.normalized(r, c) =
                (data(r, c) - res.means[c]) / res.stddevs[c];
    }
    return res;
}

} // namespace bds
