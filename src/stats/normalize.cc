#include "stats/normalize.h"

#include <cmath>

#include "common/log.h"
#include "fault/error.h"

namespace bds {

ZScoreResult
zscore(const Matrix &data, double eps)
{
    if (data.rows() < 2)
        BDS_RAISE(ErrorCode::DegenerateData,
                  "zscore needs at least two observations, got "
                      << data.rows());
    // A single NaN/Inf cell would silently poison its column's mean
    // and stddev and then the whole normalized column; reject the
    // matrix up front with the cell's coordinates instead.
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            if (!std::isfinite(data(r, c)))
                BDS_RAISE(ErrorCode::DegenerateData,
                          "zscore input has a non-finite value at ("
                              << r << ',' << c << ')');

    ZScoreResult res;
    res.means = data.colMeans();
    res.stddevs = data.colStddevs();
    res.normalized = Matrix(data.rows(), data.cols());

    for (std::size_t c = 0; c < data.cols(); ++c) {
        if (res.stddevs[c] < eps) {
            res.constantColumns.push_back(c);
            continue; // column stays zero
        }
        for (std::size_t r = 0; r < data.rows(); ++r)
            res.normalized(r, c) =
                (data(r, c) - res.means[c]) / res.stddevs[c];
    }
    if (!res.constantColumns.empty())
        warn("zscore: " + std::to_string(res.constantColumns.size())
             + " zero-variance column(s) mapped to zero");
    return res;
}

} // namespace bds
