/**
 * @file
 * Z-score normalization of a metric matrix.
 *
 * The paper normalizes each of the 45 metrics "to a Gaussian
 * distribution with mean equal to zero and standard deviation equal
 * to one (to isolate the effects of the varying ranges of each
 * dimension)" before PCA. Constant columns carry no information and
 * are mapped to all-zero columns rather than dividing by zero.
 */

#ifndef BDS_STATS_NORMALIZE_H
#define BDS_STATS_NORMALIZE_H

#include <vector>

#include "stats/matrix.h"

namespace bds {

/** Z-scored data plus the parameters used, for round-tripping. */
struct ZScoreResult
{
    /** Normalized matrix (same shape as the input). */
    Matrix normalized;

    /** Per-column means of the input. */
    std::vector<double> means;

    /** Per-column sample standard deviations of the input. */
    std::vector<double> stddevs;

    /** Column indices whose stddev was (near) zero. */
    std::vector<std::size_t> constantColumns;
};

/**
 * Z-score each column: (x - mean) / stddev.
 *
 * @param data Rows are observations (workloads), columns are metrics.
 * @param eps Stddevs below eps mark the column as constant (output 0).
 */
ZScoreResult zscore(const Matrix &data, double eps = 1e-12);

} // namespace bds

#endif // BDS_STATS_NORMALIZE_H
