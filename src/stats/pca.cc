#include "stats/pca.h"

#include <cmath>
#include <numeric>

#include "common/log.h"
#include "stats/eigen.h"

namespace bds {

Matrix
covariance(const Matrix &centered)
{
    const std::size_t n = centered.rows();
    const std::size_t d = centered.cols();
    if (n < 2)
        BDS_FATAL("covariance needs at least two observations");
    Matrix cov(d, d);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = i; j < d; ++j) {
            double s = 0.0;
            for (std::size_t r = 0; r < n; ++r)
                s += centered(r, i) * centered(r, j);
            s /= static_cast<double>(n - 1);
            cov(i, j) = s;
            cov(j, i) = s;
        }
    }
    return cov;
}

PcaResult
pca(const Matrix &normalized, const PcaOptions &opts)
{
    const std::size_t n = normalized.rows();
    const std::size_t d = normalized.cols();
    if (n < 2 || d == 0)
        BDS_FATAL("pca requires a non-empty matrix with >= 2 rows");

    Matrix cov = covariance(normalized);
    EigenResult eig = eigenSymmetric(cov);

    PcaResult res;
    res.eigenvalues = eig.values;

    std::size_t keep;
    if (opts.forcedComponents > 0) {
        keep = std::min(opts.forcedComponents, d);
    } else {
        keep = 0;
        for (double v : eig.values)
            if (v >= opts.kaiserThreshold)
                ++keep;
        keep = std::max(keep, opts.minComponents);
        keep = std::min(keep, d);
    }
    res.numComponents = keep;

    res.components = Matrix(d, keep);
    res.loadings = Matrix(d, keep);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < keep; ++j) {
            double v = eig.vectors(i, j);
            res.components(i, j) = v;
            res.loadings(i, j) =
                v * std::sqrt(std::max(0.0, eig.values[j]));
        }
    }

    res.scores = normalized.multiply(res.components);

    double total = std::accumulate(eig.values.begin(), eig.values.end(), 0.0);
    res.varianceRatio.resize(keep, 0.0);
    if (total > 0.0) {
        for (std::size_t j = 0; j < keep; ++j)
            res.varianceRatio[j] = std::max(0.0, eig.values[j]) / total;
    }
    res.totalVarianceRetained = std::accumulate(
        res.varianceRatio.begin(), res.varianceRatio.end(), 0.0);
    return res;
}

} // namespace bds
