/**
 * @file
 * Principal Component Analysis with Kaiser's criterion.
 *
 * Implements the paper's Section III-C: z-score the metric matrix,
 * take the covariance (equivalently, the correlation matrix of the
 * raw data), eigendecompose it, and retain the components whose
 * eigenvalue is >= 1 (Kaiser's criterion). Factor loadings — the
 * per-metric weights of each PC shown in the paper's Figure 4 — are
 * the eigenvector entries scaled by the square root of the
 * eigenvalue.
 */

#ifndef BDS_STATS_PCA_H
#define BDS_STATS_PCA_H

#include <cstddef>
#include <vector>

#include "stats/matrix.h"

namespace bds {

/** Full PCA output. */
struct PcaResult
{
    /** All eigenvalues, descending. */
    std::vector<double> eigenvalues;

    /** Number of components retained (by Kaiser or explicit request). */
    std::size_t numComponents = 0;

    /**
     * Scores: observations projected onto the retained components;
     * rows x numComponents.
     */
    Matrix scores;

    /**
     * Principal axes: cols(input) x numComponents; column j is the
     * unit-length eigenvector of PC j.
     */
    Matrix components;

    /**
     * Factor loadings: cols(input) x numComponents; loading(i, j) =
     * components(i, j) * sqrt(eigenvalues[j]). This is the quantity
     * plotted in the paper's Figure 4.
     */
    Matrix loadings;

    /** Fraction of total variance captured per retained component. */
    std::vector<double> varianceRatio;

    /** Sum of varianceRatio over the retained components. */
    double totalVarianceRetained = 0.0;
};

/** Options controlling component retention. */
struct PcaOptions
{
    /**
     * Kaiser's criterion threshold: keep PCs with eigenvalue >= this.
     * The paper uses 1.0 on the correlation matrix.
     */
    double kaiserThreshold = 1.0;

    /**
     * If non-zero, retain exactly this many components and ignore the
     * Kaiser threshold (used by the PC-count ablation).
     */
    std::size_t forcedComponents = 0;

    /** Always retain at least this many components. */
    std::size_t minComponents = 1;
};

/**
 * Run PCA on an already z-scored matrix.
 *
 * @param normalized Z-scored observations (rows) x metrics (cols).
 * @param opts Component-retention options.
 */
PcaResult pca(const Matrix &normalized, const PcaOptions &opts = {});

/**
 * Covariance matrix of the (column-centered) input; divides by n-1.
 * For z-scored input this is the correlation matrix of the raw data.
 */
Matrix covariance(const Matrix &centered);

} // namespace bds

#endif // BDS_STATS_PCA_H
