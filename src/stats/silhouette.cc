#include "stats/silhouette.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/log.h"
#include "stats/distance.h"

namespace bds {

double
silhouetteScore(const Matrix &data, const std::vector<std::size_t> &labels)
{
    const std::size_t n = data.rows();
    if (labels.size() != n)
        BDS_FATAL("labels size " << labels.size() << " != rows " << n);
    std::set<std::size_t> distinct(labels.begin(), labels.end());
    if (distinct.size() < 2)
        BDS_FATAL("silhouette needs at least two clusters");

    Matrix dist = pairwiseEuclidean(data);
    std::size_t k = *std::max_element(labels.begin(), labels.end()) + 1;
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t lbl : labels)
        ++counts[lbl];

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t li = labels[i];
        if (counts[li] <= 1)
            continue; // singleton: s = 0
        std::vector<double> sums(k, 0.0);
        for (std::size_t j = 0; j < n; ++j)
            if (j != i)
                sums[labels[j]] += dist(i, j);
        double a = sums[li] / static_cast<double>(counts[li] - 1);
        double b = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < k; ++c) {
            if (c == li || counts[c] == 0)
                continue;
            b = std::min(b, sums[c] / static_cast<double>(counts[c]));
        }
        double denom = std::max(a, b);
        if (denom > 0.0)
            total += (b - a) / denom;
    }
    return total / static_cast<double>(n);
}

} // namespace bds
