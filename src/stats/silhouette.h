/**
 * @file
 * Silhouette score — the ablation alternative to BIC for choosing K.
 *
 * The paper selects K with BIC; the ablation bench compares that
 * choice against the mean silhouette coefficient, a widely used
 * internal clustering-quality index.
 */

#ifndef BDS_STATS_SILHOUETTE_H
#define BDS_STATS_SILHOUETTE_H

#include <cstddef>
#include <vector>

#include "stats/matrix.h"

namespace bds {

/**
 * Mean silhouette coefficient over all observations.
 *
 * For each point: a = mean intra-cluster distance, b = smallest mean
 * distance to another cluster, s = (b - a) / max(a, b). Singleton
 * clusters contribute s = 0 (scikit-learn convention).
 *
 * @param data Observations in rows.
 * @param labels Cluster label per row.
 * @return Mean silhouette in [-1, 1]; requires >= 2 distinct labels.
 */
double silhouetteScore(const Matrix &data,
                       const std::vector<std::size_t> &labels);

} // namespace bds

#endif // BDS_STATS_SILHOUETTE_H
