#include "store/index.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bds {

bool
StoreIndex::load(const std::string &path)
{
    entries_.clear();
    nextSeq_ = 1;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != "BDSINDEX 1")
        return false;

    std::uint64_t count = 0;
    {
        if (!std::getline(in, line))
            return false;
        std::istringstream ss(line);
        std::string key;
        if (!(ss >> key >> count) || key != "entries")
            return false;
    }

    std::map<std::string, IndexedEntry> parsed;
    std::uint64_t maxSeq = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!std::getline(in, line))
            return false;
        std::istringstream ss(line);
        IndexedEntry e;
        if (!(ss >> e.seq >> e.bytes >> e.name) || e.name.empty())
            return false;
        maxSeq = std::max(maxSeq, e.seq);
        parsed[e.name] = std::move(e);
    }
    if (!std::getline(in, line) || line != "END")
        return false;

    entries_ = std::move(parsed);
    nextSeq_ = maxSeq + 1;
    return true;
}

bool
StoreIndex::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << "BDSINDEX 1\n" << "entries " << entries_.size() << '\n';
        for (const auto &kv : entries_)
            out << kv.second.seq << ' ' << kv.second.bytes << ' '
                << kv.second.name << '\n';
        out << "END\n";
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

namespace {

/** Scan sorted oldest-mtime first, name-tiebroken for determinism. */
std::vector<ScannedEntry>
mtimeOrder(const std::vector<ScannedEntry> &scan)
{
    std::vector<ScannedEntry> sorted = scan;
    std::sort(sorted.begin(), sorted.end(),
              [](const ScannedEntry &a, const ScannedEntry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.name < b.name;
              });
    return sorted;
}

} // namespace

void
StoreIndex::rebuild(const std::vector<ScannedEntry> &scan)
{
    entries_.clear();
    nextSeq_ = 1;
    for (const ScannedEntry &s : mtimeOrder(scan)) {
        IndexedEntry e;
        e.name = s.name;
        e.bytes = s.bytes;
        e.seq = nextSeq_++;
        entries_[e.name] = std::move(e);
    }
}

void
StoreIndex::reconcile(const std::vector<ScannedEntry> &scan)
{
    // Drop indexed entries whose file is gone.
    std::map<std::string, const ScannedEntry *> present;
    for (const ScannedEntry &s : scan)
        present[s.name] = &s;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (present.find(it->first) == present.end())
            it = entries_.erase(it);
        else
            ++it;
    }

    // Refresh sizes; adopt unknown files in mtime order so their
    // relative recency is preserved.
    for (const ScannedEntry &s : mtimeOrder(scan)) {
        auto it = entries_.find(s.name);
        if (it != entries_.end()) {
            it->second.bytes = s.bytes;
            continue;
        }
        IndexedEntry e;
        e.name = s.name;
        e.bytes = s.bytes;
        e.seq = nextSeq_++;
        entries_[e.name] = std::move(e);
    }
}

void
StoreIndex::touch(const std::string &name, std::uint64_t bytes)
{
    IndexedEntry &e = entries_[name];
    e.name = name;
    e.bytes = bytes;
    e.seq = nextSeq_++;
}

void
StoreIndex::erase(const std::string &name)
{
    entries_.erase(name);
}

std::uint64_t
StoreIndex::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &kv : entries_)
        total += kv.second.bytes;
    return total;
}

std::vector<IndexedEntry>
StoreIndex::lruOrder() const
{
    std::vector<IndexedEntry> order;
    order.reserve(entries_.size());
    for (const auto &kv : entries_)
        order.push_back(kv.second);
    std::sort(order.begin(), order.end(),
              [](const IndexedEntry &a, const IndexedEntry &b) {
                  if (a.seq != b.seq)
                      return a.seq < b.seq;
                  return a.name < b.name;
              });
    return order;
}

} // namespace bds
