/**
 * @file
 * LRU recency index for the shared on-disk stores.
 *
 * The index file (`store.index` inside the store directory) orders
 * entry files by recency so eviction can pick true LRU victims even
 * across process restarts, where in-memory recency is gone. It is a
 * *cache*, never the source of truth: the entry files themselves are
 * authoritative for existence and size, and every recency fact the
 * index holds can be reconstructed from file mtimes. Consequently:
 *
 *  - a corrupt, truncated or foreign-version index is discarded and
 *    rebuilt from a directory scan (counted as store.index_rebuild),
 *    never trusted and never fatal;
 *  - an index entry whose file vanished (crash mid-evict after the
 *    unlink, concurrent eviction by another daemon) is dropped on
 *    reconcile — a crash between "unlink entry" and "rewrite index"
 *    costs nothing;
 *  - a file the index has never heard of (published by another
 *    process, or indexed before a crash lost the rewrite) is adopted
 *    with mtime-derived recency.
 *
 * Recency is a monotone logical sequence number, not a wall-clock
 * timestamp: rebuilds translate mtime order into fresh sequence
 * numbers, and every touch takes the next one.
 */

#ifndef BDS_STORE_INDEX_H
#define BDS_STORE_INDEX_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bds {

/** One entry file as the index knows it. */
struct IndexedEntry
{
    std::string name; ///< filename relative to the store dir
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0; ///< recency; larger = more recent
};

/** What a directory scan reports about one entry file. */
struct ScannedEntry
{
    std::string name;
    std::uint64_t bytes = 0;

    /** Mtime in seconds (any epoch — only the ordering is used). */
    std::int64_t mtime = 0;
};

/**
 * In-memory LRU index with an atomic-rename on-disk form. All disk
 * failures surface as plain bool returns — the caller (SharedStore)
 * owns degradation policy.
 */
class StoreIndex
{
  public:
    /**
     * Parse the index file at `path` into this object. Returns false
     * when the file is absent, corrupt, truncated or a foreign
     * version — the caller rebuilds from a scan. On false the object
     * is left empty.
     */
    bool load(const std::string &path);

    /**
     * Atomically persist (temp + rename). Returns false on any
     * filesystem failure; the index on disk is then simply stale,
     * which the next reconcile absorbs.
     */
    bool save(const std::string &path) const;

    /**
     * Rebuild from a directory scan: recency becomes mtime order
     * (ties broken by name for determinism), translated into fresh
     * sequence numbers.
     */
    void rebuild(const std::vector<ScannedEntry> &scan);

    /**
     * Reconcile against a scan without losing logical recency: drop
     * entries whose file vanished, adopt unknown files with recency
     * derived from mtime order (interleaved below all indexed
     * entries touched after them is unknowable, so adopted files
     * slot in by mtime against each other, above nothing), and
     * refresh byte sizes from the scan.
     */
    void reconcile(const std::vector<ScannedEntry> &scan);

    /** Mark `name` most-recently-used (inserting if unknown). */
    void touch(const std::string &name, std::uint64_t bytes);

    /** Remove `name` (no-op when unknown). */
    void erase(const std::string &name);

    /** Sum of entry sizes as indexed. */
    std::uint64_t totalBytes() const;

    /** Entries sorted least-recently-used first. */
    std::vector<IndexedEntry> lruOrder() const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

  private:
    std::map<std::string, IndexedEntry> entries_;
    std::uint64_t nextSeq_ = 1;
};

} // namespace bds

#endif // BDS_STORE_INDEX_H
