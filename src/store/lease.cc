#include "store/lease.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "fault/error.h"

namespace bds {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedMs(Clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

/** Render the lease payload for (pid, beat). */
std::string
leaseBody(long pid, std::uint64_t beat)
{
    std::ostringstream body;
    body << "BDSLEASE 1\npid " << pid << "\nbeat " << beat << '\n';
    return body.str();
}

/**
 * Re-publish the lease payload atomically (temp + rename), so a
 * waiter never reads a half-written beat. Failures are swallowed: the
 * lease may legitimately have been taken over and unlinked, and a
 * heartbeat that cannot land simply looks wedged to waiters — the
 * protocol's designed degradation.
 */
void
republishLease(const std::string &path, long pid, std::uint64_t beat)
{
    std::ostringstream tmpName;
    tmpName << path << ".hb." << pid;
    const std::string tmp = tmpName.str();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out << leaseBody(pid, beat);
        if (!out) {
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

} // namespace

bool
pidVanished(long pid)
{
    if (pid <= 0)
        return true;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return false;
    return errno == ESRCH;
}

Lease::Lease(std::string path, LeaseOptions opts)
    : path_(std::move(path)), opts_(opts)
{
}

Lease::~Lease() { release(); }

void
Lease::startHeartbeat()
{
    heartbeat_ = std::thread([this]() {
        const long pid = static_cast<long>(::getpid());
        // Sleep in short slices so release() never blocks a full
        // heartbeat period on join.
        const auto slice = std::chrono::milliseconds(
            opts_.heartbeatMs < 20 ? opts_.heartbeatMs : 20);
        auto last = Clock::now();
        while (!stop_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(slice);
            if (stop_.load(std::memory_order_acquire))
                break;
            if (elapsedMs(last) < opts_.heartbeatMs)
                continue;
            last = Clock::now();
            const std::uint64_t beat =
                beat_.fetch_add(1, std::memory_order_relaxed) + 1;
            republishLease(path_, pid, beat);
        }
    });
}

void
Lease::release()
{
    if (released_)
        return;
    released_ = true;
    stop_.store(true, std::memory_order_release);
    if (heartbeat_.joinable())
        heartbeat_.join();
    // ENOENT is expected after a takeover already renamed us aside.
    std::remove(path_.c_str());
}

bool
readLease(const std::string &path, LeaseProbe *out)
{
    *out = LeaseProbe{};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string magic, pidKey, beatKey;
    unsigned version = 0;
    if ((in >> magic >> version >> pidKey >> out->pid >> beatKey
         >> out->beat)
        && magic == "BDSLEASE" && version == 1 && pidKey == "pid"
        && beatKey == "beat")
        out->parsed = true;
    return true;
}

std::unique_ptr<Lease>
tryAcquireLease(const std::string &path, const LeaseOptions &opts)
{
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0666);
    if (fd < 0) {
        const int err = errno;
        if (err == EEXIST)
            return nullptr;
        BDS_RAISE(ErrorCode::Io, "cannot create lease '"
                                     << path << "': "
                                     << std::strerror(err));
    }
    const std::string body =
        leaseBody(static_cast<long>(::getpid()), 0);
    const ssize_t wrote = ::write(fd, body.data(), body.size());
    const int werr = errno;
    ::close(fd);
    if (wrote != static_cast<ssize_t>(body.size())) {
        ::unlink(path.c_str());
        BDS_RAISE(ErrorCode::Io, "cannot stamp lease '"
                                     << path << "': "
                                     << std::strerror(werr));
    }
    std::unique_ptr<Lease> lease(new Lease(path, opts));
    lease->startHeartbeat();
    return lease;
}

std::unique_ptr<Lease>
acquireLease(const std::string &path, const LeaseOptions &opts,
             const std::function<bool()> &cancel, LeaseWaitStats *stats)
{
    LeaseWaitStats local;
    LeaseWaitStats &st = stats ? *stats : local;
    st = LeaseWaitStats{};

    std::uint64_t backoffMs = opts.pollMinMs ? opts.pollMinMs : 1;

    // Staleness is judged over *continuous observation*: the watch
    // resets whenever the beat advances or the holder identity
    // changes, so a healthy-but-slow holder is never preempted.
    bool watching = false;
    LeaseProbe watched;
    Clock::time_point watchStart{};

    for (;;) {
        std::unique_ptr<Lease> lease = tryAcquireLease(path, opts);
        if (lease)
            return lease;

        LeaseProbe probe;
        if (!readLease(path, &probe)) {
            // Freed between our create attempt and the read — retry
            // the create immediately.
            watching = false;
            continue;
        }

        bool takeover = false;
        if (probe.parsed && pidVanished(probe.pid)) {
            takeover = true;
        } else {
            const bool sameHolder = watching
                && probe.parsed == watched.parsed
                && probe.pid == watched.pid
                && probe.beat == watched.beat;
            if (!sameHolder) {
                watching = true;
                watched = probe;
                watchStart = Clock::now();
            } else if (elapsedMs(watchStart) >= opts.staleMs) {
                // Live pid but no progress for staleMs (or foreign
                // unparseable bytes squatting on the lease path).
                takeover = true;
            }
        }

        if (takeover) {
            std::ostringstream aside;
            aside << path << ".stale." << ::getpid();
            if (std::rename(path.c_str(), aside.str().c_str()) == 0) {
                // We won the challenge; the corpse is ours to reap.
                std::remove(aside.str().c_str());
                ++st.takeovers;
            }
            // Either way the path is (or is about to be) free —
            // compete for the create again.
            watching = false;
            continue;
        }

        if (cancel && cancel()) {
            st.canceled = true;
            return nullptr;
        }

        ++st.waits;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoffMs));
        backoffMs *= 2;
        if (opts.pollMaxMs && backoffMs > opts.pollMaxMs)
            backoffMs = opts.pollMaxMs;
    }
}

} // namespace bds
