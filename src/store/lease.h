/**
 * @file
 * Cross-process single-flight leases for the shared on-disk stores.
 *
 * A lease is a small file created with O_CREAT|O_EXCL next to the
 * entry it guards — exactly one process can hold it at a time, with
 * no daemon, no shared memory and no fcntl-lock portability traps.
 * The holder stamps the file with its pid and a monotonic heartbeat
 * counter it re-publishes (atomic temp+rename) every heartbeatMs
 * from a background thread, so "the holder is alive and making
 * progress" is observable by any other process on the host.
 *
 * Waiters poll with bounded exponential backoff and take over a
 * lease deterministically in two cases:
 *
 *  - dead holder: the stamped pid no longer exists (kill(pid, 0) ==
 *    ESRCH) — takeover is immediate;
 *  - wedged holder: the heartbeat counter has not advanced for
 *    staleMs of continuous observation — the holder process exists
 *    but is stuck (or lives on another host; see docs/STORAGE.md for
 *    the single-host pid caveat), so the lease is forfeit.
 *
 * Takeover itself is race-free: the challenger renames the stale
 * lease file aside (exactly one rename(2) wins; losers see ENOENT
 * and re-enter the wait loop), unlinks the renamed corpse, and
 * competes for a fresh O_EXCL create like everyone else.
 *
 * Every filesystem failure in here is reported to the caller as a
 * typed Error(Io) — SharedStore converts it into store-down mode
 * (compute without coordination) rather than crashing.
 */

#ifndef BDS_STORE_LEASE_H
#define BDS_STORE_LEASE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

namespace bds {

/** Timing knobs of the lease protocol (tests shrink these). */
struct LeaseOptions
{
    /** Holder heartbeat re-publish period, milliseconds. */
    std::uint64_t heartbeatMs = 200;

    /**
     * A live-pid holder whose heartbeat counter has not advanced for
     * this long is considered wedged and loses the lease.
     */
    std::uint64_t staleMs = 5000;

    /** Waiter poll backoff: start and cap, milliseconds. */
    std::uint64_t pollMinMs = 2;
    std::uint64_t pollMaxMs = 200;
};

/**
 * An acquired lease. Destruction (or release()) stops the heartbeat
 * thread and unlinks the lease file; both are safe to call after a
 * takeover already removed the file.
 */
class Lease
{
  public:
    ~Lease();

    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    /** The lease file path. */
    const std::string &path() const { return path_; }

    /** Stop the heartbeat and unlink the lease file. Idempotent. */
    void release();

  private:
    friend std::unique_ptr<Lease> tryAcquireLease(const std::string &,
                                                  const LeaseOptions &);

    Lease(std::string path, LeaseOptions opts);
    void startHeartbeat();

    std::string path_;
    LeaseOptions opts_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> beat_{0};
    std::thread heartbeat_;
    bool released_ = false;
};

/** What a lease file on disk claims about its holder. */
struct LeaseProbe
{
    long pid = 0;
    std::uint64_t beat = 0;

    /** False when the file exists but cannot be parsed (mid-rewrite
     *  garbage is impossible by construction — publishes are atomic
     *  renames — so unparseable means foreign bytes). */
    bool parsed = false;
};

/**
 * Read and parse the lease file at `path`. Returns false when the
 * file is absent (the lease is free).
 */
bool readLease(const std::string &path, LeaseProbe *out);

/**
 * True when `pid` definitely no longer exists on this host
 * (kill(pid, 0) == ESRCH). Also true for non-positive pids.
 */
bool pidVanished(long pid);

/**
 * Attempt a non-blocking acquire: O_CREAT|O_EXCL the lease file and
 * stamp it. Returns the held lease, or nullptr when another process
 * holds it (EEXIST). Any other filesystem failure is Error(Io).
 */
std::unique_ptr<Lease> tryAcquireLease(const std::string &path,
                                       const LeaseOptions &opts);

/** Why acquireLease() returned without a lease. */
struct LeaseWaitStats
{
    /** Poll iterations spent waiting on someone else's lease. */
    std::uint64_t waits = 0;

    /** Stale leases taken over along the way. */
    std::uint64_t takeovers = 0;

    /** True when cancel() ended the wait (e.g. the entry appeared). */
    bool canceled = false;
};

/**
 * Acquire the lease at `path`, waiting out (or deterministically
 * taking over) any current holder. `cancel` is polled between
 * backoff sleeps; when it returns true the wait ends with a null
 * lease and stats->canceled set — the caller's result appeared and
 * the lease is moot. Filesystem failures are Error(Io).
 */
std::unique_ptr<Lease> acquireLease(const std::string &path,
                                    const LeaseOptions &opts,
                                    const std::function<bool()> &cancel,
                                    LeaseWaitStats *stats);

} // namespace bds

#endif // BDS_STORE_LEASE_H
