#include "store/shared.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "fault/error.h"
#include "fault/inject.h"
#include "obs/trace.h"

namespace bds {

namespace {

struct AtomicStoreStats
{
    std::atomic<std::uint64_t> publishes{0};
    std::atomic<std::uint64_t> publishSkipped{0};
    std::atomic<std::uint64_t> evicted{0};
    std::atomic<std::uint64_t> evictedBytes{0};
    std::atomic<std::uint64_t> downs{0};
    std::atomic<std::uint64_t> heals{0};
    std::atomic<std::uint64_t> leaseAcquires{0};
    std::atomic<std::uint64_t> leaseWaits{0};
    std::atomic<std::uint64_t> leaseTakeovers{0};
    std::atomic<std::uint64_t> indexRebuilds{0};
};

AtomicStoreStats &
globalStoreStats()
{
    static AtomicStoreStats stats;
    return stats;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix)
        == 0;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/**
 * Parse the trailing ".<pid>" of an orphan coordination file
 * (temp/probe/heartbeat/stale-aside). Returns 0 when the tail is not
 * a number.
 */
long
trailingPid(const std::string &name)
{
    const std::size_t dot = name.find_last_of('.');
    if (dot == std::string::npos || dot + 1 >= name.size())
        return 0;
    long pid = 0;
    for (std::size_t i = dot + 1; i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return 0;
        pid = pid * 10 + (c - '0');
    }
    return pid;
}

} // namespace

StoreStats
storeStats()
{
    const AtomicStoreStats &g = globalStoreStats();
    StoreStats s;
    s.publishes = g.publishes.load(std::memory_order_relaxed);
    s.publishSkipped = g.publishSkipped.load(std::memory_order_relaxed);
    s.evicted = g.evicted.load(std::memory_order_relaxed);
    s.evictedBytes = g.evictedBytes.load(std::memory_order_relaxed);
    s.downs = g.downs.load(std::memory_order_relaxed);
    s.heals = g.heals.load(std::memory_order_relaxed);
    s.leaseAcquires = g.leaseAcquires.load(std::memory_order_relaxed);
    s.leaseWaits = g.leaseWaits.load(std::memory_order_relaxed);
    s.leaseTakeovers =
        g.leaseTakeovers.load(std::memory_order_relaxed);
    s.indexRebuilds = g.indexRebuilds.load(std::memory_order_relaxed);
    return s;
}

void
resetStoreStats()
{
    AtomicStoreStats &g = globalStoreStats();
    g.publishes.store(0, std::memory_order_relaxed);
    g.publishSkipped.store(0, std::memory_order_relaxed);
    g.evicted.store(0, std::memory_order_relaxed);
    g.evictedBytes.store(0, std::memory_order_relaxed);
    g.downs.store(0, std::memory_order_relaxed);
    g.heals.store(0, std::memory_order_relaxed);
    g.leaseAcquires.store(0, std::memory_order_relaxed);
    g.leaseWaits.store(0, std::memory_order_relaxed);
    g.leaseTakeovers.store(0, std::memory_order_relaxed);
    g.indexRebuilds.store(0, std::memory_order_relaxed);
}

SharedStore::SharedStore(SharedStoreOptions opts)
    : opts_(std::move(opts)), indexPath_(opts_.dir + "/store.index")
{
    if (opts_.dir.empty())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "shared store needs a directory");
    if (::mkdir(opts_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        const int err = errno;
        enterDown(std::string("cannot create store directory '")
                  + opts_.dir + "': " + std::strerror(err));
        return;
    }

    reapOrphans();

    const std::vector<ScannedEntry> scan = scanEntries();
    const bool indexOnDisk = fileExists(indexPath_);
    if (index_.load(indexPath_)) {
        index_.reconcile(scan);
    } else {
        index_.rebuild(scan);
        if (indexOnDisk) {
            // A present-but-unreadable index means corruption (a
            // crash cannot tear it: it is only ever renamed into
            // place whole).
            globalStoreStats().indexRebuilds.fetch_add(
                1, std::memory_order_relaxed);
            Tracer::global().counter("store.index_rebuild", 1);
        }
        index_.save(indexPath_);
    }

    // Repair a previous killed-mid-evict run (or a budget lowered
    // between runs): the open itself restores the invariant.
    enforceBudget();
}

bool
SharedStore::down() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return down_;
}

std::string
SharedStore::entryPath(const std::string &name) const
{
    return opts_.dir + "/" + name;
}

void
SharedStore::enterDown(const std::string &what)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        lastProbe_ = std::chrono::steady_clock::now();
        if (down_)
            return;
        down_ = true;
    }
    globalStoreStats().downs.fetch_add(1, std::memory_order_relaxed);
    Tracer::global().counter("store.down", 1);
    std::fprintf(stderr,
                 "bds: store '%s' degraded (computing without "
                 "caching): %s\n",
                 opts_.dir.c_str(), what.c_str());
}

bool
SharedStore::maybeHeal()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!down_)
            return true;
        const auto now = std::chrono::steady_clock::now();
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - lastProbe_)
                .count();
        if (opts_.healProbeMs
            && static_cast<std::uint64_t>(elapsed) < opts_.healProbeMs)
            return false;
        lastProbe_ = now;
    }

    // Probe: the disk is healthy again iff a full create/write/
    // fsync/unlink round-trip succeeds in the store directory.
    std::ostringstream probeName;
    probeName << opts_.dir << "/.probe." << ::getpid();
    const std::string probe = probeName.str();
    const int fd =
        ::open(probe.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
    if (fd < 0)
        return false;
    const bool ok =
        ::write(fd, "ok\n", 3) == 3 && ::fsync(fd) == 0;
    ::close(fd);
    ::unlink(probe.c_str());
    if (!ok)
        return false;

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!down_)
            return true;
        down_ = false;
    }
    globalStoreStats().heals.fetch_add(1, std::memory_order_relaxed);
    Tracer::global().counter("store.heal", 1);
    std::fprintf(stderr, "bds: store '%s' healed (caching resumed)\n",
                 opts_.dir.c_str());
    return true;
}

bool
SharedStore::read(const std::string &name, std::string *bytes)
{
    if (!maybeHeal())
        return false;
    const std::string path = entryPath(name);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        return false;
    *bytes = buf.str();

    // Bump mtime so this hit counts as recency for other processes'
    // eviction decisions too; failure only costs LRU accuracy.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    {
        std::lock_guard<std::mutex> lock(mu_);
        index_.touch(name, bytes->size());
    }
    return true;
}

bool
SharedStore::publish(const std::string &name, const std::string &bytes)
{
    if (!maybeHeal()) {
        globalStoreStats().publishSkipped.fetch_add(
            1, std::memory_order_relaxed);
        Tracer::global().counter("store.publish_skipped", 1);
        return false;
    }

    const FaultInjector &inj = FaultInjector::global();
    if (inj.shouldFailIo("store.enospc")) {
        enterDown("injected ENOSPC writing '" + name + "'");
        return false;
    }
    if (inj.shouldFailIo("store.write")) {
        enterDown("injected write failure on '" + name + "'");
        return false;
    }

    const std::string path = entryPath(name);
    std::ostringstream tmpName;
    tmpName << path << ".tmp." << ::getpid();
    const std::string tmp = tmpName.str();

    const int fd =
        ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
    if (fd < 0) {
        const int err = errno;
        enterDown("cannot write '" + tmp
                  + "': " + std::strerror(err));
        return false;
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t wrote =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (wrote < 0) {
            const int err = errno;
            if (err == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            enterDown("short write to '" + tmp
                      + "': " + std::strerror(err));
            return false;
        }
        off += static_cast<std::size_t>(wrote);
    }
    // fsync before rename: after the rename lands, the entry's bytes
    // are durable — a crash can lose the entry, never tear it.
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        enterDown("cannot fsync '" + tmp
                  + "': " + std::strerror(err));
        return false;
    }
    ::close(fd);

    if (inj.shouldFailIo("store.rename")) {
        ::unlink(tmp.c_str());
        enterDown("injected rename failure on '" + name + "'");
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        enterDown("cannot publish '" + path
                  + "': " + std::strerror(err));
        return false;
    }

    globalStoreStats().publishes.fetch_add(1,
                                           std::memory_order_relaxed);
    Tracer::global().counter("store.publish", 1);
    {
        std::lock_guard<std::mutex> lock(mu_);
        index_.touch(name, bytes.size());
        index_.save(indexPath_);
    }
    enforceBudget();
    return true;
}

FlightTicket
SharedStore::singleFlight(const std::string &name)
{
    FlightTicket ticket;
    if (!maybeHeal())
        return ticket; // uncoordinated: correctness over caching

    if (FaultInjector::global().shouldFailIo("store.lease")) {
        enterDown("injected lease failure on '" + name + "'");
        return ticket;
    }

    const std::string entry = entryPath(name);
    const std::string leasePath = entry + ".lease";
    AtomicStoreStats &g = globalStoreStats();
    try {
        std::unique_ptr<Lease> lease =
            tryAcquireLease(leasePath, opts_.lease);
        if (!lease) {
            // Someone else is computing: wait for their publish (the
            // entry appearing cancels the wait) or take over their
            // lease if they die or wedge.
            g.leaseWaits.fetch_add(1, std::memory_order_relaxed);
            Tracer::global().counter("store.lease_wait", 1);
            LeaseWaitStats ws;
            lease = acquireLease(
                leasePath, opts_.lease,
                [&entry]() { return fileExists(entry); }, &ws);
            if (ws.takeovers) {
                g.leaseTakeovers.fetch_add(ws.takeovers,
                                           std::memory_order_relaxed);
                Tracer::global().counter("store.lease_takeover",
                                         ws.takeovers);
            }
            if (ws.canceled) {
                ticket.entryAppeared = true;
                return ticket;
            }
        }
        g.leaseAcquires.fetch_add(1, std::memory_order_relaxed);
        Tracer::global().counter("store.lease_acquire", 1);
        ticket.lease = std::move(lease);
        return ticket;
    } catch (const Error &e) {
        enterDown(std::string("lease machinery failed: ") + e.what());
        return ticket;
    }
}

std::vector<ScannedEntry>
SharedStore::scanEntries() const
{
    std::vector<ScannedEntry> scan;
    DIR *d = ::opendir(opts_.dir.c_str());
    if (!d)
        return scan;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (!endsWith(name, opts_.suffix) || name == "store.index")
            continue;
        struct stat st;
        const std::string path = opts_.dir + "/" + name;
        if (::stat(path.c_str(), &st) != 0
            || !S_ISREG(st.st_mode))
            continue;
        ScannedEntry s;
        s.name = name;
        s.bytes = static_cast<std::uint64_t>(st.st_size);
        s.mtime = static_cast<std::int64_t>(st.st_mtime);
        scan.push_back(std::move(s));
    }
    ::closedir(d);
    return scan;
}

void
SharedStore::reapOrphans() const
{
    DIR *d = ::opendir(opts_.dir.c_str());
    if (!d)
        return;
    std::vector<std::string> doomed;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        // Coordination litter is always "<something>.<marker>.<pid>";
        // reap it once the owning process is gone.
        const bool orphanKind = name.find(".tmp.") != std::string::npos
            || name.find(".probe.") != std::string::npos
            || name.find(".hb.") != std::string::npos
            || name.find(".stale.") != std::string::npos;
        if (!orphanKind)
            continue;
        const long pid = trailingPid(name);
        if (pid > 0 && pidVanished(pid))
            doomed.push_back(name);
    }
    ::closedir(d);
    for (const std::string &name : doomed)
        ::unlink((opts_.dir + "/" + name).c_str());
}

void
SharedStore::enforceBudget()
{
    if (opts_.maxBytes == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (down_)
            return;
    }

    // The directory is the source of truth: the in-memory index
    // cannot see other daemons' publishes, and a crash mid-evict
    // leaves the on-disk index stale. Rescan, reconcile, then evict.
    const std::vector<ScannedEntry> scan = scanEntries();

    std::lock_guard<std::mutex> lock(mu_);
    index_.reconcile(scan);
    std::uint64_t total = index_.totalBytes();
    if (total <= opts_.maxBytes)
        return;

    AtomicStoreStats &g = globalStoreStats();
    for (const IndexedEntry &victim : index_.lruOrder()) {
        if (total <= opts_.maxBytes)
            break;
        // Unlink-per-entry keeps eviction crash-safe: each step is
        // atomic, and a concurrent reader that already opened the
        // file keeps its bytes (POSIX unlink semantics).
        ::unlink(entryPath(victim.name).c_str());
        index_.erase(victim.name);
        total -= victim.bytes < total ? victim.bytes : total;
        g.evicted.fetch_add(1, std::memory_order_relaxed);
        g.evictedBytes.fetch_add(victim.bytes,
                                 std::memory_order_relaxed);
        Tracer::global().counter("store.evict", 1);
        Tracer::global().counter("store.evict_bytes", victim.bytes);
    }
    index_.save(indexPath_);
}

} // namespace bds
