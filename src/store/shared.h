/**
 * @file
 * SharedStore: the fleet-safe on-disk store both ServeEngine's
 * result store and the checkpoint cache sit on (docs/STORAGE.md).
 *
 * One SharedStore is one directory of immutable entry files plus
 * three kinds of coordination state:
 *
 *  - lease files (`<entry>.lease`, src/store/lease.h) give
 *    cross-process single-flight: at most one process computes a
 *    given entry while everyone else waits, with deterministic
 *    takeover of dead or wedged holders;
 *  - an LRU index (`store.index`, src/store/index.h) orders entries
 *    for eviction under the byte budget; it is rebuilt from a
 *    directory scan whenever it is corrupt or missing;
 *  - a down flag: every filesystem failure (ENOSPC, failed rename,
 *    unwritable directory) flips the store into *store-down* mode
 *    where publishes become counted no-ops and coordination is
 *    skipped — callers keep computing correct results, they just
 *    stop caching. A cheap probe (create/write/unlink a scratch
 *    file, at most once per healProbeMs) brings the store back the
 *    moment the disk recovers.
 *
 * Durability: publishes write `<entry>.tmp.<pid>`, fsync, then
 * rename — a reader never sees a torn entry and a crash never leaves
 * one behind. Eviction unlinks whole entry files (each unlink is
 * atomic), so a crash mid-evict can only leave the store *over*
 * budget — repaired by the next enforceBudget(), which rescans the
 * directory as the source of truth — never missing a valid entry.
 *
 * Deterministic testing: the FaultInjector sites `store.write`,
 * `store.rename`, `store.lease` and `store.enospc` (BDS_FAULT_IO)
 * fail the corresponding step on demand; every degradation path in
 * this file is reachable from a test and from CI.
 *
 * All traffic is mirrored process-wide (storeStats()) and as
 * `store.*` trace counters, surfaced by the daemon's `stats` /
 * `stats-json` verbs.
 */

#ifndef BDS_STORE_SHARED_H
#define BDS_STORE_SHARED_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/index.h"
#include "store/lease.h"

namespace bds {

/** Running process-wide shared-store traffic counters. */
struct StoreStats
{
    std::uint64_t publishes = 0;      ///< entries landed on disk
    std::uint64_t publishSkipped = 0; ///< publishes dropped while down
    std::uint64_t evicted = 0;        ///< entries evicted (LRU)
    std::uint64_t evictedBytes = 0;   ///< bytes reclaimed by eviction
    std::uint64_t downs = 0;          ///< up -> down transitions
    std::uint64_t heals = 0;          ///< down -> up transitions
    std::uint64_t leaseAcquires = 0;  ///< single-flight leaderships
    std::uint64_t leaseWaits = 0;     ///< waits on another process
    std::uint64_t leaseTakeovers = 0; ///< stale leases taken over
    std::uint64_t indexRebuilds = 0;  ///< corrupt index rebuilt
};

/**
 * Snapshot of the process-wide counters (all SharedStore instances).
 * The same events are emitted as `store.*` trace counters.
 */
StoreStats storeStats();

/** Zero the process-wide counters (tests, bench passes). */
void resetStoreStats();

/** Configuration of one SharedStore. */
struct SharedStoreOptions
{
    /** Store directory (created on open). Must be non-empty. */
    std::string dir;

    /**
     * Entry filename suffix (".res", ".ckpt"): only files ending in
     * it are entries — everything else in the directory (index,
     * leases, temps, probes) is coordination state and exempt from
     * budget accounting and eviction.
     */
    std::string suffix;

    /** Byte budget across entry files; 0 = unbounded. */
    std::uint64_t maxBytes = 0;

    /** Lease protocol timing (tests shrink these). */
    LeaseOptions lease;

    /**
     * Minimum interval between store-down heal probes, in
     * milliseconds; 0 probes on every operation (tests).
     */
    std::uint64_t healProbeMs = 250;
};

/** Outcome of SharedStore::singleFlight(). */
struct FlightTicket
{
    /**
     * Held when this process is the leader and must compute +
     * publish. Null when the entry appeared while waiting
     * (entryAppeared), or when the store is down / lease machinery
     * failed — then the caller computes uncoordinated.
     */
    std::unique_ptr<Lease> lease;

    /** True when the wait ended because the entry file appeared. */
    bool entryAppeared = false;
};

/**
 * A shared on-disk byte store: leases, budget, degradation. Thread-
 * safe; safe to point any number of processes at one directory.
 */
class SharedStore
{
  public:
    /**
     * Open the store, creating the directory if needed. An empty dir
     * is Error(InvalidConfig); an *uncreatable* one is not an error —
     * the store opens in down mode (callers compute uncached) and
     * heals if the path becomes writable. Opening also reaps orphan
     * temp/lease files of dead processes, reconciles or rebuilds the
     * index, and re-enforces the byte budget (repairing a previous
     * killed-mid-evict run).
     */
    explicit SharedStore(SharedStoreOptions opts);

    /** The store directory. */
    const std::string &dir() const { return opts_.dir; }

    /** The configured byte budget (0 = unbounded). */
    std::uint64_t maxBytes() const { return opts_.maxBytes; }

    /** True while degraded (no caching, no coordination). */
    bool down() const;

    /** Absolute path of entry `name` (name includes the suffix). */
    std::string entryPath(const std::string &name) const;

    /**
     * Read entry `name` into *bytes. False when absent, unreadable,
     * or the store is down (a cache can always miss). A hit bumps
     * the file mtime so recency survives process boundaries.
     */
    bool read(const std::string &name, std::string *bytes);

    /**
     * Atomically publish entry `name` (tmp + fsync + rename), then
     * enforce the byte budget. Never throws: any failure — real or
     * injected — flips the store down and returns false. Callers
     * treat false as "computed but not cached".
     */
    bool publish(const std::string &name, const std::string &bytes);

    /**
     * Enter the single-flight protocol for entry `name`. Returns a
     * held lease (this process computes), entryAppeared (another
     * process published while we waited — re-read), or neither (store
     * down / lease failure — compute uncoordinated).
     */
    FlightTicket singleFlight(const std::string &name);

    /**
     * Bring entry bytes back under maxBytes, evicting LRU entries.
     * Rescans the directory as the source of truth (repairs stale
     * index state from crashes or other daemons). No-op when
     * unbounded or down.
     */
    void enforceBudget();

  private:
    bool maybeHeal();
    void enterDown(const std::string &what);
    std::vector<ScannedEntry> scanEntries() const;
    void reapOrphans() const;

    SharedStoreOptions opts_;
    std::string indexPath_;

    mutable std::mutex mu_;
    bool down_ = false;
    std::chrono::steady_clock::time_point lastProbe_{};
    StoreIndex index_;
};

} // namespace bds

#endif // BDS_STORE_SHARED_H
