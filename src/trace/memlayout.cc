#include "trace/memlayout.h"

#include "common/log.h"

namespace bds {

namespace {

struct RegionSpec
{
    std::uint64_t base;
    std::uint64_t capacity;
};

// Widely separated bases so address arithmetic bugs are loud; sizes
// bound the footprint any single simulated process can create.
constexpr RegionSpec kRegions[] = {
    {0x0000'0000'0040'0000ULL, 1ULL << 26}, // UserCode: 64 MB
    {0x0000'0000'1000'0000ULL, 1ULL << 28}, // FrameworkCode: 256 MB
    {0xffff'8000'0000'0000ULL, 1ULL << 26}, // KernelCode: 64 MB
    {0x0000'7f00'0000'0000ULL, 1ULL << 36}, // Heap: 64 GB
    {0xffff'9000'0000'0000ULL, 1ULL << 32}, // KernelBuffer: 4 GB
    {0x0000'7fff'0000'0000ULL, 1ULL << 30}, // Stack: 1 GB
};

constexpr unsigned kNumRegions = static_cast<unsigned>(Region::NumRegions);

static_assert(sizeof(kRegions) / sizeof(kRegions[0]) == kNumRegions,
              "region table arity mismatch");

} // namespace

std::uint64_t
regionBase(Region r)
{
    return kRegions[static_cast<unsigned>(r)].base;
}

std::uint64_t
regionCapacity(Region r)
{
    return kRegions[static_cast<unsigned>(r)].capacity;
}

AddressSpace::AddressSpace()
{
    for (unsigned i = 0; i < kNumRegions; ++i)
        next_[i] = kRegions[i].base;
}

std::uint64_t
AddressSpace::allocate(Region r, std::uint64_t bytes)
{
    unsigned idx = static_cast<unsigned>(r);
    std::uint64_t aligned = (bytes + 63) & ~63ULL;
    if (aligned == 0)
        aligned = 64;
    std::uint64_t base = next_[idx];
    if (base + aligned > kRegions[idx].base + kRegions[idx].capacity)
        BDS_FATAL("region " << idx << " exhausted: requested " << aligned
                  << " bytes beyond capacity " << kRegions[idx].capacity);
    next_[idx] = base + aligned;
    return base;
}

std::uint64_t
AddressSpace::used(Region r) const
{
    unsigned idx = static_cast<unsigned>(r);
    return next_[idx] - kRegions[idx].base;
}

void
AddressSpace::resetRegion(Region r)
{
    unsigned idx = static_cast<unsigned>(r);
    next_[idx] = kRegions[idx].base;
}

Region
regionOf(std::uint64_t addr)
{
    for (unsigned i = 0; i < kNumRegions; ++i) {
        if (addr >= kRegions[i].base &&
            addr < kRegions[i].base + kRegions[i].capacity)
            return static_cast<Region>(i);
    }
    BDS_FATAL("address 0x" << std::hex << addr << " is unmapped");
}

} // namespace bds
