/**
 * @file
 * Simulated virtual address-space layout.
 *
 * The instrumentation runtime needs realistic, non-overlapping
 * addresses for user code, framework code, kernel code, heap data and
 * kernel buffers, because cache/TLB behavior depends on address
 * locality. This is a set of bump allocators over fixed, widely
 * separated regions of a 64-bit address space.
 */

#ifndef BDS_TRACE_MEMLAYOUT_H
#define BDS_TRACE_MEMLAYOUT_H

#include <cstdint>

namespace bds {

/** Address-space region kinds. */
enum class Region : unsigned
{
    UserCode,      ///< application .text
    FrameworkCode, ///< software-stack .text (the big one for Hadoop)
    KernelCode,    ///< ring-0 .text
    Heap,          ///< user/framework data
    KernelBuffer,  ///< page cache, socket buffers
    Stack,         ///< thread stacks
    NumRegions
};

/** Fixed base address of a region. */
std::uint64_t regionBase(Region r);

/** Fixed capacity of a region in bytes. */
std::uint64_t regionCapacity(Region r);

/**
 * Bump allocator over the fixed regions of one simulated process.
 *
 * Allocations never overlap and are aligned to cache lines; running a
 * region past its capacity is fatal (it would silently alias another
 * region's addresses and corrupt the cache statistics).
 */
class AddressSpace
{
  public:
    AddressSpace();

    /**
     * Allocate bytes from a region.
     * @param r Target region.
     * @param bytes Size; rounded up to 64-byte alignment.
     * @return Base address of the allocation.
     */
    std::uint64_t allocate(Region r, std::uint64_t bytes);

    /** Bytes already allocated in a region. */
    std::uint64_t used(Region r) const;

    /** Release everything in a region (bump pointer reset). */
    void resetRegion(Region r);

  private:
    std::uint64_t next_[static_cast<unsigned>(Region::NumRegions)];
};

/** Which region an address falls in; fatal for unmapped addresses. */
Region regionOf(std::uint64_t addr);

} // namespace bds

#endif // BDS_TRACE_MEMLAYOUT_H
