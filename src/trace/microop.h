/**
 * @file
 * The micro-operation abstraction that couples workloads to the
 * microarchitecture model.
 *
 * Workloads and software-stack engines execute real algorithms; the
 * instrumentation runtime (runtime.h) translates their actions into a
 * stream of MicroOps carrying genuine instruction and data addresses.
 * The uarch SystemModel consumes that stream and drives caches, TLBs,
 * the branch predictor, coherence, and the cycle-accounting model —
 * standing in for the paper's hardware performance counters.
 */

#ifndef BDS_TRACE_MICROOP_H
#define BDS_TRACE_MICROOP_H

#include <cstdint>

namespace bds {

/** Functional class of a micro-operation. */
enum class OpClass : std::uint8_t
{
    Load,    ///< memory read
    Store,   ///< memory write
    Branch,  ///< conditional or unconditional control transfer
    IntAlu,  ///< integer arithmetic/logic
    FpAlu,   ///< x87 floating point
    SseAlu,  ///< SSE (packed) floating point
};

/** Privilege mode the op executes in. */
enum class Mode : std::uint8_t
{
    User,   ///< ring 3 — application and framework code
    Kernel, ///< ring 0 — I/O, page management, network stack
};

/** One micro-operation. */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    Mode mode = Mode::User;

    /** Instruction pointer (code address) of the parent instruction. */
    std::uint64_t ip = 0;

    /** Data address for Load/Store; ignored otherwise. */
    std::uint64_t addr = 0;

    /** Conditional-branch outcome (Branch only). */
    bool taken = false;

    /**
     * Load only: the address depends on the value of the previous
     * load (pointer chase), so a miss cannot overlap the previous
     * one. Drives the MLP model.
     */
    bool dependsOnPrevLoad = false;

    /**
     * True when this uop begins a new macro-instruction. Engines emit
     * microcoded instructions as one leading uop plus trailing uops
     * with this flag cleared, which drives the UOPS_TO_INS metric.
     */
    bool newInstruction = true;
};

/** Consumer of a micro-op stream. */
class OpSink
{
  public:
    virtual ~OpSink() = default;

    /**
     * Consume one micro-op executed by the given simulated core.
     * @param core Core index within the node.
     * @param op The micro-op.
     */
    virtual void consume(unsigned core, const MicroOp &op) = 0;
};

/**
 * Execution platform the workload/stack layer drives: an op sink
 * plus the two node-level services engines need — the core count
 * (for task scheduling) and device DMA (for the I/O path).
 *
 * The uarch SystemModel is the detailed implementation. The sampling
 * subsystem (src/sample) provides a recording-only implementation,
 * so a profiling pass can generate the op stream of a workload
 * without paying for detailed simulation.
 */
class ExecTarget : public OpSink
{
  public:
    /** Number of simulated cores tasks may be scheduled onto. */
    virtual unsigned numCores() const = 0;

    /** Model a device DMA write of `bytes` at `addr` into memory. */
    virtual void dmaFill(std::uint64_t addr, std::uint64_t bytes) = 0;
};

} // namespace bds

#endif // BDS_TRACE_MICROOP_H
