#include "trace/recorder.h"

#include <istream>
#include <ostream>

#include "common/log.h"

namespace bds {

namespace {

constexpr char kMagic[9] = "BDSTRACE";
constexpr std::uint32_t kVersion = 1;

} // namespace

void
TraceRecorder::consume(unsigned core, const MicroOp &op)
{
    if (core > 255)
        BDS_FATAL("trace format supports up to 256 cores");
    Entry e;
    e.ip = op.ip;
    e.addr = op.addr;
    e.core = static_cast<std::uint8_t>(core);
    e.cls = static_cast<std::uint8_t>(op.cls);
    e.mode = static_cast<std::uint8_t>(op.mode);
    e.flags = static_cast<std::uint8_t>(
        (op.taken ? 1u : 0u) | (op.newInstruction ? 2u : 0u)
        | (op.dependsOnPrevLoad ? 4u : 0u));
    entries_.push_back(e);
    if (tee_)
        tee_->consume(core, op);
}

void
TraceRecorder::recordDma(std::uint64_t addr, std::uint64_t bytes)
{
    Entry e{};
    e.ip = addr;
    e.addr = bytes;
    e.flags = 8u;
    entries_.push_back(e);
}

void
TraceRecorder::replay(
    OpSink &sink,
    const std::function<void(std::uint64_t, std::uint64_t)> &dma) const
{
    for (const Entry &e : entries_) {
        if (e.flags & 8u) {
            if (dma)
                dma(e.ip, e.addr);
            continue;
        }
        MicroOp op;
        op.ip = e.ip;
        op.addr = e.addr;
        op.cls = static_cast<OpClass>(e.cls);
        op.mode = static_cast<Mode>(e.mode);
        op.taken = (e.flags & 1u) != 0;
        op.newInstruction = (e.flags & 2u) != 0;
        op.dependsOnPrevLoad = (e.flags & 4u) != 0;
        sink.consume(e.core, op);
    }
}

void
TraceRecorder::save(std::ostream &os) const
{
    os.write(kMagic, 8);
    std::uint32_t version = kVersion;
    os.write(reinterpret_cast<const char *>(&version), sizeof(version));
    std::uint64_t count = entries_.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const Entry &e : entries_) {
        os.write(reinterpret_cast<const char *>(&e.ip), sizeof(e.ip));
        os.write(reinterpret_cast<const char *>(&e.addr),
                 sizeof(e.addr));
        os.put(static_cast<char>(e.core));
        os.put(static_cast<char>(e.cls));
        os.put(static_cast<char>(e.mode));
        os.put(static_cast<char>(e.flags));
    }
    if (!os)
        BDS_FATAL("trace write failed");
}

TraceRecorder
TraceRecorder::load(std::istream &is)
{
    char magic[8];
    is.read(magic, 8);
    if (!is || std::string(magic, 8) != std::string(kMagic, 8))
        BDS_FATAL("not a bds trace file");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (version != kVersion)
        BDS_FATAL("unsupported trace version " << version);
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        BDS_FATAL("truncated trace header");

    // Entries are 20 bytes on disk. A seekable stream lets us check
    // the payload against the header count up front, before trusting
    // `count` for the reserve — a bogus header must not OOM us, and
    // both truncation and trailing garbage are rejected.
    constexpr std::uint64_t kEntryBytes = 20;
    std::istream::pos_type body = is.tellg();
    if (body != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        std::uint64_t remaining =
            static_cast<std::uint64_t>(is.tellg() - body);
        is.seekg(body);
        if (count > remaining / kEntryBytes)
            BDS_FATAL("truncated trace: header promises " << count
                      << " entries but only " << remaining
                      << " payload bytes remain");
        if (remaining != count * kEntryBytes)
            BDS_FATAL("oversized trace: "
                      << remaining - count * kEntryBytes
                      << " trailing bytes after " << count
                      << " entries");
    }

    TraceRecorder rec;
    rec.entries_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Entry e;
        is.read(reinterpret_cast<char *>(&e.ip), sizeof(e.ip));
        is.read(reinterpret_cast<char *>(&e.addr), sizeof(e.addr));
        int core = is.get(), cls = is.get(), mode = is.get(),
            flags = is.get();
        if (!is || core < 0)
            BDS_FATAL("truncated trace at entry " << i);
        e.core = static_cast<std::uint8_t>(core);
        e.cls = static_cast<std::uint8_t>(cls);
        e.mode = static_cast<std::uint8_t>(mode);
        e.flags = static_cast<std::uint8_t>(flags);
        if (e.cls > static_cast<std::uint8_t>(OpClass::SseAlu)
            || e.mode > static_cast<std::uint8_t>(Mode::Kernel)
            || e.flags > 15)
            BDS_FATAL("corrupt trace entry " << i);
        rec.entries_.push_back(e);
    }
    // Non-seekable streams reach here without the up-front size
    // check; trailing bytes mean the writer and header disagree.
    if (is.peek() != std::char_traits<char>::eof())
        BDS_FATAL("oversized trace: data past the last entry");
    return rec;
}

} // namespace bds
