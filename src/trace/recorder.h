/**
 * @file
 * Trace recording and replay.
 *
 * The paper's deliverable is a "simulator version" of the selected
 * workloads: capture once, then drive architecture studies from the
 * trace. TraceRecorder captures a micro-op stream (optionally teeing
 * it into a live SystemModel) and replays it into any OpSink — e.g.,
 * fresh SystemModels with different cache geometries. Replay into an
 * identically configured model reproduces the original counters
 * exactly, because the whole simulator is a deterministic function
 * of the op stream.
 */

#ifndef BDS_TRACE_RECORDER_H
#define BDS_TRACE_RECORDER_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "trace/microop.h"

namespace bds {

/** Records an op stream; optionally forwards it to a live sink. */
class TraceRecorder : public OpSink
{
  public:
    /**
     * @param tee Optional downstream sink every op is forwarded to
     *        (typically the live SystemModel).
     */
    explicit TraceRecorder(OpSink *tee = nullptr) : tee_(tee) {}

    void consume(unsigned core, const MicroOp &op) override;

    /**
     * Record a device DMA fill (SystemModel::dmaFill). DMA events
     * are part of the trace: without them a replay would see warm
     * caches where the original run saw device-invalidated lines.
     */
    void recordDma(std::uint64_t addr, std::uint64_t bytes);

    /** Number of recorded events (micro-ops + DMA fills). */
    std::size_t size() const { return entries_.size(); }

    /** Drop all recorded ops. */
    void clear() { entries_.clear(); }

    /**
     * Replay the recorded stream into a sink.
     * @param sink Consumer for the micro-ops.
     * @param dma Callback for DMA events (address, bytes); pass the
     *        target SystemModel's dmaFill for faithful replay. DMA
     *        events are skipped when empty.
     */
    void replay(OpSink &sink,
                const std::function<void(std::uint64_t, std::uint64_t)>
                    &dma = {}) const;

    /**
     * Serialize to a binary stream (native endianness; the format is
     * a private interchange format for this library, not an archive
     * format).
     */
    void save(std::ostream &os) const;

    /** Deserialize a trace written by save(); fatal on corruption. */
    static TraceRecorder load(std::istream &is);

  private:
    /** One packed trace entry. */
    struct Entry
    {
        std::uint64_t ip;
        std::uint64_t addr;
        std::uint8_t core;
        std::uint8_t cls;
        std::uint8_t mode;
        std::uint8_t flags; // bit0 taken, bit1 newInstruction,
                            // bit2 dependsOnPrevLoad, bit3 DMA event
                            // (then ip = address, addr = byte count)
    };

    OpSink *tee_;
    std::vector<Entry> entries_;
};

} // namespace bds

#endif // BDS_TRACE_RECORDER_H
