#include "trace/runtime.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

CodeImage::CodeImage(AddressSpace &space, Region region)
    : space_(space), region_(region)
{
    if (region != Region::UserCode && region != Region::FrameworkCode &&
        region != Region::KernelCode)
        BDS_FATAL("CodeImage requires a code region");
}

FunctionDesc
CodeImage::defineFunction(std::uint32_t bytes)
{
    if (bytes == 0)
        BDS_FATAL("function size must be > 0");
    FunctionDesc fn;
    fn.base = space_.allocate(region_, bytes);
    fn.size = bytes;
    footprint_ += bytes;
    functions_.push_back(fn);
    return fn;
}

const FunctionDesc &
CodeImage::function(std::size_t i) const
{
    if (i >= functions_.size())
        BDS_FATAL("function index " << i << " out of range");
    return functions_[i];
}

ExecContext::ExecContext(OpSink &sink, unsigned core,
                         const FunctionDesc &entry)
    : sink_(sink), core_(core)
{
    if (entry.size == 0)
        BDS_FATAL("entry function has zero size");
    stack_.push_back(Frame{entry, entry.base});
}

void
ExecContext::advanceIp()
{
    Frame &f = stack_.back();
    f.ip += 4;
    if (f.ip >= f.fn.base + f.fn.size)
        f.ip = f.fn.base; // loop back: models iteration within the fn
}

void
ExecContext::emit(OpClass cls, std::uint64_t addr, bool taken,
                  bool new_instruction, bool depends_on_prev_load)
{
    MicroOp op;
    op.cls = cls;
    op.mode = mode_;
    op.ip = stack_.back().ip;
    op.addr = addr;
    op.taken = taken;
    op.newInstruction = new_instruction;
    op.dependsOnPrevLoad = depends_on_prev_load;
    sink_.consume(core_, op);
    ++ops_;
    if (new_instruction) {
        ++instructions_;
        advanceIp();
    }
}

void
ExecContext::call(const FunctionDesc &fn)
{
    if (fn.size == 0)
        BDS_FATAL("call to zero-sized function");
    if (stack_.size() > 256)
        BDS_FATAL("simulated call stack overflow");
    emit(OpClass::Branch, fn.base, true, true);
    stack_.push_back(Frame{fn, fn.base});
}

void
ExecContext::ret()
{
    if (stack_.size() <= 1)
        BDS_FATAL("return from entry frame");
    emit(OpClass::Branch, 0, true, true);
    stack_.pop_back();
}

void
ExecContext::load(std::uint64_t addr)
{
    emit(OpClass::Load, addr, false, true);
}

void
ExecContext::loadDependent(std::uint64_t addr)
{
    emit(OpClass::Load, addr, false, true, true);
}

void
ExecContext::store(std::uint64_t addr)
{
    emit(OpClass::Store, addr, false, true);
}

void
ExecContext::intOps(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        emit(OpClass::IntAlu, 0, false, true);
}

void
ExecContext::fpOps(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        emit(OpClass::FpAlu, 0, false, true);
}

void
ExecContext::sseOps(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        emit(OpClass::SseAlu, 0, false, true);
}

void
ExecContext::branch(bool taken)
{
    emit(OpClass::Branch, 0, taken, true);
}

void
ExecContext::microcoded(unsigned uops)
{
    if (uops == 0)
        BDS_FATAL("microcoded instruction needs >= 1 uop");
    emit(OpClass::IntAlu, 0, false, true);
    for (unsigned i = 1; i < uops; ++i)
        emit(OpClass::IntAlu, 0, false, false);
}

void
ExecContext::scan(std::uint64_t base, std::uint64_t bytes,
                  std::uint32_t stride, unsigned int_per_load)
{
    stride = std::max<std::uint32_t>(stride, 8);
    for (std::uint64_t off = 0; off < bytes; off += stride) {
        load(base + off);
        intOps(int_per_load);
        branch(off + stride < bytes); // loop back-edge, taken until exit
    }
}

void
ExecContext::memcopy(std::uint64_t dst, std::uint64_t src,
                     std::uint64_t bytes)
{
    // Unrolled copy loop: two line-sized moves per back-edge.
    for (std::uint64_t off = 0; off < bytes; off += 128) {
        load(src + off);
        store(dst + off);
        if (off + 64 < bytes) {
            load(src + off + 64);
            store(dst + off + 64);
        }
        branch(off + 128 < bytes);
    }
}

void
CountingSink::consume(unsigned core, const MicroOp &op)
{
    ++total;
    if (op.newInstruction)
        ++instructions;
    switch (op.cls) {
      case OpClass::Load: ++loads; break;
      case OpClass::Store: ++stores; break;
      case OpClass::Branch: ++branches; break;
      case OpClass::IntAlu: ++intAlu; break;
      case OpClass::FpAlu: ++fpAlu; break;
      case OpClass::SseAlu: ++sseAlu; break;
    }
    if (op.mode == Mode::Kernel)
        ++kernelOps;
    maxCore = std::max<std::uint64_t>(maxCore, core);
    last = op;
}

} // namespace bds
