/**
 * @file
 * Instrumentation runtime: the API workloads and stack engines use to
 * execute. Each call emits micro-ops with genuine code and data
 * addresses into an OpSink (normally the uarch SystemModel).
 *
 * Code addresses follow a call-stack model: a context executes inside
 * a current function frame and its instruction pointer walks that
 * function's byte range, so a software stack defined with many large
 * functions produces a large instruction working set — the mechanism
 * behind the paper's Hadoop-vs-Spark frontend observations.
 */

#ifndef BDS_TRACE_RUNTIME_H
#define BDS_TRACE_RUNTIME_H

#include <cstdint>
#include <vector>

#include "trace/memlayout.h"
#include "trace/microop.h"

namespace bds {

/** A simulated function's code footprint. */
struct FunctionDesc
{
    std::uint64_t base = 0; ///< first code byte
    std::uint32_t size = 0; ///< footprint in bytes
};

/**
 * A simulated binary: a bag of functions allocated contiguously in
 * one code region. Stack engines build one image for the framework,
 * one for the user job, one for the kernel.
 */
class CodeImage
{
  public:
    /**
     * @param space Owning address space.
     * @param region Code region to allocate from.
     */
    CodeImage(AddressSpace &space, Region region);

    /** Define a function of the given code size. */
    FunctionDesc defineFunction(std::uint32_t bytes);

    /** Total bytes of code defined so far. */
    std::uint64_t footprint() const { return footprint_; }

    /** Number of functions defined. */
    std::size_t numFunctions() const { return functions_.size(); }

    /** Function by index. */
    const FunctionDesc &function(std::size_t i) const;

  private:
    AddressSpace &space_;
    Region region_;
    std::uint64_t footprint_ = 0;
    std::vector<FunctionDesc> functions_;
};

/**
 * Per-simulated-thread execution context bound to one core.
 *
 * All emit methods advance the instruction pointer inside the current
 * function frame (wrapping at its end, which models loops) and push
 * micro-ops into the sink.
 */
class ExecContext
{
  public:
    /**
     * @param sink Consumer of the op stream.
     * @param core Core this context is pinned to.
     * @param entry Initial function frame.
     */
    ExecContext(OpSink &sink, unsigned core, const FunctionDesc &entry);

    /** Core this context executes on. */
    unsigned core() const { return core_; }

    /** Switch privilege mode for subsequent ops. */
    void setMode(Mode m) { mode_ = m; }

    /** Current privilege mode. */
    Mode mode() const { return mode_; }

    /** Call into a function (emits the call branch). */
    void call(const FunctionDesc &fn);

    /** Return to the caller frame (emits the return branch). */
    void ret();

    /** Emit an 8-byte (or smaller) load. */
    void load(std::uint64_t addr);

    /**
     * Emit a load whose address depends on the previous load (pointer
     * chase); the core model serializes such misses, lowering MLP.
     */
    void loadDependent(std::uint64_t addr);

    /** Emit an 8-byte (or smaller) store. */
    void store(std::uint64_t addr);

    /** Emit n integer ALU instructions. */
    void intOps(unsigned n = 1);

    /** Emit n x87 floating-point instructions. */
    void fpOps(unsigned n = 1);

    /** Emit n SSE floating-point instructions. */
    void sseOps(unsigned n = 1);

    /** Emit a conditional branch with the given outcome. */
    void branch(bool taken);

    /**
     * Emit one microcoded instruction that cracks into extra uops
     * (first uop opens the instruction, the rest do not).
     * @param uops Total uops, >= 1.
     */
    void microcoded(unsigned uops);

    /**
     * Sequentially read a buffer: one load per `stride` bytes plus
     * `int_per_load` integer ops of processing, with a loop branch.
     * @param base Buffer base address.
     * @param bytes Buffer length.
     * @param stride Bytes per load (>= 8; 64 touches each line once).
     * @param int_per_load Integer ops of work per element.
     */
    void scan(std::uint64_t base, std::uint64_t bytes,
              std::uint32_t stride = 64, unsigned int_per_load = 2);

    /**
     * Copy bytes between buffers: paired load/store per 64-byte line
     * with a loop branch (models memcpy / kernel buffer copies).
     */
    void memcopy(std::uint64_t dst, std::uint64_t src, std::uint64_t bytes);

    /** Total uops emitted by this context. */
    std::uint64_t opsEmitted() const { return ops_; }

    /** Total instructions emitted by this context. */
    std::uint64_t instructionsEmitted() const { return instructions_; }

  private:
    /** Advance ip by one instruction slot within the current frame. */
    void advanceIp();

    /** Emit one op at the current ip. */
    void emit(OpClass cls, std::uint64_t addr, bool taken,
              bool new_instruction, bool depends_on_prev_load = false);

    OpSink &sink_;
    unsigned core_;
    Mode mode_ = Mode::User;

    struct Frame
    {
        FunctionDesc fn;
        std::uint64_t ip;
    };
    std::vector<Frame> stack_;

    std::uint64_t ops_ = 0;
    std::uint64_t instructions_ = 0;
};

/** Sink that tallies ops by class — used by tests and examples. */
class CountingSink : public OpSink
{
  public:
    void consume(unsigned core, const MicroOp &op) override;

    std::uint64_t total = 0;          ///< all uops
    std::uint64_t instructions = 0;   ///< macro-instructions
    std::uint64_t loads = 0;          ///< Load uops
    std::uint64_t stores = 0;         ///< Store uops
    std::uint64_t branches = 0;       ///< Branch uops
    std::uint64_t intAlu = 0;         ///< IntAlu uops
    std::uint64_t fpAlu = 0;          ///< FpAlu uops
    std::uint64_t sseAlu = 0;         ///< SseAlu uops
    std::uint64_t kernelOps = 0;      ///< ops in kernel mode
    std::uint64_t maxCore = 0;        ///< highest core index seen
    MicroOp last;                     ///< most recent op
};

} // namespace bds

#endif // BDS_TRACE_RUNTIME_H
