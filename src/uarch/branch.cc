#include "uarch/branch.h"

#include "common/log.h"

namespace bds {

GshareBranchPredictor::GshareBranchPredictor(unsigned history_bits)
    : historyBits_(history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        BDS_FATAL("gshare history bits must be in [1, 24]");
    table_.assign(1u << history_bits, 2); // weakly taken
}

bool
GshareBranchPredictor::predictAndTrain(std::uint64_t ip, bool taken)
{
    std::uint32_t mask = (1u << historyBits_) - 1;
    std::uint32_t idx =
        (static_cast<std::uint32_t>(ip >> 2) ^ history_) & mask;
    std::uint8_t &ctr = table_[idx];
    bool prediction = ctr >= 2;
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & mask;
    return prediction == taken;
}

} // namespace bds
