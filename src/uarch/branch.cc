#include "uarch/branch.h"

#include "common/log.h"
#include "fault/error.h"

namespace bds {

GshareBranchPredictor::GshareBranchPredictor(unsigned history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        BDS_FATAL("gshare history bits must be in [1, 24]");
    mask_ = (1u << history_bits) - 1;
    table_.assign(1u << history_bits, 2); // weakly taken
}

void
GshareBranchPredictor::saveState(StateSink &sink) const
{
    sink.section("BPRD");
    sink.u64(table_.size());
    sink.u32(history_);
    // Dense: 2-bit counters pack poorly as sparse records and the
    // whole table is at most 2^24 bytes.
    for (std::uint8_t ctr : table_)
        sink.u8(ctr);
}

void
GshareBranchPredictor::loadState(StateSource &src)
{
    src.section("BPRD");
    src.check("gshare.table_size", table_.size());
    history_ = src.u32() & mask_;
    for (std::uint8_t &ctr : table_) {
        std::uint8_t v = src.u8();
        if (v > 3)
            BDS_RAISE(ErrorCode::Io,
                      "gshare state holds counter value "
                          << unsigned(v)
                          << " outside [0, 3] (corrupt payload)");
        ctr = v;
    }
}

} // namespace bds
