#include "uarch/branch.h"

#include "common/log.h"

namespace bds {

GshareBranchPredictor::GshareBranchPredictor(unsigned history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        BDS_FATAL("gshare history bits must be in [1, 24]");
    mask_ = (1u << history_bits) - 1;
    table_.assign(1u << history_bits, 2); // weakly taken
}

} // namespace bds
