/**
 * @file
 * Gshare branch predictor.
 *
 * A global-history XOR-indexed table of 2-bit saturating counters.
 * Branch outcomes come from the workloads' real data-dependent
 * control flow, so prediction accuracy — and with it the paper's
 * BR MISS metric — is emergent.
 *
 * The table is always a power of two (2^history_bits counters), so
 * indexing is a stored mask; the predict-and-train path is inline.
 */

#ifndef BDS_UARCH_BRANCH_H
#define BDS_UARCH_BRANCH_H

#include <cstdint>
#include <vector>

#include "ckpt/state.h"

namespace bds {

/** Gshare predictor with configurable history length. */
class GshareBranchPredictor
{
  public:
    /**
     * @param history_bits Global-history length; the table holds
     *        2^history_bits 2-bit counters.
     */
    explicit GshareBranchPredictor(unsigned history_bits = 12);

    /**
     * Predict-and-train on one branch.
     * @param ip Branch instruction address.
     * @param taken Actual outcome.
     * @return True when the prediction was correct.
     */
    bool predictAndTrain(std::uint64_t ip, bool taken)
    {
        std::uint32_t idx =
            (static_cast<std::uint32_t>(ip >> 2) ^ history_) & mask_;
        std::uint8_t &ctr = table_[idx];
        bool prediction = ctr >= 2;
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & mask_;
        return prediction == taken;
    }

    /** Serialize the global history and the full counter table. */
    void saveState(StateSink &sink) const;

    /** Restore a saveState() payload; Error(Io) on any mismatch. */
    void loadState(StateSource &src);

  private:
    std::uint32_t mask_;    ///< table size - 1
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> table_;
};

} // namespace bds

#endif // BDS_UARCH_BRANCH_H
