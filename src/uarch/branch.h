/**
 * @file
 * Gshare branch predictor.
 *
 * A global-history XOR-indexed table of 2-bit saturating counters.
 * Branch outcomes come from the workloads' real data-dependent
 * control flow, so prediction accuracy — and with it the paper's
 * BR MISS metric — is emergent.
 */

#ifndef BDS_UARCH_BRANCH_H
#define BDS_UARCH_BRANCH_H

#include <cstdint>
#include <vector>

namespace bds {

/** Gshare predictor with configurable history length. */
class GshareBranchPredictor
{
  public:
    /**
     * @param history_bits Global-history length; the table holds
     *        2^history_bits 2-bit counters.
     */
    explicit GshareBranchPredictor(unsigned history_bits = 12);

    /**
     * Predict-and-train on one branch.
     * @param ip Branch instruction address.
     * @param taken Actual outcome.
     * @return True when the prediction was correct.
     */
    bool predictAndTrain(std::uint64_t ip, bool taken);

  private:
    unsigned historyBits_;
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> table_;
};

} // namespace bds

#endif // BDS_UARCH_BRANCH_H
