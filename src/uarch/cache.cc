#include "uarch/cache.h"

#include "common/log.h"

namespace bds {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPow2(cfg_.lineBytes))
        BDS_FATAL("line size must be a power of two");
    if (cfg_.assoc == 0 || cfg_.sizeBytes == 0)
        BDS_FATAL("cache must have nonzero size and associativity");
    std::uint64_t lines = cfg_.sizeBytes / cfg_.lineBytes;
    if (lines == 0 || lines % cfg_.assoc != 0)
        BDS_FATAL("cache geometry does not divide evenly: " << lines
                  << " lines, " << cfg_.assoc << " ways");
    numSets_ = lines / cfg_.assoc;
    lines_.resize(lines);
}

int
SetAssocCache::findWay(std::uint64_t set, std::uint64_t tag) const
{
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        const Line &l = lineAt(set, w);
        if (l.state != CoherenceState::Invalid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

CacheLookup
SetAssocCache::probe(std::uint64_t addr) const
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return {};
    return {true, lineAt(set, static_cast<std::uint32_t>(w)).state};
}

CacheLookup
SetAssocCache::access(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return {};
    Line &l = lineAt(set, static_cast<std::uint32_t>(w));
    l.lru = ++tick_;
    return {true, l.state};
}

Eviction
SetAssocCache::insert(std::uint64_t addr, CoherenceState state)
{
    if (state == CoherenceState::Invalid)
        BDS_FATAL("cannot insert an Invalid line");
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    if (findWay(set, la) >= 0)
        BDS_FATAL("inserting line already present: 0x" << std::hex << la);

    // Prefer an invalid way; otherwise evict true-LRU.
    std::uint32_t victim = 0;
    bool found_invalid = false;
    std::uint64_t oldest = UINT64_MAX;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &l = lineAt(set, w);
        if (l.state == CoherenceState::Invalid) {
            victim = w;
            found_invalid = true;
            break;
        }
        if (l.lru < oldest) {
            oldest = l.lru;
            victim = w;
        }
    }

    Eviction ev;
    Line &l = lineAt(set, victim);
    if (!found_invalid) {
        ev.valid = true;
        ev.lineAddr = l.tag;
        ev.dirty = l.dirty;
    }
    l.tag = la;
    l.state = state;
    l.dirty = false;
    l.sharedEver = false;
    l.lru = ++tick_;
    return ev;
}

void
SetAssocCache::setState(std::uint64_t addr, CoherenceState state)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        BDS_FATAL("setState on absent line 0x" << std::hex << la);
    if (state == CoherenceState::Invalid)
        BDS_FATAL("use invalidate() to drop a line");
    lineAt(set, static_cast<std::uint32_t>(w)).state = state;
}

void
SetAssocCache::setDirty(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        BDS_FATAL("setDirty on absent line 0x" << std::hex << la);
    lineAt(set, static_cast<std::uint32_t>(w)).dirty = true;
}

void
SetAssocCache::markShared(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        BDS_FATAL("markShared on absent line 0x" << std::hex << la);
    lineAt(set, static_cast<std::uint32_t>(w)).sharedEver = true;
}

bool
SetAssocCache::isMarkedShared(std::uint64_t addr) const
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return false;
    return lineAt(set, static_cast<std::uint32_t>(w)).sharedEver;
}

bool
SetAssocCache::invalidate(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return false;
    Line &l = lineAt(set, static_cast<std::uint32_t>(w));
    bool dirty = l.dirty;
    l.state = CoherenceState::Invalid;
    l.dirty = false;
    l.sharedEver = false;
    return dirty;
}

void
SetAssocCache::forEachLine(
    const std::function<void(std::uint64_t, CoherenceState, bool)> &fn)
    const
{
    for (const Line &l : lines_)
        if (l.state != CoherenceState::Invalid)
            fn(l.tag, l.state, l.dirty);
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t n = 0;
    for (const Line &l : lines_)
        if (l.state != CoherenceState::Invalid)
            ++n;
    return n;
}

} // namespace bds
