#include "uarch/cache.h"

#include <algorithm>

#include "common/log.h"
#include "fault/error.h"

namespace bds {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPow2(cfg_.lineBytes))
        BDS_FATAL("line size must be a power of two");
    if (cfg_.assoc == 0 || cfg_.sizeBytes == 0)
        BDS_FATAL("cache must have nonzero size and associativity");
    std::uint64_t lines = cfg_.sizeBytes / cfg_.lineBytes;
    if (lines == 0 || lines % cfg_.assoc != 0)
        BDS_FATAL("cache geometry does not divide evenly: " << lines
                  << " lines, " << cfg_.assoc << " ways");
    numSets_ = lines / cfg_.assoc;
    const bool pow2 = isPow2(numSets_);
    setMask_ = pow2 ? numSets_ - 1 : 0;
    oddFactor_ = numSets_;
    twoPow_ = 0;
    while ((oddFactor_ & 1) == 0) {
        oddFactor_ >>= 1;
        ++twoPow_;
    }
    twoMask_ = (1ULL << twoPow_) - 1;
    lineShift_ = 0;
    while ((1u << lineShift_) < cfg_.lineBytes)
        ++lineShift_;

    // Pick the set-index strategy once, here, instead of assuming it
    // per access: mask for power-of-two set counts, the divide-free
    // decomposition for odd factor 3, plain modulo for every other
    // geometry a DSE sweep may build. The Factor3 choice is verified
    // against plain modulo on probe addresses spanning several wrap-
    // arounds — any mismatch (a future edit breaking the identity)
    // downgrades to the always-correct modulo path rather than
    // silently mis-indexing sets.
    if (pow2) {
        setMap_ = SetMapKind::Pow2;
    } else if (oddFactor_ == 3) {
        setMap_ = SetMapKind::Factor3;
        for (std::uint64_t la = 0; la < 8 * numSets_ + 7;
             la += numSets_ / 5 + 1) {
            const std::uint64_t fast =
                (((la >> twoPow_) % 3) << twoPow_) | (la & twoMask_);
            if (fast != la % numSets_) {
                setMap_ = SetMapKind::Modulo;
                break;
            }
        }
    } else {
        setMap_ = SetMapKind::Modulo;
    }
    tags_.assign(lines, kInvalidTag);
    lru_.assign(lines, 0);
    states_.assign(lines, CoherenceState::Invalid);
    flags_.assign(lines, 0);
}

void
SetAssocCache::fatalInvalidInsert()
{
    BDS_FATAL("cannot insert an Invalid line");
}

void
SetAssocCache::fatalAlreadyPresent(std::uint64_t la)
{
    BDS_FATAL("inserting line already present: 0x" << std::hex << la);
}

void
SetAssocCache::setState(std::uint64_t addr, CoherenceState state)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t base = setBase(la);
    int w = findWay(base, la);
    if (w < 0)
        BDS_FATAL("setState on absent line 0x" << std::hex << la);
    if (state == CoherenceState::Invalid)
        BDS_FATAL("use invalidate() to drop a line");
    states_[base + static_cast<std::uint64_t>(w)] = state;
}

void
SetAssocCache::setStateDirty(std::uint64_t addr, CoherenceState state)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t base = setBase(la);
    int w = findWay(base, la);
    if (w < 0)
        BDS_FATAL("setStateDirty on absent line 0x" << std::hex << la);
    if (state == CoherenceState::Invalid)
        BDS_FATAL("use invalidate() to drop a line");
    std::uint64_t i = base + static_cast<std::uint64_t>(w);
    states_[i] = state;
    flags_[i] |= kDirty;
}

void
SetAssocCache::setDirty(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t base = setBase(la);
    int w = findWay(base, la);
    if (w < 0)
        BDS_FATAL("setDirty on absent line 0x" << std::hex << la);
    flags_[base + static_cast<std::uint64_t>(w)] |= kDirty;
}

void
SetAssocCache::markShared(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t base = setBase(la);
    int w = findWay(base, la);
    if (w < 0)
        BDS_FATAL("markShared on absent line 0x" << std::hex << la);
    flags_[base + static_cast<std::uint64_t>(w)] |= kSharedEver;
}

bool
SetAssocCache::isMarkedShared(std::uint64_t addr) const
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t base = setBase(la);
    int w = findWay(base, la);
    if (w < 0)
        return false;
    return (flags_[base + static_cast<std::uint64_t>(w)] & kSharedEver)
        != 0;
}

void
SetAssocCache::forEachLine(
    const std::function<void(std::uint64_t, CoherenceState, bool)> &fn)
    const
{
    for (std::size_t i = 0; i < tags_.size(); ++i)
        if (tags_[i] != kInvalidTag)
            fn(tags_[i], states_[i], (flags_[i] & kDirty) != 0);
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t n = 0;
    for (std::uint64_t t : tags_)
        if (t != kInvalidTag)
            ++n;
    return n;
}

void
SetAssocCache::saveState(StateSink &sink) const
{
    sink.section("CACH");
    // Geometry guard: a payload must only restore into a cache of
    // the exact shape it was saved from.
    sink.u64(cfg_.sizeBytes);
    sink.u64(cfg_.assoc);
    sink.u64(cfg_.lineBytes);
    sink.u64(tick_);
    sink.u64(validLines());
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        if (tags_[i] == kInvalidTag)
            continue;
        sink.u64(i);
        sink.u64(tags_[i]);
        sink.u64(lru_[i]);
        sink.u8(static_cast<std::uint8_t>(states_[i]));
        sink.u8(flags_[i]);
    }
}

void
SetAssocCache::loadState(StateSource &src)
{
    src.section("CACH");
    src.check("cache.size_bytes", cfg_.sizeBytes);
    src.check("cache.assoc", cfg_.assoc);
    src.check("cache.line_bytes", cfg_.lineBytes);
    tick_ = src.u64();
    std::uint64_t valid = src.u64();
    if (valid > tags_.size())
        BDS_RAISE(ErrorCode::Io,
                  "cache state declares " << valid
                      << " valid lines but the cache has only "
                      << tags_.size() << " slots (corrupt payload)");
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(lru_.begin(), lru_.end(), 0);
    std::fill(states_.begin(), states_.end(), CoherenceState::Invalid);
    std::fill(flags_.begin(), flags_.end(), 0);
    for (std::uint64_t n = 0; n < valid; ++n) {
        std::uint64_t slot = src.u64();
        if (slot >= tags_.size())
            BDS_RAISE(ErrorCode::Io,
                      "cache state names slot " << slot
                          << " outside the " << tags_.size()
                          << "-slot array (corrupt payload)");
        tags_[slot] = src.u64();
        lru_[slot] = src.u64();
        std::uint8_t state = src.u8();
        if (state > static_cast<std::uint8_t>(CoherenceState::Modified))
            BDS_RAISE(ErrorCode::Io,
                      "cache state holds invalid coherence value "
                          << unsigned(state) << " (corrupt payload)");
        states_[slot] = static_cast<CoherenceState>(state);
        flags_[slot] = src.u8();
    }
}

} // namespace bds
