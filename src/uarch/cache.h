/**
 * @file
 * Set-associative cache model with LRU replacement and per-line
 * MESI-style coherence state.
 *
 * One class serves every level: the per-core L1I/L1D/L2 and the
 * shared L3. Lines carry a coherence state (used by the private
 * levels), a dirty bit, and a "shared ever" bit (used by the L3 to
 * implement the paper's LOAD_HIT_L3 metric, which counts loads that
 * hit *unshared* lines in the L3).
 */

#ifndef BDS_UARCH_CACHE_H
#define BDS_UARCH_CACHE_H

#include <cstdint>
#include <functional>
#include <vector>

namespace bds {

/** Coherence state of a cached line. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024; ///< total capacity
    std::uint32_t assoc = 8;             ///< ways per set
    std::uint32_t lineBytes = 64;        ///< line size (power of two)
};

/** Result of a cache lookup. */
struct CacheLookup
{
    bool hit = false;                   ///< line present and valid
    CoherenceState state = CoherenceState::Invalid; ///< state if hit
};

/** A line evicted by an insert. */
struct Eviction
{
    bool valid = false;     ///< an eviction actually happened
    std::uint64_t lineAddr = 0; ///< line address of the victim
    bool dirty = false;     ///< victim held modified data
};

/**
 * Set-associative cache with true-LRU replacement.
 *
 * Addresses are byte addresses; the cache internally maps them to
 * line addresses. All statistics live in the owner — this class only
 * models state.
 */
class SetAssocCache
{
  public:
    /** Build from a geometry; size/assoc/line must divide evenly. */
    explicit SetAssocCache(const CacheConfig &cfg);

    /** Probe without updating LRU. */
    CacheLookup probe(std::uint64_t addr) const;

    /** Probe and update LRU on hit. */
    CacheLookup access(std::uint64_t addr);

    /**
     * Insert a line (must not already be present), evicting the LRU
     * way if the set is full.
     * @param addr Byte address within the line.
     * @param state Initial coherence state.
     * @return The eviction, if any.
     */
    Eviction insert(std::uint64_t addr, CoherenceState state);

    /** Change the coherence state of a present line. */
    void setState(std::uint64_t addr, CoherenceState state);

    /** Mark a present line dirty. */
    void setDirty(std::uint64_t addr);

    /** Mark/query the L3 "touched by more than one core" flag. */
    void markShared(std::uint64_t addr);

    /** True when the line is present and was marked shared. */
    bool isMarkedShared(std::uint64_t addr) const;

    /** Remove a line if present; returns whether it was dirty. */
    bool invalidate(std::uint64_t addr);

    /** Number of valid lines currently held. */
    std::uint64_t validLines() const;

    /**
     * Visit every valid line.
     * @param fn Callback receiving (line address, state, dirty).
     */
    void forEachLine(
        const std::function<void(std::uint64_t, CoherenceState, bool)>
            &fn) const;

    /** Geometry. */
    const CacheConfig &config() const { return cfg_; }

    /** Line address (addr / lineBytes). */
    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr / cfg_.lineBytes;
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        CoherenceState state = CoherenceState::Invalid;
        bool dirty = false;
        bool sharedEver = false;
    };

    /** Find the way holding the line, or -1. */
    int findWay(std::uint64_t set, std::uint64_t tag) const;

    Line &lineAt(std::uint64_t set, std::uint32_t way)
    {
        return lines_[set * cfg_.assoc + way];
    }

    const Line &lineAt(std::uint64_t set, std::uint32_t way) const
    {
        return lines_[set * cfg_.assoc + way];
    }

    CacheConfig cfg_;
    std::uint64_t numSets_;
    std::uint64_t tick_ = 0;
    std::vector<Line> lines_;
};

} // namespace bds

#endif // BDS_UARCH_CACHE_H
