/**
 * @file
 * Set-associative cache model with LRU replacement and per-line
 * MESI-style coherence state.
 *
 * One class serves every level: the per-core L1I/L1D/L2 and the
 * shared L3. Lines carry a coherence state (used by the private
 * levels), a dirty bit, and a "shared ever" bit (used by the L3 to
 * implement the paper's LOAD_HIT_L3 metric, which counts loads that
 * hit *unshared* lines in the L3).
 *
 * The storage is flat structure-of-arrays: the tag array is scanned
 * on every lookup, so a set's tags share one cache line and invalid
 * ways carry a sentinel tag that can never match a real line address
 * (line addresses fit in 64 - log2(lineBytes) bits). Set indexing is
 * a mask when the set count is a power of two and a modulo
 * otherwise (the Table III L3 has 12288 sets); line addressing is
 * always a shift. Replacement decisions are bit-identical to the
 * original array-of-structs model — the seed implementation is kept
 * in reference.h and pinned against this one by
 * tests/uarch/test_flat_equivalence.cc.
 */

#ifndef BDS_UARCH_CACHE_H
#define BDS_UARCH_CACHE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/state.h"

namespace bds {

/** Coherence state of a cached line. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024; ///< total capacity
    std::uint32_t assoc = 8;             ///< ways per set
    std::uint32_t lineBytes = 64;        ///< line size (power of two)
};

/** Result of a cache lookup. */
struct CacheLookup
{
    bool hit = false;                   ///< line present and valid
    CoherenceState state = CoherenceState::Invalid; ///< state if hit
};

/** A line evicted by an insert. */
struct Eviction
{
    bool valid = false;     ///< an eviction actually happened
    std::uint64_t lineAddr = 0; ///< line address of the victim
    bool dirty = false;     ///< victim held modified data
};

/**
 * Set-associative cache with true-LRU replacement.
 *
 * Addresses are byte addresses; the cache internally maps them to
 * line addresses. All statistics live in the owner — this class only
 * models state.
 */
class SetAssocCache
{
  public:
    /** Build from a geometry; size/assoc/line must divide evenly. */
    explicit SetAssocCache(const CacheConfig &cfg);

    /** Probe without updating LRU. */
    CacheLookup probe(std::uint64_t addr) const
    {
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w < 0)
            return {};
        return {true, states_[base + static_cast<std::uint64_t>(w)]};
    }

    /** Probe and update LRU on hit. */
    CacheLookup access(std::uint64_t addr)
    {
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w < 0)
            return {};
        std::uint64_t i = base + static_cast<std::uint64_t>(w);
        lru_[i] = ++tick_;
        return {true, states_[i]};
    }

    /**
     * Insert a line (must not already be present), evicting the LRU
     * way if the set is full.
     * @param addr Byte address within the line.
     * @param state Initial coherence state.
     * @return The eviction, if any.
     */
    Eviction insert(std::uint64_t addr, CoherenceState state,
                    bool dirty = false)
    {
        checkInsertable(state);
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        return fillVictim<true>(base, la, state, dirty);
    }

    /**
     * Insert the line, or just change its state when it is already
     * present (the LRU order is untouched in that case, matching a
     * probe-then-setState pair). One tag scan instead of the two an
     * explicit probe + insert/setState would cost.
     */
    Eviction insertOrSetState(std::uint64_t addr, CoherenceState state)
    {
        checkInsertable(state);
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w >= 0) {
            states_[base + static_cast<std::uint64_t>(w)] = state;
            return {};
        }
        return fillVictim<false>(base, la, state);
    }

    /** Change the coherence state of a present line. */
    void setState(std::uint64_t addr, CoherenceState state);

    /**
     * Change the state of a present line and mark it dirty in one
     * tag scan (equivalent to setState followed by setDirty).
     */
    void setStateDirty(std::uint64_t addr, CoherenceState state);

    /**
     * Change the state when the line is present; no-op otherwise.
     * @return True when the line was present.
     */
    bool setStateIfPresent(std::uint64_t addr, CoherenceState state)
    {
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w < 0)
            return false;
        states_[base + static_cast<std::uint64_t>(w)] = state;
        return true;
    }

    /** Mark a present line dirty. */
    void setDirty(std::uint64_t addr);

    /**
     * Mark the line dirty when present; no-op otherwise.
     * @return True when the line was present.
     */
    bool setDirtyIfPresent(std::uint64_t addr)
    {
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w < 0)
            return false;
        flags_[base + static_cast<std::uint64_t>(w)] |= kDirty;
        return true;
    }

    /** Mark/query the L3 "touched by more than one core" flag. */
    void markShared(std::uint64_t addr);

    /**
     * Mark the line shared — and optionally dirty too — when it is
     * present; no-op otherwise. One tag scan for what would be a
     * probe + markShared (+ setDirty) sequence.
     * @return True when the line was present.
     */
    bool markSharedIfPresent(std::uint64_t addr, bool also_dirty = false)
    {
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w < 0)
            return false;
        flags_[base + static_cast<std::uint64_t>(w)] |=
            also_dirty ? (kSharedEver | kDirty) : kSharedEver;
        return true;
    }

    /** True when the line is present and was marked shared. */
    bool isMarkedShared(std::uint64_t addr) const;

    /** Remove a line if present; returns whether it was dirty. */
    bool invalidate(std::uint64_t addr)
    {
        std::uint64_t la = lineAddr(addr);
        std::uint64_t base = setBase(la);
        int w = findWay(base, la);
        if (w < 0)
            return false;
        std::uint64_t i = base + static_cast<std::uint64_t>(w);
        bool dirty = (flags_[i] & kDirty) != 0;
        tags_[i] = kInvalidTag;
        states_[i] = CoherenceState::Invalid;
        flags_[i] = 0;
        return dirty;
    }

    /** Number of valid lines currently held. */
    std::uint64_t validLines() const;

    /**
     * Visit every valid line.
     * @param fn Callback receiving (line address, state, dirty).
     */
    void forEachLine(
        const std::function<void(std::uint64_t, CoherenceState, bool)>
            &fn) const;

    /** Geometry. */
    const CacheConfig &config() const { return cfg_; }

    /** Line address (addr / lineBytes; lineBytes is a power of two). */
    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr >> lineShift_;
    }

    /**
     * How setBase maps a line address to its set. Chosen — and for
     * Factor3, verified against plain modulo — at construction, so
     * arbitrary DSE geometries are correct by fallback rather than
     * by assumption (the seed code assumed the Table III 12288-set
     * L3 was the only non-power-of-two anyone would build).
     */
    enum class SetMapKind : std::uint8_t
    {
        Pow2,    ///< set count is a power of two: mask
        Factor3, ///< odd factor 3: divide-free decomposition
        Modulo,  ///< anything else: plain la % numSets_
    };

    /** The set-index strategy this geometry selected (for tests). */
    SetMapKind setMapKind() const { return setMap_; }

    /**
     * Serialize the full replacement-relevant state — the LRU tick
     * clock plus every valid line's slot, tag, LRU stamp, coherence
     * state and dirty/shared flags — preceded by a geometry guard.
     * Valid lines are stored sparsely (a warm cache is usually far
     * from full), so payload size tracks occupancy, not capacity.
     */
    void saveState(StateSink &sink) const;

    /**
     * Restore a saveState() payload into this cache. The geometry
     * guard must match this cache's configuration; any mismatch or
     * structural violation is a typed Error(Io) and the cache is left
     * in an unspecified but valid state (callers discard it).
     */
    void loadState(StateSource &src);

  private:
    /** Tag value of an invalid way; unreachable as a line address. */
    static constexpr std::uint64_t kInvalidTag = ~0ULL;

    static constexpr std::uint8_t kDirty = 1;      ///< flags_ bit 0
    static constexpr std::uint8_t kSharedEver = 2; ///< flags_ bit 1

    /** First slot of the set holding the line. */
    std::uint64_t setBase(std::uint64_t la) const
    {
        // la % numSets_ without a hardware divide where possible.
        // numSets_ = oddFactor_ * 2^twoPow_, and
        //   la % (m * 2^k) == ((la >> k) % m) << k | (la & (2^k - 1)),
        // so the only divide left is by the odd factor — and for the
        // common factor 3 (the Table III 12 MB L3 has 12288 sets) the
        // constant modulo compiles to a multiply.
        std::uint64_t set;
        if (setMap_ == SetMapKind::Pow2)
            set = la & setMask_;
        else if (setMap_ == SetMapKind::Factor3)
            set = ((((la >> twoPow_) % 3) << twoPow_) |
                   (la & twoMask_));
        else
            set = la % numSets_;
        return set * cfg_.assoc;
    }

    /** Way within the set holding the line, or -1. */
    int findWay(std::uint64_t base, std::uint64_t la) const
    {
        const std::uint64_t *tags = tags_.data() + base;
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
            if (tags[w] == la)
                return static_cast<int>(w);
        return -1;
    }

    /**
     * Claim a way for `la` in the set at `base` — the first invalid
     * way, else the true-LRU victim — and fill it.
     *
     * With kCheckPresent, the double-insert tripwire rides the victim
     * scan instead of costing a second pass over the tags: complete
     * whenever the set is full (the eviction steady state), partial —
     * ways up to the first invalid one — while the set still has
     * holes. Callers that just proved absence via findWay pass false.
     * @return The eviction when a valid line was displaced.
     */
    template <bool kCheckPresent>
    Eviction fillVictim(std::uint64_t base, std::uint64_t la,
                        CoherenceState state, bool dirty = false)
    {
        std::uint32_t victim = 0;
        bool found_invalid = false;
        std::uint64_t oldest = UINT64_MAX;
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            std::uint64_t i = base + w;
            if (kCheckPresent && tags_[i] == la)
                fatalAlreadyPresent(la);
            if (tags_[i] == kInvalidTag) {
                victim = w;
                found_invalid = true;
                break;
            }
            if (lru_[i] < oldest) {
                oldest = lru_[i];
                victim = w;
            }
        }

        Eviction ev;
        std::uint64_t i = base + victim;
        if (!found_invalid) {
            ev.valid = true;
            ev.lineAddr = tags_[i];
            ev.dirty = (flags_[i] & kDirty) != 0;
        }
        tags_[i] = la;
        states_[i] = state;
        flags_[i] = dirty ? kDirty : 0;
        lru_[i] = ++tick_;
        return ev;
    }

    /** Reject inserting an Invalid-state line (cold path). */
    static void checkInsertable(CoherenceState state)
    {
        if (state == CoherenceState::Invalid)
            fatalInvalidInsert();
    }

    [[noreturn]] static void fatalInvalidInsert();
    [[noreturn]] static void fatalAlreadyPresent(std::uint64_t la);

    CacheConfig cfg_;
    std::uint64_t numSets_;
    std::uint64_t setMask_;   ///< numSets_ - 1 when pow2
    std::uint64_t oddFactor_; ///< odd part of numSets_
    std::uint64_t twoMask_;   ///< 2^twoPow_ - 1
    std::uint32_t twoPow_;    ///< exponent of the pow2 part
    std::uint32_t lineShift_; ///< log2(lineBytes)
    SetMapKind setMap_;       ///< validated at construction
    std::uint64_t tick_ = 0;

    // Parallel per-slot arrays, indexed set * assoc + way. A set's
    // tags are contiguous, so the hot scan touches one cache line.
    std::vector<std::uint64_t> tags_;   ///< line address or kInvalidTag
    std::vector<std::uint64_t> lru_;    ///< LRU tick per slot
    std::vector<CoherenceState> states_; ///< state per slot
    std::vector<std::uint8_t> flags_;   ///< dirty/sharedEver bits
};

} // namespace bds

#endif // BDS_UARCH_CACHE_H
