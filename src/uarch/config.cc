#include "uarch/config.h"

namespace bds {

NodeConfig
NodeConfig::westmere()
{
    NodeConfig cfg;
    cfg.numCores = 6;
    return cfg;
}

NodeConfig
NodeConfig::defaultSim()
{
    NodeConfig cfg;
    cfg.numCores = 4;
    return cfg;
}

} // namespace bds
