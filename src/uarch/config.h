/**
 * @file
 * Simulated node configuration.
 *
 * Geometry defaults follow the paper's Table III (Intel Xeon E5645,
 * Westmere): split 32 KB L1s, 256 KB private L2, 12 MB shared L3,
 * 64-entry L1 TLBs with a 512-entry STLB. Latencies and the cycle-
 * accounting coefficients are the approximate model documented in
 * DESIGN.md.
 */

#ifndef BDS_UARCH_CONFIG_H
#define BDS_UARCH_CONFIG_H

#include "uarch/cache.h"
#include "uarch/tlb.h"

namespace bds {

/** Full configuration of one simulated node. */
struct NodeConfig
{
    /** Number of cores sharing the L3. */
    unsigned numCores = 4;

    CacheConfig l1i{32 * 1024, 4, 64};        ///< L1 instruction cache
    CacheConfig l1d{32 * 1024, 8, 64};        ///< L1 data cache
    CacheConfig l2{256 * 1024, 8, 64};        ///< private unified L2
    CacheConfig l3{12 * 1024 * 1024, 16, 64}; ///< shared L3

    TlbConfig itlb{64, 4};   ///< L1 instruction TLB
    TlbConfig dtlb{64, 4};   ///< L1 data TLB
    TlbConfig stlb{512, 4};  ///< second-level TLB
    std::uint32_t pageBytes = 4096; ///< page size

    double l2Latency = 10.0;   ///< L1 miss, L2 hit (cycles)
    double l3Latency = 38.0;   ///< L2 miss, L3 hit (cycles)
    double memLatency = 200.0; ///< LLC miss (cycles)
    double c2cLatency = 45.0;  ///< cache-to-cache transfer (cycles)
    double walkLatency = 30.0; ///< TLB page walk (cycles)
    double stlbHitPenalty = 7.0; ///< L1 TLB miss that hits STLB

    double branchMissPenalty = 15.0; ///< pipeline redirect (cycles)
    unsigned issueWidth = 4;         ///< uops issued per cycle
    unsigned historyBits = 12;       ///< gshare history length
    unsigned lfbEntries = 10;        ///< line fill buffers per core

    /**
     * The paper's experimental machine: one socket's worth of the
     * dual E5645 node (6 cores, Table III geometry).
     */
    static NodeConfig westmere();

    /**
     * Default simulation target: Table III geometry with 4 cores, the
     * tests/bench default (smaller probe cost, same mechanisms).
     */
    static NodeConfig defaultSim();
};

} // namespace bds

#endif // BDS_UARCH_CONFIG_H
