#include "uarch/core.h"

#include <algorithm>

namespace bds {

CoreModel::CoreModel(const NodeConfig &cfg)
    : l1i(cfg.l1i), l1d(cfg.l1d), l2(cfg.l2),
      tlb(cfg.itlb, cfg.dtlb, cfg.stlb, cfg.pageBytes),
      bp(cfg.historyBits),
      lfbEntries_(cfg.lfbEntries),
      missWindowUops_(cfg.memLatency * cfg.issueWidth)
{
}

bool
CoreModel::lfbInFlight(std::uint64_t line_addr, double now)
{
    while (!lfb_.empty() && lfb_.front().ready <= now)
        lfb_.pop_front();
    for (const LfbEntry &e : lfb_)
        if (e.line == line_addr && e.ready > now)
            return true;
    return false;
}

void
CoreModel::lfbAllocate(std::uint64_t line_addr, double ready)
{
    lfb_.push_back(LfbEntry{line_addr, ready});
    if (lfb_.size() > lfbEntries_)
        lfb_.pop_front();
}

double
CoreModel::accountLlcMiss(bool dependent)
{
    // Overlap is judged in *issue* (uop) time, not stalled wall-clock
    // time: an OoO core keeps issuing independent misses while an
    // earlier one is outstanding. A miss occupies the window of uops
    // the fill latency could have covered.
    double now = static_cast<double>(uopClock);
    while (!outstanding_.empty() && outstanding_.front() <= now)
        outstanding_.pop_front();

    double overlap;
    if (dependent || outstanding_.empty()) {
        overlap = 1.0;
    } else {
        overlap = std::min<double>(outstanding_.size() + 1, lfbEntries_);
    }
    outstanding_.push_back(now + missWindowUops_);
    if (outstanding_.size() > lfbEntries_)
        outstanding_.pop_front();

    return overlap;
}

} // namespace bds
