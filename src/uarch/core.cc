#include "uarch/core.h"

#include <algorithm>

namespace bds {

CoreModel::CoreModel(const NodeConfig &cfg)
    : l1i(cfg.l1i), l1d(cfg.l1d), l2(cfg.l2),
      tlb(cfg.itlb, cfg.dtlb, cfg.stlb, cfg.pageBytes),
      bp(cfg.historyBits),
      lfbEntries_(cfg.lfbEntries),
      lfb_(cfg.lfbEntries + 1),
      missWindowUops_(cfg.memLatency * cfg.issueWidth),
      outstanding_(cfg.lfbEntries + 1)
{
}

bool
CoreModel::lfbInFlight(std::uint64_t line_addr, double now)
{
    std::size_t cap = lfb_.size();
    while (lfbCount_ > 0 && lfb_[lfbHead_].ready <= now) {
        lfbHead_ = (lfbHead_ + 1) % cap;
        --lfbCount_;
    }
    for (std::size_t k = 0; k < lfbCount_; ++k) {
        const LfbEntry &e = lfb_[(lfbHead_ + k) % cap];
        if (e.line == line_addr && e.ready > now)
            return true;
    }
    return false;
}

void
CoreModel::lfbAllocate(std::uint64_t line_addr, double ready)
{
    std::size_t cap = lfb_.size();
    lfb_[(lfbHead_ + lfbCount_) % cap] = LfbEntry{line_addr, ready};
    if (lfbCount_ < lfbEntries_) {
        ++lfbCount_;
    } else {
        // Full: the push displaces the oldest entry.
        lfbHead_ = (lfbHead_ + 1) % cap;
    }
}

double
CoreModel::accountLlcMiss(bool dependent)
{
    // Overlap is judged in *issue* (uop) time, not stalled wall-clock
    // time: an OoO core keeps issuing independent misses while an
    // earlier one is outstanding. A miss occupies the window of uops
    // the fill latency could have covered.
    double now = static_cast<double>(uopClock);
    std::size_t cap = outstanding_.size();
    while (outCount_ > 0 && outstanding_[outHead_] <= now) {
        outHead_ = (outHead_ + 1) % cap;
        --outCount_;
    }

    double overlap;
    if (dependent || outCount_ == 0) {
        overlap = 1.0;
    } else {
        overlap = std::min<double>(static_cast<double>(outCount_ + 1),
                                   lfbEntries_);
    }
    outstanding_[(outHead_ + outCount_) % cap] = now + missWindowUops_;
    if (outCount_ < lfbEntries_) {
        ++outCount_;
    } else {
        outHead_ = (outHead_ + 1) % cap;
    }

    return overlap;
}

} // namespace bds
