#include "uarch/core.h"

#include <algorithm>

#include "fault/error.h"

namespace bds {

CoreModel::CoreModel(const NodeConfig &cfg)
    : l1i(cfg.l1i), l1d(cfg.l1d), l2(cfg.l2),
      tlb(cfg.itlb, cfg.dtlb, cfg.stlb, cfg.pageBytes),
      bp(cfg.historyBits),
      lfbEntries_(cfg.lfbEntries),
      lfb_(cfg.lfbEntries + 1),
      missWindowUops_(cfg.memLatency * cfg.issueWidth),
      outstanding_(cfg.lfbEntries + 1)
{
}

bool
CoreModel::lfbInFlight(std::uint64_t line_addr, double now)
{
    std::size_t cap = lfb_.size();
    while (lfbCount_ > 0 && lfb_[lfbHead_].ready <= now) {
        lfbHead_ = (lfbHead_ + 1) % cap;
        --lfbCount_;
    }
    for (std::size_t k = 0; k < lfbCount_; ++k) {
        const LfbEntry &e = lfb_[(lfbHead_ + k) % cap];
        if (e.line == line_addr && e.ready > now)
            return true;
    }
    return false;
}

void
CoreModel::lfbAllocate(std::uint64_t line_addr, double ready)
{
    std::size_t cap = lfb_.size();
    lfb_[(lfbHead_ + lfbCount_) % cap] = LfbEntry{line_addr, ready};
    if (lfbCount_ < lfbEntries_) {
        ++lfbCount_;
    } else {
        // Full: the push displaces the oldest entry.
        lfbHead_ = (lfbHead_ + 1) % cap;
    }
}

double
CoreModel::accountLlcMiss(bool dependent)
{
    // Overlap is judged in *issue* (uop) time, not stalled wall-clock
    // time: an OoO core keeps issuing independent misses while an
    // earlier one is outstanding. A miss occupies the window of uops
    // the fill latency could have covered.
    double now = static_cast<double>(uopClock);
    std::size_t cap = outstanding_.size();
    while (outCount_ > 0 && outstanding_[outHead_] <= now) {
        outHead_ = (outHead_ + 1) % cap;
        --outCount_;
    }

    double overlap;
    if (dependent || outCount_ == 0) {
        overlap = 1.0;
    } else {
        overlap = std::min<double>(static_cast<double>(outCount_ + 1),
                                   lfbEntries_);
    }
    outstanding_[(outHead_ + outCount_) % cap] = now + missWindowUops_;
    if (outCount_ < lfbEntries_) {
        ++outCount_;
    } else {
        outHead_ = (outHead_ + 1) % cap;
    }

    return overlap;
}

void
CoreModel::saveState(StateSink &sink) const
{
    sink.section("CORE");
    l1i.saveState(sink);
    l1d.saveState(sink);
    l2.saveState(sink);
    tlb.saveState(sink);
    bp.saveState(sink);
    pmc.saveState(sink);
    sink.f64(clock);
    sink.u64(uopClock);
    sink.u64(lastFetchLine);

    // Rings in logical oldest-first order: the restored ring starts
    // at head 0, which is behaviorally identical (lfbInFlight and
    // accountLlcMiss only ever walk from the head).
    sink.u64(lfbEntries_);
    sink.u64(lfbCount_);
    for (std::size_t k = 0; k < lfbCount_; ++k) {
        const LfbEntry &e = lfb_[(lfbHead_ + k) % lfb_.size()];
        sink.u64(e.line);
        sink.f64(e.ready);
    }
    sink.u64(outCount_);
    for (std::size_t k = 0; k < outCount_; ++k)
        sink.f64(outstanding_[(outHead_ + k) % outstanding_.size()]);
}

void
CoreModel::loadState(StateSource &src)
{
    src.section("CORE");
    l1i.loadState(src);
    l1d.loadState(src);
    l2.loadState(src);
    tlb.loadState(src);
    bp.loadState(src);
    pmc.loadState(src);
    clock = src.f64();
    uopClock = src.u64();
    lastFetchLine = src.u64();

    src.check("core.lfb_entries", lfbEntries_);
    std::uint64_t lfb_count = src.u64();
    if (lfb_count > lfb_.size())
        BDS_RAISE(ErrorCode::Io,
                  "core state declares " << lfb_count
                      << " LFB entries, capacity is " << lfb_.size()
                      << " (corrupt payload)");
    lfbHead_ = 0;
    lfbCount_ = static_cast<std::size_t>(lfb_count);
    for (std::size_t k = 0; k < lfbCount_; ++k) {
        lfb_[k].line = src.u64();
        lfb_[k].ready = src.f64();
    }
    std::uint64_t out_count = src.u64();
    if (out_count > outstanding_.size())
        BDS_RAISE(ErrorCode::Io,
                  "core state declares " << out_count
                      << " outstanding misses, capacity is "
                      << outstanding_.size() << " (corrupt payload)");
    outHead_ = 0;
    outCount_ = static_cast<std::size_t>(out_count);
    for (std::size_t k = 0; k < outCount_; ++k)
        outstanding_[k] = src.f64();
}

} // namespace bds
