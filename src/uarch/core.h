/**
 * @file
 * One simulated core: private caches, TLBs, branch predictor, line
 * fill buffers, and the approximate cycle-accounting state.
 *
 * The cross-core data path (L3, coherence, offcore accounting) lives
 * in SystemModel; CoreModel owns everything private to a core.
 *
 * The LFB and MLP windows are fixed-capacity ring buffers (the
 * hardware they model is a ten-entry structure); they replace the
 * seed's std::deque with identical drop-oldest semantics.
 */

#ifndef BDS_UARCH_CORE_H
#define BDS_UARCH_CORE_H

#include <cstdint>
#include <vector>

#include "uarch/branch.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/pmc.h"
#include "uarch/tlb.h"

namespace bds {

/** Private state of one simulated core. */
class CoreModel
{
  public:
    /** Build from the node configuration. */
    explicit CoreModel(const NodeConfig &cfg);

    SetAssocCache l1i;        ///< L1 instruction cache
    SetAssocCache l1d;        ///< L1 data cache
    SetAssocCache l2;         ///< private unified L2
    TwoLevelTlb tlb;          ///< two-level TLB
    GshareBranchPredictor bp; ///< branch predictor
    PmcCounters pmc;          ///< this core's counters

    /**
     * Microarchitectural time in cycles. Advances in lockstep with
     * pmc.cycles but is never reset or frozen: the LFB in-flight
     * window keys off this clock, so resetCounters() and the
     * counter-freeze mode leave timing state coherent.
     */
    double clock = 0.0;

    /**
     * Microarchitectural time in issued uops; same contract as
     * `clock` but in issue time. Drives the MLP overlap window.
     */
    std::uint64_t uopClock = 0;

    /**
     * Line-fill-buffer probe: true when the line has an outstanding
     * fill that has not completed by `now` (the access merges into
     * the in-flight fill). Expired entries are pruned.
     */
    bool lfbInFlight(std::uint64_t line_addr, double now);

    /**
     * Record an outstanding fill completing at `ready` (cycles).
     * Oldest entry is dropped when the buffers are full.
     */
    void lfbAllocate(std::uint64_t line_addr, double ready);

    /**
     * Account one LLC miss in the MLP model (the overlap window
     * state only; the caller records mlpSum/mlpSamples so the freeze
     * mode can redirect the counter writes).
     * @param dependent True for pointer-chase loads that cannot
     *        overlap the previous miss.
     * @return The overlap degree (>= 1) used to scale the unhidden
     *         latency.
     */
    double accountLlcMiss(bool dependent);

    /** Last instruction-fetch line, to dedup per-line ifetches. */
    std::uint64_t lastFetchLine = UINT64_MAX;

    /**
     * Serialize everything private to the core: the three caches,
     * TLBs, predictor, PMCs, both monotonic clocks, the fetch-line
     * dedup register, and the LFB/MLP rings. Ring entries are stored
     * in logical (oldest-first) order, so two cores whose rings hold
     * the same entries at different physical offsets serialize
     * identically.
     */
    void saveState(StateSink &sink) const;

    /** Restore a saveState() payload; Error(Io) on any mismatch. */
    void loadState(StateSource &src);

  private:
    struct LfbEntry
    {
        std::uint64_t line;
        double ready;
    };

    unsigned lfbEntries_;

    // LFB ring: capacity lfbEntries_ + 1 so a push can momentarily
    // exceed the architectural size before the oldest entry drops,
    // exactly like the seed's push_back-then-pop_front deque.
    std::vector<LfbEntry> lfb_;
    std::size_t lfbHead_ = 0;
    std::size_t lfbCount_ = 0;

    double missWindowUops_; ///< fill-latency window in issue (uop) time

    // MLP miss-window ring (ends in uop time), same shape as lfb_.
    std::vector<double> outstanding_;
    std::size_t outHead_ = 0;
    std::size_t outCount_ = 0;
};

} // namespace bds

#endif // BDS_UARCH_CORE_H
