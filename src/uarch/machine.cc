#include "uarch/machine.h"

#include <cctype>
#include <sstream>

#include "fault/error.h"

namespace bds {

namespace {

/** True for 0-free powers of two. */
bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Strict non-negative decimal with optional k/m/g suffix. */
std::uint64_t
parseSize(const std::string &key, const std::string &value)
{
    if (value.empty())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine spec: empty value for '" << key << "'");
    std::uint64_t mult = 1;
    std::string digits = value;
    switch (digits.back()) {
    case 'k': case 'K': mult = 1024ULL; break;
    case 'm': case 'M': mult = 1024ULL * 1024; break;
    case 'g': case 'G': mult = 1024ULL * 1024 * 1024; break;
    default: break;
    }
    if (mult != 1)
        digits.pop_back();
    if (digits.empty())
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine spec: '" << key << "=" << value
                                    << "' has no digits");
    std::uint64_t out = 0;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            BDS_RAISE(ErrorCode::InvalidConfig,
                      "machine spec: '" << key << "=" << value
                                        << "' is not an integer");
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return out * mult;
}

/** Cache geometry sanity shared by every level. */
void
validateCache(const char *name, const CacheConfig &c)
{
    if (!isPow2(c.lineBytes))
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: " << name << " line size " << c.lineBytes
                              << " is not a power of two");
    if (c.sizeBytes == 0 || c.assoc == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: " << name
                              << " needs nonzero capacity and ways");
    const std::uint64_t setBytes =
        static_cast<std::uint64_t>(c.assoc) * c.lineBytes;
    if (c.sizeBytes % setBytes != 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: " << name << " capacity " << c.sizeBytes
                              << " does not divide into " << c.assoc
                              << "-way sets of " << c.lineBytes
                              << "-byte lines");
}

/** TLB geometry sanity. */
void
validateTlb(const char *name, const TlbConfig &t)
{
    if (t.entries == 0 || t.assoc == 0 || t.entries % t.assoc != 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: " << name << " TLB " << t.entries << "/"
                              << t.assoc
                              << " does not divide into whole sets");
}

/** Build the registry once; validated so a bad preset is a bug. */
std::vector<MachinePreset>
buildPresets()
{
    std::vector<MachinePreset> out;
    auto add = [&](const std::string &name, const std::string &summary,
                   NodeConfig cfg) {
        validateMachineConfig(cfg);
        out.push_back({name, summary, cfg});
    };
    const NodeConfig base = NodeConfig::defaultSim();

    add("default", "Table III geometry, 4 cores (the sim default)",
        base);
    add("westmere",
        "the paper machine: one E5645 socket, 6 cores, Table III",
        NodeConfig::westmere());

    {   // L1 capacity sweep (both I and D sides move together).
        NodeConfig c = base;
        c.l1i.sizeBytes = c.l1d.sizeBytes = 16 * 1024;
        add("l1-16k", "halved 16 KB split L1s", c);
        c = base;
        c.l1i.sizeBytes = c.l1d.sizeBytes = 64 * 1024;
        add("l1-64k", "doubled 64 KB split L1s", c);
    }
    {   // Private L2 capacity sweep.
        NodeConfig c = base;
        c.l2.sizeBytes = 128 * 1024;
        add("l2-128k", "halved 128 KB private L2", c);
        c = base;
        c.l2.sizeBytes = 512 * 1024;
        add("l2-512k", "doubled 512 KB private L2", c);
        c = base;
        c.l2.sizeBytes = 1024 * 1024;
        add("l2-1m", "1 MB private L2", c);
    }
    {   // Shared L3 capacity sweep. 4 MB and 8 MB give power-of-two
        // set counts; 24 MB keeps the factor-3 set count the Table
        // III 12 MB has — together they cover every set-index path.
        NodeConfig c = base;
        c.l3.sizeBytes = 4 * 1024 * 1024;
        add("l3-4m", "third-sized 4 MB shared L3", c);
        c = base;
        c.l3.sizeBytes = 8 * 1024 * 1024;
        add("l3-8m", "8 MB shared L3", c);
        c = base;
        c.l3.sizeBytes = 24 * 1024 * 1024;
        add("l3-24m", "doubled 24 MB shared L3", c);
    }
    {   // Core-count sweep (L3 and its snoop set stay shared).
        NodeConfig c = base;
        c.numCores = 2;
        add("cores-2", "2 cores on the Table III memory system", c);
        c = base;
        c.numCores = 8;
        add("cores-8", "8 cores on the Table III memory system", c);
    }
    {   // Branch-predictor size sweep.
        NodeConfig c = base;
        c.historyBits = 8;
        add("gshare-8", "small 8-bit-history gshare predictor", c);
        c = base;
        c.historyBits = 16;
        add("gshare-16", "large 16-bit-history gshare predictor", c);
    }
    return out;
}

} // namespace

const std::vector<MachinePreset> &
machinePresets()
{
    static const std::vector<MachinePreset> presets = buildPresets();
    return presets;
}

const MachinePreset *
findMachinePreset(const std::string &name)
{
    for (const MachinePreset &p : machinePresets())
        if (p.name == name)
            return &p;
    return nullptr;
}

NodeConfig
machineByName(const std::string &name)
{
    const MachinePreset *p = findMachinePreset(name);
    if (!p)
        BDS_RAISE(ErrorCode::UnknownName,
                  "unknown machine preset '"
                      << name
                      << "' (bds_table3_config lists the registry)");
    return p->config;
}

std::size_t
machinePresetIndex(const std::string &name)
{
    const std::vector<MachinePreset> &all = machinePresets();
    for (std::size_t i = 0; i < all.size(); ++i)
        if (all[i].name == name)
            return i;
    BDS_RAISE(ErrorCode::UnknownName,
              "unknown machine preset '" << name
                                         << "' (no wire index)");
}

NodeConfig
resolveMachineSpec(const std::string &spec)
{
    NodeConfig cfg = NodeConfig::defaultSim();
    if (spec.empty() || spec == "default") {
        validateMachineConfig(cfg);
        return cfg;
    }

    std::vector<std::string> tokens;
    std::istringstream ss(spec);
    std::string tok;
    while (std::getline(ss, tok, ','))
        tokens.push_back(tok);

    std::size_t first = 0;
    if (!tokens.empty()
        && tokens[0].find('=') == std::string::npos) {
        cfg = machineByName(tokens[0]); // UnknownName on a typo
        first = 1;
    }

    for (std::size_t i = first; i < tokens.size(); ++i) {
        const std::string &t = tokens[i];
        const std::size_t eq = t.find('=');
        if (t.empty() || eq == std::string::npos || eq == 0)
            BDS_RAISE(ErrorCode::InvalidConfig,
                      "machine spec '" << spec
                                       << "': expected key=value, got '"
                                       << t << "'");
        std::string key = t.substr(0, eq);
        for (char &c : key)
            if (c == '-')
                c = '_';
        const std::string value = t.substr(eq + 1);
        const std::uint64_t v = parseSize(key, value);
        auto u32 = [&]() -> std::uint32_t {
            if (v > UINT32_MAX)
                BDS_RAISE(ErrorCode::InvalidConfig,
                          "machine spec: '" << key << "=" << value
                                            << "' is out of range");
            return static_cast<std::uint32_t>(v);
        };

        if (key == "cores")
            cfg.numCores = u32();
        else if (key == "l1i")
            cfg.l1i.sizeBytes = v;
        else if (key == "l1d")
            cfg.l1d.sizeBytes = v;
        else if (key == "l2")
            cfg.l2.sizeBytes = v;
        else if (key == "l3")
            cfg.l3.sizeBytes = v;
        else if (key == "l1i_assoc")
            cfg.l1i.assoc = u32();
        else if (key == "l1d_assoc")
            cfg.l1d.assoc = u32();
        else if (key == "l2_assoc")
            cfg.l2.assoc = u32();
        else if (key == "l3_assoc")
            cfg.l3.assoc = u32();
        else if (key == "line")
            cfg.l1i.lineBytes = cfg.l1d.lineBytes = cfg.l2.lineBytes =
                cfg.l3.lineBytes = u32();
        else if (key == "itlb")
            cfg.itlb.entries = u32();
        else if (key == "dtlb")
            cfg.dtlb.entries = u32();
        else if (key == "stlb")
            cfg.stlb.entries = u32();
        else if (key == "page")
            cfg.pageBytes = u32();
        else if (key == "history")
            cfg.historyBits = u32();
        else if (key == "lfb")
            cfg.lfbEntries = u32();
        else if (key == "issue")
            cfg.issueWidth = u32();
        else
            BDS_RAISE(ErrorCode::InvalidConfig,
                      "machine spec: unknown key '"
                          << key << "' (uarch/machine.h lists them)");
    }

    validateMachineConfig(cfg);
    return cfg;
}

void
validateMachineConfig(const NodeConfig &cfg)
{
    // The L3 snoop set tracks holders in a 64-bit mask, and the
    // cycle model assumes at least one core exists.
    if (cfg.numCores == 0 || cfg.numCores > 64)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: core count " << cfg.numCores
                                         << " outside 1..64");
    validateCache("l1i", cfg.l1i);
    validateCache("l1d", cfg.l1d);
    validateCache("l2", cfg.l2);
    validateCache("l3", cfg.l3);
    // Coherence passes byte addresses between levels; a per-level
    // line size would make "the line" ambiguous across them.
    if (cfg.l1i.lineBytes != cfg.l3.lineBytes
        || cfg.l1d.lineBytes != cfg.l3.lineBytes
        || cfg.l2.lineBytes != cfg.l3.lineBytes)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: all cache levels must share one line size");
    validateTlb("itlb", cfg.itlb);
    validateTlb("dtlb", cfg.dtlb);
    validateTlb("stlb", cfg.stlb);
    if (!isPow2(cfg.pageBytes) || cfg.pageBytes < cfg.l3.lineBytes)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: page size "
                      << cfg.pageBytes
                      << " must be a power of two >= the line size");
    if (cfg.issueWidth == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: issue width must be nonzero");
    if (cfg.lfbEntries == 0)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: line-fill buffer count must be nonzero");
    // 2^historyBits counter table: 24 bits is already a 16M-entry
    // predictor, far past anything the sweep needs.
    if (cfg.historyBits == 0 || cfg.historyBits > 24)
        BDS_RAISE(ErrorCode::InvalidConfig,
                  "machine: gshare history " << cfg.historyBits
                                             << " outside 1..24");
}

std::string
canonicalMachineText(const NodeConfig &cfg)
{
    // Fixed field order, integers in decimal, one space between
    // fields, no newline: this line is folded into the serve result
    // hash (serve/confighash.cc), so changing the rendering is a
    // config-hash schema break.
    auto cache = [](const CacheConfig &c) {
        std::ostringstream os;
        os << c.sizeBytes << '/' << c.assoc << '/' << c.lineBytes;
        return os.str();
    };
    auto tlb = [](const TlbConfig &t) {
        std::ostringstream os;
        os << t.entries << '/' << t.assoc;
        return os.str();
    };
    std::ostringstream os;
    os << "cores=" << cfg.numCores << " l1i=" << cache(cfg.l1i)
       << " l1d=" << cache(cfg.l1d) << " l2=" << cache(cfg.l2)
       << " l3=" << cache(cfg.l3) << " itlb=" << tlb(cfg.itlb)
       << " dtlb=" << tlb(cfg.dtlb) << " stlb=" << tlb(cfg.stlb)
       << " page=" << cfg.pageBytes << " lat=" << cfg.l2Latency << '/'
       << cfg.l3Latency << '/' << cfg.memLatency << '/'
       << cfg.c2cLatency << '/' << cfg.walkLatency << '/'
       << cfg.stlbHitPenalty << " branch=" << cfg.branchMissPenalty
       << " issue=" << cfg.issueWidth << " history=" << cfg.historyBits
       << " lfb=" << cfg.lfbEntries;
    return os.str();
}

bool
isDefaultMachine(const NodeConfig &cfg)
{
    static const std::string def =
        canonicalMachineText(NodeConfig::defaultSim());
    return canonicalMachineText(cfg) == def;
}

bool
isDefaultMachineSpec(const std::string &spec)
{
    if (spec.empty() || spec == "default")
        return true; // fast path: no resolve, no validation throw
    return isDefaultMachine(resolveMachineSpec(spec));
}

std::string
machineSlug(const std::string &spec)
{
    if (spec.empty())
        return "default";
    std::string out;
    for (char c : spec) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (std::isalnum(u))
            out += static_cast<char>(std::tolower(u));
        else if (!out.empty() && out.back() != '-')
            out += '-';
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "machine" : out;
}

std::string
describeMachine(const NodeConfig &cfg)
{
    auto kb = [](std::uint64_t bytes) {
        std::ostringstream os;
        if (bytes % (1024 * 1024) == 0)
            os << bytes / (1024 * 1024) << "M";
        else if (bytes % 1024 == 0)
            os << bytes / 1024 << "K";
        else
            os << bytes << "B";
        return os.str();
    };
    std::ostringstream os;
    os << cfg.numCores << " cores, L1 " << kb(cfg.l1i.sizeBytes) << "/"
       << kb(cfg.l1d.sizeBytes) << ", L2 " << kb(cfg.l2.sizeBytes)
       << ", L3 " << kb(cfg.l3.sizeBytes) << ", gshare "
       << cfg.historyBits << "b, issue " << cfg.issueWidth;
    return os.str();
}

} // namespace bds
