/**
 * @file
 * The machine model as a first-class, named axis.
 *
 * The paper characterizes its 32 workloads on exactly one machine
 * (Table III); the sequel tech report (arXiv:1506.07943) varies the
 * machine too, and that is where the architectural implications
 * live. This header turns NodeConfig from an implicit constant into
 * an explicit parameter: a registry of named presets (the Table III
 * default plus cache-size, associativity, core-count and predictor
 * variants), a strict spec parser ("westmere", "l3-4m", or
 * "default,l2=512k,cores=8"-style overrides), construction-time
 * geometry validation, and a canonical one-line rendering that the
 * serve layer folds into the content-addressed result hash so two
 * machines can never alias one store cell.
 *
 * Layering: lives in bds_uarch (needs NodeConfig) and raises typed
 * bds::Error (bds_fault). RunConfig carries the *spec string* only,
 * so bds_obs stays at the bottom of the stack; callers resolve it
 * here, mirroring ScaleProfile::byName().
 */

#ifndef BDS_UARCH_MACHINE_H
#define BDS_UARCH_MACHINE_H

#include <string>
#include <vector>

#include "uarch/config.h"

namespace bds {

/** One named machine geometry. */
struct MachinePreset
{
    std::string name;    ///< registry key ("default", "l3-4m", ...)
    std::string summary; ///< one-line human description
    NodeConfig config;   ///< the geometry itself (validated)
};

/**
 * The preset registry, in stable sweep order: `default` first, then
 * the paper machine, then the cache/core/predictor variants of the
 * tech report's sweep. The order is part of the serve wire format
 * (RequestRecord.machine indexes it), so presets are only ever
 * appended, never reordered.
 */
const std::vector<MachinePreset> &machinePresets();

/** Registry lookup; nullptr when `name` is not a preset. */
const MachinePreset *findMachinePreset(const std::string &name);

/** Registry lookup; raises Error(UnknownName) for unknown names. */
NodeConfig machineByName(const std::string &name);

/**
 * Index of a preset in machinePresets(); raises Error(UnknownName)
 * for non-preset names (override specs have no wire index).
 */
std::size_t machinePresetIndex(const std::string &name);

/**
 * Resolve a machine spec string into a validated NodeConfig.
 *
 * Grammar (comma-separated, no whitespace):
 *
 *   spec     := "" | preset | preset "," overrides | overrides
 *   override := key "=" value
 *
 * An empty spec or "default" is the Table III default; a spec that
 * starts with overrides applies them to the default. Keys ('-' and
 * '_' are interchangeable):
 *
 *   cores=N               core count (1..64)
 *   l1i= l1d= l2= l3=     cache capacity (suffix k/K, m/M, g/G)
 *   l1i_assoc= ... l3_assoc=  ways per set
 *   line=N                line size of every level (power of two)
 *   itlb= dtlb= stlb=     TLB entries
 *   page=N                page size (suffixes allowed)
 *   history=N             gshare history bits (1..24)
 *   lfb=N                 line-fill buffers per core
 *   issue=N               issue width (uops/cycle)
 *
 * Unknown presets are Error(UnknownName); unknown keys, malformed
 * values and invalid resulting geometry are Error(InvalidConfig) —
 * a typo never silently becomes the default machine.
 */
NodeConfig resolveMachineSpec(const std::string &spec);

/**
 * Reject impossible geometry with Error(InvalidConfig): zero or
 * >64 cores (the snoop-holder bitmask is 64 bits wide), non-power-
 * of-two line or page sizes, cache/TLB capacities that do not divide
 * into whole sets, pages smaller than a line, zero issue width or
 * fill buffers, or a degenerate/oversized gshare history.
 */
void validateMachineConfig(const NodeConfig &cfg);

/**
 * Canonical one-line rendering of a geometry (fixed field order, no
 * newline). Equal machines render identically whatever spec spelled
 * them, so this — not the spec string — is what confighash folds
 * into the result-store key.
 */
std::string canonicalMachineText(const NodeConfig &cfg);

/** True when `cfg` is exactly the Table III simulation default. */
bool isDefaultMachine(const NodeConfig &cfg);

/** True when `spec` resolves to the default machine. */
bool isDefaultMachineSpec(const std::string &spec);

/**
 * Filesystem-safe slug of a spec ("westmere,l2=512k" ->
 * "westmere-l2-512k") for artifact names.
 */
std::string machineSlug(const std::string &spec);

/** Human summary ("4 cores, L1 32K/32K, L2 256K, L3 12M, ..."). */
std::string describeMachine(const NodeConfig &cfg);

} // namespace bds

#endif // BDS_UARCH_MACHINE_H
