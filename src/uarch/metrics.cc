#include "uarch/metrics.h"

#include <algorithm>

#include "common/log.h"

namespace bds {

namespace {

struct MetricInfo
{
    const char *name;
    const char *description;
};

constexpr MetricInfo kInfo[kNumMetrics] = {
    {"LOAD", "load operations' percentage"},
    {"STORE", "store operations' percentage"},
    {"BRANCH", "branch operations' percentage"},
    {"INTEGER", "integer operations' percentage"},
    {"FP", "X87 floating point operations' percentage"},
    {"SSE FP", "SSE floating point operations' percentage"},
    {"KERNEL MODE", "ratio of instructions running in kernel mode"},
    {"USER MODE", "ratio of instructions running in user mode"},
    {"UOPS TO INS", "ratio of micro operations to instructions"},
    {"L1I MISS", "L1 instruction cache misses per K instructions"},
    {"L1I HIT", "L1 instruction cache hits per K instructions"},
    {"L2 MISS", "L2 cache misses per K instructions"},
    {"L2 HIT", "L2 cache hits per K instructions"},
    {"L3 MISS", "L3 cache misses per K instructions"},
    {"L3 HIT", "L3 cache hits per K instructions"},
    {"LOAD HIT LFB", "loads missing L1D hitting the line fill buffer "
                     "per K instructions"},
    {"LOAD HIT L2", "loads hitting the L2 cache per K instructions"},
    {"LOAD HIT SIBE", "loads hitting a sibling core's L2 per K "
                      "instructions"},
    {"LOAD HIT L3", "loads hitting unshared L3 lines per K instructions"},
    {"LOAD LLC MISS", "loads missing the L3 per K instructions"},
    {"ITLB MISS", "all-level instruction TLB misses per K instructions"},
    {"ITLB CYCLE", "instruction TLB walk cycles over total cycles"},
    {"DTLB MISS", "all-level data TLB misses per K instructions"},
    {"DTLB CYCLE", "data TLB walk cycles over total cycles"},
    {"DATA HIT STLB", "DTLB first-level misses hitting the STLB per K "
                      "instructions"},
    {"BR MISS", "branch misprediction ratio"},
    {"BR EXE TO RE", "executed to retired branch instruction ratio"},
    {"FETCH STALL", "instruction fetch stall cycles over total cycles"},
    {"ILD STALL", "instruction length decoder stall cycles over total"},
    {"DECODER STALL", "decoder stall cycles over total cycles"},
    {"RAT STALL", "register allocation table stall cycles over total"},
    {"RESOURCE STALL", "resource-related stall cycles over total"},
    {"UOPS EXE CYCLE", "cycles with micro-ops executed over total"},
    {"UOPS STALL", "cycles with no micro-op executed over total"},
    {"OFFCORE DATA", "share of offcore data requests"},
    {"OFFCORE CODE", "share of offcore code requests"},
    {"OFFCORE RFO", "share of offcore requests-for-ownership"},
    {"OFFCORE WB", "share of offcore data write-backs"},
    {"SNOOP HIT", "HIT snoop responses per K instructions"},
    {"SNOOP HITE", "HIT-Exclusive snoop responses per K instructions"},
    {"SNOOP HITM", "HIT-Modified snoop responses per K instructions"},
    {"ILP", "instruction level parallelism (IPC)"},
    {"MLP", "memory level parallelism"},
    {"INT TO MEM", "integer computation to memory access ratio"},
    {"FP TO MEM", "floating point computation to memory access ratio"},
};

double
safeDiv(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

} // namespace

const char *
metricName(Metric m)
{
    return metricName(static_cast<std::size_t>(m));
}

const char *
metricName(std::size_t idx)
{
    if (idx >= kNumMetrics)
        BDS_FATAL("metric index " << idx << " out of range");
    return kInfo[idx].name;
}

const char *
metricDescription(Metric m)
{
    return kInfo[static_cast<unsigned>(m)].description;
}

std::vector<std::string>
metricNames()
{
    std::vector<std::string> out;
    out.reserve(kNumMetrics);
    for (std::size_t i = 0; i < kNumMetrics; ++i)
        out.emplace_back(kInfo[i].name);
    return out;
}

MetricVector
extractMetrics(const PmcCounters &pmc)
{
    MetricVector v{};
    const double ins = static_cast<double>(pmc.instructions);
    const double per_k = ins > 0.0 ? 1000.0 / ins : 0.0;
    const double cyc = pmc.cycles;
    const double mem_acc =
        static_cast<double>(pmc.loadInstrs + pmc.storeInstrs);
    const double offcore = static_cast<double>(
        pmc.offcoreData + pmc.offcoreCode + pmc.offcoreRfo + pmc.offcoreWb);

    auto set = [&v](Metric m, double value) {
        v[static_cast<std::size_t>(m)] = value;
    };

    set(Metric::Load, safeDiv(pmc.loadInstrs, ins));
    set(Metric::Store, safeDiv(pmc.storeInstrs, ins));
    set(Metric::Branch, safeDiv(pmc.branchInstrs, ins));
    set(Metric::Integer, safeDiv(pmc.intInstrs, ins));
    set(Metric::FpX87, safeDiv(pmc.fpInstrs, ins));
    set(Metric::SseFp, safeDiv(pmc.sseInstrs, ins));
    set(Metric::KernelMode, safeDiv(pmc.kernelInstrs, ins));
    set(Metric::UserMode, safeDiv(pmc.userInstrs, ins));
    set(Metric::UopsToIns, safeDiv(pmc.uops, ins));

    set(Metric::L1iMiss, pmc.l1iMisses * per_k);
    set(Metric::L1iHit, pmc.l1iHits * per_k);
    set(Metric::L2Miss, pmc.l2Misses * per_k);
    set(Metric::L2Hit, pmc.l2Hits * per_k);
    set(Metric::L3Miss, pmc.l3Misses * per_k);
    set(Metric::L3Hit, pmc.l3Hits * per_k);

    set(Metric::LoadHitLfb, pmc.loadHitLfb * per_k);
    set(Metric::LoadHitL2, pmc.loadHitL2 * per_k);
    set(Metric::LoadHitSibe, pmc.loadHitSibling * per_k);
    set(Metric::LoadHitL3, pmc.loadHitL3Unshared * per_k);
    set(Metric::LoadLlcMiss, pmc.loadLlcMiss * per_k);

    set(Metric::ItlbMiss, pmc.itlbWalks * per_k);
    set(Metric::ItlbCycle, safeDiv(pmc.itlbWalkCycles, cyc));
    set(Metric::DtlbMiss, pmc.dtlbWalks * per_k);
    set(Metric::DtlbCycle, safeDiv(pmc.dtlbWalkCycles, cyc));
    set(Metric::DataHitStlb, pmc.dataHitStlb * per_k);

    set(Metric::BrMiss,
        safeDiv(pmc.branchesMispredicted, pmc.branchesRetired));
    set(Metric::BrExeToRe,
        safeDiv(pmc.branchesExecuted, pmc.branchesRetired));

    set(Metric::FetchStall, safeDiv(pmc.fetchStallCycles, cyc));
    set(Metric::IldStall, safeDiv(pmc.ildStallCycles, cyc));
    set(Metric::DecoderStall, safeDiv(pmc.decoderStallCycles, cyc));
    set(Metric::RatStall, safeDiv(pmc.ratStallCycles, cyc));
    set(Metric::ResourceStall, safeDiv(pmc.resourceStallCycles, cyc));

    double exe = safeDiv(pmc.uopsExecutedCycles, cyc);
    set(Metric::UopsExeCycle, exe);
    set(Metric::UopsStall, std::max(0.0, 1.0 - exe));

    set(Metric::OffcoreData, safeDiv(pmc.offcoreData, offcore));
    set(Metric::OffcoreCode, safeDiv(pmc.offcoreCode, offcore));
    set(Metric::OffcoreRfo, safeDiv(pmc.offcoreRfo, offcore));
    set(Metric::OffcoreWb, safeDiv(pmc.offcoreWb, offcore));

    set(Metric::SnoopHit, pmc.snoopHit * per_k);
    set(Metric::SnoopHitE, pmc.snoopHitE * per_k);
    set(Metric::SnoopHitM, pmc.snoopHitM * per_k);

    set(Metric::Ilp, safeDiv(ins, cyc));
    set(Metric::Mlp,
        pmc.mlpSamples > 0
            ? pmc.mlpSum / static_cast<double>(pmc.mlpSamples)
            : 1.0);

    set(Metric::IntToMem, safeDiv(pmc.intInstrs, mem_acc));
    set(Metric::FpToMem,
        safeDiv(static_cast<double>(pmc.fpInstrs + pmc.sseInstrs),
                mem_acc));
    return v;
}

} // namespace bds
