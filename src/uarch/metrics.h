/**
 * @file
 * The 45 microarchitecture-level metrics of the paper's Table II,
 * derived from raw PmcCounters.
 *
 * Metric order matches Table II exactly (index = table number - 1),
 * so factor-loading output lines up with the paper's Figure 4.
 * Ratios are expressed as fractions (not x100 percentages); PCA is
 * scale-invariant after z-scoring, so only relative values matter.
 */

#ifndef BDS_UARCH_METRICS_H
#define BDS_UARCH_METRICS_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "uarch/pmc.h"

namespace bds {

/** Number of Table II metrics. */
constexpr std::size_t kNumMetrics = 45;

/** Table II metric identifiers (index = table number - 1). */
enum class Metric : unsigned
{
    Load = 0,     ///< 1: load instruction share
    Store,        ///< 2: store instruction share
    Branch,       ///< 3: branch instruction share
    Integer,      ///< 4: integer instruction share
    FpX87,        ///< 5: x87 FP instruction share
    SseFp,        ///< 6: SSE FP instruction share
    KernelMode,   ///< 7: kernel-mode instruction ratio
    UserMode,     ///< 8: user-mode instruction ratio
    UopsToIns,    ///< 9: uops per instruction
    L1iMiss,      ///< 10: L1I misses per K instructions
    L1iHit,       ///< 11: L1I hits per K instructions
    L2Miss,       ///< 12: L2 misses per K instructions
    L2Hit,        ///< 13: L2 hits per K instructions
    L3Miss,       ///< 14: L3 misses per K instructions
    L3Hit,        ///< 15: L3 hits per K instructions
    LoadHitLfb,   ///< 16: loads merged into the LFB per K instructions
    LoadHitL2,    ///< 17: loads hitting own L2 per K instructions
    LoadHitSibe,  ///< 18: loads hitting a sibling L2 per K instructions
    LoadHitL3,    ///< 19: loads hitting unshared L3 lines per K instrs
    LoadLlcMiss,  ///< 20: loads missing the L3 per K instructions
    ItlbMiss,     ///< 21: ITLB all-level misses per K instructions
    ItlbCycle,    ///< 22: ITLB walk cycle share
    DtlbMiss,     ///< 23: DTLB all-level misses per K instructions
    DtlbCycle,    ///< 24: DTLB walk cycle share
    DataHitStlb,  ///< 25: DTLB L1 misses hitting STLB per K instrs
    BrMiss,       ///< 26: branch misprediction ratio
    BrExeToRe,    ///< 27: executed-to-retired branch ratio
    FetchStall,   ///< 28: instruction fetch stall cycle share
    IldStall,     ///< 29: instruction length decoder stall share
    DecoderStall, ///< 30: decoder stall cycle share
    RatStall,     ///< 31: register allocation table stall share
    ResourceStall,///< 32: resource-related stall cycle share
    UopsExeCycle, ///< 33: cycles with uops executing, share
    UopsStall,    ///< 34: cycles with no uop executed, share
    OffcoreData,  ///< 35: offcore data request share
    OffcoreCode,  ///< 36: offcore code request share
    OffcoreRfo,   ///< 37: offcore RFO request share
    OffcoreWb,    ///< 38: offcore write-back share
    SnoopHit,     ///< 39: HIT snoop responses per K instructions
    SnoopHitE,    ///< 40: HIT-E snoop responses per K instructions
    SnoopHitM,    ///< 41: HIT-M snoop responses per K instructions
    Ilp,          ///< 42: instructions per cycle
    Mlp,          ///< 43: mean outstanding-miss overlap
    IntToMem,     ///< 44: integer ops per memory access
    FpToMem,      ///< 45: FP ops per memory access
};

/** All metrics in Table II order. */
using MetricVector = std::array<double, kNumMetrics>;

/** Short metric name as printed in the paper ("L3 MISS", ...). */
const char *metricName(Metric m);

/** Short metric name by index. */
const char *metricName(std::size_t idx);

/** One-line description (Table II's right column). */
const char *metricDescription(Metric m);

/** All 45 names in order. */
std::vector<std::string> metricNames();

/** Derive the 45 metrics from raw counters. */
MetricVector extractMetrics(const PmcCounters &pmc);

} // namespace bds

#endif // BDS_UARCH_METRICS_H
