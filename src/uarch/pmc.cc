#include "uarch/pmc.h"

#include <algorithm>
#include <cmath>

#include "fault/error.h"
#include "uarch/pmc_fields.h"

namespace bds {

std::array<double, PmcCounters::kNumFields>
PmcCounters::toArray() const
{
    std::array<double, kNumFields> out{};
    std::size_t i = 0;
#define BDS_PMC_U(f) out[i++] = static_cast<double>(f);
#define BDS_PMC_D(f) out[i++] = f;
    BDS_PMC_FIELDS(BDS_PMC_U, BDS_PMC_D)
#undef BDS_PMC_U
#undef BDS_PMC_D
    static_assert(kNumFields == 45, "field count drifted");
    return out;
}

PmcCounters
PmcCounters::fromArray(const std::array<double, kNumFields> &v)
{
    PmcCounters out;
    std::size_t i = 0;
#define BDS_PMC_U(f)                                                  \
    out.f = static_cast<std::uint64_t>(                               \
        std::llround(std::max(0.0, v[i++])));
#define BDS_PMC_D(f) out.f = v[i++];
    BDS_PMC_FIELDS(BDS_PMC_U, BDS_PMC_D)
#undef BDS_PMC_U
#undef BDS_PMC_D
    return out;
}

PmcCounters &
PmcCounters::operator+=(const PmcCounters &rhs)
{
    instructions += rhs.instructions;
    uops += rhs.uops;
    cycles += rhs.cycles;
    loadInstrs += rhs.loadInstrs;
    storeInstrs += rhs.storeInstrs;
    branchInstrs += rhs.branchInstrs;
    intInstrs += rhs.intInstrs;
    fpInstrs += rhs.fpInstrs;
    sseInstrs += rhs.sseInstrs;
    kernelInstrs += rhs.kernelInstrs;
    userInstrs += rhs.userInstrs;
    l1iHits += rhs.l1iHits;
    l1iMisses += rhs.l1iMisses;
    l2Hits += rhs.l2Hits;
    l2Misses += rhs.l2Misses;
    l3Hits += rhs.l3Hits;
    l3Misses += rhs.l3Misses;
    loadHitLfb += rhs.loadHitLfb;
    loadHitL2 += rhs.loadHitL2;
    loadHitSibling += rhs.loadHitSibling;
    loadHitL3Unshared += rhs.loadHitL3Unshared;
    loadLlcMiss += rhs.loadLlcMiss;
    itlbWalks += rhs.itlbWalks;
    itlbWalkCycles += rhs.itlbWalkCycles;
    dtlbWalks += rhs.dtlbWalks;
    dtlbWalkCycles += rhs.dtlbWalkCycles;
    dataHitStlb += rhs.dataHitStlb;
    branchesRetired += rhs.branchesRetired;
    branchesMispredicted += rhs.branchesMispredicted;
    branchesExecuted += rhs.branchesExecuted;
    fetchStallCycles += rhs.fetchStallCycles;
    ildStallCycles += rhs.ildStallCycles;
    decoderStallCycles += rhs.decoderStallCycles;
    ratStallCycles += rhs.ratStallCycles;
    resourceStallCycles += rhs.resourceStallCycles;
    uopsExecutedCycles += rhs.uopsExecutedCycles;
    offcoreData += rhs.offcoreData;
    offcoreCode += rhs.offcoreCode;
    offcoreRfo += rhs.offcoreRfo;
    offcoreWb += rhs.offcoreWb;
    snoopHit += rhs.snoopHit;
    snoopHitE += rhs.snoopHitE;
    snoopHitM += rhs.snoopHitM;
    mlpSum += rhs.mlpSum;
    mlpSamples += rhs.mlpSamples;
    return *this;
}

void
PmcCounters::saveState(StateSink &sink) const
{
    sink.section("PMCS");
    sink.u32(kNumFields);
#define BDS_PMC_U(f) sink.u64(f);
#define BDS_PMC_D(f) sink.f64(f);
    BDS_PMC_FIELDS(BDS_PMC_U, BDS_PMC_D)
#undef BDS_PMC_U
#undef BDS_PMC_D
}

void
PmcCounters::loadState(StateSource &src)
{
    src.section("PMCS");
    std::uint32_t fields = src.u32();
    if (fields != kNumFields)
        BDS_RAISE(ErrorCode::Io,
                  "PMC state carries " << fields
                      << " fields, expected " << kNumFields
                      << " (schema drift)");
#define BDS_PMC_U(f) f = src.u64();
#define BDS_PMC_D(f) f = src.f64();
    BDS_PMC_FIELDS(BDS_PMC_U, BDS_PMC_D)
#undef BDS_PMC_U
#undef BDS_PMC_D
}

} // namespace bds
