/**
 * @file
 * Performance-monitoring counters: the raw event counts the simulator
 * accumulates, standing in for the MSR-programmed PMCs the paper
 * reads with perf. The 45 Table II metrics are derived from these by
 * metrics.h.
 */

#ifndef BDS_UARCH_PMC_H
#define BDS_UARCH_PMC_H

#include <array>
#include <cstdint>

#include "ckpt/state.h"

namespace bds {

/** Raw hardware-event counts for one core (or aggregated). */
struct PmcCounters
{
    // Retirement
    std::uint64_t instructions = 0; ///< macro-instructions retired
    std::uint64_t uops = 0;         ///< micro-ops retired
    double cycles = 0.0;            ///< core cycles (accounting model)

    // Instruction mix (by leading uop of each instruction)
    std::uint64_t loadInstrs = 0;
    std::uint64_t storeInstrs = 0;
    std::uint64_t branchInstrs = 0;
    std::uint64_t intInstrs = 0;
    std::uint64_t fpInstrs = 0;
    std::uint64_t sseInstrs = 0;
    std::uint64_t kernelInstrs = 0;
    std::uint64_t userInstrs = 0;

    // L1 instruction cache
    std::uint64_t l1iHits = 0;
    std::uint64_t l1iMisses = 0;

    // Unified private L2 (code + data)
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;

    // Shared L3
    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;

    // Load data-source breakdown
    std::uint64_t loadHitLfb = 0;        ///< L1D miss merged into LFB
    std::uint64_t loadHitL2 = 0;         ///< load served by own L2
    std::uint64_t loadHitSibling = 0;    ///< served by a sibling's L2
    std::uint64_t loadHitL3Unshared = 0; ///< L3 hit on unshared line
    std::uint64_t loadLlcMiss = 0;       ///< load missed the L3

    // TLBs
    std::uint64_t itlbWalks = 0;     ///< ITLB misses in all levels
    double itlbWalkCycles = 0.0;     ///< cycles spent in ITLB walks
    std::uint64_t dtlbWalks = 0;     ///< DTLB misses in all levels
    double dtlbWalkCycles = 0.0;     ///< cycles spent in DTLB walks
    std::uint64_t dataHitStlb = 0;   ///< L1 DTLB misses that hit STLB

    // Branches
    std::uint64_t branchesRetired = 0;
    std::uint64_t branchesMispredicted = 0;
    std::uint64_t branchesExecuted = 0; ///< includes wrong-path

    // Stall cycle buckets (accounting model)
    double fetchStallCycles = 0.0;
    double ildStallCycles = 0.0;
    double decoderStallCycles = 0.0;
    double ratStallCycles = 0.0;
    double resourceStallCycles = 0.0;
    double uopsExecutedCycles = 0.0; ///< cycles with >= 1 uop issued

    // Offcore requests (from this core toward the uncore)
    std::uint64_t offcoreData = 0;
    std::uint64_t offcoreCode = 0;
    std::uint64_t offcoreRfo = 0;
    std::uint64_t offcoreWb = 0;

    // Snoop responses this core's requests received
    std::uint64_t snoopHit = 0;
    std::uint64_t snoopHitE = 0;
    std::uint64_t snoopHitM = 0;

    // Parallelism
    double mlpSum = 0.0;           ///< sum of overlap degree per miss
    std::uint64_t mlpSamples = 0;  ///< number of LLC misses sampled

    /** Number of counter fields (toArray()/fromArray() length). */
    static constexpr std::size_t kNumFields = 45;

    /**
     * Flatten into a fixed-order double vector — the representation
     * the sampling estimator does weighted arithmetic on. Field
     * order matches the declaration order above.
     */
    std::array<double, kNumFields> toArray() const;

    /**
     * Rebuild counters from a toArray()-ordered vector. Integral
     * fields are rounded to the nearest count, so estimates built
     * from weighted sums come back as plausible event counts.
     */
    static PmcCounters fromArray(const std::array<double, kNumFields> &v);

    /** Element-wise accumulate (for aggregating cores). */
    PmcCounters &operator+=(const PmcCounters &rhs);

    /**
     * Serialize all kNumFields counters in declaration order.
     * Integral fields travel as u64 and cycle fields as f64 bit
     * patterns, so the round trip is exact (toArray() is not: it
     * narrows u64 counts into doubles).
     */
    void saveState(StateSink &sink) const;

    /** Restore a saveState() payload; Error(Io) on any mismatch. */
    void loadState(StateSource &src);
};

} // namespace bds

#endif // BDS_UARCH_PMC_H
