/**
 * @file
 * X-macro listing every PmcCounters field in declaration order — the
 * single source of truth for the counter flattening
 * (PmcCounters::toArray()/fromArray(), src/uarch/pmc.cc) and for the
 * metric schema's CounterField accessors (src/metrics/schema.h).
 *
 * U(field) marks integral counters (rounded on fromArray()), D(field)
 * the double-valued accounting fields. Adding a counter means adding
 * one line here plus the struct member in pmc.h; every consumer picks
 * it up by expansion.
 */

#ifndef BDS_UARCH_PMC_FIELDS_H
#define BDS_UARCH_PMC_FIELDS_H

#define BDS_PMC_FIELDS(U, D)                                          \
    U(instructions) U(uops) D(cycles)                                 \
    U(loadInstrs) U(storeInstrs) U(branchInstrs) U(intInstrs)         \
    U(fpInstrs) U(sseInstrs) U(kernelInstrs) U(userInstrs)            \
    U(l1iHits) U(l1iMisses) U(l2Hits) U(l2Misses)                     \
    U(l3Hits) U(l3Misses)                                             \
    U(loadHitLfb) U(loadHitL2) U(loadHitSibling)                      \
    U(loadHitL3Unshared) U(loadLlcMiss)                               \
    U(itlbWalks) D(itlbWalkCycles) U(dtlbWalks) D(dtlbWalkCycles)     \
    U(dataHitStlb)                                                    \
    U(branchesRetired) U(branchesMispredicted) U(branchesExecuted)    \
    D(fetchStallCycles) D(ildStallCycles) D(decoderStallCycles)       \
    D(ratStallCycles) D(resourceStallCycles) D(uopsExecutedCycles)    \
    U(offcoreData) U(offcoreCode) U(offcoreRfo) U(offcoreWb)          \
    U(snoopHit) U(snoopHitE) U(snoopHitM)                             \
    D(mlpSum) U(mlpSamples)

#endif // BDS_UARCH_PMC_FIELDS_H
