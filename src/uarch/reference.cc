#include "uarch/reference.h"

#include "common/log.h"

namespace bds::refmodel {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPow2(cfg_.lineBytes))
        BDS_FATAL("line size must be a power of two");
    if (cfg_.assoc == 0 || cfg_.sizeBytes == 0)
        BDS_FATAL("cache must have nonzero size and associativity");
    std::uint64_t lines = cfg_.sizeBytes / cfg_.lineBytes;
    if (lines == 0 || lines % cfg_.assoc != 0)
        BDS_FATAL("cache geometry does not divide evenly: " << lines
                  << " lines, " << cfg_.assoc << " ways");
    numSets_ = lines / cfg_.assoc;
    lines_.resize(lines);
}

int
SetAssocCache::findWay(std::uint64_t set, std::uint64_t tag) const
{
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        const Line &l = lineAt(set, w);
        if (l.state != CoherenceState::Invalid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

CacheLookup
SetAssocCache::probe(std::uint64_t addr) const
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return {};
    return {true, lineAt(set, static_cast<std::uint32_t>(w)).state};
}

CacheLookup
SetAssocCache::access(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return {};
    Line &l = lineAt(set, static_cast<std::uint32_t>(w));
    l.lru = ++tick_;
    return {true, l.state};
}

Eviction
SetAssocCache::insert(std::uint64_t addr, CoherenceState state,
                      bool dirty)
{
    if (state == CoherenceState::Invalid)
        BDS_FATAL("cannot insert an Invalid line");
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    if (findWay(set, la) >= 0)
        BDS_FATAL("inserting line already present: 0x" << std::hex << la);

    // Prefer an invalid way; otherwise evict true-LRU.
    std::uint32_t victim = 0;
    bool found_invalid = false;
    std::uint64_t oldest = UINT64_MAX;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &l = lineAt(set, w);
        if (l.state == CoherenceState::Invalid) {
            victim = w;
            found_invalid = true;
            break;
        }
        if (l.lru < oldest) {
            oldest = l.lru;
            victim = w;
        }
    }

    Eviction ev;
    Line &l = lineAt(set, victim);
    if (!found_invalid) {
        ev.valid = true;
        ev.lineAddr = l.tag;
        ev.dirty = l.dirty;
    }
    l.tag = la;
    l.state = state;
    l.dirty = dirty;
    l.sharedEver = false;
    l.lru = ++tick_;
    return ev;
}

Eviction
SetAssocCache::insertOrSetState(std::uint64_t addr, CoherenceState state)
{
    // Definition of the flat model's combined op: a probe followed by
    // either setState (present; LRU untouched) or insert (absent).
    if (probe(addr).hit) {
        setState(addr, state);
        return {};
    }
    return insert(addr, state);
}

void
SetAssocCache::setState(std::uint64_t addr, CoherenceState state)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        BDS_FATAL("setState on absent line 0x" << std::hex << la);
    if (state == CoherenceState::Invalid)
        BDS_FATAL("use invalidate() to drop a line");
    lineAt(set, static_cast<std::uint32_t>(w)).state = state;
}

void
SetAssocCache::setStateDirty(std::uint64_t addr, CoherenceState state)
{
    setState(addr, state);
    setDirty(addr);
}

bool
SetAssocCache::setStateIfPresent(std::uint64_t addr, CoherenceState state)
{
    if (!probe(addr).hit)
        return false;
    setState(addr, state);
    return true;
}

void
SetAssocCache::setDirty(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        BDS_FATAL("setDirty on absent line 0x" << std::hex << la);
    lineAt(set, static_cast<std::uint32_t>(w)).dirty = true;
}

bool
SetAssocCache::setDirtyIfPresent(std::uint64_t addr)
{
    if (!probe(addr).hit)
        return false;
    setDirty(addr);
    return true;
}

void
SetAssocCache::markShared(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        BDS_FATAL("markShared on absent line 0x" << std::hex << la);
    lineAt(set, static_cast<std::uint32_t>(w)).sharedEver = true;
}

bool
SetAssocCache::markSharedIfPresent(std::uint64_t addr, bool also_dirty)
{
    if (!probe(addr).hit)
        return false;
    markShared(addr);
    if (also_dirty)
        setDirty(addr);
    return true;
}

bool
SetAssocCache::isMarkedShared(std::uint64_t addr) const
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return false;
    return lineAt(set, static_cast<std::uint32_t>(w)).sharedEver;
}

bool
SetAssocCache::invalidate(std::uint64_t addr)
{
    std::uint64_t la = lineAddr(addr);
    std::uint64_t set = la % numSets_;
    int w = findWay(set, la);
    if (w < 0)
        return false;
    Line &l = lineAt(set, static_cast<std::uint32_t>(w));
    bool dirty = l.dirty;
    l.state = CoherenceState::Invalid;
    l.dirty = false;
    l.sharedEver = false;
    return dirty;
}

void
SetAssocCache::forEachLine(
    const std::function<void(std::uint64_t, CoherenceState, bool)> &fn)
    const
{
    for (const Line &l : lines_)
        if (l.state != CoherenceState::Invalid)
            fn(l.tag, l.state, l.dirty);
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t n = 0;
    for (const Line &l : lines_)
        if (l.state != CoherenceState::Invalid)
            ++n;
    return n;
}

TlbArray::TlbArray(const TlbConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.entries == 0 || cfg_.assoc == 0 ||
        cfg_.entries % cfg_.assoc != 0)
        BDS_FATAL("TLB geometry does not divide evenly");
    numSets_ = cfg_.entries / cfg_.assoc;
    entries_.resize(cfg_.entries);
}

bool
TlbArray::access(std::uint64_t page)
{
    std::uint32_t set = static_cast<std::uint32_t>(page % numSets_);
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Entry &e = entries_[set * cfg_.assoc + w];
        if (e.valid && e.page == page) {
            e.lru = ++tick_;
            return true;
        }
    }
    return false;
}

void
TlbArray::insert(std::uint64_t page)
{
    std::uint32_t set = static_cast<std::uint32_t>(page % numSets_);
    std::uint32_t victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        Entry &e = entries_[set * cfg_.assoc + w];
        if (!e.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (e.lru < oldest) {
            oldest = e.lru;
            victim = w;
        }
    }
    Entry &e = entries_[set * cfg_.assoc + victim];
    e.page = page;
    e.valid = true;
    e.lru = ++tick_;
}

TwoLevelTlb::TwoLevelTlb(const TlbConfig &l1i, const TlbConfig &l1d,
                         const TlbConfig &stlb, std::uint32_t page_bytes)
    : pageShift_(0), itlb_(l1i), dtlb_(l1d), stlb_(stlb)
{
    if (page_bytes == 0 || (page_bytes & (page_bytes - 1)) != 0)
        BDS_FATAL("page size must be a power of two");
    while ((1u << pageShift_) < page_bytes)
        ++pageShift_;
}

TlbOutcome
TwoLevelTlb::translate(TlbArray &l1, std::uint64_t addr)
{
    std::uint64_t page = addr >> pageShift_;
    if (l1.access(page))
        return TlbOutcome::L1Hit;
    if (stlb_.access(page)) {
        l1.insert(page);
        return TlbOutcome::StlbHit;
    }
    stlb_.insert(page);
    l1.insert(page);
    return TlbOutcome::Walk;
}

TlbOutcome
TwoLevelTlb::translateCode(std::uint64_t addr)
{
    return translate(itlb_, addr);
}

TlbOutcome
TwoLevelTlb::translateData(std::uint64_t addr)
{
    return translate(dtlb_, addr);
}

GshareBranchPredictor::GshareBranchPredictor(unsigned history_bits)
    : historyBits_(history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        BDS_FATAL("gshare history bits must be in [1, 24]");
    table_.assign(1u << history_bits, 2); // weakly taken
}

bool
GshareBranchPredictor::predictAndTrain(std::uint64_t ip, bool taken)
{
    std::uint32_t mask = (1u << historyBits_) - 1;
    std::uint32_t idx =
        (static_cast<std::uint32_t>(ip >> 2) ^ history_) & mask;
    std::uint8_t &ctr = table_[idx];
    bool prediction = ctr >= 2;
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & mask;
    return prediction == taken;
}

} // namespace bds::refmodel
