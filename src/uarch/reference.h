/**
 * @file
 * Reference (pre-flattening) implementations of the hot lookup
 * structures: array-of-structs cache, TLB arrays, and the gshare
 * predictor, kept verbatim from before the structure-of-arrays
 * rewrite of cache.h/tlb.h/branch.h.
 *
 * These exist for two consumers and are deliberately NOT used by the
 * simulator itself:
 *  - tests/uarch/test_flat_equivalence.cc drives both models with
 *    identical operation streams and requires bit-identical observable
 *    behavior (hits, states, evictions, LRU victim choice);
 *  - bench/uarch_speed.cc measures the flat model's per-structure
 *    speedup against these as the "before" side.
 *
 * The flat model grew combined one-scan operations (insertOrSetState,
 * setStateDirty, markSharedIfPresent, ...). The reference expresses
 * each one as the exact primitive sequence it replaced, so the
 * equivalence test pins the combined op against its definition.
 */

#ifndef BDS_UARCH_REFERENCE_H
#define BDS_UARCH_REFERENCE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "uarch/branch.h"
#include "uarch/cache.h"
#include "uarch/tlb.h"

namespace bds::refmodel {

/** Array-of-structs set-associative cache (the seed implementation). */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg);

    CacheLookup probe(std::uint64_t addr) const;
    CacheLookup access(std::uint64_t addr);
    Eviction insert(std::uint64_t addr, CoherenceState state,
                    bool dirty = false);
    Eviction insertOrSetState(std::uint64_t addr, CoherenceState state);
    void setState(std::uint64_t addr, CoherenceState state);
    void setStateDirty(std::uint64_t addr, CoherenceState state);
    bool setStateIfPresent(std::uint64_t addr, CoherenceState state);
    void setDirty(std::uint64_t addr);
    bool setDirtyIfPresent(std::uint64_t addr);
    void markShared(std::uint64_t addr);
    bool markSharedIfPresent(std::uint64_t addr, bool also_dirty = false);
    bool isMarkedShared(std::uint64_t addr) const;
    bool invalidate(std::uint64_t addr);
    std::uint64_t validLines() const;
    void forEachLine(
        const std::function<void(std::uint64_t, CoherenceState, bool)>
            &fn) const;
    const CacheConfig &config() const { return cfg_; }

    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr / cfg_.lineBytes;
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        CoherenceState state = CoherenceState::Invalid;
        bool dirty = false;
        bool sharedEver = false;
    };

    int findWay(std::uint64_t set, std::uint64_t tag) const;

    Line &lineAt(std::uint64_t set, std::uint32_t way)
    {
        return lines_[set * cfg_.assoc + way];
    }

    const Line &lineAt(std::uint64_t set, std::uint32_t way) const
    {
        return lines_[set * cfg_.assoc + way];
    }

    CacheConfig cfg_;
    std::uint64_t numSets_;
    std::uint64_t tick_ = 0;
    std::vector<Line> lines_;
};

/** Valid-flag TLB level (the seed implementation). */
class TlbArray
{
  public:
    explicit TlbArray(const TlbConfig &cfg);

    bool access(std::uint64_t page);
    void insert(std::uint64_t page);

  private:
    struct Entry
    {
        std::uint64_t page = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    TlbConfig cfg_;
    std::uint32_t numSets_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;
};

/** Two-level TLB over the reference arrays. */
class TwoLevelTlb
{
  public:
    TwoLevelTlb(const TlbConfig &l1i, const TlbConfig &l1d,
                const TlbConfig &stlb, std::uint32_t page_bytes = 4096);

    TlbOutcome translateCode(std::uint64_t addr);
    TlbOutcome translateData(std::uint64_t addr);

  private:
    TlbOutcome translate(TlbArray &l1, std::uint64_t addr);

    std::uint32_t pageShift_;
    TlbArray itlb_;
    TlbArray dtlb_;
    TlbArray stlb_;
};

/** Gshare predictor recomputing the index mask per branch (seed). */
class GshareBranchPredictor
{
  public:
    explicit GshareBranchPredictor(unsigned history_bits = 12);

    bool predictAndTrain(std::uint64_t ip, bool taken);

  private:
    unsigned historyBits_;
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> table_;
};

} // namespace bds::refmodel

#endif // BDS_UARCH_REFERENCE_H
