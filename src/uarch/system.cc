#include "uarch/system.h"

#include <map>

#include "common/log.h"

namespace bds {

SystemModel::SystemModel(const NodeConfig &cfg)
    : cfg_(cfg), l3_(cfg.l3), invIssueWidth_(1.0 / cfg.issueWidth)
{
    if (cfg_.numCores == 0)
        BDS_FATAL("node needs at least one core");
    for (unsigned i = 0; i < cfg_.numCores; ++i)
        cores_.push_back(std::make_unique<CoreModel>(cfg_));
}

const PmcCounters &
SystemModel::coreCounters(unsigned core) const
{
    if (core >= cores_.size())
        BDS_FATAL("core index " << core << " out of range");
    return cores_[core]->pmc;
}

CoreModel &
SystemModel::core(unsigned idx)
{
    if (idx >= cores_.size())
        BDS_FATAL("core index " << idx << " out of range");
    return *cores_[idx];
}

PmcCounters
SystemModel::aggregateCounters() const
{
    PmcCounters total;
    for (const auto &c : cores_)
        total += c->pmc;
    return total;
}

void
SystemModel::resetCounters()
{
    for (auto &c : cores_)
        c->pmc = PmcCounters{};
}

void
SystemModel::checkInvariants() const
{
    auto rank = [](CoherenceState s) {
        switch (s) {
          case CoherenceState::Modified: return 3;
          case CoherenceState::Exclusive: return 2;
          case CoherenceState::Shared: return 1;
          default: return 0;
        }
    };

    // Line -> (owner core, strongest L2 state) over all cores.
    std::map<std::uint64_t, std::pair<unsigned, CoherenceState>> owners;
    for (unsigned c = 0; c < cores_.size(); ++c) {
        cores_[c]->l2.forEachLine(
            [&](std::uint64_t la, CoherenceState s, bool) {
                auto it = owners.find(la);
                if (it == owners.end()) {
                    owners.emplace(la, std::make_pair(c, s));
                    return;
                }
                // Two holders: neither may be Modified/Exclusive.
                if (rank(s) >= 2 || rank(it->second.second) >= 2)
                    BDS_PANIC("line 0x" << std::hex << la << std::dec
                              << " held by cores " << it->second.first
                              << " and " << c
                              << " with an exclusive state");
            });
    }

    // Inclusion: every L1 line is backed by the same core's L2.
    for (unsigned c = 0; c < cores_.size(); ++c) {
        auto check_l1 = [&](const SetAssocCache &l1, const char *which) {
            l1.forEachLine([&](std::uint64_t la, CoherenceState s,
                               bool) {
                std::uint64_t addr = la * cfg_.l2.lineBytes;
                CacheLookup in_l2 = cores_[c]->l2.probe(addr);
                if (!in_l2.hit)
                    BDS_PANIC("core " << c << ' ' << which
                              << " holds line 0x" << std::hex << la
                              << std::dec << " absent from its L2");
                if (rank(s) > rank(in_l2.state))
                    BDS_PANIC("core " << c << ' ' << which
                              << " state exceeds L2 state for line 0x"
                              << std::hex << la);
            });
        };
        check_l1(cores_[c]->l1d, "L1D");
        check_l1(cores_[c]->l1i, "L1I");
    }
}

void
SystemModel::dmaFill(std::uint64_t addr, std::uint64_t bytes)
{
    if (recorder_)
        recorder_->recordDma(addr, bytes);
    std::uint64_t line_bytes = cfg_.l3.lineBytes;
    std::uint64_t first = addr / line_bytes;
    std::uint64_t last = (addr + bytes + line_bytes - 1) / line_bytes;
    for (std::uint64_t la = first; la < last; ++la) {
        std::uint64_t a = la * line_bytes;
        for (auto &c : cores_) {
            c->l1d.invalidate(a);
            c->l1i.invalidate(a);
            c->l2.invalidate(a);
        }
        l3_.invalidate(a);
    }
}

SystemModel::SnoopResult
SystemModel::snoop(unsigned requester, std::uint64_t addr) const
{
    SnoopResult best;
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == requester)
            continue;
        CacheLookup look = cores_[i]->l2.probe(addr);
        if (!look.hit)
            continue;
        // Severity order: Modified > Exclusive > Shared.
        auto rank = [](CoherenceState s) {
            switch (s) {
              case CoherenceState::Modified: return 3;
              case CoherenceState::Exclusive: return 2;
              case CoherenceState::Shared: return 1;
              default: return 0;
            }
        };
        if (rank(look.state) > rank(best.state)) {
            best.state = look.state;
            best.owner = static_cast<int>(i);
        }
    }
    return best;
}

void
SystemModel::settleSnoop(unsigned requester, std::uint64_t addr,
                         const SnoopResult &sr, bool for_ownership)
{
    PmcCounters &pmc = counters(requester);
    switch (sr.state) {
      case CoherenceState::Modified:
        ++pmc.snoopHitM;
        break;
      case CoherenceState::Exclusive:
        ++pmc.snoopHitE;
        break;
      case CoherenceState::Shared:
        ++pmc.snoopHit;
        break;
      case CoherenceState::Invalid:
        return;
    }

    // A modified sibling line is written back into the L3 on its way
    // to the requester.
    if (sr.state == CoherenceState::Modified) {
        if (l3_.probe(addr).hit)
            l3_.setDirty(addr);
    }

    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == requester)
            continue;
        CoreModel &sib = *cores_[i];
        if (!sib.l2.probe(addr).hit)
            continue;
        if (for_ownership) {
            // Invalidate everywhere; dirty data was already captured
            // logically by the L3 write-back above.
            sib.l2.invalidate(addr);
            sib.l1d.invalidate(addr);
            sib.l1i.invalidate(addr);
        } else {
            sib.l2.setState(addr, CoherenceState::Shared);
            if (sib.l1d.probe(addr).hit)
                sib.l1d.setState(addr, CoherenceState::Shared);
            if (sib.l1i.probe(addr).hit)
                sib.l1i.setState(addr, CoherenceState::Shared);
        }
    }

    // A line observed in two places is shared history for the L3.
    if (l3_.probe(addr).hit)
        l3_.markShared(addr);
}

SystemModel::FillOutcome
SystemModel::fillLine(unsigned requester, std::uint64_t addr,
                      bool for_ownership, bool is_code,
                      bool dependent_load)
{
    CoreModel &core = *cores_[requester];
    PmcCounters &pmc = counters(requester);
    FillOutcome out;

    // Offcore request classification.
    if (is_code)
        ++pmc.offcoreCode;
    else if (for_ownership)
        ++pmc.offcoreRfo;
    else
        ++pmc.offcoreData;

    SnoopResult sr = snoop(requester, addr);
    CacheLookup l3look = l3_.access(addr);

    if (sr.state == CoherenceState::Modified ||
        sr.state == CoherenceState::Exclusive) {
        // Cache-to-cache transfer from the owning sibling.
        settleSnoop(requester, addr, sr, for_ownership);
        out.latency = cfg_.c2cLatency;
        out.fromSibling = true;
        out.l3Hit = l3look.hit;
        if (l3look.hit)
            ++pmc.l3Hits;
        else
            ++pmc.l3Misses;
        out.fillState = for_ownership ? CoherenceState::Modified
                                      : CoherenceState::Shared;
        return out;
    }

    if (sr.state == CoherenceState::Shared) {
        if (l3look.hit && !for_ownership) {
            // Inclusive-L3 behavior: a clean shared line is served
            // straight from the L3; the sharers are left alone and no
            // snoop response is generated (core-valid bits filter it).
            ++pmc.l3Hits;
            out.l3Hit = true;
            out.latency = cfg_.l3Latency;
            out.fillState = CoherenceState::Shared;
            return out;
        }
        // RFO must invalidate the sharers; an L3 miss falls back to a
        // cache-to-cache transfer. Both generate snoop responses.
        settleSnoop(requester, addr, sr, for_ownership);
        out.fromSibling = !for_ownership;
        out.l3Hit = l3look.hit;
        out.latency = l3look.hit ? cfg_.l3Latency : cfg_.c2cLatency;
        if (l3look.hit)
            ++pmc.l3Hits;
        else
            ++pmc.l3Misses;
        out.fillState = for_ownership ? CoherenceState::Modified
                                      : CoherenceState::Shared;
        return out;
    }

    // No sibling holds the line.
    if (l3look.hit) {
        ++pmc.l3Hits;
        out.l3Hit = true;
        out.latency = cfg_.l3Latency;
        out.fillState = for_ownership ? CoherenceState::Modified
                                      : CoherenceState::Exclusive;
        return out;
    }

    // Memory access.
    ++pmc.l3Misses;
    out.memAccess = true;
    double overlap = 1.0;
    if (!is_code && !for_ownership) {
        overlap = core.accountLlcMiss(dependent_load);
        pmc.mlpSum += overlap;
        ++pmc.mlpSamples;
    }
    out.latency = cfg_.memLatency / overlap;
    out.fillState = for_ownership ? CoherenceState::Modified
                                  : CoherenceState::Exclusive;
    Eviction ev = l3_.insert(addr, CoherenceState::Exclusive);
    (void)ev; // L3 victims write to memory; no per-core event
    return out;
}

void
SystemModel::installLine(unsigned core_id, std::uint64_t addr,
                         CoherenceState state, bool is_code,
                         bool install_l1)
{
    CoreModel &core = *cores_[core_id];
    if (!core.l2.probe(addr).hit) {
        Eviction ev = core.l2.insert(addr, state);
        if (ev.valid) {
            std::uint64_t victim_addr = ev.lineAddr * cfg_.l2.lineBytes;
            // Inclusion: L1 copies of the victim go away too.
            bool l1d_dirty = core.l1d.invalidate(victim_addr);
            core.l1i.invalidate(victim_addr);
            if (ev.dirty || l1d_dirty) {
                ++counters(core_id).offcoreWb;
                if (l3_.probe(victim_addr).hit)
                    l3_.setDirty(victim_addr);
            }
        }
    } else {
        core.l2.setState(addr, state);
    }

    if (!install_l1)
        return;
    SetAssocCache &l1 = is_code ? core.l1i : core.l1d;
    if (!l1.probe(addr).hit) {
        Eviction ev = l1.insert(addr, state);
        if (ev.valid && ev.dirty) {
            std::uint64_t victim_addr = ev.lineAddr * cfg_.l1d.lineBytes;
            if (core.l2.probe(victim_addr).hit)
                core.l2.setDirty(victim_addr);
        }
    } else {
        l1.setState(addr, state);
    }
}

void
SystemModel::doFetch(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = *cores_[core_id];
    PmcCounters &pmc = counters(core_id);

    std::uint64_t line = op.ip / cfg_.l1i.lineBytes;
    if (line == core.lastFetchLine)
        return;
    core.lastFetchLine = line;

    // Instruction TLB.
    TlbOutcome t = core.tlb.translateCode(op.ip);
    if (t == TlbOutcome::Walk) {
        ++pmc.itlbWalks;
        pmc.itlbWalkCycles += cfg_.walkLatency;
        pmc.fetchStallCycles += cfg_.walkLatency;
        pmc.cycles += cfg_.walkLatency;
        core.clock += cfg_.walkLatency;
    } else if (t == TlbOutcome::StlbHit) {
        pmc.fetchStallCycles += cfg_.stlbHitPenalty;
        pmc.cycles += cfg_.stlbHitPenalty;
        core.clock += cfg_.stlbHitPenalty;
    }

    // L1I.
    if (core.l1i.access(op.ip).hit) {
        ++pmc.l1iHits;
        return;
    }
    ++pmc.l1iMisses;

    double latency;
    CoherenceState state;
    if (core.l2.access(op.ip).hit) {
        ++pmc.l2Hits;
        latency = cfg_.l2Latency;
        state = core.l2.probe(op.ip).state;
        SetAssocCache &l1 = core.l1i;
        if (!l1.probe(op.ip).hit)
            l1.insert(op.ip, state);
    } else {
        ++pmc.l2Misses;
        FillOutcome fill = fillLine(core_id, op.ip, false, true, false);
        latency = cfg_.l2Latency + fill.latency;
        installLine(core_id, op.ip, fill.fillState, true);
    }

    pmc.fetchStallCycles += latency;
    pmc.ildStallCycles += 0.15 * latency;
    pmc.cycles += 1.15 * latency;
    core.clock += 1.15 * latency;

    // Next-line instruction prefetch (Westmere's L1I streaming
    // prefetcher): fetch the following line behind the demand miss.
    // The prefetch runs off the critical path (no stall, no demand
    // L1I-miss event) but is a real request — it allocates through
    // the hierarchy and shows up as offcore code traffic when it has
    // to leave the core.
    std::uint64_t next_addr = (line + 1) * cfg_.l1i.lineBytes;
    if (!core.l1i.probe(next_addr).hit) {
        if (core.l2.access(next_addr).hit) {
            core.l1i.insert(next_addr, core.l2.probe(next_addr).state);
        } else {
            FillOutcome pf = fillLine(core_id, next_addr, false, true,
                                      false);
            installLine(core_id, next_addr, pf.fillState, true);
        }
    }
}

void
SystemModel::translateData(unsigned core_id, std::uint64_t addr)
{
    CoreModel &core = *cores_[core_id];
    PmcCounters &pmc = counters(core_id);
    TlbOutcome t = core.tlb.translateData(addr);
    if (t == TlbOutcome::Walk) {
        ++pmc.dtlbWalks;
        pmc.dtlbWalkCycles += cfg_.walkLatency;
        pmc.resourceStallCycles += 0.6 * cfg_.walkLatency;
        pmc.cycles += 0.6 * cfg_.walkLatency;
        core.clock += 0.6 * cfg_.walkLatency;
    } else if (t == TlbOutcome::StlbHit) {
        ++pmc.dataHitStlb;
        pmc.resourceStallCycles += 0.2 * cfg_.stlbHitPenalty;
        pmc.cycles += 0.2 * cfg_.stlbHitPenalty;
        core.clock += 0.2 * cfg_.stlbHitPenalty;
    }
}

void
SystemModel::doLoad(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = *cores_[core_id];
    PmcCounters &pmc = counters(core_id);

    translateData(core_id, op.addr);

    if (core.l1d.access(op.addr).hit)
        return; // L1D hits are latency-hidden by the OoO core

    std::uint64_t line = op.addr / cfg_.l1d.lineBytes;
    if (core.lfbInFlight(line, core.clock)) {
        ++pmc.loadHitLfb;
        return;
    }

    if (core.l2.access(op.addr).hit) {
        ++pmc.l2Hits;
        ++pmc.loadHitL2;
        CoherenceState state = core.l2.probe(op.addr).state;
        if (!core.l1d.probe(op.addr).hit)
            installLine(core_id, op.addr, state, false);
        double stall = 0.3 * cfg_.l2Latency;
        pmc.ratStallCycles += stall;
        pmc.cycles += stall;
        core.clock += stall;
        return;
    }

    ++pmc.l2Misses;
    FillOutcome fill = fillLine(core_id, op.addr, false, false,
                                op.dependsOnPrevLoad);
    // The line lands in the L2 now; the L1D copy arrives only when a
    // later touch finds the fill complete (see class comment).
    installLine(core_id, op.addr, fill.fillState, false, false);
    core.lfbAllocate(line, core.clock + cfg_.l2Latency + fill.latency);

    if (fill.fromSibling) {
        ++pmc.loadHitSibling;
        double stall = 0.4 * fill.latency;
        pmc.resourceStallCycles += stall;
        pmc.cycles += stall;
        core.clock += stall;
    } else if (fill.l3Hit) {
        ++pmc.loadHitL3Unshared;
        pmc.resourceStallCycles += 0.3 * fill.latency;
        pmc.ratStallCycles += 0.1 * fill.latency;
        pmc.cycles += 0.4 * fill.latency;
        core.clock += 0.4 * fill.latency;
    } else {
        ++pmc.loadLlcMiss;
        pmc.resourceStallCycles += 0.75 * fill.latency;
        pmc.ratStallCycles += 0.1 * fill.latency;
        pmc.cycles += 0.85 * fill.latency;
        core.clock += 0.85 * fill.latency;
    }
}

void
SystemModel::doStore(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = *cores_[core_id];
    PmcCounters &pmc = counters(core_id);

    translateData(core_id, op.addr);

    CacheLookup l1 = core.l1d.access(op.addr);
    if (l1.hit) {
        if (l1.state == CoherenceState::Modified) {
            core.l1d.setDirty(op.addr);
            return;
        }
        if (l1.state == CoherenceState::Exclusive) {
            core.l1d.setState(op.addr, CoherenceState::Modified);
            core.l1d.setDirty(op.addr);
            if (core.l2.probe(op.addr).hit)
                core.l2.setState(op.addr, CoherenceState::Modified);
            return;
        }
        // Shared: upgrade via RFO.
        ++pmc.offcoreRfo;
        SnoopResult sr = snoop(core_id, op.addr);
        settleSnoop(core_id, op.addr, sr, true);
        core.l1d.setState(op.addr, CoherenceState::Modified);
        core.l1d.setDirty(op.addr);
        if (core.l2.probe(op.addr).hit)
            core.l2.setState(op.addr, CoherenceState::Modified);
        double stall = 0.3 * cfg_.c2cLatency;
        pmc.resourceStallCycles += stall;
        pmc.cycles += stall;
        core.clock += stall;
        return;
    }

    std::uint64_t line = op.addr / cfg_.l1d.lineBytes;
    if (core.lfbInFlight(line, core.clock)) {
        // Merge into the outstanding fill; ownership is settled when
        // the fill completes and a later access re-probes.
        if (core.l2.probe(op.addr).hit) {
            if (core.l2.probe(op.addr).state == CoherenceState::Shared) {
                ++pmc.offcoreRfo;
                SnoopResult sr = snoop(core_id, op.addr);
                settleSnoop(core_id, op.addr, sr, true);
            }
            core.l2.setState(op.addr, CoherenceState::Modified);
            core.l2.setDirty(op.addr);
        }
        return;
    }

    if (core.l2.access(op.addr).hit) {
        ++pmc.l2Hits;
        CoherenceState state = core.l2.probe(op.addr).state;
        if (state == CoherenceState::Shared) {
            ++pmc.offcoreRfo;
            SnoopResult sr = snoop(core_id, op.addr);
            settleSnoop(core_id, op.addr, sr, true);
        }
        core.l2.setState(op.addr, CoherenceState::Modified);
        installLine(core_id, op.addr, CoherenceState::Modified, false);
        core.l1d.setDirty(op.addr);
        core.l2.setDirty(op.addr);
        return;
    }

    ++pmc.l2Misses;
    FillOutcome fill = fillLine(core_id, op.addr, true, false, false);
    installLine(core_id, op.addr, CoherenceState::Modified, false);
    core.l1d.setDirty(op.addr);
    core.l2.setDirty(op.addr);
    double stall = 0.25 * fill.latency;
    pmc.resourceStallCycles += stall;
    pmc.cycles += stall;
    core.clock += stall;
}

void
SystemModel::doBranch(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = *cores_[core_id];
    PmcCounters &pmc = counters(core_id);
    ++pmc.branchesRetired;
    bool correct = core.bp.predictAndTrain(op.ip, op.taken);
    if (correct) {
        ++pmc.branchesExecuted;
    } else {
        ++pmc.branchesMispredicted;
        // Retired + wrong-path work flushed at the redirect.
        pmc.branchesExecuted += 3;
        pmc.fetchStallCycles += cfg_.branchMissPenalty;
        pmc.cycles += cfg_.branchMissPenalty;
        core.clock += cfg_.branchMissPenalty;
    }
}

void
SystemModel::consume(unsigned core_id, const MicroOp &op)
{
    if (core_id >= cores_.size())
        BDS_FATAL("op for core " << core_id << " on a "
                  << cores_.size() << "-core node");
    if (recorder_)
        recorder_->consume(core_id, op);
    CoreModel &core = *cores_[core_id];
    PmcCounters &pmc = counters(core_id);

    ++pmc.uops;
    ++core.uopClock;
    pmc.cycles += invIssueWidth_;
    core.clock += invIssueWidth_;
    pmc.uopsExecutedCycles += invIssueWidth_;

    if (op.newInstruction) {
        ++pmc.instructions;
        if (op.mode == Mode::Kernel)
            ++pmc.kernelInstrs;
        else
            ++pmc.userInstrs;
        switch (op.cls) {
          case OpClass::Load: ++pmc.loadInstrs; break;
          case OpClass::Store: ++pmc.storeInstrs; break;
          case OpClass::Branch: ++pmc.branchInstrs; break;
          case OpClass::IntAlu: ++pmc.intInstrs; break;
          case OpClass::FpAlu: ++pmc.fpInstrs; break;
          case OpClass::SseAlu: ++pmc.sseInstrs; break;
        }
        doFetch(core_id, op);
    } else {
        // Microcode sequencer pressure.
        pmc.decoderStallCycles += 0.4;
        pmc.cycles += 0.4;
        core.clock += 0.4;
    }

    switch (op.cls) {
      case OpClass::Load:
        doLoad(core_id, op);
        break;
      case OpClass::Store:
        doStore(core_id, op);
        break;
      case OpClass::Branch:
        doBranch(core_id, op);
        break;
      case OpClass::FpAlu:
        // x87 is microcode-heavy on Westmere-class cores.
        pmc.decoderStallCycles += 0.2;
        pmc.cycles += 0.2;
        core.clock += 0.2;
        break;
      case OpClass::IntAlu:
      case OpClass::SseAlu:
        break;
    }
}

} // namespace bds
