#include "uarch/system.h"

#include <map>

#include "common/log.h"
#include "fault/error.h"

namespace bds {

SystemModel::SystemModel(const NodeConfig &cfg)
    : cfg_(cfg), l3_(cfg.l3), invIssueWidth_(1.0 / cfg.issueWidth)
{
    if (cfg_.numCores == 0)
        BDS_FATAL("node needs at least one core");
    if (cfg_.numCores > 64)
        BDS_FATAL("node supports at most 64 cores (snoop holder mask)");
    cores_.reserve(cfg_.numCores);
    for (unsigned i = 0; i < cfg_.numCores; ++i)
        cores_.emplace_back(cfg_);
}

const PmcCounters &
SystemModel::coreCounters(unsigned core) const
{
    if (core >= cores_.size())
        BDS_FATAL("core index " << core << " out of range");
    return cores_[core].pmc;
}

CoreModel &
SystemModel::core(unsigned idx)
{
    if (idx >= cores_.size())
        BDS_FATAL("core index " << idx << " out of range");
    return cores_[idx];
}

PmcCounters
SystemModel::aggregateCounters() const
{
    PmcCounters total;
    for (const auto &c : cores_)
        total += c.pmc;
    return total;
}

void
SystemModel::resetCounters()
{
    for (auto &c : cores_)
        c.pmc = PmcCounters{};
}

void
SystemModel::saveState(StateSink &sink) const
{
    sink.section("SYSM");
    sink.u8(frozen_ ? 1 : 0);
    sink.u64(cores_.size());
    for (const CoreModel &c : cores_)
        c.saveState(sink);
    l3_.saveState(sink);
}

void
SystemModel::loadState(StateSource &src)
{
    src.section("SYSM");
    std::uint8_t frozen = src.u8();
    if (frozen > 1)
        BDS_RAISE(ErrorCode::Io,
                  "system state holds freeze flag "
                      << unsigned(frozen) << " (corrupt payload)");
    src.check("system.num_cores", cores_.size());
    frozen_ = frozen != 0;
    for (CoreModel &c : cores_)
        c.loadState(src);
    l3_.loadState(src);
}

void
SystemModel::checkInvariants() const
{
    auto rank = [](CoherenceState s) {
        switch (s) {
          case CoherenceState::Modified: return 3;
          case CoherenceState::Exclusive: return 2;
          case CoherenceState::Shared: return 1;
          default: return 0;
        }
    };

    // Line -> (owner core, strongest L2 state) over all cores.
    std::map<std::uint64_t, std::pair<unsigned, CoherenceState>> owners;
    for (unsigned c = 0; c < cores_.size(); ++c) {
        cores_[c].l2.forEachLine(
            [&](std::uint64_t la, CoherenceState s, bool) {
                auto it = owners.find(la);
                if (it == owners.end()) {
                    owners.emplace(la, std::make_pair(c, s));
                    return;
                }
                // Two holders: neither may be Modified/Exclusive.
                if (rank(s) >= 2 || rank(it->second.second) >= 2)
                    BDS_PANIC("line 0x" << std::hex << la << std::dec
                              << " held by cores " << it->second.first
                              << " and " << c
                              << " with an exclusive state");
            });
    }

    // Inclusion: every L1 line is backed by the same core's L2.
    for (unsigned c = 0; c < cores_.size(); ++c) {
        auto check_l1 = [&](const SetAssocCache &l1, const char *which) {
            l1.forEachLine([&](std::uint64_t la, CoherenceState s,
                               bool) {
                std::uint64_t addr = la * cfg_.l2.lineBytes;
                CacheLookup in_l2 = cores_[c].l2.probe(addr);
                if (!in_l2.hit)
                    BDS_PANIC("core " << c << ' ' << which
                              << " holds line 0x" << std::hex << la
                              << std::dec << " absent from its L2");
                if (rank(s) > rank(in_l2.state))
                    BDS_PANIC("core " << c << ' ' << which
                              << " state exceeds L2 state for line 0x"
                              << std::hex << la);
            });
        };
        check_l1(cores_[c].l1d, "L1D");
        check_l1(cores_[c].l1i, "L1I");
    }
}

void
SystemModel::dmaFill(std::uint64_t addr, std::uint64_t bytes)
{
    if (recorder_)
        recorder_->recordDma(addr, bytes);
    std::uint64_t line_bytes = cfg_.l3.lineBytes;
    std::uint64_t first = addr / line_bytes;
    std::uint64_t last = (addr + bytes + line_bytes - 1) / line_bytes;
    for (std::uint64_t la = first; la < last; ++la) {
        std::uint64_t a = la * line_bytes;
        for (auto &c : cores_) {
            // Inclusion: an L2 miss means no L1 can hold the line,
            // so one probe settles all three private levels.
            if (c.l2.probe(a).hit) {
                c.l1d.invalidate(a);
                c.l1i.invalidate(a);
                c.l2.invalidate(a);
            }
        }
        l3_.invalidate(a);
    }
}

SystemModel::SnoopResult
SystemModel::snoop(unsigned requester, std::uint64_t addr) const
{
    SnoopResult best;
    for (unsigned i = 0; i < cores_.size(); ++i) {
        if (i == requester)
            continue;
        CacheLookup look = cores_[i].l2.probe(addr);
        if (!look.hit)
            continue;
        best.holders |= 1ULL << i;
        // Severity order: Modified > Exclusive > Shared.
        auto rank = [](CoherenceState s) {
            switch (s) {
              case CoherenceState::Modified: return 3;
              case CoherenceState::Exclusive: return 2;
              case CoherenceState::Shared: return 1;
              default: return 0;
            }
        };
        if (rank(look.state) > rank(best.state)) {
            best.state = look.state;
            best.owner = static_cast<int>(i);
        }
    }
    return best;
}

template <bool kFrozen>
void
SystemModel::settleSnoop(unsigned requester, std::uint64_t addr,
                         const SnoopResult &sr, bool for_ownership)
{
    if (sr.state == CoherenceState::Invalid)
        return;
    if constexpr (!kFrozen) {
        PmcCounters &pmc = cores_[requester].pmc;
        switch (sr.state) {
          case CoherenceState::Modified:
            ++pmc.snoopHitM;
            break;
          case CoherenceState::Exclusive:
            ++pmc.snoopHitE;
            break;
          case CoherenceState::Shared:
            ++pmc.snoopHit;
            break;
          case CoherenceState::Invalid:
            break;
        }
    }

    // One L3 scan records the shared history — and, for a modified
    // sibling, the write-back the transfer implies (the dirty bit).
    l3_.markSharedIfPresent(addr,
                            sr.state == CoherenceState::Modified);

    // Touch only the siblings the snoop saw holding the line.
    for (std::uint64_t m = sr.holders; m != 0; m &= m - 1) {
        unsigned i = static_cast<unsigned>(__builtin_ctzll(m));
        CoreModel &sib = cores_[i];
        if (for_ownership) {
            // Invalidate everywhere; dirty data was already captured
            // logically by the L3 write-back above.
            sib.l2.invalidate(addr);
            sib.l1d.invalidate(addr);
            sib.l1i.invalidate(addr);
        } else {
            sib.l2.setState(addr, CoherenceState::Shared);
            sib.l1d.setStateIfPresent(addr, CoherenceState::Shared);
            sib.l1i.setStateIfPresent(addr, CoherenceState::Shared);
        }
    }
}

template <bool kFrozen>
SystemModel::FillOutcome
SystemModel::fillLine(unsigned requester, std::uint64_t addr,
                      bool for_ownership, bool is_code,
                      bool dependent_load)
{
    CoreModel &core = cores_[requester];
    PmcCounters &pmc = core.pmc;
    FillOutcome out;

    // Offcore request classification.
    if constexpr (!kFrozen) {
        if (is_code)
            ++pmc.offcoreCode;
        else if (for_ownership)
            ++pmc.offcoreRfo;
        else
            ++pmc.offcoreData;
    }

    SnoopResult sr = snoop(requester, addr);
    CacheLookup l3look = l3_.access(addr);

    if (sr.state == CoherenceState::Modified ||
        sr.state == CoherenceState::Exclusive) {
        // Cache-to-cache transfer from the owning sibling.
        settleSnoop<kFrozen>(requester, addr, sr, for_ownership);
        out.latency = cfg_.c2cLatency;
        out.fromSibling = true;
        out.l3Hit = l3look.hit;
        if constexpr (!kFrozen) {
            if (l3look.hit)
                ++pmc.l3Hits;
            else
                ++pmc.l3Misses;
        }
        out.fillState = for_ownership ? CoherenceState::Modified
                                      : CoherenceState::Shared;
        return out;
    }

    if (sr.state == CoherenceState::Shared) {
        if (l3look.hit && !for_ownership) {
            // Inclusive-L3 behavior: a clean shared line is served
            // straight from the L3; the sharers are left alone and no
            // snoop response is generated (core-valid bits filter it).
            if constexpr (!kFrozen)
                ++pmc.l3Hits;
            out.l3Hit = true;
            out.latency = cfg_.l3Latency;
            out.fillState = CoherenceState::Shared;
            return out;
        }
        // RFO must invalidate the sharers; an L3 miss falls back to a
        // cache-to-cache transfer. Both generate snoop responses.
        settleSnoop<kFrozen>(requester, addr, sr, for_ownership);
        out.fromSibling = !for_ownership;
        out.l3Hit = l3look.hit;
        out.latency = l3look.hit ? cfg_.l3Latency : cfg_.c2cLatency;
        if constexpr (!kFrozen) {
            if (l3look.hit)
                ++pmc.l3Hits;
            else
                ++pmc.l3Misses;
        }
        out.fillState = for_ownership ? CoherenceState::Modified
                                      : CoherenceState::Shared;
        return out;
    }

    // No sibling holds the line.
    if (l3look.hit) {
        if constexpr (!kFrozen)
            ++pmc.l3Hits;
        out.l3Hit = true;
        out.latency = cfg_.l3Latency;
        out.fillState = for_ownership ? CoherenceState::Modified
                                      : CoherenceState::Exclusive;
        return out;
    }

    // Memory access.
    if constexpr (!kFrozen)
        ++pmc.l3Misses;
    out.memAccess = true;
    double overlap = 1.0;
    if (!is_code && !for_ownership) {
        overlap = core.accountLlcMiss(dependent_load);
        if constexpr (!kFrozen) {
            pmc.mlpSum += overlap;
            ++pmc.mlpSamples;
        }
    }
    out.latency = cfg_.memLatency / overlap;
    out.fillState = for_ownership ? CoherenceState::Modified
                                  : CoherenceState::Exclusive;
    Eviction ev = l3_.insert(addr, CoherenceState::Exclusive);
    (void)ev; // L3 victims write to memory; no per-core event
    return out;
}

template <bool kFrozen>
void
SystemModel::installMissFill(unsigned core_id, std::uint64_t addr,
                             CoherenceState state, bool is_code,
                             bool install_l1, bool dirty)
{
    CoreModel &core = cores_[core_id];
    Eviction ev = core.l2.insert(addr, state, dirty);
    if (ev.valid) {
        std::uint64_t victim_addr = ev.lineAddr * cfg_.l2.lineBytes;
        // Inclusion: L1 copies of the victim go away too.
        bool l1d_dirty = core.l1d.invalidate(victim_addr);
        core.l1i.invalidate(victim_addr);
        if (ev.dirty || l1d_dirty) {
            if constexpr (!kFrozen)
                ++core.pmc.offcoreWb;
            l3_.setDirtyIfPresent(victim_addr);
        }
    }

    if (install_l1)
        installL1Fill<kFrozen>(core_id, addr, state, is_code, dirty);
}

template <bool kFrozen>
void
SystemModel::installL1Fill(unsigned core_id, std::uint64_t addr,
                           CoherenceState state, bool is_code,
                           bool dirty)
{
    CoreModel &core = cores_[core_id];
    SetAssocCache &l1 = is_code ? core.l1i : core.l1d;
    Eviction ev = l1.insert(addr, state, dirty);
    if (ev.valid && ev.dirty) {
        std::uint64_t victim_addr = ev.lineAddr * cfg_.l1d.lineBytes;
        core.l2.setDirtyIfPresent(victim_addr);
    }
}

template <bool kFrozen>
void
SystemModel::doFetch(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = cores_[core_id];
    PmcCounters &pmc = core.pmc;

    std::uint64_t line = core.l1i.lineAddr(op.ip);
    if (line == core.lastFetchLine)
        return;
    core.lastFetchLine = line;

    // Instruction TLB.
    TlbOutcome t = core.tlb.translateCode(op.ip);
    if (t == TlbOutcome::Walk) {
        if constexpr (!kFrozen) {
            ++pmc.itlbWalks;
            pmc.itlbWalkCycles += cfg_.walkLatency;
            pmc.fetchStallCycles += cfg_.walkLatency;
            pmc.cycles += cfg_.walkLatency;
        }
        core.clock += cfg_.walkLatency;
    } else if (t == TlbOutcome::StlbHit) {
        if constexpr (!kFrozen) {
            pmc.fetchStallCycles += cfg_.stlbHitPenalty;
            pmc.cycles += cfg_.stlbHitPenalty;
        }
        core.clock += cfg_.stlbHitPenalty;
    }

    // L1I.
    if (core.l1i.access(op.ip).hit) {
        if constexpr (!kFrozen)
            ++pmc.l1iHits;
        return;
    }
    if constexpr (!kFrozen)
        ++pmc.l1iMisses;

    double latency;
    CacheLookup l2look = core.l2.access(op.ip);
    if (l2look.hit) {
        if constexpr (!kFrozen)
            ++pmc.l2Hits;
        latency = cfg_.l2Latency;
        // The L1I is known to miss here (the demand access above).
        core.l1i.insert(op.ip, l2look.state);
    } else {
        if constexpr (!kFrozen)
            ++pmc.l2Misses;
        FillOutcome fill =
            fillLine<kFrozen>(core_id, op.ip, false, true, false);
        latency = cfg_.l2Latency + fill.latency;
        installMissFill<kFrozen>(core_id, op.ip, fill.fillState, true,
                                 true);
    }

    if constexpr (!kFrozen) {
        pmc.fetchStallCycles += latency;
        pmc.ildStallCycles += 0.15 * latency;
        pmc.cycles += 1.15 * latency;
    }
    core.clock += 1.15 * latency;

    // Next-line instruction prefetch (Westmere's L1I streaming
    // prefetcher): fetch the following line behind the demand miss.
    // The prefetch runs off the critical path (no stall, no demand
    // L1I-miss event) but is a real request — it allocates through
    // the hierarchy and shows up as offcore code traffic when it has
    // to leave the core.
    std::uint64_t next_addr = (line + 1) * cfg_.l1i.lineBytes;
    if (!core.l1i.probe(next_addr).hit) {
        CacheLookup pfl2 = core.l2.access(next_addr);
        if (pfl2.hit) {
            core.l1i.insert(next_addr, pfl2.state);
        } else {
            FillOutcome pf =
                fillLine<kFrozen>(core_id, next_addr, false, true,
                                  false);
            installMissFill<kFrozen>(core_id, next_addr, pf.fillState,
                                     true, true);
        }
    }
}

template <bool kFrozen>
void
SystemModel::translateData(unsigned core_id, std::uint64_t addr)
{
    CoreModel &core = cores_[core_id];
    PmcCounters &pmc = core.pmc;
    TlbOutcome t = core.tlb.translateData(addr);
    if (t == TlbOutcome::Walk) {
        if constexpr (!kFrozen) {
            ++pmc.dtlbWalks;
            pmc.dtlbWalkCycles += cfg_.walkLatency;
            pmc.resourceStallCycles += 0.6 * cfg_.walkLatency;
            pmc.cycles += 0.6 * cfg_.walkLatency;
        }
        core.clock += 0.6 * cfg_.walkLatency;
    } else if (t == TlbOutcome::StlbHit) {
        if constexpr (!kFrozen) {
            ++pmc.dataHitStlb;
            pmc.resourceStallCycles += 0.2 * cfg_.stlbHitPenalty;
            pmc.cycles += 0.2 * cfg_.stlbHitPenalty;
        }
        core.clock += 0.2 * cfg_.stlbHitPenalty;
    }
}

template <bool kFrozen>
void
SystemModel::doLoad(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = cores_[core_id];
    PmcCounters &pmc = core.pmc;

    translateData<kFrozen>(core_id, op.addr);

    if (core.l1d.access(op.addr).hit)
        return; // L1D hits are latency-hidden by the OoO core

    std::uint64_t line = core.l1d.lineAddr(op.addr);
    if (core.lfbInFlight(line, core.clock)) {
        if constexpr (!kFrozen)
            ++pmc.loadHitLfb;
        return;
    }

    CacheLookup l2look = core.l2.access(op.addr);
    if (l2look.hit) {
        if constexpr (!kFrozen) {
            ++pmc.l2Hits;
            ++pmc.loadHitL2;
        }
        // The L1D is known to miss here (the demand access above),
        // and the L2 already holds the line in this very state.
        installL1Fill<kFrozen>(core_id, op.addr, l2look.state, false);
        double stall = 0.3 * cfg_.l2Latency;
        if constexpr (!kFrozen) {
            pmc.ratStallCycles += stall;
            pmc.cycles += stall;
        }
        core.clock += stall;
        return;
    }

    if constexpr (!kFrozen)
        ++pmc.l2Misses;
    FillOutcome fill = fillLine<kFrozen>(core_id, op.addr, false, false,
                                         op.dependsOnPrevLoad);
    // The line lands in the L2 now; the L1D copy arrives only when a
    // later touch finds the fill complete (see class comment).
    installMissFill<kFrozen>(core_id, op.addr, fill.fillState, false,
                             false);
    core.lfbAllocate(line, core.clock + cfg_.l2Latency + fill.latency);

    if (fill.fromSibling) {
        if constexpr (!kFrozen)
            ++pmc.loadHitSibling;
        double stall = 0.4 * fill.latency;
        if constexpr (!kFrozen) {
            pmc.resourceStallCycles += stall;
            pmc.cycles += stall;
        }
        core.clock += stall;
    } else if (fill.l3Hit) {
        if constexpr (!kFrozen) {
            ++pmc.loadHitL3Unshared;
            pmc.resourceStallCycles += 0.3 * fill.latency;
            pmc.ratStallCycles += 0.1 * fill.latency;
            pmc.cycles += 0.4 * fill.latency;
        }
        core.clock += 0.4 * fill.latency;
    } else {
        if constexpr (!kFrozen) {
            ++pmc.loadLlcMiss;
            pmc.resourceStallCycles += 0.75 * fill.latency;
            pmc.ratStallCycles += 0.1 * fill.latency;
            pmc.cycles += 0.85 * fill.latency;
        }
        core.clock += 0.85 * fill.latency;
    }
}

template <bool kFrozen>
void
SystemModel::doStore(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = cores_[core_id];
    PmcCounters &pmc = core.pmc;

    translateData<kFrozen>(core_id, op.addr);

    CacheLookup l1 = core.l1d.access(op.addr);
    if (l1.hit) {
        if (l1.state == CoherenceState::Modified) {
            core.l1d.setDirty(op.addr);
            return;
        }
        if (l1.state == CoherenceState::Exclusive) {
            core.l1d.setStateDirty(op.addr, CoherenceState::Modified);
            core.l2.setStateIfPresent(op.addr,
                                      CoherenceState::Modified);
            return;
        }
        // Shared: upgrade via RFO.
        if constexpr (!kFrozen)
            ++pmc.offcoreRfo;
        SnoopResult sr = snoop(core_id, op.addr);
        settleSnoop<kFrozen>(core_id, op.addr, sr, true);
        core.l1d.setStateDirty(op.addr, CoherenceState::Modified);
        core.l2.setStateIfPresent(op.addr, CoherenceState::Modified);
        double stall = 0.3 * cfg_.c2cLatency;
        if constexpr (!kFrozen) {
            pmc.resourceStallCycles += stall;
            pmc.cycles += stall;
        }
        core.clock += stall;
        return;
    }

    std::uint64_t line = core.l1d.lineAddr(op.addr);
    if (core.lfbInFlight(line, core.clock)) {
        // Merge into the outstanding fill; ownership is settled when
        // the fill completes and a later access re-probes.
        CacheLookup l2look = core.l2.probe(op.addr);
        if (l2look.hit) {
            if (l2look.state == CoherenceState::Shared) {
                if constexpr (!kFrozen)
                    ++pmc.offcoreRfo;
                SnoopResult sr = snoop(core_id, op.addr);
                settleSnoop<kFrozen>(core_id, op.addr, sr, true);
            }
            core.l2.setStateDirty(op.addr, CoherenceState::Modified);
        }
        return;
    }

    CacheLookup l2look = core.l2.access(op.addr);
    if (l2look.hit) {
        if constexpr (!kFrozen)
            ++pmc.l2Hits;
        if (l2look.state == CoherenceState::Shared) {
            if constexpr (!kFrozen)
                ++pmc.offcoreRfo;
            SnoopResult sr = snoop(core_id, op.addr);
            settleSnoop<kFrozen>(core_id, op.addr, sr, true);
        }
        core.l2.setStateDirty(op.addr, CoherenceState::Modified);
        installL1Fill<kFrozen>(core_id, op.addr,
                               CoherenceState::Modified, false, true);
        return;
    }

    if constexpr (!kFrozen)
        ++pmc.l2Misses;
    FillOutcome fill =
        fillLine<kFrozen>(core_id, op.addr, true, false, false);
    installMissFill<kFrozen>(core_id, op.addr,
                             CoherenceState::Modified, false, true,
                             /*dirty=*/true);
    double stall = 0.25 * fill.latency;
    if constexpr (!kFrozen) {
        pmc.resourceStallCycles += stall;
        pmc.cycles += stall;
    }
    core.clock += stall;
}

template <bool kFrozen>
void
SystemModel::doBranch(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = cores_[core_id];
    PmcCounters &pmc = core.pmc;
    if constexpr (!kFrozen)
        ++pmc.branchesRetired;
    bool correct = core.bp.predictAndTrain(op.ip, op.taken);
    if (correct) {
        if constexpr (!kFrozen)
            ++pmc.branchesExecuted;
    } else {
        if constexpr (!kFrozen) {
            ++pmc.branchesMispredicted;
            // Retired + wrong-path work flushed at the redirect.
            pmc.branchesExecuted += 3;
            pmc.fetchStallCycles += cfg_.branchMissPenalty;
            pmc.cycles += cfg_.branchMissPenalty;
        }
        core.clock += cfg_.branchMissPenalty;
    }
}

template <bool kFrozen>
void
SystemModel::consumeOp(unsigned core_id, const MicroOp &op)
{
    CoreModel &core = cores_[core_id];
    PmcCounters &pmc = core.pmc;

    if constexpr (!kFrozen) {
        ++pmc.uops;
        pmc.cycles += invIssueWidth_;
        pmc.uopsExecutedCycles += invIssueWidth_;
    }
    ++core.uopClock;
    core.clock += invIssueWidth_;

    if (op.newInstruction) {
        if constexpr (!kFrozen) {
            ++pmc.instructions;
            if (op.mode == Mode::Kernel)
                ++pmc.kernelInstrs;
            else
                ++pmc.userInstrs;
            switch (op.cls) {
              case OpClass::Load: ++pmc.loadInstrs; break;
              case OpClass::Store: ++pmc.storeInstrs; break;
              case OpClass::Branch: ++pmc.branchInstrs; break;
              case OpClass::IntAlu: ++pmc.intInstrs; break;
              case OpClass::FpAlu: ++pmc.fpInstrs; break;
              case OpClass::SseAlu: ++pmc.sseInstrs; break;
            }
        }
        doFetch<kFrozen>(core_id, op);
    } else {
        // Microcode sequencer pressure.
        if constexpr (!kFrozen) {
            pmc.decoderStallCycles += 0.4;
            pmc.cycles += 0.4;
        }
        core.clock += 0.4;
    }

    switch (op.cls) {
      case OpClass::Load:
        doLoad<kFrozen>(core_id, op);
        break;
      case OpClass::Store:
        doStore<kFrozen>(core_id, op);
        break;
      case OpClass::Branch:
        doBranch<kFrozen>(core_id, op);
        break;
      case OpClass::FpAlu:
        // x87 is microcode-heavy on Westmere-class cores.
        if constexpr (!kFrozen) {
            pmc.decoderStallCycles += 0.2;
            pmc.cycles += 0.2;
        }
        core.clock += 0.2;
        break;
      case OpClass::IntAlu:
      case OpClass::SseAlu:
        break;
    }
}

void
SystemModel::consume(unsigned core_id, const MicroOp &op)
{
    if (core_id >= cores_.size())
        BDS_FATAL("op for core " << core_id << " on a "
                  << cores_.size() << "-core node");
    if (recorder_)
        recorder_->consume(core_id, op);
    if (frozen_)
        consumeOp<true>(core_id, op);
    else
        consumeOp<false>(core_id, op);
}

} // namespace bds
