/**
 * @file
 * The full node model: N cores around a shared L3 with snoop-based
 * coherence, offcore-request accounting, and the approximate cycle
 * model. Implements OpSink, so workloads drive it directly through
 * the instrumentation runtime.
 *
 * Data-path summary (documented in DESIGN.md):
 *  - loads:  L1D -> LFB -> L2 -> (snoop siblings, L3) -> memory
 *  - stores: write-allocate with MESI ownership (RFO on S/miss)
 *  - code:   L1I -> L2 -> L3 -> memory, per fetched line
 *  - L1s are inclusive in the private L2; L2 evictions invalidate L1
 *    copies and write dirty data back (offcore WB)
 *  - one snoop response is recorded per offcore request, using the
 *    most severe sibling state (M > E > S)
 */

#ifndef BDS_UARCH_SYSTEM_H
#define BDS_UARCH_SYSTEM_H

#include <memory>
#include <vector>

#include "trace/microop.h"
#include "trace/recorder.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/core.h"
#include "uarch/pmc.h"

namespace bds {

/** One simulated multicore node. */
class SystemModel : public ExecTarget
{
  public:
    /** Build a node from a configuration. */
    explicit SystemModel(const NodeConfig &cfg);

    /** Execute one micro-op on the given core. */
    void consume(unsigned core, const MicroOp &op) override;

    /** Node configuration. */
    const NodeConfig &config() const { return cfg_; }

    /** Number of cores. */
    unsigned numCores() const override
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Counters of one core. */
    const PmcCounters &coreCounters(unsigned core) const;

    /** Sum of all cores' counters. */
    PmcCounters aggregateCounters() const;

    /**
     * Zero all counters while keeping the microarchitectural state
     * (caches, TLBs, predictor) warm — the paper's ramp-up protocol.
     */
    void resetCounters();

    /**
     * Functional-warming switch for sampled simulation. While on,
     * every micro-op still advances the full microarchitectural
     * state — caches, TLBs, the branch predictor, coherence, the
     * LFB/MLP windows, and the monotonic core clocks — but all
     * PmcCounters writes are redirected to each core's `discard`
     * sink, so `pmc` (and therefore cycle accounting) stands still.
     * Freeze→unfreeze→replay of a trace reproduces the counters of
     * an uninterrupted detailed run bitwise, because no observable
     * counter state depends on the frozen counters themselves.
     */
    void setCounterFreeze(bool on) { frozen_ = on; }

    /** Whether the counter-freeze (functional warming) mode is on. */
    bool counterFrozen() const { return frozen_; }

    /**
     * Model a device DMA write into memory (e.g., a disk or NIC
     * filling a page-cache buffer): every cached copy of the touched
     * lines is invalidated, so subsequent reads pay real DRAM
     * accesses. This is what makes I/O-bound stacks generate memory
     * traffic even when their buffers are reused.
     */
    void dmaFill(std::uint64_t addr, std::uint64_t bytes) override;

    /**
     * Attach a recorder: every subsequent micro-op and DMA fill is
     * appended to it (pass nullptr to detach). Replaying such a
     * trace into an identically configured fresh SystemModel
     * reproduces the counters exactly; replaying into a different
     * geometry is the paper's trace-driven methodology.
     */
    void attachRecorder(TraceRecorder *rec) { recorder_ = rec; }

    /** Mutable core access (tests and white-box benches). */
    CoreModel &core(unsigned idx);

    /** The shared L3 (tests). */
    SetAssocCache &l3() { return l3_; }

    /**
     * Verify the coherence and inclusion invariants; panics with a
     * description on violation. Checked properties:
     *  - a line Modified or Exclusive in one core's L2 is not valid
     *    in any other core's private caches;
     *  - at most one core holds any line in M/E state;
     *  - every line in a core's L1I/L1D is also in that core's L2
     *    (inclusion), with an L1 state no stronger than the L2's.
     */
    void checkInvariants() const;

  private:
    /** Most severe sibling coherence state for a line. */
    struct SnoopResult
    {
        CoherenceState state = CoherenceState::Invalid; ///< best state
        int owner = -1; ///< core holding it at that state
    };

    /** Probe all cores but `requester` for the line. */
    SnoopResult snoop(unsigned requester, std::uint64_t addr) const;

    /**
     * Downgrade/invalidate sibling copies after a snoop hit and
     * record the snoop response in the requester's counters.
     */
    void settleSnoop(unsigned requester, std::uint64_t addr,
                     const SnoopResult &sr, bool for_ownership);

    /** Outcome of an offcore fill. */
    struct FillOutcome
    {
        double latency = 0.0;      ///< exposed fill latency
        bool fromSibling = false;  ///< served cache-to-cache
        bool l3Hit = false;        ///< L3 lookup hit
        bool memAccess = false;    ///< went to DRAM
        CoherenceState fillState = CoherenceState::Exclusive;
    };

    /**
     * Service a private-hierarchy miss: snoop, L3 lookup, memory.
     * Updates offcore/snoop/L3 counters; does NOT insert into the
     * requester's private caches (the caller does).
     */
    FillOutcome fillLine(unsigned requester, std::uint64_t addr,
                         bool for_ownership, bool is_code,
                         bool dependent_load);

    /**
     * Insert into L2 (handling eviction + inclusion) and optionally
     * into an L1. Load fills skip the L1D install — the line sits in
     * the LFB until a later touch pulls it from the L2 — which is
     * what makes LOAD HIT LFB observable.
     */
    void installLine(unsigned core_id, std::uint64_t addr,
                     CoherenceState state, bool is_code,
                     bool install_l1 = true);

    /** The core's live counters, or its discard sink while frozen. */
    PmcCounters &counters(unsigned core_id)
    {
        CoreModel &c = *cores_[core_id];
        return frozen_ ? c.discard : c.pmc;
    }

    /** Handle an instruction fetch for the op's ip. */
    void doFetch(unsigned core_id, const MicroOp &op);

    void doLoad(unsigned core_id, const MicroOp &op);
    void doStore(unsigned core_id, const MicroOp &op);
    void doBranch(unsigned core_id, const MicroOp &op);

    /** Data-TLB translation with stall accounting. */
    void translateData(unsigned core_id, std::uint64_t addr);

    NodeConfig cfg_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    SetAssocCache l3_;
    double invIssueWidth_;
    TraceRecorder *recorder_ = nullptr;
    bool frozen_ = false; ///< counter-freeze (functional warming) mode
};

} // namespace bds

#endif // BDS_UARCH_SYSTEM_H
